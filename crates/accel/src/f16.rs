//! Software IEEE 754 binary16 ("half precision").
//!
//! Bit-accurate conversions with round-to-nearest-even, matching what
//! tensor-core hardware does to FP16 operands. Only conversions are needed:
//! arithmetic is performed by converting to `f32`, operating, and rounding
//! back (which is exactly the numerical behaviour of FP16 multiply units
//! with wider internal products).

/// An IEEE 754 binary16 value stored as raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if mant == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00) // quiet NaN
            };
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow → infinity (IEEE RNE behaviour for binary16).
            return F16(sign | 0x7C00);
        }
        if e >= -14 {
            // Normal range: 10-bit mantissa, RNE on the dropped 13 bits.
            let mant16 = mant >> 13;
            let rest = mant & 0x1FFF;
            let halfway = 0x1000;
            let mut h = sign | (((e + 15) as u16) << 10) | mant16 as u16;
            if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
                h = h.wrapping_add(1); // carries propagate into the exponent correctly
            }
            return F16(h);
        }
        if e >= -24 {
            // Subnormal: shift the implicit-1 mantissa right.
            let full = mant | 0x0080_0000; // 24-bit significand
            let shift = (-14 - e) + 13;
            let mant16 = (full >> shift) as u16;
            let rest = full & ((1 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut h = sign | mant16;
            if rest > halfway || (rest == halfway && (mant16 & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Convert to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        let h = self.0 as u32;
        let sign = (h & 0x8000) << 16;
        let exp = (h >> 10) & 0x1F;
        let mant = h & 0x03FF;
        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = mant·2⁻²⁴; normalize so the implicit
                // bit sits at position 10, tracking the f32 biased exponent
                // (113 − shifts).
                let mut e = 113i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | ((e as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // inf/nan
        } else {
            sign | ((exp + 112) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Round a `f64` through binary16.
    pub fn round_f64(x: f64) -> f64 {
        F16::from_f32(x as f32).to_f32() as f64
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is ±infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

/// Round every element of a slice through binary16 (in place).
pub fn round_slice_f16(x: &mut [f64]) {
    for v in x {
        *v = F16::round_f64(*v);
    }
}

/// Round every element of a slice through `f32` (in place).
pub fn round_slice_f32(x: &mut [f64]) {
    for v in x {
        *v = *v as f32 as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0), F16::ZERO);
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::from_f32(-2.0).to_f32(), -2.0);
        assert_eq!(F16::from_f32(0.5).to_f32(), 0.5);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i} must be exact");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: RNE → 1.0.
        let halfway = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9: RNE → even
        // mantissa (1 + 2^-9).
        let halfway2 = 1.0f32 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway2).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert_eq!(F16::from_f32(65504.0).to_f32(), 65504.0);
        // 65520 is halfway to the next (unrepresentable) step: rounds to inf.
        assert!(F16::from_f32(65520.0).is_infinite());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        // Largest subnormal.
        let sub = 2.0f32.powi(-14) - 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_f32(), 0.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!F16::from_f32(1.0).is_nan());
    }

    #[test]
    fn signs_preserved() {
        assert_eq!(F16::from_f32(-0.0).0 & 0x8000, 0x8000);
        assert_eq!(F16::from_f32(-1.5).to_f32(), -1.5);
        assert!(F16::from_f32(f32::NEG_INFINITY).is_infinite());
    }

    #[test]
    fn roundtrip_is_idempotent() {
        // Rounding an already-rounded value must be exact.
        for i in 0..1000 {
            let x = (i as f32 * 0.37).sin() * 3.0;
            let once = F16::round_f64(x as f64);
            let twice = F16::round_f64(once);
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn half_precision_error_bound() {
        // Relative error of normal-range rounding ≤ 2^-11.
        for i in 1..2000 {
            let x = i as f64 * 0.013 + 0.5;
            let r = F16::round_f64(x);
            assert!(((r - x) / x).abs() <= 2.0f64.powi(-11) + 1e-12);
        }
    }

    #[test]
    fn slice_rounding_helpers() {
        let mut v = vec![1.0 + 1e-5, 2.0 + 1e-9];
        round_slice_f16(&mut v);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        let mut w = vec![1.0 + 1e-9f64];
        round_slice_f32(&mut w);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn exhaustive_f16_f32_f16_roundtrip() {
        // Every finite f16 bit pattern must survive the f32 roundtrip.
        for bits in 0u16..=0xFFFF {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, h.0, "bit pattern {bits:#06x} not preserved");
        }
    }
}
