//! Reduced-precision GEMM kernels with device-faithful accumulation order.
//!
//! Four numerical modes from paper Sec. VI:
//!
//! * `FP16` — tensor-core style: operands rounded to binary16, 4-wide tile
//!   products summed in f32 inside the MMA, accumulator rounded back to
//!   binary16 after every tile (pure half-precision accumulate);
//! * `FP16'` (mixed) — same binary16 operands and tile products, but the
//!   accumulator stays in f32;
//! * `FP32` — single-precision arithmetic in the GPU's column-streaming
//!   order;
//! * `FP64` — double precision (the reference);
//! * `FpgaFP32` — single precision with the FPGA kernel's different
//!   blocking (k-blocked with pairwise in-block summation). The paper notes
//!   GPU-FP32 and FPGA-FP32 results differ *only* through this ordering.

use rayon::prelude::*;

use sm_linalg::Matrix;

use crate::f16::F16;

/// Numerical execution mode of a simulated device kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// Binary16 operands and accumulator (tensor cores, FP16 accumulate).
    Fp16,
    /// Binary16 operands, f32 accumulator (tensor cores, mixed FP16').
    Fp16Mixed,
    /// Single precision on the GPU.
    Fp32,
    /// Double precision on the GPU (reference).
    Fp64,
    /// Single precision on the FPGA (different blocking order).
    FpgaFp32,
}

impl PrecisionMode {
    /// All modes in the paper's plotting order.
    pub fn all() -> [PrecisionMode; 5] {
        [
            PrecisionMode::Fp16,
            PrecisionMode::Fp16Mixed,
            PrecisionMode::Fp32,
            PrecisionMode::Fp64,
            PrecisionMode::FpgaFp32,
        ]
    }

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            PrecisionMode::Fp16 => "GPU FP16",
            PrecisionMode::Fp16Mixed => "GPU FP16'",
            PrecisionMode::Fp32 => "GPU FP32",
            PrecisionMode::Fp64 => "GPU FP64",
            PrecisionMode::FpgaFp32 => "FPGA FP32",
        }
    }

    /// Round a value to the mode's *storage* precision.
    pub fn round_storage(&self, x: f64) -> f64 {
        match self {
            PrecisionMode::Fp16 | PrecisionMode::Fp16Mixed => F16::round_f64(x),
            PrecisionMode::Fp32 | PrecisionMode::FpgaFp32 => x as f32 as f64,
            PrecisionMode::Fp64 => x,
        }
    }

    /// Round a whole matrix to storage precision.
    pub fn round_matrix(&self, a: &Matrix) -> Matrix {
        let mut out = a.clone();
        for v in out.as_mut_slice() {
            *v = self.round_storage(*v);
        }
        out
    }
}

/// `C = A·B` in the given precision mode. Operands are first rounded to the
/// mode's storage format (device upload), then multiplied with the mode's
/// accumulation semantics. Parallel over result columns.
pub fn gemm_mode(a: &Matrix, b: &Matrix, mode: PrecisionMode) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm_mode dimension mismatch");
    let (m, k) = a.shape();
    let n = b.ncols();

    // The delegating modes hand rounding to the real kernels; only the
    // emulated rounding schedules need the explicit f64-layout copies.
    match mode {
        PrecisionMode::Fp64 => {
            // Delegate to the real optimized double-precision kernel.
            return sm_linalg::gemm::matmul(a, b).expect("validated shapes");
        }
        PrecisionMode::Fp32 => {
            // Delegate to the real generic f32 kernel (sm_linalg's GEMM is
            // generic over the element type): single-precision arithmetic
            // in the column-streaming order the GPU kernel uses. This is
            // no longer an emulation — it is the same kernel the
            // reduced-precision execution path solves submatrices with
            // (conversion to f32 storage is the device upload).
            return sm_linalg::gemm::matmul_in(&a.to_f32(), &b.to_f32())
                .expect("validated shapes")
                .to_f64();
        }
        PrecisionMode::Fp16 | PrecisionMode::Fp16Mixed | PrecisionMode::FpgaFp32 => {}
    }

    let a_r = mode.round_matrix(a);
    let b_r = mode.round_matrix(b);
    let mut c = Matrix::zeros(m, n);

    match mode {
        PrecisionMode::Fp64 | PrecisionMode::Fp32 => unreachable!("delegated above"),
        PrecisionMode::FpgaFp32 => {
            // FPGA kernel: k split into blocks of 8, pairwise (tree)
            // summation inside each block, sequential f32 accumulation of
            // block results — a different order than the GPU kernel.
            par_columns(&mut c, |j, col| {
                for (i, ci) in col.iter_mut().enumerate() {
                    let mut acc: f32 = 0.0;
                    let mut kk = 0;
                    while kk < k {
                        let hi = (kk + 8).min(k);
                        let mut lane: [f32; 8] = [0.0; 8];
                        for (l, kx) in (kk..hi).enumerate() {
                            lane[l] = (a_r[(i, kx)] as f32) * (b_r[(kx, j)] as f32);
                        }
                        // Pairwise reduction tree (adder tree in the DSP
                        // fabric).
                        for stride in [1usize, 2, 4] {
                            let mut p = 0;
                            while p + stride < 8 {
                                lane[p] += lane[p + stride];
                                p += 2 * stride;
                            }
                        }
                        acc += lane[0];
                        kk = hi;
                    }
                    *ci = acc as f64;
                }
            });
        }
        PrecisionMode::Fp16 | PrecisionMode::Fp16Mixed => {
            let f16_acc = mode == PrecisionMode::Fp16;
            par_columns(&mut c, |j, col| {
                for (i, ci) in col.iter_mut().enumerate() {
                    // MMA tiles: 4-wide f16 products summed in f32; the
                    // running accumulator is rounded to f16 after each tile
                    // in FP16 mode and kept f32 in FP16' mode.
                    let mut acc: f64 = 0.0;
                    let mut kk = 0;
                    while kk < k {
                        let hi = (kk + 4).min(k);
                        let mut tile: f32 = 0.0;
                        for kx in kk..hi {
                            let pa = a_r[(i, kx)] as f32;
                            let pb = b_r[(kx, j)] as f32;
                            tile += pa * pb;
                        }
                        if f16_acc {
                            acc = F16::round_f64(acc + tile as f64);
                        } else {
                            acc = (acc as f32 + tile) as f64;
                        }
                        kk = hi;
                    }
                    *ci = acc;
                }
            });
        }
    }
    c
}

/// Run `kernel(j, column_j)` over all columns in parallel.
fn par_columns(c: &mut Matrix, kernel: impl Fn(usize, &mut [f64]) + Sync) {
    let m = c.nrows();
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, col)| kernel(j, col));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mats(n: usize) -> (Matrix, Matrix) {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 9) as f64 * 0.11 - 0.4);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 7) as f64 * 0.13 - 0.35);
        (a, b)
    }

    #[test]
    fn fp64_matches_reference() {
        let (a, b) = test_mats(17);
        let c = gemm_mode(&a, &b, PrecisionMode::Fp64);
        let r = sm_linalg::gemm::matmul(&a, &b).unwrap();
        assert!(c.allclose(&r, 1e-13));
    }

    #[test]
    fn fp32_close_but_not_exact() {
        let (a, b) = test_mats(33);
        let c32 = gemm_mode(&a, &b, PrecisionMode::Fp32);
        let c64 = gemm_mode(&a, &b, PrecisionMode::Fp64);
        let diff = c32.max_abs_diff(&c64);
        assert!(diff < 1e-4, "fp32 too far off: {diff}");
        assert!(diff > 0.0, "fp32 should differ from fp64 in roundoff");
    }

    #[test]
    fn fp16_error_larger_than_fp32() {
        let (a, b) = test_mats(48);
        let c64 = gemm_mode(&a, &b, PrecisionMode::Fp64);
        let e16 = gemm_mode(&a, &b, PrecisionMode::Fp16).max_abs_diff(&c64);
        let e16m = gemm_mode(&a, &b, PrecisionMode::Fp16Mixed).max_abs_diff(&c64);
        let e32 = gemm_mode(&a, &b, PrecisionMode::Fp32).max_abs_diff(&c64);
        assert!(e16 > e32, "FP16 ({e16}) must be noisier than FP32 ({e32})");
        assert!(
            e16m <= e16 + 1e-12,
            "mixed accumulation ({e16m}) must not be worse than FP16 ({e16})"
        );
    }

    #[test]
    fn gpu_and_fpga_fp32_disagree_in_rounding_only() {
        // Large enough k for ordering effects to appear.
        let (a, b) = test_mats(64);
        let gpu = gemm_mode(&a, &b, PrecisionMode::Fp32);
        let fpga = gemm_mode(&a, &b, PrecisionMode::FpgaFp32);
        let diff = gpu.max_abs_diff(&fpga);
        assert!(diff > 0.0, "different summation orders should differ");
        assert!(diff < 1e-4, "but only at rounding level: {diff}");
    }

    #[test]
    fn identity_exact_in_all_modes() {
        let i = Matrix::identity(8);
        let x = Matrix::from_fn(8, 8, |r, c| ((r + 2 * c) % 3) as f64 - 1.0);
        for mode in PrecisionMode::all() {
            let c = gemm_mode(&x, &i, mode);
            // Integers up to 2 are exact in binary16.
            assert!(c.allclose(&x, 0.0), "{mode:?} broke identity multiply");
        }
    }

    #[test]
    fn storage_rounding() {
        assert_eq!(PrecisionMode::Fp16.round_storage(1.0 + 1e-5), 1.0);
        assert_eq!(PrecisionMode::Fp32.round_storage(1.0 + 1e-9), 1.0);
        let x = 1.0 + 1e-9;
        assert_eq!(PrecisionMode::Fp64.round_storage(x), x);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(PrecisionMode::Fp16.label(), "GPU FP16");
        assert_eq!(PrecisionMode::Fp16Mixed.label(), "GPU FP16'");
        assert_eq!(PrecisionMode::FpgaFp32.label(), "FPGA FP32");
        assert_eq!(PrecisionMode::all().len(), 5);
    }

    #[test]
    fn non_square_and_tile_remainders() {
        // k = 10 exercises the 4-wide tile remainder path.
        let a = Matrix::from_fn(3, 10, |i, j| (i + j) as f64 * 0.25);
        let b = Matrix::from_fn(10, 5, |i, j| (i as f64 - j as f64) * 0.25);
        let r = sm_linalg::gemm::matmul(&a, &b).unwrap();
        for mode in PrecisionMode::all() {
            let c = gemm_mode(&a, &b, mode);
            assert_eq!(c.shape(), (3, 5));
            assert!(
                c.max_abs_diff(&r) < 0.2,
                "{mode:?} wildly off: {}",
                c.max_abs_diff(&r)
            );
        }
    }
}
