//! # sm-accel — simulated hardware acceleration
//!
//! Paper Sec. VI offloads the 3rd-order Padé sign iteration (Eq. 19) for
//! dense submatrices to Nvidia tensor cores (FP16 / mixed FP16' / FP32 /
//! FP64) and to a Stratix 10 FPGA (FP32). No GPU or FPGA exists in this
//! environment, so this crate reproduces the two things the paper actually
//! reports:
//!
//! * **Numerics** (Figs. 12–13): bit-accurate software emulation of IEEE
//!   binary16 ([`mod@f16`]) and reduced-precision GEMMs ([`gemm`]) with
//!   tensor-core accumulation semantics (4-wide FP16 products with FP16 or
//!   FP32 accumulators) plus an FPGA-style FP32 kernel with a *different
//!   blocking order* — the paper observes GPU-FP32 and FPGA-FP32 disagree
//!   purely through summation order. [`pade`] runs Eq. 19 in every mode and
//!   records the energy-vs-FP64 and involutority (‖Xₖ²−I‖_F) traces.
//! * **Throughput** (Table I): an analytic device model ([`perfmodel`])
//!   with the published peak numbers and an occupancy/overhead model that
//!   reproduces the peak → matmul → full-algorithm waterfall.

pub mod f16;
pub mod gemm;
pub mod pade;
pub mod perfmodel;

pub use f16::F16;
pub use gemm::PrecisionMode;
pub use pade::{pade3_sign_traced, IterationRecord, PadeTraceOptions};
