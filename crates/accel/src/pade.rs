//! Third-order Padé sign iteration in reduced precision (paper Eq. 19).
//!
//! `X₀ = A/s,  X_{k+1} = ⅛·X_k(15I − 10X_k² + 3X_k⁴)` runs entirely in the
//! selected precision mode; every iteration records the two diagnostics the
//! paper plots:
//!
//! * Fig. 12 — the band-structure energy of the density built from the
//!   current iterate, as a per-atom difference from the converged FP64
//!   result;
//! * Fig. 13 — the involutority violation `‖X_k² − I‖_F`.
//!
//! The paper's headline observations to reproduce: convergence after ~6–8
//! steps; FP16/FP16' energies within a few meV/atom of FP64 but with a
//! noise floor that prevents involutority from dropping further; GPU-FP32
//! and FPGA-FP32 trajectories that differ from each other only through
//! summation order.

use sm_linalg::norms::{involutority_residual, spectral_bound};
use sm_linalg::Matrix;

use crate::gemm::{gemm_mode, PrecisionMode};

/// Per-iteration diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// Iteration index (1-based, matching the paper's x-axis).
    pub iteration: usize,
    /// `‖X_k² − I‖_F` (Fig. 13's y-axis).
    pub involutority: f64,
    /// Band-structure energy `2·Tr(D_k A)` of the iterate's density.
    pub energy: f64,
}

/// Options of a traced Padé run.
#[derive(Debug, Clone, Copy)]
pub struct PadeTraceOptions {
    /// Number of iterations to run (the paper plots a fixed window, not a
    /// convergence-terminated run — Sec. VI discusses why the energy is a
    /// poor stopping criterion).
    pub iterations: usize,
    /// Number of atoms behind the submatrix (per-atom normalization).
    pub n_atoms: usize,
}

impl Default for PadeTraceOptions {
    fn default() -> Self {
        PadeTraceOptions {
            iterations: 15,
            n_atoms: 96,
        }
    }
}

/// Result of a traced run.
#[derive(Debug, Clone)]
pub struct PadeTrace {
    /// Per-iteration diagnostics.
    pub records: Vec<IterationRecord>,
    /// Final sign iterate.
    pub sign: Matrix,
}

/// Run the traced 3rd-order sign iteration of `A − µI` in `mode`.
///
/// The spectral pre-scaling runs in FP64 (it is a host-side operation in
/// the paper's implementation; only the iteration itself is offloaded).
pub fn pade3_sign_traced(
    a: &Matrix,
    mu: f64,
    mode: PrecisionMode,
    opts: &PadeTraceOptions,
) -> PadeTrace {
    assert!(a.is_square());
    let n = a.nrows();

    // Host-side shift and scale.
    let mut x = a.clone();
    x.shift_diag(-mu);
    let bound = spectral_bound(&x);
    if bound > 0.0 {
        x.scale(1.0 / bound);
    }
    let mut x = mode.round_matrix(&x);

    let mut records = Vec::with_capacity(opts.iterations);
    for it in 1..=opts.iterations {
        // X² and X⁴ in device precision.
        let x2 = gemm_mode(&x, &x, mode);
        let x4 = gemm_mode(&x2, &x2, mode);
        // P = (15 I − 10 X² + 3 X⁴)/8, assembled in device storage
        // precision (elementwise AXPYs are exact up to storage rounding).
        let mut p = Matrix::zeros(n, n);
        for idx in 0..n * n {
            let v = (-10.0 * x2.as_slice()[idx] + 3.0 * x4.as_slice()[idx]) / 8.0;
            p.as_mut_slice()[idx] = mode.round_storage(v);
        }
        p.shift_diag(15.0 / 8.0);
        for v in p.as_mut_slice() {
            *v = mode.round_storage(*v);
        }
        x = gemm_mode(&x, &p, mode);

        // Diagnostics in FP64 (host-side convergence tests, as in the
        // paper's implementation).
        let x2_diag = sm_linalg::gemm::matmul(&x, &x).expect("square");
        let inv = involutority_residual(&x2_diag);
        let energy = band_energy_of_sign(&x, a);
        records.push(IterationRecord {
            iteration: it,
            involutority: inv,
            energy,
        });
    }

    PadeTrace { records, sign: x }
}

/// Band energy `2·Tr(D·A)` with `D = (I − X)/2` for a sign iterate `X`.
pub fn band_energy_of_sign(x: &Matrix, a: &Matrix) -> f64 {
    // Tr(D A) = ½(Tr A − Tr(X A)); Tr(X A) = Σ_ij X_ij A_ji.
    let n = a.nrows();
    let mut tr_xa = 0.0;
    for j in 0..n {
        for i in 0..n {
            tr_xa += x[(i, j)] * a[(j, i)];
        }
    }
    a.trace() - tr_xa
}

/// Compare a trace against the converged FP64 energy: the meV/atom series
/// of paper Fig. 12.
pub fn energy_differences_mev_per_atom(trace: &PadeTrace, e_ref: f64, n_atoms: usize) -> Vec<f64> {
    const HARTREE_TO_MEV: f64 = 27211.386245988;
    trace
        .records
        .iter()
        .map(|r| (r.energy - e_ref) * HARTREE_TO_MEV / n_atoms as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gapped symmetric test matrix standing in for a water submatrix.
    fn submatrix_like(n: usize) -> Matrix {
        // Strongly gapped relative to the spectral bound, like the
        // water submatrices the paper offloads (weak FP16 noise must not
        // be able to flip an eigenvalue across µ).
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 3 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                -0.02 / (1.0 + 0.3 * (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn fp64_converges_to_machine_precision() {
        let a = submatrix_like(30);
        let t = pade3_sign_traced(
            &a,
            0.0,
            PrecisionMode::Fp64,
            &PadeTraceOptions {
                iterations: 20,
                n_atoms: 10,
            },
        );
        let last = t.records.last().unwrap();
        assert!(
            last.involutority < 1e-9,
            "FP64 involutority {}",
            last.involutority
        );
        // Matches the eigendecomposition sign.
        let s_ref = sm_linalg::sign::sign_eig(&a).unwrap();
        assert!(t.sign.allclose(&s_ref, 1e-7));
    }

    #[test]
    fn fp16_has_a_noise_floor() {
        let a = submatrix_like(24);
        let opts = PadeTraceOptions {
            iterations: 20,
            n_atoms: 8,
        };
        let t16 = pade3_sign_traced(&a, 0.0, PrecisionMode::Fp16, &opts);
        let t64 = pade3_sign_traced(&a, 0.0, PrecisionMode::Fp64, &opts);
        let floor16 = t16
            .records
            .iter()
            .map(|r| r.involutority)
            .fold(f64::INFINITY, f64::min);
        let floor64 = t64
            .records
            .iter()
            .map(|r| r.involutority)
            .fold(f64::INFINITY, f64::min);
        assert!(
            floor16 > 1e3 * floor64.max(1e-300),
            "FP16 floor {floor16} should sit far above FP64 floor {floor64}"
        );
        // The paper's observation: FP16 noise never reaches involutority
        // below ~1e-2 at submatrix scale; allow a generous bound here.
        assert!(floor16 > 1e-5);
    }

    #[test]
    fn mixed_precision_beats_pure_fp16() {
        let a = submatrix_like(24);
        let opts = PadeTraceOptions {
            iterations: 16,
            n_atoms: 8,
        };
        let floor = |mode| -> f64 {
            pade3_sign_traced(&a, 0.0, mode, &opts)
                .records
                .iter()
                .map(|r| r.involutority)
                .fold(f64::INFINITY, f64::min)
        };
        let f16 = floor(PrecisionMode::Fp16);
        let f16m = floor(PrecisionMode::Fp16Mixed);
        let f32 = floor(PrecisionMode::Fp32);
        // Paper Fig. 13: the FP16 and FP16' floors nearly coincide — both
        // are limited by binary16 *storage* of the iterate; FP32 sits
        // orders of magnitude lower.
        assert!(
            f16m <= 3.0 * f16,
            "FP16' ({f16m}) should be comparable to FP16 ({f16})"
        );
        assert!(f32 < 1e-2 * f16m, "FP32 ({f32}) should beat FP16' ({f16m})");
    }

    #[test]
    fn energies_converge_within_mev_scale() {
        // Paper: reduced-precision energies land within ~5 meV/atom of the
        // converged FP64 result.
        let a = submatrix_like(30);
        let opts = PadeTraceOptions {
            iterations: 18,
            n_atoms: 10,
        };
        let t64 = pade3_sign_traced(&a, 0.0, PrecisionMode::Fp64, &opts);
        let e_ref = t64.records.last().unwrap().energy;
        for mode in [
            PrecisionMode::Fp16,
            PrecisionMode::Fp16Mixed,
            PrecisionMode::Fp32,
            PrecisionMode::FpgaFp32,
        ] {
            let t = pade3_sign_traced(&a, 0.0, mode, &opts);
            let diffs = energy_differences_mev_per_atom(&t, e_ref, opts.n_atoms);
            let last = diffs.last().unwrap().abs();
            assert!(last < 100.0, "{mode:?} final energy diff {last} meV/atom");
        }
    }

    #[test]
    fn gpu_and_fpga_fp32_trajectories_differ() {
        let a = submatrix_like(40);
        let opts = PadeTraceOptions {
            iterations: 10,
            n_atoms: 13,
        };
        let gpu = pade3_sign_traced(&a, 0.0, PrecisionMode::Fp32, &opts);
        let fpga = pade3_sign_traced(&a, 0.0, PrecisionMode::FpgaFp32, &opts);
        let max_traj_diff = gpu
            .records
            .iter()
            .zip(&fpga.records)
            .map(|(g, f)| (g.involutority - f.involutority).abs())
            .fold(0.0, f64::max);
        assert!(
            max_traj_diff > 0.0,
            "different summation orders must produce different trajectories"
        );
        // But both still converge to the same sign function.
        assert!(gpu.sign.allclose(&fpga.sign, 1e-3));
    }

    #[test]
    fn band_energy_of_exact_sign_counts_negative_spectrum() {
        let a = Matrix::from_diag(&[-2.0, -1.0, 1.0, 3.0]);
        let x = Matrix::from_diag(&[-1.0, -1.0, 1.0, 1.0]);
        // E = 2·Σ_{λ<0} λ = -6.
        assert!((band_energy_of_sign(&x, &a) + 6.0).abs() < 1e-14);
    }

    #[test]
    fn mu_shift_respected() {
        let a = Matrix::from_diag(&[0.0, 1.0, 2.0, 3.0]);
        let t = pade3_sign_traced(
            &a,
            1.5,
            PrecisionMode::Fp64,
            &PadeTraceOptions {
                iterations: 30,
                n_atoms: 4,
            },
        );
        let expect = Matrix::from_diag(&[-1.0, -1.0, 1.0, 1.0]);
        assert!(t.sign.allclose(&expect, 1e-6));
    }
}
