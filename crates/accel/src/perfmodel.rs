//! Device throughput model — paper Table I.
//!
//! Table I reports three throughput levels per precision mode on an RTX
//! 2080 Ti: theoretical peak, practical matrix-multiply throughput at
//! n = 3972, and the full sign algorithm including type conversions, PCIe
//! transfers and convergence tests. No GPU exists here, so these are
//! *modelled* numbers: published peaks plus an occupancy/overhead model
//! calibrated to reproduce the paper's waterfall. EXPERIMENTS.md marks them
//! as modelled, not measured.

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputRow {
    /// Mode label (paper's row name).
    pub mode: &'static str,
    /// Theoretical peak, TFLOP/s.
    pub peak_tflops: f64,
    /// Practical matrix-multiply throughput at the given size, TFLOP/s.
    pub matmul_tflops: f64,
    /// Full sign-algorithm throughput, TFLOP/s.
    pub sign_tflops: f64,
    /// Power draw, W.
    pub power_w: f64,
}

impl ThroughputRow {
    /// Energy efficiency in GFLOP/(W·s), the paper's auxiliary metric.
    pub fn gflops_per_watt(&self) -> f64 {
        self.sign_tflops * 1000.0 / self.power_w
    }
}

/// Device descriptor with published peaks.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    /// Device name.
    pub name: &'static str,
    /// FP16 tensor-core peak (TFLOP/s).
    pub peak_fp16: f64,
    /// Mixed FP16'/FP32-accumulate peak.
    pub peak_fp16_mixed: f64,
    /// FP32 peak.
    pub peak_fp32: f64,
    /// FP64 peak.
    pub peak_fp64: f64,
    /// Board power (W).
    pub power_w: f64,
    /// Host↔device bandwidth (GB/s) — PCIe 3.0 x16 for the GPU, x8 for
    /// the FPGA board.
    pub pcie_gbps: f64,
}

impl DeviceModel {
    /// Nvidia RTX 2080 Ti (Turing) — paper Sec. VI-A and Table I peaks.
    pub fn rtx_2080_ti() -> Self {
        DeviceModel {
            name: "RTX 2080 Ti",
            peak_fp16: 108.0,
            peak_fp16_mixed: 56.0,
            peak_fp32: 13.0,
            peak_fp64: 0.5,
            power_w: 250.0,
            pcie_gbps: 16.0,
        }
    }

    /// Bittware 520N (Intel Stratix 10 GX 2800) — paper Sec. VI-B: 3.4
    /// TFLOP/s practical FP32 design, PCIe 3.0 x8, ~110 W.
    pub fn stratix_10() -> Self {
        DeviceModel {
            name: "Stratix 10 GX 2800",
            peak_fp16: 0.0,
            peak_fp16_mixed: 0.0,
            peak_fp32: 3.4,
            peak_fp64: 0.0,
            power_w: 110.0,
            pcie_gbps: 8.0,
        }
    }
}

/// Matrix-multiply utilization model: fraction of peak reached at dimension
/// `n`. Tensor-core modes need huge matrices to saturate (heavy tiling),
/// classic FMA pipelines saturate early. The constants reproduce the
/// paper's measured ratios at n = 3972 (0.52 / 0.68 / 0.94 / 1.0).
pub fn matmul_utilization(peak_ratio_vs_fp32: f64, n: usize) -> f64 {
    // Saturation size grows with how "wide" the unit is relative to the
    // scalar pipeline: FP16 tensor cores (ratio ~8) need n≈8k, FP32
    // (ratio 1) saturates by n≈1k.
    let n_half = 440.0 * peak_ratio_vs_fp32.max(0.25);
    let n = n as f64;
    (n / (n + n_half)).min(1.0)
}

/// Relative cost of the sparse-CSR submatrix sign iteration vs the dense
/// path, as a function of the submatrix **element fill** fraction.
///
/// Gustavson-style CSR×CSR touches ≈ `fill²` of the dense n³ products,
/// but its scalar gather/scatter inner loop runs far below GEMM
/// throughput — modeled as a flat per-FLOP penalty. The factor is
/// clamped to `[floor, 1]`: index bookkeeping keeps even a nearly-empty
/// solve from being free, and above the crossover fill the dense kernel
/// wins outright (never report sparse as *more* expensive than dense —
/// the engine would simply not pick it there).
pub fn sparse_solve_cost_factor(fill: f64) -> f64 {
    /// Per-FLOP slowdown of the scalar CSR kernel vs a saturated GEMM.
    const CSR_FLOP_PENALTY: f64 = 8.0;
    /// Index-traversal floor: no sparse solve is cheaper than this
    /// fraction of its dense equivalent.
    const FLOOR: f64 = 0.02;
    let fill = fill.clamp(0.0, 1.0);
    (CSR_FLOP_PENALTY * fill * fill).clamp(FLOOR, 1.0)
}

/// Algorithm overhead model: the sign iteration spends its FLOPs in GEMMs
/// but pays for host↔device transfers of the operand matrix, type
/// conversions and per-iteration convergence tests.
///
/// For `iters` iterations on an n×n matrix: useful FLOPs ≈ 3·iters·2n³
/// (three multiplies per Eq. 19 step); transferred bytes ≈ 2·n²·elem_size
/// (in + out, one-time) plus per-iteration reduction traffic.
pub fn sign_algorithm_fraction(
    matmul_tflops: f64,
    n: usize,
    iters: usize,
    elem_bytes: f64,
    pcie_gbps: f64,
) -> f64 {
    let n = n as f64;
    let gemm_flops = 3.0 * iters as f64 * 2.0 * n * n * n;
    let gemm_time = gemm_flops / (matmul_tflops * 1e12);
    // Host transfers (2 matrices), host-side type conversion (~5 GB/s
    // streaming convert), and per-iteration convergence-test readback of
    // the iterate across PCIe.
    let bytes = 2.0 * n * n * elem_bytes;
    let transfer_time = bytes / (pcie_gbps * 1e9) + bytes / 5e9;
    let conv_time = iters as f64 * n * n * elem_bytes / (pcie_gbps * 1e9);
    gemm_time / (gemm_time + transfer_time + conv_time)
}

/// Generate Table I for a GPU at matrix dimension `n` with `iters` sign
/// iterations (the paper's setting: n = 3972, 6–8 iterations).
pub fn gpu_table(device: &DeviceModel, n: usize, iters: usize) -> Vec<ThroughputRow> {
    let rows = [
        ("FP16", device.peak_fp16, 2.0),
        ("FP16'", device.peak_fp16_mixed, 2.0),
        ("FP32", device.peak_fp32, 4.0),
        ("FP64", device.peak_fp64, 8.0),
    ];
    rows.iter()
        .map(|&(mode, peak, elem_bytes)| {
            let ratio = peak / device.peak_fp32;
            let matmul = peak * matmul_utilization(ratio, n);
            let frac = sign_algorithm_fraction(matmul, n, iters, elem_bytes, device.pcie_gbps);
            ThroughputRow {
                mode,
                peak_tflops: peak,
                matmul_tflops: matmul,
                sign_tflops: matmul * frac,
                power_w: device.power_w,
            }
        })
        .collect()
}

/// The FPGA row (paper Sec. VI-B: matmul 2.7 TFLOP/s, sign 1.75 TFLOP/s at
/// n = 3972 due to PCIe x8 round trips per offloaded multiplication).
pub fn fpga_row(device: &DeviceModel, n: usize) -> ThroughputRow {
    let matmul = device.peak_fp32 * matmul_utilization(1.0, n) * 0.85;
    // Every multiply is individually offloaded: 3 matrices cross PCIe per
    // GEMM (paper Sec. VI-B's "communication drastically decreases the
    // overall performance").
    let n_f = n as f64;
    let gemm_time = 2.0 * n_f.powi(3) / (matmul * 1e12);
    let transfer_time = 3.0 * n_f * n_f * 4.0 / (device.pcie_gbps * 1e9);
    let frac = gemm_time / (gemm_time + transfer_time);
    ThroughputRow {
        mode: "FPGA FP32",
        peak_tflops: device.peak_fp32,
        matmul_tflops: matmul,
        sign_tflops: matmul * frac,
        power_w: device.power_w,
    }
}

/// One fitted phase coefficient: measured seconds per perfmodel cost
/// unit for one engine phase (gather/scatter costs are planned value
/// bytes, solve costs are plan cost units — each phase fits its own
/// coefficient and unit).
///
/// **Report-only.** Fitted coefficients live in
/// `results/CALIB_perfmodel.json` for humans and `smdoctor`; nothing in
/// the scheduler or engine ever reads them back — schedules stay pure
/// functions of the static estimates (ROADMAP invariant 3), which the
/// bitwise equivalence suites pin with calibration artifacts present.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCoeff {
    /// Phase name (`gather` / `solve` / `scatter`).
    pub phase: String,
    /// Least-squares slope through the origin: seconds per cost unit.
    pub seconds_per_unit: f64,
    /// Coefficient of determination of the through-origin fit (1 = the
    /// model explains all variance; ≤ 0 = worse than predicting zero).
    pub r_squared: f64,
    /// Number of `(cost, seconds)` samples fitted.
    pub samples: usize,
    /// Total cost units observed.
    pub total_cost: f64,
    /// Total measured seconds observed.
    pub total_seconds: f64,
}

/// A set of fitted phase coefficients (one calibration report).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationReport {
    /// Per-phase fits, in input order (callers pass phases sorted).
    pub phases: Vec<PhaseCoeff>,
}

impl CalibrationReport {
    /// The fit for `phase`, if present.
    pub fn phase(&self, phase: &str) -> Option<&PhaseCoeff> {
        self.phases.iter().find(|p| p.phase == phase)
    }
}

/// Least-squares fit of `seconds ≈ k · cost` through the origin over
/// `(cost, seconds)` samples of one phase: `k = Σ(cost·s) / Σ(cost²)`,
/// with R² measured against the mean-seconds baseline. Returns `None`
/// when the samples carry no usable signal (empty, or all costs zero).
pub fn fit_seconds_per_unit(phase: &str, samples: &[(f64, f64)]) -> Option<PhaseCoeff> {
    let mut sum_cs = 0.0;
    let mut sum_cc = 0.0;
    let mut sum_s = 0.0;
    let mut sum_c = 0.0;
    for &(cost, secs) in samples {
        sum_cs += cost * secs;
        sum_cc += cost * cost;
        sum_s += secs;
        sum_c += cost;
    }
    if samples.is_empty() || sum_cc <= 0.0 {
        return None;
    }
    let k = sum_cs / sum_cc;
    let mean_s = sum_s / samples.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for &(cost, secs) in samples {
        ss_res += (secs - k * cost).powi(2);
        ss_tot += (secs - mean_s).powi(2);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res == 0.0 {
        1.0
    } else {
        0.0
    };
    Some(PhaseCoeff {
        phase: phase.to_string(),
        seconds_per_unit: k,
        r_squared,
        samples: samples.len(),
        total_cost: sum_c,
        total_seconds: sum_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_factor_is_monotone_clamped_and_beats_dense_at_low_fill() {
        // Monotone in fill, never above 1 (dense parity) and never below
        // the index-traversal floor.
        let mut prev = 0.0;
        for i in 0..=20 {
            let f = sparse_solve_cost_factor(i as f64 / 20.0);
            assert!((0.02..=1.0).contains(&f), "factor {f} out of range");
            assert!(f >= prev, "factor must be monotone in fill");
            prev = f;
        }
        // At the engine's 0.2 auto-selection threshold the sparse path
        // must already look cheaper than dense, else the policy and the
        // cost model would disagree about when sparse pays off.
        assert!(sparse_solve_cost_factor(0.2) < 1.0);
        // Dense-ish fills saturate at parity; out-of-range inputs clamp.
        assert_eq!(sparse_solve_cost_factor(1.0), 1.0);
        assert_eq!(sparse_solve_cost_factor(7.0), 1.0);
        assert_eq!(sparse_solve_cost_factor(-1.0), 0.02);
    }

    #[test]
    fn table_reproduces_paper_ordering_and_magnitudes() {
        let rows = gpu_table(&DeviceModel::rtx_2080_ti(), 3972, 7);
        assert_eq!(rows.len(), 4);
        // Peaks are the published ones.
        assert_eq!(rows[0].peak_tflops, 108.0);
        assert_eq!(rows[3].peak_tflops, 0.5);
        // Waterfall: peak > matmul > sign for every row.
        for r in &rows {
            assert!(r.peak_tflops >= r.matmul_tflops);
            assert!(r.matmul_tflops >= r.sign_tflops);
            assert!(r.sign_tflops > 0.0);
        }
        // Ordering FP16 > FP16' > FP32 > FP64 at every level.
        for w in rows.windows(2) {
            assert!(w[0].matmul_tflops > w[1].matmul_tflops);
            assert!(w[0].sign_tflops > w[1].sign_tflops);
        }
        // Paper's measured anchors: FP16 matmul ≈ 56 TFLOP/s (we accept
        // 40–75), FP16 sign ≈ 35 (25–50), FP32 matmul ≈ 12 (9–13).
        assert!(
            (40.0..=75.0).contains(&rows[0].matmul_tflops),
            "FP16 matmul {}",
            rows[0].matmul_tflops
        );
        assert!(
            (20.0..=55.0).contains(&rows[0].sign_tflops),
            "FP16 sign {}",
            rows[0].sign_tflops
        );
        assert!(
            (9.0..=13.0).contains(&rows[2].matmul_tflops),
            "FP32 matmul {}",
            rows[2].matmul_tflops
        );
    }

    #[test]
    fn fp64_is_bandwidth_insensitive() {
        // FP64 is so slow that transfers barely matter: sign ≈ matmul.
        let rows = gpu_table(&DeviceModel::rtx_2080_ti(), 3972, 7);
        let fp64 = &rows[3];
        assert!(fp64.sign_tflops > 0.9 * fp64.matmul_tflops);
        assert!((fp64.matmul_tflops - 0.5).abs() < 0.15);
    }

    #[test]
    fn fpga_row_matches_paper_shape() {
        let r = fpga_row(&DeviceModel::stratix_10(), 3972);
        // Paper: 2.7 matmul, 1.75 sign.
        assert!(
            (2.2..=3.2).contains(&r.matmul_tflops),
            "matmul {}",
            r.matmul_tflops
        );
        assert!(
            (1.2..=2.3).contains(&r.sign_tflops),
            "sign {}",
            r.sign_tflops
        );
        assert!(r.sign_tflops < r.matmul_tflops);
    }

    #[test]
    fn utilization_grows_with_matrix_size() {
        let small = matmul_utilization(8.0, 256);
        let large = matmul_utilization(8.0, 16384);
        assert!(small < large);
        assert!(large <= 1.0);
        // FP32 saturates much earlier than tensor-core FP16.
        assert!(matmul_utilization(1.0, 3972) > matmul_utilization(8.0, 3972));
    }

    #[test]
    fn efficiency_metric() {
        let r = ThroughputRow {
            mode: "FP16",
            peak_tflops: 108.0,
            matmul_tflops: 56.0,
            sign_tflops: 35.0,
            power_w: 250.0,
        };
        // 35 TFLOP/s at 250 W = 140 GFLOP/(Ws) — the paper's number.
        assert!((r.gflops_per_watt() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn larger_matrices_amortize_transfers() {
        let d = DeviceModel::rtx_2080_ti();
        let f_small = sign_algorithm_fraction(50.0, 512, 7, 2.0, d.pcie_gbps);
        let f_large = sign_algorithm_fraction(50.0, 8192, 7, 2.0, d.pcie_gbps);
        assert!(f_large > f_small);
    }

    #[test]
    fn fit_recovers_exact_linear_coefficient() {
        let samples: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64 * 100.0, i as f64 * 0.003))
            .collect();
        let fit = fit_seconds_per_unit("solve", &samples).unwrap();
        assert!((fit.seconds_per_unit - 3e-5).abs() < 1e-15);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.samples, 10);
        assert!((fit.total_cost - 5500.0).abs() < 1e-9);
    }

    #[test]
    fn fit_reports_poor_r_squared_on_noise() {
        // Seconds uncorrelated with cost: the slope still minimizes the
        // residual but R² must be far below 1.
        let samples = [
            (100.0, 0.5),
            (200.0, 0.1),
            (300.0, 0.9),
            (400.0, 0.05),
            (500.0, 0.6),
        ];
        let fit = fit_seconds_per_unit("gather", &samples).unwrap();
        assert!(fit.r_squared < 0.5, "r² = {}", fit.r_squared);
    }

    #[test]
    fn fit_rejects_degenerate_samples() {
        assert!(fit_seconds_per_unit("solve", &[]).is_none());
        assert!(fit_seconds_per_unit("solve", &[(0.0, 1.0), (0.0, 2.0)]).is_none());
        let report = CalibrationReport {
            phases: vec![fit_seconds_per_unit("solve", &[(10.0, 0.1)]).unwrap()],
        };
        assert!(report.phase("solve").is_some());
        assert!(report.phase("gather").is_none());
    }
}
