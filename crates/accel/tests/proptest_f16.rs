//! Property-based tests of the binary16 emulation: the correctness of every
//! reduced-precision result in Figs. 12–13 rests on these rounding
//! semantics.

use proptest::prelude::*;

use sm_accel::F16;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_is_idempotent(x in -1e5f32..1e5) {
        let once = F16::from_f32(x).to_f32();
        let twice = F16::from_f32(once).to_f32();
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn rounding_error_bounded(x in 6.2e-5f32..6.0e4) {
        // Normal binary16 range: relative error ≤ 2^-11.
        let r = F16::from_f32(x).to_f32();
        prop_assert!(((r - x) / x).abs() <= 2.0f32.powi(-11));
    }

    #[test]
    fn rounding_is_monotone(a in -6.0e4f32..6.0e4, b in -6.0e4f32..6.0e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    #[test]
    fn sign_symmetry(x in -6.0e4f32..6.0e4) {
        let pos = F16::from_f32(x).to_f32();
        let neg = F16::from_f32(-x).to_f32();
        prop_assert_eq!(pos, -neg);
    }

    #[test]
    fn rounded_value_is_nearest(x in 1e-3f32..6.0e4) {
        // The rounded value must be at least as close to x as its binary16
        // neighbors.
        let h = F16::from_f32(x);
        let r = h.to_f32();
        let up = F16(h.0 + 1).to_f32();
        let down = F16(h.0.wrapping_sub(1)).to_f32();
        let err = (r - x).abs();
        if up.is_finite() {
            prop_assert!(err <= (up - x).abs() + f32::EPSILON);
        }
        if down.is_finite() && h.0 & 0x7FFF != 0 {
            prop_assert!(err <= (down - x).abs() + f32::EPSILON);
        }
    }

    #[test]
    fn f64_path_matches_f32_path(x in -6.0e4f64..6.0e4) {
        let via_f64 = F16::round_f64(x);
        let via_f32 = F16::from_f32(x as f32).to_f32() as f64;
        prop_assert_eq!(via_f64, via_f32);
    }
}
