//! Criterion micro-benchmarks of the hot kernels: dense GEMM, symmetric
//! eigendecomposition, submatrix assembly, Cannon block-sparse multiply,
//! and the per-submatrix sign solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sm_chem::builder::{block_pattern, build_system};
use sm_chem::{BasisSet, WaterBox};
use sm_comsim::SerialComm;
use sm_core::assembly::{assemble, SubmatrixSpec};
use sm_core::solver::{solve_sign, SignMethod, SolveOptions};
use sm_dbcsr::multiply::multiply;
use sm_dbcsr::DbcsrMatrix;
use sm_linalg::gemm::matmul;
use sm_linalg::Matrix;

fn sym(n: usize) -> Matrix {
    let mut a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            if i % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        } else {
            0.1 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    a.symmetrize();
    a
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let a = sym(n);
        let b = sym(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b).expect("shapes"))
        });
    }
    g.finish();
}

fn bench_eigh(c: &mut Criterion) {
    let mut g = c.benchmark_group("eigh");
    g.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = sym(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| sm_linalg::eigh::eigh(&a).expect("symmetric"))
        });
    }
    g.finish();
}

fn bench_sign_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sign_solvers");
    g.sample_size(10);
    let a = sym(96);
    for (name, method) in [
        ("diag", SignMethod::Diagonalization),
        ("newton_schulz", SignMethod::NewtonSchulz),
        ("pade3", SignMethod::Pade(3)),
    ] {
        let opts = SolveOptions {
            method,
            ..SolveOptions::default()
        };
        g.bench_function(name, |bench| {
            bench.iter(|| solve_sign(&a, 0.0, &opts).expect("solve"))
        });
    }
    g.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let water = WaterBox::cubic(2, 42);
    let basis = BasisSet::szv().with_range_scale(0.55);
    let sys = build_system(&water, &basis, 0, 1, 1e-8);
    let comm = SerialComm::new();
    let pattern = sys.k.global_pattern(&comm);
    let dims = sys.dims.clone();
    let mid = water.n_molecules() / 2;
    let spec = SubmatrixSpec::build(&pattern, &dims, &[mid]);
    c.bench_function("submatrix_assembly", |bench| {
        bench.iter(|| assemble(&spec, &pattern, &dims, |r, cc| sys.k.block(r, cc)))
    });
}

fn bench_cannon_multiply(c: &mut Criterion) {
    let water = WaterBox::cubic(1, 42);
    let basis = BasisSet::szv();
    let pattern_eps = 1e-6;
    let sys = build_system(&water, &basis, 0, 1, pattern_eps);
    let comm = SerialComm::new();
    let k: DbcsrMatrix = sys.k.clone();
    let mut g = c.benchmark_group("dbcsr_multiply");
    g.sample_size(10);
    g.bench_function("serial_32mol", |bench| {
        bench.iter(|| multiply(&k, &k, &comm, Some(1e-8)).unwrap())
    });
    g.finish();
}

fn bench_pattern_build(c: &mut Criterion) {
    let water = WaterBox::cubic(3, 42);
    let basis = BasisSet::szv();
    c.bench_function("block_pattern_864mol", |bench| {
        bench.iter(|| block_pattern(&water, &basis, 1e-5, 1.0))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_eigh,
    bench_sign_solvers,
    bench_assembly,
    bench_cannon_multiply,
    bench_pattern_build
);
criterion_main!(benches);
