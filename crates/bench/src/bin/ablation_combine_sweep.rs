//! Ablation (paper Sec. IV-C): sweep of the consecutive-combination group
//! size — does the Eq. 15 cost model predict the measured solve time?
//!
//! For each group size: estimated speedup S (model) and measured wall time
//! of the full submatrix-method density computation. Expected: measured
//! speedups track S qualitatively, peaking at moderate group sizes.

use std::time::Instant;

use sm_bench::output::{fixed, print_table, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::method::Grouping;
use sm_core::plan::estimated_speedup;
use sm_core::{submatrix_density, SubmatrixOptions, SubmatrixPlan};

fn main() {
    let comm = SerialComm::new();
    let water = WaterBox::cubic(2, SEED);
    let basis = accuracy_basis();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    let mut kt_f = kt.clone();
    kt_f.store_mut().filter(1e-6);
    let pattern = kt_f.global_pattern(&comm);
    let dims = kt_f.dims().clone();
    let singles = SubmatrixPlan::one_per_column(&pattern, &dims);

    // Baseline wall time (group size 1).
    let t0 = Instant::now();
    let _ = submatrix_density(&kt_f, sys.mu, &SubmatrixOptions::default(), &comm);
    let t_single = t0.elapsed().as_secs_f64();
    println!(
        "single-column baseline: {} submatrices, {t_single:.3}s wall",
        singles.len()
    );

    let mut rows = vec![vec![
        "1".to_string(),
        singles.len().to_string(),
        fixed(1.0, 3),
        fixed(t_single, 3),
        fixed(1.0, 3),
    ]];
    for group in [2usize, 4, 8, 16, 32] {
        let plan = SubmatrixPlan::consecutive(&pattern, &dims, group);
        let s_est = estimated_speedup(&singles, &plan);
        let opts = SubmatrixOptions {
            grouping: Grouping::Consecutive(group),
            ..Default::default()
        };
        let t0 = Instant::now();
        let _ = submatrix_density(&kt_f, sys.mu, &opts, &comm);
        let t = t0.elapsed().as_secs_f64();
        rows.push(vec![
            group.to_string(),
            plan.len().to_string(),
            fixed(s_est, 3),
            fixed(t, 3),
            fixed(t_single / t, 3),
        ]);
        eprintln!(
            "group {group}: {} SMs, S_est {s_est:.3}, wall {t:.3}s (measured speedup {:.3})",
            plan.len(),
            t_single / t
        );
    }

    println!("\nAblation — column-combination sweep");
    let header = [
        "group_size",
        "n_submatrices",
        "estimated_S",
        "wall_s",
        "measured_speedup",
    ];
    print_table(&header, &rows);
    write_csv("ablation_combine_sweep.csv", &header, &rows);
}
