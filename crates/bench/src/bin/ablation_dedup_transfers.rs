//! Ablation (paper Sec. IV-B1): deduplicated block transfers vs the naive
//! per-submatrix exchange.
//!
//! Neighbouring block columns share most of their blocks, so a rank
//! processing a consecutive chunk of submatrices would transfer the same
//! block many times without deduplication. Reports unique vs naive bytes
//! per rank count.

use sm_bench::output::{fixed, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_core::loadbalance::greedy_contiguous;
use sm_core::transfers::{RankTransferPlan, TransferStats};
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn main() {
    let water = WaterBox::cubic(3, SEED);
    let basis = pattern_basis_szv();
    let pattern = block_pattern(&water, &basis, 1e-5, 1.0);
    let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
    let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
    let costs: Vec<f64> = plan.specs.iter().map(|s| s.cost()).collect();
    println!(
        "{} molecules, {} submatrices, {} nonzero blocks",
        water.n_molecules(),
        plan.len(),
        pattern.nnz()
    );

    let mut rows = Vec::new();
    for n_ranks in [4usize, 16, 64, 256] {
        let assignment = greedy_contiguous(&costs, n_ranks);
        let mut stats = TransferStats::default();
        for range in &assignment.ranges {
            if range.is_empty() {
                continue;
            }
            let specs: Vec<&sm_core::assembly::SubmatrixSpec> =
                plan.specs[range.clone()].iter().collect();
            let tp = RankTransferPlan::for_specs(&specs, &pattern);
            stats.add_rank(&tp, &dims);
        }
        let saving = 1.0 - stats.unique_bytes as f64 / stats.naive_bytes.max(1) as f64;
        rows.push(vec![
            n_ranks.to_string(),
            (stats.unique_bytes / 1024).to_string(),
            (stats.naive_bytes / 1024).to_string(),
            fixed(stats.dedup_factor(), 2),
            fixed(saving * 100.0, 1),
        ]);
        eprintln!(
            "{n_ranks} ranks: unique {} KiB vs naive {} KiB — {:.2}x dedup, {:.1}% saved",
            stats.unique_bytes / 1024,
            stats.naive_bytes / 1024,
            stats.dedup_factor(),
            saving * 100.0
        );
    }

    println!("\nAblation — transfer deduplication");
    let header = [
        "ranks",
        "unique_kib",
        "naive_kib",
        "dedup_factor",
        "saved_pct",
    ];
    print_table(&header, &rows);
    write_csv("ablation_dedup_transfers.csv", &header, &rows);
}
