//! Ablation (paper Sec. V-C future work): dense vs element-wise sparse
//! submatrix sign evaluation.
//!
//! DZVP submatrices store ~50% of their window as blocks but hold < 20%
//! nonzero *elements*; the paper proposes element-wise sparse kernels to
//! exploit the difference. This harness assembles real submatrices from
//! both basis sets and compares the dense Newton–Schulz flop count against
//! the filtered CSR iteration's actual flops (plus wall times and the
//! accuracy cost).

use std::time::Instant;

use sm_bench::output::{fixed, print_table, sci, write_csv};
use sm_bench::workloads::SEED;
use sm_chem::builder::build_system;
use sm_chem::{BasisSet, WaterBox};
use sm_comsim::SerialComm;
use sm_core::assembly::{assemble, SubmatrixSpec};
use sm_linalg::sign::{sign_iteration, SignIterationOptions};
use sm_linalg::sparse::sparse_sign_iteration;

fn main() {
    let comm = SerialComm::new();
    let mut rows = Vec::new();
    for (label, basis) in [
        ("SZV", BasisSet::szv().with_range_scale(0.55)),
        ("DZVP", BasisSet::dzvp().with_range_scale(0.45)),
    ] {
        let water = WaterBox::cubic(2, SEED);
        let sys = build_system(&water, &basis, 0, 1, 1e-8);
        let pattern = sys.k.global_pattern(&comm);
        let dims = sys.dims.clone();
        let mid = water.n_molecules() / 2;
        let spec = SubmatrixSpec::build(&pattern, &dims, &[mid]);
        // Use K directly (symmetric, gapped at µ) — the orthogonalized
        // matrix has the same element-fill structure.
        let a = assemble(&spec, &pattern, &dims, |r, c| sys.k.block(r, c));
        let n = spec.dim as u64;

        // Dense iteration (counted flops: ~2n³ per multiply, 2/iter + P).
        let t0 = Instant::now();
        let dense = sign_iteration(
            &a,
            2,
            SignIterationOptions {
                tol: 1e-8,
                max_iter: 100,
                prescale: true,
            },
        )
        .expect("dense iteration");
        let t_dense = t0.elapsed().as_secs_f64();
        let dense_flops = dense.trace.len() as u64 * 3 * 2 * n * n * n;

        // Element-sparse iteration.
        let t0 = Instant::now();
        let sparse =
            sparse_sign_iteration(&a, sys.mu * 0.0, 2, 1e-8, 1e-6, 100).expect("sparse iteration");
        let t_sparse = t0.elapsed().as_secs_f64();

        let err = sparse.sign.max_abs_diff(&dense.sign);
        rows.push(vec![
            label.to_string(),
            spec.dim.to_string(),
            sci(dense_flops as f64),
            sci(sparse.flops as f64),
            fixed(dense_flops as f64 / sparse.flops.max(1) as f64, 2),
            fixed(t_dense, 3),
            fixed(t_sparse, 3),
            fixed(sparse.final_fill, 3),
            sci(err),
        ]);
        eprintln!(
            "{label}: dim {}, dense {:.2e} flops vs sparse {:.2e} \
             ({:.2}x fewer), final fill {:.3}, max diff {err:.2e}",
            spec.dim,
            dense_flops as f64,
            sparse.flops as f64,
            dense_flops as f64 / sparse.flops.max(1) as f64,
            sparse.final_fill
        );
    }

    println!("\nAblation — dense vs element-wise sparse submatrix solve (Sec. V-C)");
    let header = [
        "basis",
        "dim",
        "dense_flops",
        "sparse_flops",
        "flop_saving",
        "dense_s",
        "sparse_s",
        "final_fill",
        "max_diff",
    ];
    print_table(&header, &rows);
    write_csv("ablation_element_sparse.csv", &header, &rows);
}
