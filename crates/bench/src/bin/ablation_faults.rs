//! Ablation: deterministic fault injection and epoch-level recovery.
//!
//! A mixed straggler batch runs through the `Scheduler` under scripted
//! `FaultPlan`s — a deterministic rank-death/quarantine scenario plus a
//! seeded chaos sweep (3 seeds × worlds {2, 4, 6}, the CI matrix). The
//! binary asserts the recovery PR's acceptance contract in-place: every
//! **non-quarantined** job stays bitwise-identical to the fault-free
//! serial `JobQueue` under any admitted plan, an epoch-boundary rank
//! failure strictly shrinks the surviving world (and never hangs — the
//! runs are wall-clock bounded by the comm layer's deadline receives),
//! and rerunning a seed reproduces the retry/quarantine counters field
//! for field. It then reports the fault telemetry — rank failures,
//! poisoned attempts, retries, quarantines, recovery epochs, surviving
//! world and recovered-rank utilization — and writes
//! `results/BENCH_faults.json`.
//!
//! Wall-clock columns are host-dependent as always; the counters and the
//! utilization are exact functions of (seed, world, batch) and are what
//! the bench gate keys on.

use std::time::Instant;

use sm_bench::output::{bench_table, fixed, print_table, sci, write_bench_json, write_csv, Json};
use sm_comsim::{FaultPlan, SerialComm};
use sm_core::engine::EngineOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    JobQueue, JobResult, MatrixJob, RankBudget, RecoverySchedule, Scheduler, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// One large job + 12 smalls: enough spread that the recovery planner
/// exercises multi-epoch schedules at every world size in the sweep.
fn fault_batch() -> Vec<MatrixJob> {
    let mut jobs = vec![MatrixJob::density("large", banded(10, 2, 1), 0.0)];
    for i in 0..12u64 {
        jobs.push(MatrixJob::density(
            format!("small-{i}"),
            banded(4, 2, i),
            0.0,
        ));
    }
    jobs
}

fn fresh_engine() -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

/// Every non-quarantined job bitwise-identical to its serial twin.
fn recovered_bitwise(a: &[JobResult], serial: &[JobResult]) -> bool {
    let comm = SerialComm::new();
    a.len() == serial.len()
        && a.iter().zip(serial).all(|(x, y)| {
            x.quarantined
                || x.result
                    .to_dense(&comm)
                    .allclose(&y.result.to_dense(&comm), 0.0)
        })
}

/// Recovered-rank utilization: the fraction of (survivor × epoch) slots
/// that executed at least one non-poisoned attempt — a pure function of
/// the recovery schedule, measuring how well the re-split keeps the
/// shrunken world busy (wait epochs and idle leftover ranks count
/// against it).
fn survivor_utilization(rec: &RecoverySchedule) -> f64 {
    let (mut busy, mut slots) = (0usize, 0usize);
    for ep in &rec.epochs {
        slots += ep.survivors.len();
        busy += ep
            .groups
            .iter()
            .filter(|g| g.jobs.iter().any(|a| !a.poisoned))
            .map(|g| g.ranks.len())
            .sum::<usize>();
    }
    if slots == 0 {
        1.0
    } else {
        busy as f64 / slots as f64
    }
}

fn main() {
    let jobs = fault_batch();
    let n_jobs = jobs.len();
    println!(
        "fault batch: {n_jobs} jobs (1 large + {} small)",
        n_jobs - 1
    );

    let serial = JobQueue::new(fresh_engine()).run(jobs.clone());

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let header = [
        "world",
        "scenario",
        "rank_failures",
        "poisoned",
        "retries",
        "quarantined",
        "recovery_epochs",
        "final_world",
        "survivor_util",
        "total_s",
    ];

    // Scenario 1 (deterministic): a rank death at the epoch-1 boundary
    // plus a job poisoned past its budget — the full recovery contract
    // in one run.
    let det_plan = FaultPlan::new()
        .fail_rank(3, 1)
        .poison_job(2, 1)
        .poison_job(2, 2)
        .poison_job(2, 3);
    let scenarios: Vec<(usize, String, FaultPlan)> =
        std::iter::once((4usize, "det-death+quarantine".to_string(), det_plan))
            .chain([1u64, 2, 3].into_iter().flat_map(|seed| {
                [2usize, 4, 6].into_iter().map(move |world| {
                    (
                        world,
                        format!("chaos-seed-{seed}"),
                        FaultPlan::random(seed, world, 13),
                    )
                })
            }))
            .collect();

    for (world, scenario, plan) in scenarios {
        let run = || {
            let sched =
                Scheduler::new(fresh_engine(), RankBudget::default()).with_fault_plan(plan.clone());
            let t = Instant::now();
            let outcome = sched.run(world, jobs.clone());
            (outcome, t.elapsed().as_secs_f64())
        };
        let (outcome, seconds) = run();
        let f = outcome.fault_stats;
        let rec = outcome
            .recovery
            .as_ref()
            .expect("fault path plans recovery");

        // The acceptance contract, asserted in-binary.
        assert!(
            recovered_bitwise(&outcome.results, &serial),
            "world {world} {scenario}: non-quarantined results deviate from the serial queue"
        );
        assert_eq!(
            f.final_world_size,
            world - f.rank_failures,
            "world {world} {scenario}: survivor count off"
        );
        for ep in &rec.epochs {
            assert!(
                ep.survivors.len() + ep.newly_failed.len() <= world,
                "resurrected rank in {scenario}"
            );
        }
        // Counters are exactly reproducible per plan.
        let (again, _) = run();
        assert_eq!(
            f, again.fault_stats,
            "world {world} {scenario}: counters not reproducible"
        );

        if scenario == "det-death+quarantine" {
            assert_eq!(f.rank_failures, 1);
            assert_eq!(f.quarantined_jobs, 1);
            assert!(outcome.results[2].quarantined);
        }

        let util = survivor_utilization(rec);
        eprintln!(
            "world {world} {scenario}: {} failures, {} poisoned, {} retries, \
             {} quarantined, {} epochs, util {util:.3}, {seconds:.4} s",
            f.rank_failures, f.poisoned_attempts, f.retries, f.quarantined_jobs, f.recovery_epochs,
        );
        rows.push(vec![
            world.to_string(),
            scenario.clone(),
            f.rank_failures.to_string(),
            f.poisoned_attempts.to_string(),
            f.retries.to_string(),
            f.quarantined_jobs.to_string(),
            f.recovery_epochs.to_string(),
            f.final_world_size.to_string(),
            fixed(util, 3),
            sci(seconds),
        ]);
        series.push(Json::obj([
            ("world", Json::Num(world as f64)),
            ("scenario", Json::Str(scenario)),
            ("rank_failures", Json::Num(f.rank_failures as f64)),
            ("poisoned_attempts", Json::Num(f.poisoned_attempts as f64)),
            ("retries", Json::Num(f.retries as f64)),
            ("quarantined_jobs", Json::Num(f.quarantined_jobs as f64)),
            ("recovery_epochs", Json::Num(f.recovery_epochs as f64)),
            ("final_world_size", Json::Num(f.final_world_size as f64)),
            ("slow_stalls", Json::Num(f.slow_stalls as f64)),
            ("survivor_utilization", Json::Num(util)),
            ("total_s", Json::Num(seconds)),
        ]));
    }

    println!("\nAblation — deterministic fault injection and epoch-level recovery");
    print_table(&header, &rows);
    write_csv("ablation_faults.csv", &header, &rows);
    // The acceptance artifact: the fault sweep under its stable name.
    write_bench_json(
        "faults",
        Json::obj([
            (
                "workload",
                Json::Str("fault batch: 1 large + 12 small".into()),
            ),
            ("jobs", Json::Num(n_jobs as f64)),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
