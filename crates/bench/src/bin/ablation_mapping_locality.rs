//! Ablation (paper Sec. IV-B2): contiguous submatrix→rank mapping vs
//! round-robin.
//!
//! Consecutive submatrices share blocks (banded structure from consecutive
//! building-block indexing), so a contiguous chunk per rank minimizes the
//! per-rank buffered data. Round-robin destroys that locality: every rank
//! needs blocks from everywhere.

use sm_bench::output::{fixed, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_core::loadbalance::{greedy_contiguous, round_robin};
use sm_core::transfers::RankTransferPlan;
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn main() {
    let water = WaterBox::cubic(3, SEED);
    let basis = pattern_basis_szv();
    let pattern = block_pattern(&water, &basis, 1e-5, 1.0);
    let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
    let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
    let costs: Vec<f64> = plan.specs.iter().map(|s| s.cost()).collect();

    let mut rows = Vec::new();
    for n_ranks in [4usize, 16, 64] {
        // Contiguous chunks.
        let assignment = greedy_contiguous(&costs, n_ranks);
        let mut contiguous_bytes = 0u64;
        for range in &assignment.ranges {
            let specs: Vec<&sm_core::assembly::SubmatrixSpec> =
                plan.specs[range.clone()].iter().collect();
            contiguous_bytes += RankTransferPlan::for_specs(&specs, &pattern).unique_bytes(&dims);
        }
        // Round-robin.
        let rr = round_robin(plan.len(), n_ranks);
        let mut rr_bytes = 0u64;
        for indices in &rr {
            let specs: Vec<&sm_core::assembly::SubmatrixSpec> =
                indices.iter().map(|&i| &plan.specs[i]).collect();
            rr_bytes += RankTransferPlan::for_specs(&specs, &pattern).unique_bytes(&dims);
        }
        let ratio = rr_bytes as f64 / contiguous_bytes.max(1) as f64;
        rows.push(vec![
            n_ranks.to_string(),
            (contiguous_bytes / 1024).to_string(),
            (rr_bytes / 1024).to_string(),
            fixed(ratio, 2),
        ]);
        eprintln!(
            "{n_ranks} ranks: contiguous {} KiB vs round-robin {} KiB ({ratio:.2}x worse)",
            contiguous_bytes / 1024,
            rr_bytes / 1024
        );
    }

    println!("\nAblation — mapping locality (buffered bytes per scheme)");
    let header = [
        "ranks",
        "contiguous_kib",
        "round_robin_kib",
        "rr_over_contig",
    ];
    print_table(&header, &rows);
    write_csv("ablation_mapping_locality.csv", &header, &rows);
}
