//! Ablation (paper Algorithm 1): canonical µ adjustment on stored
//! eigendecompositions vs naive re-solving per bisection step.
//!
//! Expected result: the stored-decomposition path costs one decomposition
//! plus ~40 cheap occupancy evaluations; the naive path re-solves every
//! submatrix at every bisection step — slower by roughly the bisection
//! count.

use std::time::Instant;

use sm_bench::output::{fixed, print_table, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::energy::electron_count;
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::method::Ensemble;
use sm_core::{submatrix_density, SubmatrixOptions};

fn main() {
    let comm = SerialComm::new();
    let water = WaterBox::cubic(2, SEED);
    let basis = accuracy_basis();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    let mut kt_f = kt.clone();
    kt_f.store_mut().filter(1e-6);
    let target = 8.0 * water.n_molecules() as f64;

    // Algorithm 1: one decomposition pass + bisection on stored Q rows.
    let t0 = Instant::now();
    let opts = SubmatrixOptions {
        ensemble: Ensemble::Canonical {
            n_electrons: target,
            tol: 1e-8,
            max_iter: 100,
        },
        ..Default::default()
    };
    let (d, report) = submatrix_density(&kt_f, sys.mu, &opts, &comm);
    let t_alg1 = t0.elapsed().as_secs_f64();
    let n_alg1 = electron_count(&d, &comm);

    // Naive: grand-canonical full solve per bisection step.
    let t0 = Instant::now();
    let mut lo = sys.mu - 1.0;
    let mut hi = sys.mu + 1.0;
    let mut steps = 0usize;
    let mut mu = sys.mu;
    let mut n_naive = 0.0;
    for _ in 0..report.bisect_iterations.max(8) {
        mu = 0.5 * (lo + hi);
        let (d, _) = submatrix_density(&kt_f, mu, &SubmatrixOptions::default(), &comm);
        n_naive = electron_count(&d, &comm);
        if n_naive > target {
            hi = mu;
        } else {
            lo = mu;
        }
        steps += 1;
        if (n_naive - target).abs() < 1e-8 {
            break;
        }
    }
    let t_naive = t0.elapsed().as_secs_f64();

    let rows = vec![
        vec![
            "algorithm-1".to_string(),
            fixed(t_alg1, 3),
            report.bisect_iterations.to_string(),
            format!("{n_alg1:.6}"),
            format!("{:.6}", report.mu),
        ],
        vec![
            "naive-recompute".to_string(),
            fixed(t_naive, 3),
            steps.to_string(),
            format!("{n_naive:.6}"),
            format!("{mu:.6}"),
        ],
    ];
    println!("Ablation — canonical mu adjustment (target {target} electrons)");
    let header = ["scheme", "wall_s", "bisect_steps", "electrons", "mu"];
    print_table(&header, &rows);
    write_csv("ablation_mu_bisection.csv", &header, &rows);
    println!(
        "\nAlgorithm 1 speedup over naive: {:.1}x",
        t_naive / t_alg1.max(1e-9)
    );
}
