//! Ablation: amortized speedup of cached-plan execution vs replanning.
//!
//! The SCF/MD workload (paper Sec. IV) evaluates the same sparsity pattern
//! every iteration with changing values. The one-shot driver repeats the
//! whole symbolic phase (pattern, grouping, load balance, transfer plan,
//! index maps) each time; the `SubmatrixEngine` pays it once and replays
//! numerically. This bench runs both over 1/4/16/64 simulated SCF
//! iterations and reports amortized per-iteration times, emitting the
//! standard CSV and JSON outputs.
//!
//! The Kohn–Sham matrix is filtered aggressively so the per-submatrix
//! solves stay small: this isolates the symbolic-vs-numeric overhead the
//! ablation is about (with laptop-sized dense solves the numeric phase
//! would drown the signal in measurement noise). Each series is run three
//! times and the fastest run is kept, the usual guard against scheduler
//! jitter on shared machines.

use std::time::Instant;

use sm_bench::output::{fixed, paper_scale, print_table, sci, write_csv, write_json, Json};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::engine::NumericOptions;
use sm_core::method::{submatrix_density, SubmatrixOptions};
use sm_dbcsr::{ops, DbcsrMatrix};
use sm_pipeline::SubmatrixEngine;

/// Per-iteration value perturbation with a fixed pattern: a small diagonal
/// shift, the shape of an SCF potential update.
fn perturbed(kt: &DbcsrMatrix, it: usize) -> DbcsrMatrix {
    let mut m = kt.clone();
    ops::shift_diag(&mut m, 1e-4 * it as f64);
    m
}

/// Repetitions per series; the fastest is kept (the usual guard against
/// scheduler jitter on shared machines).
const REPS: usize = 5;

/// Time one run of `f`, returning (seconds, checksum).
fn timed(f: &mut impl FnMut() -> f64) -> (f64, f64) {
    let t = Instant::now();
    let checksum = f();
    (t.elapsed().as_secs_f64(), checksum)
}

fn main() {
    let nrep = if paper_scale() { 3 } else { 2 };
    let eps_filter = 3e-2;
    let water = WaterBox::cubic(nrep, SEED);
    let basis = accuracy_basis();
    let comm = SerialComm::new();
    let (sys, mut kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-9);
    kt.store_mut().filter(eps_filter);
    println!(
        "{} molecules, n = {}, {} nonzero blocks after filtering at {eps_filter:.0e}",
        water.n_molecules(),
        kt.n(),
        kt.local_nnz_blocks()
    );

    let opts = SubmatrixOptions::default();
    let numeric = NumericOptions::default();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for iters in [1usize, 4, 16, 64] {
        // One-shot driver: full symbolic replanning every iteration.
        let mut replan_series = || {
            let mut checksum = 0.0;
            for it in 0..iters {
                let m = perturbed(&kt, it);
                let (d, _) = submatrix_density(&m, sys.mu, &opts, &comm);
                checksum += ops::trace(&d, &comm);
            }
            checksum
        };

        // Engine: symbolic phase once, numeric replay per iteration.
        let engine = SubmatrixEngine::default();
        let mut cached_series = || {
            let plan = engine.plan_for_matrix(&kt, &comm);
            let mut checksum = 0.0;
            for it in 0..iters {
                let m = perturbed(&kt, it);
                let (mut d, _) = engine.execute(&plan, &m, sys.mu, &numeric, &comm);
                ops::scale(&mut d, -0.5);
                ops::shift_diag(&mut d, 0.5);
                checksum += ops::trace(&d, &comm);
            }
            checksum
        };

        // Warm both paths once, then interleave the timed repetitions so
        // slow drift in machine load hits both paths evenly.
        let replan_checksum = replan_series();
        let cached_checksum = cached_series();
        let mut replan_total = f64::INFINITY;
        let mut cached_total = f64::INFINITY;
        for _ in 0..REPS {
            replan_total = replan_total.min(timed(&mut replan_series).0);
            cached_total = cached_total.min(timed(&mut cached_series).0);
        }

        assert_eq!(
            engine.stats().symbolic_builds,
            1,
            "fixed pattern must be planned exactly once"
        );
        assert!(
            (replan_checksum - cached_checksum).abs() < 1e-9,
            "cached execution diverged from the one-shot driver"
        );

        let replan_per_iter = replan_total / iters as f64;
        let cached_per_iter = cached_total / iters as f64;
        let speedup = replan_per_iter / cached_per_iter;
        eprintln!(
            "{iters:>3} iters: replan {replan_per_iter:.5} s/iter, \
             cached {cached_per_iter:.5} s/iter ({speedup:.2}x)"
        );
        rows.push(vec![
            iters.to_string(),
            sci(replan_total),
            sci(replan_per_iter),
            sci(cached_total),
            sci(cached_per_iter),
            fixed(speedup, 3),
        ]);
        series.push(Json::obj([
            ("iters", Json::Num(iters as f64)),
            ("replan_total_s", Json::Num(replan_total)),
            ("replan_per_iter_s", Json::Num(replan_per_iter)),
            ("cached_total_s", Json::Num(cached_total)),
            ("cached_per_iter_s", Json::Num(cached_per_iter)),
            ("speedup_per_iter", Json::Num(speedup)),
        ]));
        if iters >= 4 {
            assert!(
                cached_per_iter < replan_per_iter,
                "cached plan must beat replanning from 4 iterations on \
                 ({cached_per_iter} vs {replan_per_iter} s/iter at {iters})"
            );
        }
    }

    println!("\nAblation — cached-plan reuse vs replanning");
    let header = [
        "iters",
        "replan_total_s",
        "replan_per_iter_s",
        "cached_total_s",
        "cached_per_iter_s",
        "speedup_per_iter",
    ];
    print_table(&header, &rows);
    write_csv("ablation_plan_reuse.csv", &header, &rows);
    write_json(
        "ablation_plan_reuse.json",
        &Json::obj([
            ("bench", Json::Str("ablation_plan_reuse".into())),
            (
                "system",
                Json::obj([
                    ("molecules", Json::Num(water.n_molecules() as f64)),
                    ("n", Json::Num(kt.n() as f64)),
                    ("basis", Json::Str("szv(range_scale=0.55)".into())),
                    ("eps_filter", Json::Num(eps_filter)),
                    ("seed", Json::Num(SEED as f64)),
                ]),
            ),
            ("series", Json::Arr(series)),
        ]),
    );
}
