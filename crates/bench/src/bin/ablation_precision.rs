//! Ablation: mixed-precision execution path (Fp64 / Fp32 / Fp32Refined).
//!
//! The water workloads run as density jobs on a 4-rank scheduler group at
//! each precision. Reported per precision, all deterministic on the 1-core
//! CI host:
//!
//! * **max elementwise density error** versus the Fp64 reference — the
//!   paper's approximate-computing accuracy claim (Sec. IV/VI);
//! * **gathered/scattered value bytes** — exactly halved by the f32 wire
//!   format — plus total subgroup traffic;
//! * **modeled time** from `sm_accel::perfmodel` (RTX 2080 Ti peaks with
//!   utilization at the mean submatrix dimension; the Fp32Refined row adds
//!   one f64 Newton–Schulz pass), showing the compute-side shift the
//!   flop model predicts.
//!
//! The binary asserts the byte-halving and error contracts before
//! reporting, then emits the standard CSV + `BENCH_*.json` outputs,
//! including the acceptance artifact `results/BENCH_precision.json`.

use std::time::Instant;

use sm_accel::perfmodel::{matmul_utilization, DeviceModel};
use sm_bench::output::{
    bench_table, paper_scale, print_table, sci, write_bench_json, write_csv, Json,
};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::engine::{EngineOptions, NumericOptions};
use sm_linalg::{Matrix, Precision};
use sm_pipeline::{JobOutput, JobResult, MatrixJob, RankBudget, Scheduler, SubmatrixEngine};

/// Density jobs over the water workloads at one precision.
fn batch(precision: Precision) -> Vec<MatrixJob> {
    let numeric = NumericOptions {
        precision,
        ..NumericOptions::default()
    };
    let nrep = if paper_scale() { 2 } else { 1 };
    let basis = accuracy_basis();
    let water_a = WaterBox::cubic(nrep, SEED);
    let (sys_a, mut kt_a) = build_orthogonalized(&water_a, &basis, 1e-11, 1e-9);
    kt_a.store_mut().filter(3e-2);
    let water_b = WaterBox::cubic(1, SEED + 5);
    let (sys_b, mut kt_b) = build_orthogonalized(&water_b, &basis, 1e-11, 1e-9);
    kt_b.store_mut().filter(8e-2);
    vec![
        MatrixJob {
            name: "A/density".into(),
            matrix: kt_a,
            mu0: sys_a.mu,
            numeric,
            output: JobOutput::Density,
        },
        MatrixJob {
            name: "B/density".into(),
            matrix: kt_b,
            mu0: sys_b.mu,
            numeric,
            output: JobOutput::Density,
        },
    ]
}

/// One scheduler group of 4 ranks: every job sees real rank-transfer
/// traffic, keeping the byte comparison apples-to-apples.
fn run(precision: Precision) -> (Vec<JobResult>, f64) {
    let sched = Scheduler::new(
        std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
            parallel: false,
            ..EngineOptions::default()
        })),
        RankBudget {
            max_groups: Some(1),
            max_group_size: None,
        },
    );
    let t = Instant::now();
    let outcome = sched.run(4, batch(precision));
    (outcome.results, t.elapsed().as_secs_f64())
}

/// Modeled solve time of one batch on the RTX 2080 Ti flop model: GEMM
/// flops (2·Σn³ per sign pass) at the precision's peak and utilization,
/// plus one f64 refinement pass for Fp32Refined.
fn modeled_seconds(results: &[JobResult], precision: Precision) -> f64 {
    let dev = DeviceModel::rtx_2080_ti();
    let (peak, ratio) = match precision {
        Precision::Fp64 => (dev.peak_fp64, dev.peak_fp64 / dev.peak_fp32),
        _ => (dev.peak_fp32, 1.0),
    };
    let mut seconds = 0.0;
    for r in results {
        let flops = 2.0 * r.report.total_cost;
        let n = r.report.avg_dim.max(1.0) as usize;
        seconds += flops / (peak * 1e12 * matmul_utilization(ratio, n));
        if precision == Precision::Fp32Refined {
            // One f64 Newton–Schulz pass: two GEMMs over the same dims.
            let r64 = dev.peak_fp64 / dev.peak_fp32;
            seconds += 2.0 * flops / (dev.peak_fp64 * 1e12 * matmul_utilization(r64, n));
        }
    }
    seconds
}

fn main() {
    let comm = SerialComm::new();
    let (reference, reference_wall) = run(Precision::Fp64);
    let ref_dense: Vec<Matrix> = reference.iter().map(|r| r.result.to_dense(&comm)).collect();
    let ref_gather: u64 = reference.iter().map(|r| r.report.gather_value_bytes).sum();
    let ref_scatter: u64 = reference.iter().map(|r| r.report.scatter_value_bytes).sum();
    assert!(ref_gather > 0, "4-rank group must gather value bytes");

    let header = [
        "precision",
        "max_density_err",
        "gather_value_bytes",
        "scatter_value_bytes",
        "comm_bytes",
        "modeled_s",
        "wall_s",
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for precision in Precision::all() {
        // The Fp64 row *is* the reference run — don't pay for it twice.
        let (results, wall) = if precision == Precision::Fp64 {
            (reference.clone(), reference_wall)
        } else {
            run(precision)
        };
        let max_err = results
            .iter()
            .zip(&ref_dense)
            .map(|(r, d)| r.result.to_dense(&comm).max_abs_diff(d))
            .fold(0.0, f64::max);
        let gather: u64 = results.iter().map(|r| r.report.gather_value_bytes).sum();
        let scatter: u64 = results.iter().map(|r| r.report.scatter_value_bytes).sum();
        let comm_bytes: u64 = results.iter().map(|r| r.comm_bytes).sum();
        let modeled = modeled_seconds(&results, precision);

        // Contracts, asserted before reporting (the same bounds the
        // `precision_equivalence` suite pins in-test).
        match precision {
            Precision::Fp64 => assert_eq!(max_err, 0.0),
            Precision::Fp32 => {
                assert!(max_err < 1e-4, "fp32 density error {max_err}");
                assert_eq!(gather * 2, ref_gather, "fp32 gather must halve");
                assert_eq!(scatter * 2, ref_scatter, "fp32 scatter must halve");
            }
            Precision::Fp32Refined => {
                assert!(max_err < 1e-6, "fp32-refined density error {max_err}");
                assert_eq!(gather * 2, ref_gather);
                assert_eq!(scatter, ref_scatter, "refined scatters f64");
            }
        }

        eprintln!(
            "{}: err {max_err:.3e}, gather {gather} B, scatter {scatter} B, \
             comm {comm_bytes} B, modeled {modeled:.3e} s",
            precision.label()
        );
        rows.push(vec![
            precision.label().to_string(),
            sci(max_err),
            gather.to_string(),
            scatter.to_string(),
            comm_bytes.to_string(),
            sci(modeled),
            sci(wall),
        ]);
        series.push(Json::obj([
            ("precision", Json::Str(precision.label().into())),
            ("max_density_err", Json::Num(max_err)),
            ("gather_value_bytes", Json::Num(gather as f64)),
            ("scatter_value_bytes", Json::Num(scatter as f64)),
            ("comm_bytes", Json::Num(comm_bytes as f64)),
            ("modeled_s", Json::Num(modeled)),
            ("wall_s", Json::Num(wall)),
            (
                "gather_fraction_of_fp64",
                Json::Num(gather as f64 / ref_gather as f64),
            ),
        ]));
    }

    println!("\nAblation — mixed-precision execution path over the water workloads");
    print_table(&header, &rows);
    write_csv("ablation_precision.csv", &header, &rows);
    // The acceptance artifact: the precision sweep under its stable name.
    write_bench_json(
        "precision",
        Json::obj([
            ("workload", Json::Str("water density (4-rank group)".into())),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
