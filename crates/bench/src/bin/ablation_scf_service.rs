//! Ablation: the batched multi-system SCF service vs a serial loop of
//! `ScfDriver` runs.
//!
//! A straggler batch of independent grand-canonical SCF systems — one
//! large system plus many small ones of a recurring pattern — runs
//! through `ScfService` at several world sizes, stealing disabled (static
//! groups) and enabled. The binary asserts the PR's acceptance contract
//! in-place: grand-canonical densities stay **bitwise-identical** to the
//! serial driver loop under any schedule, iteration counts and
//! convergence flags agree, and the plan-cache consensus accounting
//! (`hits + builds = Σ_jobs group_size × iterations`) holds exactly. It
//! then reports the batch telemetry — SCF iterations, epochs, steals,
//! plan builds vs hits, per-batch wall time — and writes
//! `results/BENCH_scf_service.json`.
//!
//! As with the other scheduler ablations, wall-clock speedup on a shared
//! host is not the signal (thread ranks share cores); the deterministic
//! iteration/steal/cache columns are what transfer to a real cluster.

use std::sync::Arc;
use std::time::Instant;

use sm_bench::output::{bench_table, print_table, sci, write_bench_json, write_csv, Json};
use sm_chem::{ScfEnsemble, ScfResult};
use sm_comsim::SerialComm;
use sm_core::engine::EngineOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    serial_scf_loop, RankBudget, ScfJobSpec, ScfOutcomeExt, ScfService, SchedulerOutcome,
    StealPolicy, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// The SCF straggler batch: one large grand-canonical system plus 18
/// smalls with one recurring pattern, every job a full damped SCF loop at
/// fixed µ = 0 and half filling.
fn straggler_specs() -> Vec<ScfJobSpec> {
    let spec = |name: &str, nb: usize, seed: u64| {
        let kt0 = banded(nb, 2, seed);
        let n_electrons = kt0.n() as f64;
        let mut s = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
        s.scf.max_iter = 30;
        s.scf.tol = 1e-7;
        s.scf.ensemble = ScfEnsemble::GrandCanonical;
        s
    };
    let mut specs = vec![spec("large", 10, 1)];
    for i in 0..18u64 {
        specs.push(spec(&format!("small-{i}"), 4, i));
    }
    specs
}

fn fresh_engine() -> Arc<SubmatrixEngine> {
    Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

fn assert_bitwise(outcome: &SchedulerOutcome, serial: &[ScfResult], what: &str) {
    let comm = SerialComm::new();
    assert_eq!(outcome.results.len(), serial.len());
    for (r, s) in outcome.results.iter().zip(serial) {
        assert!(
            r.result
                .to_dense(&comm)
                .allclose(&s.density.to_dense(&comm), 0.0),
            "job '{}' density deviates from the serial driver loop ({what})",
            r.name
        );
        let scf = r.scf.as_ref().expect("SCF telemetry present");
        assert_eq!(scf.iterations, s.iterations.len(), "{what}");
        assert_eq!(scf.converged, s.converged, "{what}");
    }
}

fn main() {
    let specs = straggler_specs();
    let n_jobs = specs.len();
    println!(
        "SCF straggler batch: {n_jobs} systems (1 large + {} small), grand canonical",
        n_jobs - 1
    );

    let serial_engine = fresh_engine();
    let t = Instant::now();
    let serial = serial_scf_loop(&serial_engine, &specs);
    let serial_seconds = t.elapsed().as_secs_f64();
    let serial_iters: usize = serial.iter().map(|r| r.iterations.len()).sum();
    let serial_stats = serial_engine.stats();
    println!(
        "serial driver loop: {serial_iters} SCF iterations, {} plan builds, {} cache hits, \
         {serial_seconds:.3} s",
        serial_stats.symbolic_builds, serial_stats.cache_hits
    );

    let header = [
        "world",
        "policy",
        "iterations",
        "converged",
        "epochs",
        "stolen_jobs",
        "stolen_ranks",
        "plan_builds",
        "cache_hits",
        "consensus_decisions",
        "total_s",
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for world in [2usize, 4, 6] {
        for policy in [StealPolicy::Disabled, StealPolicy::EpochRebalance] {
            let engine = fresh_engine();
            let service =
                ScfService::new(engine.clone(), RankBudget::default()).with_policy(policy);
            let t = Instant::now();
            let outcome = service.run(world, specs.clone());
            let seconds = t.elapsed().as_secs_f64();
            let policy_name = match policy {
                StealPolicy::Disabled => "static",
                StealPolicy::EpochRebalance => "stealing",
            };

            // Acceptance contract, asserted in-binary.
            assert_bitwise(&outcome, &serial, &format!("world {world} {policy_name}"));
            let stats = engine.stats();
            let decisions: usize = outcome
                .results
                .iter()
                .enumerate()
                .map(|(j, r)| {
                    outcome.schedule.ranks_of_job(j).len()
                        * r.scf.as_ref().map_or(1, |s| s.iterations)
                })
                .sum();
            assert_eq!(
                stats.cache_hits + stats.symbolic_builds,
                decisions,
                "consensus accounting broken at world {world} {policy_name}"
            );
            let s = outcome.steal_stats;
            if policy == StealPolicy::Disabled {
                assert_eq!(s.epochs, 1, "static baseline must stay single-epoch");
            } else if world == 6 {
                // Same relative cost skew as the one-shot straggler batch
                // (iteration budgets are uniform), so the steal contract
                // carries over.
                assert!(s.stolen_jobs >= 1, "SCF straggler batch must steal: {s:?}");
            }

            let iterations = outcome.results.total_iterations();
            let converged = outcome.results.converged_jobs();
            eprintln!(
                "world {world} {policy_name}: {iterations} iterations ({converged}/{n_jobs} \
                 converged), {} epochs, {} stolen jobs, {} builds, {} hits, {seconds:.3} s",
                s.epochs, s.stolen_jobs, stats.symbolic_builds, stats.cache_hits
            );
            rows.push(vec![
                world.to_string(),
                policy_name.to_string(),
                iterations.to_string(),
                converged.to_string(),
                s.epochs.to_string(),
                s.stolen_jobs.to_string(),
                s.stolen_ranks.to_string(),
                stats.symbolic_builds.to_string(),
                stats.cache_hits.to_string(),
                decisions.to_string(),
                sci(seconds),
            ]);
            series.push(Json::obj([
                ("world", Json::Num(world as f64)),
                ("policy", Json::Str(policy_name.into())),
                ("iterations", Json::Num(iterations as f64)),
                ("converged_jobs", Json::Num(converged as f64)),
                ("epochs", Json::Num(s.epochs as f64)),
                ("stolen_jobs", Json::Num(s.stolen_jobs as f64)),
                ("stolen_ranks", Json::Num(s.stolen_ranks as f64)),
                ("plan_builds", Json::Num(stats.symbolic_builds as f64)),
                ("cache_hits", Json::Num(stats.cache_hits as f64)),
                ("consensus_decisions", Json::Num(decisions as f64)),
                ("bitwise_vs_serial", Json::Bool(true)),
                ("total_s", Json::Num(seconds)),
            ]));
        }
    }

    // Instrumented rerun at the largest world, stealing on: the trace
    // must not perturb the numerics (bitwise contract re-asserted with
    // every span/metric live), and its JSONL artifact feeds `smdoctor`.
    {
        let session = sm_trace::TraceSession::start("svc");
        let engine = fresh_engine();
        let service = ScfService::new(engine, RankBudget::default())
            .with_policy(StealPolicy::EpochRebalance)
            .with_trace_label("svc");
        let outcome = service.run(6, specs.clone());
        assert_bitwise(&outcome, &serial, "world 6 stealing, traced");
        let trace_path = sm_bench::output::results_dir().join("TRACE_scf_service.jsonl");
        session.write_jsonl(&trace_path).expect("write trace JSONL");
        println!(
            "wrote {} ({} events, {} metrics)",
            trace_path.display(),
            session.events().len(),
            session.metrics().len()
        );

        // Perfetto export of the same session (pid=rank, tid=group; opens
        // in ui.perfetto.dev), plus the perfmodel calibration report. The
        // report is report-only: the scheduler never reads it back, which
        // the assert_bitwise above already re-proved with the artifact
        // about to exist on disk.
        let chrome = session
            .to_chrome_trace(Some("svc"))
            .expect("chrome export of the traced run");
        let perfetto_path = sm_bench::output::results_dir().join("PERFETTO_scf_service.json");
        std::fs::write(&perfetto_path, format!("{chrome}\n")).expect("write Perfetto JSON");
        println!("wrote {}", perfetto_path.display());
        let doc = session.to_doc();
        sm_bench::calibrate::write_calibration(&doc, "svc");
        let cp = sm_trace::analyze::critical_path(&doc, Some("svc"))
            .expect("critical path of the traced run");
        println!(
            "critical path: {:.6e} cost units over {} epoch(s), straggler job {:?}",
            cp.total_units,
            cp.epochs.len(),
            cp.straggler_job
        );
    }

    println!("\nAblation — batched SCF service vs serial ScfDriver loop");
    print_table(&header, &rows);
    write_csv("ablation_scf_service.csv", &header, &rows);
    write_bench_json(
        "scf_service",
        Json::obj([
            (
                "workload",
                Json::Str("SCF straggler batch: 1 large + 18 small, grand canonical".into()),
            ),
            ("jobs", Json::Num(n_jobs as f64)),
            ("serial_iterations", Json::Num(serial_iters as f64)),
            ("serial_total_s", Json::Num(serial_seconds)),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
