//! Ablation: serial `JobQueue` vs distributed `Scheduler` over per-job
//! subcommunicator groups.
//!
//! A mixed batch (sign + density jobs, different systems and sizes) runs
//! once through the serial queue and then through the scheduler at world
//! sizes 1, 2, 4 and 8. The scheduler result must match the queue bitwise
//! (grand-canonical jobs), which this binary asserts before reporting
//! wall-times, per-job group sizes, subgroup traffic, and the shared
//! plan-cache counters. Emits the standard CSV + JSON outputs.
//!
//! The interesting signal on a laptop-class host is not raw speedup
//! (thread ranks share cores) but the schedule itself: how the rank
//! budget follows estimated job cost, and how much traffic each group
//! moves — the quantities that decide placement on a real cluster.

use std::time::Instant;

use sm_bench::output::{
    bench_table, fixed, paper_scale, print_table, sci, write_bench_json, write_csv, write_json,
    Json,
};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::engine::{EngineOptions, NumericOptions};
use sm_dbcsr::ops;
use sm_pipeline::{
    JobOutput, JobQueue, JobResult, MatrixJob, RankBudget, Scheduler, SubmatrixEngine,
};

/// The mixed batch: two water systems at different filter strengths, sign
/// and density outputs, plus one recurring pattern with shifted values.
fn batch() -> Vec<MatrixJob> {
    let nrep = if paper_scale() { 2 } else { 1 };
    let water = WaterBox::cubic(nrep, SEED);
    let basis = accuracy_basis();
    let (sys_a, mut kt_a) = build_orthogonalized(&water, &basis, 1e-11, 1e-9);
    kt_a.store_mut().filter(3e-2);
    let water_b = WaterBox::cubic(1, SEED + 5);
    let (sys_b, mut kt_b) = build_orthogonalized(&water_b, &basis, 1e-11, 1e-9);
    kt_b.store_mut().filter(8e-2);
    let mut kt_a2 = kt_a.clone();
    ops::shift_diag(&mut kt_a2, 1e-4);
    vec![
        MatrixJob::density("A/density", kt_a.clone(), sys_a.mu),
        MatrixJob {
            name: "A/sign".into(),
            matrix: kt_a2,
            mu0: sys_a.mu,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        },
        MatrixJob::density("B/density", kt_b.clone(), sys_b.mu),
        MatrixJob {
            name: "B/sign".into(),
            matrix: kt_b,
            mu0: sys_b.mu,
            numeric: NumericOptions::default(),
            output: JobOutput::Sign,
        },
    ]
}

fn checksum(results: &[JobResult]) -> f64 {
    let comm = SerialComm::new();
    results.iter().map(|r| ops::trace(&r.result, &comm)).sum()
}

fn bitwise_equal(a: &[JobResult], b: &[JobResult]) -> bool {
    let comm = SerialComm::new();
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.result
                .to_dense(&comm)
                .allclose(&y.result.to_dense(&comm), 0.0)
        })
}

fn fresh_engine() -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

fn main() {
    let jobs = batch();
    let n_jobs = jobs.len();
    let job_sizes: Vec<usize> = jobs.iter().map(|j| j.matrix.n()).collect();
    println!("{} jobs, matrix sizes {:?}", n_jobs, job_sizes);

    // Serial reference (and its timing).
    let queue = JobQueue::new(fresh_engine());
    let t = Instant::now();
    let serial = queue.run(batch());
    let serial_seconds = t.elapsed().as_secs_f64();
    let serial_checksum = checksum(&serial);

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let header = [
        "world",
        "groups",
        "total_s",
        "vs_serial",
        "group_sizes",
        "subgroup_bytes",
        "world_bytes",
        "plans_built",
        "cache_hits",
    ];
    for world in [1usize, 2, 4, 8] {
        let sched = Scheduler::new(fresh_engine(), RankBudget::default());
        let t = Instant::now();
        let outcome = sched.run(world, batch());
        let seconds = t.elapsed().as_secs_f64();

        assert!(
            bitwise_equal(&outcome.results, &serial),
            "scheduler at world {world} deviates from the serial queue"
        );
        assert!((checksum(&outcome.results) - serial_checksum).abs() < 1e-12);

        let group_sizes: Vec<String> = outcome
            .plan
            .groups
            .iter()
            .map(|g| g.ranks.len().to_string())
            .collect();
        let subgroup_bytes: u64 = outcome.results.iter().map(|r| r.comm_bytes).sum();
        let stats = sched.engine().stats();
        eprintln!(
            "world {world}: {} groups {:?}, {seconds:.4} s, \
             {subgroup_bytes} subgroup bytes, {} plans built",
            outcome.plan.groups.len(),
            group_sizes,
            stats.symbolic_builds,
        );
        rows.push(vec![
            world.to_string(),
            outcome.plan.groups.len().to_string(),
            sci(seconds),
            fixed(serial_seconds / seconds, 3),
            group_sizes.join("+"),
            subgroup_bytes.to_string(),
            outcome.world_stats.total_bytes().to_string(),
            stats.symbolic_builds.to_string(),
            stats.cache_hits.to_string(),
        ]);
        series.push(Json::obj([
            ("world", Json::Num(world as f64)),
            ("groups", Json::Num(outcome.plan.groups.len() as f64)),
            ("total_s", Json::Num(seconds)),
            ("speedup_vs_serial", Json::Num(serial_seconds / seconds)),
            (
                "group_sizes",
                Json::Arr(
                    outcome
                        .plan
                        .groups
                        .iter()
                        .map(|g| Json::Num(g.ranks.len() as f64))
                        .collect(),
                ),
            ),
            (
                "job_cost_estimates",
                Json::Arr(
                    outcome
                        .plan
                        .job_costs
                        .iter()
                        .map(|&c| Json::Num(c))
                        .collect(),
                ),
            ),
            ("subgroup_bytes", Json::Num(subgroup_bytes as f64)),
            (
                "world_bytes",
                Json::Num(outcome.world_stats.total_bytes() as f64),
            ),
            ("plans_built", Json::Num(stats.symbolic_builds as f64)),
            ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ]));
    }

    println!("\nAblation — serial JobQueue vs scheduled subcommunicator groups");
    print_table(&header, &rows);
    write_csv("ablation_scheduler.csv", &header, &rows);
    write_json(
        "ablation_scheduler.json",
        &Json::obj([
            ("bench", Json::Str("ablation_scheduler".into())),
            ("jobs", Json::Num(n_jobs as f64)),
            (
                "matrix_sizes",
                Json::Arr(job_sizes.iter().map(|&n| Json::Num(n as f64)).collect()),
            ),
            ("serial_total_s", Json::Num(serial_seconds)),
            ("serial_checksum", Json::Num(serial_checksum)),
            ("series", Json::Arr(series.clone())),
        ]),
    );
    // The acceptance artifact under its stable short name, like the other
    // contract benches (precision/stealing/scf_service) — CI checks for
    // results/BENCH_scheduler.json by this name.
    write_bench_json(
        "scheduler",
        Json::obj([
            ("jobs", Json::Num(n_jobs as f64)),
            ("serial_total_s", Json::Num(serial_seconds)),
            ("serial_checksum", Json::Num(serial_checksum)),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
