//! Ablation (paper Sec. VII future work): full back-transform vs
//! selected-columns evaluation of the submatrix sign function.
//!
//! The submatrix method only scatters the columns originating from each
//! spec's own block columns; computing `Q·diag(sgn λ)·Q^T` in full wastes
//! an `O(n³)` GEMM per submatrix. The selected-columns path back-transforms
//! only the contributing columns at `O(n²·k)`. Expected: identical results,
//! solve-phase speedup growing with n/k.

use std::time::Instant;

use sm_bench::output::{fixed, print_table, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::{submatrix_sign, SubmatrixOptions};

fn main() {
    let comm = SerialComm::new();
    let water = WaterBox::cubic(2, SEED);
    let basis = accuracy_basis();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);

    let mut rows = Vec::new();
    for eps in [1e-9, 1e-7, 1e-5] {
        let mut kt_f = kt.clone();
        kt_f.store_mut().filter(eps);

        let t0 = Instant::now();
        let (full, report) = submatrix_sign(&kt_f, sys.mu, &SubmatrixOptions::default(), &comm);
        let t_full = t0.elapsed().as_secs_f64();

        let opts = SubmatrixOptions {
            use_selected_columns: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (sel, _) = submatrix_sign(&kt_f, sys.mu, &opts, &comm);
        let t_sel = t0.elapsed().as_secs_f64();

        let diff = full.to_dense(&comm).max_abs_diff(&sel.to_dense(&comm));
        assert!(diff < 1e-11, "paths must agree, diff {diff}");
        rows.push(vec![
            format!("{eps:.0e}"),
            format!("{:.0}", report.avg_dim),
            fixed(t_full, 3),
            fixed(t_sel, 3),
            fixed(t_full / t_sel.max(1e-9), 2),
        ]);
        eprintln!(
            "eps {eps:.0e}: avg dim {:.0}, full {t_full:.3}s vs selected {t_sel:.3}s \
             ({:.2}x), max diff {diff:.1e}",
            report.avg_dim,
            t_full / t_sel.max(1e-9)
        );
    }

    println!("\nAblation — full back-transform vs selected columns");
    let header = ["eps_filter", "avg_dim", "full_s", "selected_s", "speedup"];
    print_table(&header, &rows);
    write_csv("ablation_selected_columns.csv", &header, &rows);
}
