//! Ablation: the resident streaming service vs a serial driver loop,
//! across a kill-and-restart.
//!
//! A stream of mixed-priority grand-canonical SCF jobs arrives at a
//! `StreamingScfService` over several admission windows. The binary
//! asserts the PR's acceptance contract in-place:
//!
//! * every closed window is **bitwise-identical** to a serial
//!   `ScfDriver` loop over the same admitted set in the same canonical
//!   order (admission-window determinism);
//! * spilling the plan cache to a manifest, standing up a **fresh
//!   engine** (a restart in miniature), importing, and replaying the
//!   same stream replans **nothing** — `symbolic_builds == 0` on the
//!   warm side, every planning decision a cache hit, densities
//!   unchanged across the restart;
//! * backpressure sheds deterministically: a full queue refuses the
//!   overflow submission without disturbing the admitted window.
//!
//! It then reports per-window admission/epoch/plan-cache counters for
//! both the cold and warm phases and writes `results/BENCH_service.json`
//! (plus `ablation_service.csv`) — the artifact the CI `smdoctor
//! compare` gate pins against its committed baseline.
//!
//! Wall-clock columns are annotations (thread ranks share cores); the
//! deterministic admission/epoch/consensus counters are the signal.

use std::sync::Arc;
use std::time::Instant;

use sm_bench::output::{bench_table, print_table, sci, write_bench_json, write_csv, Json};
use sm_chem::{ScfEnsemble, ScfResult};
use sm_comsim::SerialComm;
use sm_core::engine::EngineOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    serial_scf_loop, Priority, ScfJobSpec, ServiceConfig, ServiceError, StreamingScfService,
    SubmatrixEngine, WindowOutcome,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0 (the
/// scheduler ablations' construction).
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

fn gc_spec(name: &str, nb: usize, seed: u64) -> ScfJobSpec {
    let kt0 = banded(nb, 2, seed);
    let n_electrons = kt0.n() as f64;
    let mut spec = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
    spec.scf.max_iter = 8;
    spec.scf.tol = 1e-7;
    spec.scf.ensemble = ScfEnsemble::GrandCanonical;
    spec
}

fn fresh_engine() -> Arc<SubmatrixEngine> {
    Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

/// The streamed workload: three admission windows of mixed priorities,
/// with recurring patterns across windows (the warm-restart payoff).
fn stream() -> Vec<Vec<(ScfJobSpec, Priority)>> {
    vec![
        vec![
            (gc_spec("w0-bulk", 10, 1), Priority::Low),
            (gc_spec("w0-urgent", 4, 2), Priority::High),
            (gc_spec("w0-steady", 5, 3), Priority::Normal),
        ],
        vec![
            (gc_spec("w1-a", 4, 4), Priority::Normal),
            (gc_spec("w1-b", 6, 5), Priority::Normal),
            (gc_spec("w1-c", 4, 6), Priority::High),
            (gc_spec("w1-d", 5, 7), Priority::Low),
        ],
        // Window 2 resubmits window 0's systems — pure plan reuse even
        // on the cold side.
        vec![
            (gc_spec("w0-bulk", 10, 1), Priority::Normal),
            (gc_spec("w0-urgent", 4, 2), Priority::Normal),
            (gc_spec("w0-steady", 5, 3), Priority::Normal),
        ],
    ]
}

/// Bitwise check of one window against the serial driver loop over the
/// same admitted set in the same canonical order.
fn assert_window_bitwise(w: &WindowOutcome, serial: &[ScfResult], what: &str) {
    let comm = SerialComm::new();
    assert_eq!(w.outcome.results.len(), serial.len(), "{what}");
    for (r, s) in w.outcome.results.iter().zip(serial) {
        assert!(
            r.result
                .to_dense(&comm)
                .allclose(&s.density.to_dense(&comm), 0.0),
            "job '{}' density deviates from the serial driver loop ({what})",
            r.name
        );
        let scf = r.scf.as_ref().expect("SCF telemetry present");
        assert_eq!(scf.iterations, s.iterations.len(), "{what}");
        assert_eq!(scf.converged, s.converged, "{what}");
    }
}

/// Consensus decisions of one window: every rank of every group decides
/// hit/miss once per SCF iteration.
fn window_decisions(w: &WindowOutcome) -> usize {
    w.outcome
        .results
        .iter()
        .enumerate()
        .map(|(j, r)| {
            w.outcome.schedule.ranks_of_job(j).len() * r.scf.as_ref().map_or(1, |s| s.iterations)
        })
        .sum()
}

/// Run the whole stream through one service, asserting per-window
/// bitwise equivalence, and return per-window rows plus the outcomes.
fn run_stream(
    engine: &Arc<SubmatrixEngine>,
    phase: &str,
    workload: &[Vec<(ScfJobSpec, Priority)>],
    rows: &mut Vec<Vec<String>>,
    series: &mut Vec<Json>,
) -> Vec<WindowOutcome> {
    let mut svc = StreamingScfService::new(
        Arc::clone(engine),
        ServiceConfig {
            world_size: 4,
            queue_capacity: 16,
            trace_label: format!("svc-{phase}"),
            ..ServiceConfig::default()
        },
    );
    let mut outcomes = Vec::new();
    for window in workload {
        for (spec, priority) in window {
            svc.submit(spec.clone(), *priority).expect("admission");
        }
        let before = engine.stats();
        let t = Instant::now();
        let w = svc.close_window().expect("window runs");
        let seconds = t.elapsed().as_secs_f64();
        let after = engine.stats();

        // Acceptance contract, asserted in-binary: the window is a pure
        // function of the admitted set.
        let specs: Vec<ScfJobSpec> = w
            .admitted
            .iter()
            .map(|name| {
                window
                    .iter()
                    .find(|(s, _)| &s.name == name)
                    .expect("admitted job came from this window")
                    .0
                    .clone()
            })
            .collect();
        let serial = serial_scf_loop(&fresh_engine(), &specs);
        assert_window_bitwise(&w, &serial, &format!("{phase} window {}", w.window));

        let (builds, hits) = (
            after.symbolic_builds - before.symbolic_builds,
            after.cache_hits - before.cache_hits,
        );
        let decisions = window_decisions(&w);
        assert_eq!(
            builds + hits,
            decisions,
            "consensus accounting broken in {phase} window {}",
            w.window
        );
        eprintln!(
            "{phase} window {}: {} admitted, {} epoch(s), {builds} builds, {hits} hits, \
             {seconds:.3} s",
            w.window,
            w.admitted.len(),
            w.outcome.schedule.epochs.len()
        );
        rows.push(vec![
            phase.to_string(),
            w.window.to_string(),
            w.admitted.len().to_string(),
            w.outcome.schedule.epochs.len().to_string(),
            builds.to_string(),
            hits.to_string(),
            decisions.to_string(),
            sci(seconds),
        ]);
        series.push(Json::obj([
            ("phase", Json::Str(phase.into())),
            ("window", Json::Num(w.window as f64)),
            ("admitted", Json::Num(w.admitted.len() as f64)),
            ("epochs", Json::Num(w.outcome.schedule.epochs.len() as f64)),
            ("plan_builds", Json::Num(builds as f64)),
            ("cache_hits", Json::Num(hits as f64)),
            ("consensus_decisions", Json::Num(decisions as f64)),
            ("bitwise_vs_serial", Json::Bool(true)),
            ("total_s", Json::Num(seconds)),
        ]));
        outcomes.push(w);
    }
    outcomes
}

fn main() {
    let workload = stream();
    let n_jobs: usize = workload.iter().map(Vec::len).sum();
    println!(
        "streaming service ablation: {} admission window(s), {n_jobs} jobs, world 4",
        workload.len()
    );

    let header = [
        "phase",
        "window",
        "admitted",
        "epochs",
        "plan_builds",
        "cache_hits",
        "consensus_decisions",
        "total_s",
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();

    // Cold phase: fresh engine, stream everything, spill the plans.
    let cold_engine = fresh_engine();
    let cold = run_stream(&cold_engine, "cold", &workload, &mut rows, &mut series);
    let cold_stats = cold_engine.stats();
    assert!(
        cold_stats.symbolic_builds > 0,
        "cold stream must build plans"
    );
    let manifest = std::env::temp_dir().join("sm_ablation_service.smplans");
    let exported = cold_engine.export_plans(&manifest).expect("export plans");
    assert_eq!(exported, cold_engine.cached_plans());
    println!(
        "cold stream: {} builds, {} hits; spilled {exported} plan(s) to {}",
        cold_stats.symbolic_builds,
        cold_stats.cache_hits,
        manifest.display()
    );

    // Warm phase: a restart in miniature — fresh engine, import, replay.
    let warm_engine = fresh_engine();
    let imported = warm_engine.import_plans(&manifest).expect("import plans");
    assert_eq!(imported, exported, "every exported plan must restore");
    let warm = run_stream(&warm_engine, "warm", &workload, &mut rows, &mut series);
    let warm_stats = warm_engine.stats();

    // The headline acceptance pin: the warm restart replans nothing.
    assert_eq!(
        warm_stats.symbolic_builds, 0,
        "warm restart must replan nothing"
    );
    assert_eq!(
        warm_stats.cache_hits, warm_stats.executions,
        "every warm planning decision is a hit"
    );
    let comm = SerialComm::new();
    for (c, w) in cold.iter().zip(&warm) {
        for (rc, rw) in c.outcome.results.iter().zip(&w.outcome.results) {
            assert_eq!(rc.name, rw.name);
            assert!(
                rc.result
                    .to_dense(&comm)
                    .allclose(&rw.result.to_dense(&comm), 0.0),
                "job '{}' density changed across the restart",
                rc.name
            );
        }
    }
    println!(
        "warm stream: 0 builds, {} hits — the restart is invisible in the numbers",
        warm_stats.cache_hits
    );

    // Deterministic backpressure: a capacity-2 queue sheds the third
    // submission and the admitted window is undisturbed.
    let mut small = StreamingScfService::new(
        fresh_engine(),
        ServiceConfig {
            world_size: 4,
            queue_capacity: 2,
            trace_label: "svc-bp".to_string(),
            ..ServiceConfig::default()
        },
    );
    small
        .submit(gc_spec("bp-a", 4, 1), Priority::Normal)
        .expect("admit");
    small
        .submit(gc_spec("bp-b", 5, 2), Priority::Normal)
        .expect("admit");
    let shed = small.submit(gc_spec("bp-c", 6, 3), Priority::High);
    assert!(
        matches!(shed, Err(ServiceError::Backpressure { capacity: 2 })),
        "third submission must shed"
    );
    let bp = small.close_window().expect("backpressured window");
    assert_eq!(bp.admitted, vec!["bp-a", "bp-b"]);
    assert_eq!(small.stats().backpressure_rejects, 1);
    println!("backpressure: 2 admitted, 1 shed at capacity 2");

    println!("\nAblation — resident streaming service across a restart");
    print_table(&header, &rows);
    write_csv("ablation_service.csv", &header, &rows);
    write_bench_json(
        "service",
        Json::obj([
            (
                "workload",
                Json::Str("3 admission windows, 10 mixed-priority GC jobs, world 4".into()),
            ),
            ("jobs", Json::Num(n_jobs as f64)),
            ("windows", Json::Num(workload.len() as f64)),
            ("manifest_plans", Json::Num(exported as f64)),
            ("cold_builds", Json::Num(cold_stats.symbolic_builds as f64)),
            ("cold_hits", Json::Num(cold_stats.cache_hits as f64)),
            ("warm_builds", Json::Num(warm_stats.symbolic_builds as f64)),
            ("warm_hits", Json::Num(warm_stats.cache_hits as f64)),
            ("backpressure_rejects", Json::Num(1.0)),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
