//! Ablation (paper Sec. IV-F): solving dense submatrices by
//! eigendecomposition vs Newton–Schulz vs 3rd/5th-order Padé iterations.
//!
//! The paper found diagonalization superior for its dense submatrices with
//! vendor BLAS. This harness reports wall times of our kernels *and* the
//! structural advantage that is independent of kernel tuning: only the
//! eigendecomposition enables canonical µ bisection without re-solving
//! (Algorithm 1).

use std::time::Instant;

use sm_bench::output::{fixed, print_table, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::assembly::{assemble, SubmatrixSpec};
use sm_core::solver::{solve_sign, SignMethod, SolveOptions};

fn main() {
    let water = WaterBox::cubic(2, SEED);
    let basis = accuracy_basis();
    let comm = SerialComm::new();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    let mut kt_f = kt.clone();
    kt_f.store_mut().filter(1e-6);
    let pattern = kt_f.global_pattern(&comm);
    let dims = kt_f.dims().clone();

    let mut rows = Vec::new();
    for group_size in [1usize, 4, 16] {
        let group: Vec<usize> = (0..group_size).collect();
        let spec = SubmatrixSpec::build(&pattern, &dims, &group);
        let a = assemble(&spec, &pattern, &dims, |r, c| kt_f.block(r, c));

        for (name, method) in [
            ("diagonalization", SignMethod::Diagonalization),
            ("newton-schulz", SignMethod::NewtonSchulz),
            ("pade-3", SignMethod::Pade(3)),
            ("pade-5", SignMethod::Pade(5)),
        ] {
            let opts = SolveOptions {
                method,
                ..SolveOptions::default()
            };
            let t0 = Instant::now();
            let r = solve_sign(&a, sys.mu, &opts).expect("solve");
            let dt = t0.elapsed().as_secs_f64();
            rows.push(vec![
                spec.dim.to_string(),
                name.to_string(),
                fixed(dt, 4),
                r.iterations.to_string(),
                (r.decomposition.is_some()).to_string(),
            ]);
            eprintln!(
                "dim {}: {name:<16} {dt:.4}s, {} iterations, reusable for mu: {}",
                spec.dim,
                r.iterations,
                r.decomposition.is_some()
            );
        }
    }

    println!("\nAblation — per-submatrix sign solvers");
    let header = ["dim", "solver", "wall_s", "iterations", "mu_reusable"];
    print_table(&header, &rows);
    write_csv("ablation_sign_solvers.csv", &header, &rows);
}
