//! Ablation: dense vs sparse-CSR submatrix solve backend across fill
//! fractions.
//!
//! Three banded workloads sweep the element-fill axis (below the
//! auto-selection threshold, mid-band, near-dense). Each runs the same
//! Newton–Schulz sign batch through the serial [`JobQueue`] under the
//! `Dense` and `SparseCsr` backend policies, reporting per fill level:
//!
//! * **element fill** — the plan's deterministic backend-decision input;
//! * **sparse kernel flops** and **filtered elements** from the engine's
//!   sparse telemetry counters (`tele::SPARSE_FLOPS` /
//!   `tele::SPARSE_FILTERED_NNZ` on the wire);
//! * **max elementwise deviation** of the sparse result from the dense
//!   reference (contract: < 1e-10 at `sparse_eps = 0`);
//! * the backend the `Auto` policy resolves — sparse below the
//!   [`SPARSE_FILL_THRESHOLD`], dense above;
//! * wall time of both paths (soft-warn only under `smdoctor compare`).
//!
//! The binary asserts the accuracy, telemetry and auto-selection
//! contracts before reporting, then emits the standard CSV +
//! `BENCH_*.json` outputs, including the regression-gated artifact
//! `results/BENCH_sparse.json`.

use std::time::Instant;

use sm_bench::output::{bench_table, print_table, sci, write_bench_json, write_csv, Json};
use sm_comsim::SerialComm;
use sm_core::engine::{BackendPolicy, NumericOptions, SPARSE_FILL_THRESHOLD};
use sm_core::solver::{SignMethod, SolveBackend, SolveOptions};
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{JobOutput, JobQueue, JobResult, MatrixJob};

/// Deterministic banded symmetric matrix with a spectral gap at 0 and a
/// block half-bandwidth controlling its element fill.
fn banded(nb: usize, bs: usize, half: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).unsigned_abs() > half {
            0.0
        } else if i == j {
            let base = if i % 2 == 0 { 1.2 } else { -1.2 };
            base + ((seed % 7) as f64) * 0.017
        } else {
            0.04 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// One-job Newton–Schulz sign batch under a backend policy.
fn batch(matrix: DbcsrMatrix, policy: BackendPolicy) -> Vec<MatrixJob> {
    let numeric = NumericOptions {
        backend: policy,
        solve: SolveOptions {
            method: SignMethod::NewtonSchulz,
            ..SolveOptions::default()
        },
        ..NumericOptions::default()
    };
    vec![MatrixJob {
        name: "banded/sign".into(),
        matrix,
        mu0: 0.0,
        numeric,
        output: JobOutput::Sign,
    }]
}

/// Serial run under one policy: results plus wall seconds.
fn run(matrix: DbcsrMatrix, policy: BackendPolicy) -> (Vec<JobResult>, f64) {
    let queue = JobQueue::default();
    let t = Instant::now();
    let results = queue.run(batch(matrix, policy));
    (results, t.elapsed().as_secs_f64())
}

fn backend_label(b: SolveBackend) -> &'static str {
    match b {
        SolveBackend::Dense => "dense",
        SolveBackend::SparseCsr => "sparse-csr",
    }
}

fn main() {
    let comm = SerialComm::new();
    // Block half-bandwidths sweeping the fill axis: below the 0.2
    // auto-selection threshold, mid-band, near-dense.
    let levels = [("low", 1usize), ("mid", 3), ("high", 12)];

    let header = [
        "fill_level",
        "element_fill",
        "auto_backend",
        "max_err_vs_dense",
        "sparse_flops",
        "sparse_filtered_nnz",
        "dense_wall_s",
        "sparse_wall_s",
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut fills = Vec::new();
    let mut flops_by_level = Vec::new();
    for (label, half) in levels {
        let matrix = banded(16, 3, half, 3);
        let fill = {
            let engine = sm_pipeline::SubmatrixEngine::default();
            engine.plan_for_matrix(&matrix, &comm).element_fill
        };
        let (dense_out, dense_wall) = run(matrix.clone(), BackendPolicy::Dense);
        let (sparse_out, sparse_wall) = run(matrix.clone(), BackendPolicy::SparseCsr);
        let (auto_out, _) = run(matrix, BackendPolicy::Auto);

        let dense_ref = dense_out[0].result.to_dense(&comm);
        let max_err = sparse_out[0]
            .result
            .to_dense(&comm)
            .max_abs_diff(&dense_ref);
        let sparse_report = &sparse_out[0].report;
        let auto_backend = auto_out[0].report.backend;

        // Contracts, asserted before reporting (the sparse_equivalence
        // suite pins the same bounds in-test).
        assert!(
            max_err < 1e-10,
            "{label}: unfiltered sparse deviates by {max_err}"
        );
        assert_eq!(dense_out[0].report.backend, SolveBackend::Dense);
        assert_eq!(sparse_report.backend, SolveBackend::SparseCsr);
        assert!(
            sparse_report.sparse_flops > 0,
            "{label}: sparse path counted no flops"
        );
        assert_eq!(
            auto_backend,
            if fill < SPARSE_FILL_THRESHOLD {
                SolveBackend::SparseCsr
            } else {
                SolveBackend::Dense
            },
            "{label}: auto policy must follow the shared threshold rule"
        );
        fills.push(fill);
        flops_by_level.push(sparse_report.sparse_flops);

        eprintln!(
            "{label}: fill {fill:.3}, auto={}, err {max_err:.3e}, sparse {} flops \
             ({} filtered), dense {dense_wall:.3e} s vs sparse {sparse_wall:.3e} s",
            backend_label(auto_backend),
            sparse_report.sparse_flops,
            sparse_report.sparse_filtered_nnz,
        );
        rows.push(vec![
            label.to_string(),
            format!("{fill:.6}"),
            backend_label(auto_backend).to_string(),
            sci(max_err),
            sparse_report.sparse_flops.to_string(),
            sparse_report.sparse_filtered_nnz.to_string(),
            sci(dense_wall),
            sci(sparse_wall),
        ]);
        series.push(Json::obj([
            ("fill_level", Json::Str(label.into())),
            ("element_fill", Json::Num(fill)),
            (
                "auto_backend",
                Json::Str(backend_label(auto_backend).into()),
            ),
            ("max_err_vs_dense", Json::Num(max_err)),
            ("sparse_flops", Json::Num(sparse_report.sparse_flops as f64)),
            (
                "sparse_filtered_nnz",
                Json::Num(sparse_report.sparse_filtered_nnz as f64),
            ),
            ("dense_wall_s", Json::Num(dense_wall)),
            ("sparse_wall_s", Json::Num(sparse_wall)),
        ]));
    }

    // Cross-level contracts: the sweep actually spans the threshold, and
    // sparse work grows with fill.
    assert!(
        fills.windows(2).all(|w| w[0] < w[1]),
        "fill levels must be strictly increasing: {fills:?}"
    );
    assert!(
        fills[0] < SPARSE_FILL_THRESHOLD && fills[2] > 0.5,
        "sweep must straddle the auto threshold: {fills:?}"
    );
    assert!(
        flops_by_level.windows(2).all(|w| w[0] < w[1]),
        "sparse flops must grow with fill: {flops_by_level:?}"
    );

    println!("\nAblation — dense vs sparse-CSR solve backend across fill fractions");
    print_table(&header, &rows);
    write_csv("ablation_sparse.csv", &header, &rows);
    // The acceptance artifact: the backend sweep under its stable name.
    write_bench_json(
        "sparse",
        Json::obj([
            (
                "workload",
                Json::Str("banded Newton–Schulz sign (serial queue)".into()),
            ),
            ("fill_threshold", Json::Num(SPARSE_FILL_THRESHOLD)),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
