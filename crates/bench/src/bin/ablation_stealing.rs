//! Ablation: static per-batch scheduler groups vs epoch-based work
//! stealing between groups.
//!
//! A constructed straggler batch — one large job plus many small jobs of
//! a recurring pattern — runs through the `Scheduler` at several world
//! sizes with stealing disabled (the static baseline) and enabled. The
//! binary asserts the PR's acceptance contract in-place: grand-canonical
//! results stay **bitwise-identical** to the serial `JobQueue` under any
//! steal schedule, the straggler batch at world ≥ 6 actually steals
//! (`stolen_jobs ≥ 1`), and the deterministic cost model shows the
//! re-deal lowering the max-rank idle estimate versus the static
//! schedule. It then reports the steal telemetry — epochs, stolen
//! jobs/ranks, estimated idle recovered, measured idle seconds — and
//! writes `results/BENCH_stealing.json`.
//!
//! As with the scheduler ablation, wall-clock speedup on a laptop host is
//! not the signal (thread ranks share cores); the deterministic estimate
//! columns are what transfer to a real cluster.

use std::time::Instant;

use sm_bench::output::{bench_table, fixed, print_table, sci, write_bench_json, write_csv, Json};
use sm_comsim::SerialComm;
use sm_core::engine::EngineOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    JobQueue, JobResult, MatrixJob, RankBudget, Scheduler, StealPolicy, SubmatrixEngine,
};

/// Deterministic banded symmetric matrix with a spectral gap at 0.
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// The straggler batch: one large job + 18 smalls of one recurring
/// pattern. Under LPT at 6 ranks the large job pins the steal horizon
/// while three groups queue beyond it, so a tail of smalls defers to a
/// second epoch and runs on re-dealt ranks.
fn straggler_batch() -> Vec<MatrixJob> {
    let mut jobs = vec![MatrixJob::density("large", banded(10, 2, 1), 0.0)];
    for i in 0..18u64 {
        jobs.push(MatrixJob::density(
            format!("small-{i}"),
            banded(4, 2, i),
            0.0,
        ));
    }
    jobs
}

fn fresh_engine() -> std::sync::Arc<SubmatrixEngine> {
    std::sync::Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

fn bitwise_equal(a: &[JobResult], b: &[JobResult]) -> bool {
    let comm = SerialComm::new();
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.result
                .to_dense(&comm)
                .allclose(&y.result.to_dense(&comm), 0.0)
        })
}

fn main() {
    let jobs = straggler_batch();
    let n_jobs = jobs.len();
    println!(
        "straggler batch: {n_jobs} jobs (1 large + {} small)",
        n_jobs - 1
    );

    let queue = JobQueue::new(fresh_engine());
    let t = Instant::now();
    let serial = queue.run(jobs.clone());
    let serial_seconds = t.elapsed().as_secs_f64();

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let header = [
        "world",
        "policy",
        "epochs",
        "stolen_jobs",
        "stolen_ranks",
        "est_max_idle_static",
        "est_max_idle_epochs",
        "est_idle_recovered",
        "measured_idle_s",
        "total_s",
    ];
    for world in [4usize, 6, 8] {
        for policy in [StealPolicy::Disabled, StealPolicy::EpochRebalance] {
            let sched = Scheduler::new(fresh_engine(), RankBudget::default()).with_policy(policy);
            let t = Instant::now();
            let outcome = sched.run(world, jobs.clone());
            let seconds = t.elapsed().as_secs_f64();
            assert!(
                bitwise_equal(&outcome.results, &serial),
                "world {world} policy {policy:?} deviates from the serial queue"
            );
            let s = outcome.steal_stats;
            if policy == StealPolicy::Disabled {
                assert_eq!(s.epochs, 1, "static baseline must stay single-epoch");
                assert_eq!(s.stolen_jobs, 0);
            } else if world == 6 {
                // The acceptance contract of the stealing PR (at 6 ranks;
                // larger worlds may legitimately balance statically — the
                // proportional rank deal absorbs the straggler — which is
                // a single-epoch schedule with nothing to steal).
                assert!(s.stolen_jobs >= 1, "straggler batch must steal: {s:?}");
                assert!(
                    s.est_max_rank_idle_epochs < s.est_max_rank_idle_static,
                    "stealing must lower the max-rank idle estimate: {s:?}"
                );
            }
            let policy_name = match policy {
                StealPolicy::Disabled => "static",
                StealPolicy::EpochRebalance => "stealing",
            };
            eprintln!(
                "world {world} {policy_name}: {} epochs, {} stolen jobs ({} ranks), \
                 est idle recovered {:.3e}, {seconds:.4} s",
                s.epochs,
                s.stolen_jobs,
                s.stolen_ranks,
                s.est_idle_cost_recovered(),
            );
            rows.push(vec![
                world.to_string(),
                policy_name.to_string(),
                s.epochs.to_string(),
                s.stolen_jobs.to_string(),
                s.stolen_ranks.to_string(),
                sci(s.est_max_rank_idle_static),
                sci(s.est_max_rank_idle_epochs),
                sci(s.est_idle_cost_recovered()),
                fixed(s.measured_idle_seconds, 4),
                sci(seconds),
            ]);
            series.push(Json::obj([
                ("world", Json::Num(world as f64)),
                ("policy", Json::Str(policy_name.into())),
                ("epochs", Json::Num(s.epochs as f64)),
                ("stolen_jobs", Json::Num(s.stolen_jobs as f64)),
                ("stolen_ranks", Json::Num(s.stolen_ranks as f64)),
                (
                    "est_max_rank_idle_static",
                    Json::Num(s.est_max_rank_idle_static),
                ),
                (
                    "est_max_rank_idle_epochs",
                    Json::Num(s.est_max_rank_idle_epochs),
                ),
                ("est_idle_recovered", Json::Num(s.est_idle_cost_recovered())),
                ("measured_idle_s", Json::Num(s.measured_idle_seconds)),
                (
                    "measured_max_rank_idle_s",
                    Json::Num(s.measured_max_rank_idle_seconds),
                ),
                ("total_s", Json::Num(seconds)),
            ]));
        }
    }

    println!("\nAblation — static scheduler groups vs epoch-based work stealing");
    print_table(&header, &rows);
    write_csv("ablation_stealing.csv", &header, &rows);
    // The acceptance artifact: the steal sweep under its stable name.
    write_bench_json(
        "stealing",
        Json::obj([
            (
                "workload",
                Json::Str("straggler batch: 1 large + 18 small".into()),
            ),
            ("jobs", Json::Num(n_jobs as f64)),
            ("serial_total_s", Json::Num(serial_seconds)),
            ("series", Json::Arr(series)),
            ("table", bench_table(&header, &rows)),
        ]),
    );
}
