//! Paper Fig. 1: absolute energy error per atom vs system size for several
//! truncation thresholds ε_filter, using Newton–Schulz purification.
//!
//! Expected shape: for a fixed ε_filter the error per atom stays roughly
//! constant as the system grows; smaller ε_filter gives a lower curve.
//! Reference energies use ε_filter = 1e-10 (the paper uses 1e-12 at its
//! larger magnitudes).

use sm_bench::output::{paper_scale, print_table, sci, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::energy::{band_energy, error_mev_per_atom};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::baseline::{newton_schulz_density, NewtonSchulzOptions};

fn main() {
    let comm = SerialComm::new();
    let basis = accuracy_basis();
    let filters = [1e-4, 1e-5, 1e-6, 1e-7];
    let reference_filter = 1e-10;
    let nreps: &[usize] = if paper_scale() {
        &[1, 2, 3, 4]
    } else {
        &[1, 2, 3]
    };

    let mut rows = Vec::new();
    for &nrep in nreps {
        let water = WaterBox::cubic(nrep, SEED);
        let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
        let n_atoms = water.n_atoms();

        let energy_at = |eps: f64| -> f64 {
            let (d, report) = newton_schulz_density(
                &kt,
                sys.mu,
                &NewtonSchulzOptions {
                    eps_filter: eps,
                    max_iter: 200,
                },
                &comm,
            );
            assert!(report.converged, "NS did not converge at eps {eps}");
            band_energy(&d, &kt, &comm)
        };

        let e_ref = energy_at(reference_filter);
        for &eps in &filters {
            let e = energy_at(eps);
            let err = error_mev_per_atom(e, e_ref, n_atoms);
            rows.push(vec![n_atoms.to_string(), sci(eps), format!("{err:.6e}")]);
            eprintln!("atoms {n_atoms} eps {eps:>8.0e} error {err:.4e} meV/atom");
        }
    }

    println!("\nFig. 1 — error per atom vs system size (Newton-Schulz purification)");
    print_table(&["atoms", "eps_filter", "error_mev_per_atom"], &rows);
    write_csv(
        "fig01_filter_error_vs_size.csv",
        &["atoms", "eps_filter", "error_mev_per_atom"],
        &rows,
    );
}
