//! Paper Fig. 2: block sparsity pattern of the orthogonalized Kohn–Sham
//! matrix for 864 H₂O molecules (SZV, ε = 1e-5).
//!
//! Writes the pattern as a PBM image (`results/fig02_pattern.pbm`), prints
//! a coarse ASCII rendering, and reports the occupancy statistics. The
//! banded structure with consecutive building-block indexing (Sec. IV-B2)
//! should be clearly visible.

use sm_bench::output::{fixed, results_dir, write_csv};
use sm_bench::workloads::{pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_dbcsr::pattern::{stats, to_ascii, to_pbm};

fn main() {
    // NREP = 3 ⇒ 864 molecules, exactly the paper's figure.
    let water = WaterBox::cubic(3, SEED);
    let basis = pattern_basis_szv();
    let eps = 1e-5;
    let pattern = block_pattern(&water, &basis, eps, 1.0);
    let s = stats(&pattern);

    println!(
        "Fig. 2 — {} molecules, eps = {eps:.0e}: {} of {} blocks nonzero ({:.1}%)",
        water.n_molecules(),
        s.nnz_blocks,
        s.nb * s.nb,
        100.0 * s.block_fill
    );
    println!(
        "blocks per column: avg {:.1}, max {}",
        s.avg_col_nnz, s.max_col_nnz
    );
    println!("\n{}", to_ascii(&pattern, 60));

    let pbm = to_pbm(&pattern);
    let path = results_dir().join("fig02_pattern.pbm");
    std::fs::write(&path, pbm).expect("write PBM");
    println!("wrote {}", path.display());

    write_csv(
        "fig02_pattern_stats.csv",
        &[
            "molecules",
            "nnz_blocks",
            "block_fill",
            "avg_col_nnz",
            "max_col_nnz",
        ],
        &[vec![
            water.n_molecules().to_string(),
            s.nnz_blocks.to_string(),
            fixed(s.block_fill, 6),
            fixed(s.avg_col_nnz, 2),
            s.max_col_nnz.to_string(),
        ]],
    );
}
