//! Paper Fig. 4: dimension of the submatrices vs the dimension of the full
//! orthogonalized Kohn–Sham matrix for SZV and DZVP over system size.
//!
//! Expected shape: dim(K̃) grows linearly with molecule count forever;
//! dim(SM) grows until the interaction sphere fits in the box (~200
//! molecules in the paper), then flattens — the linear-scaling regime.
//! DZVP sits above SZV both in total and in submatrix dimension.

use sm_bench::output::{paper_scale, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_dzvp, pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::{BasisSet, WaterBox};
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn series(basis: &BasisSet, label: &str, nreps: &[usize], rows: &mut Vec<Vec<String>>) {
    for &nrep in nreps {
        let water = WaterBox::cubic(nrep, SEED);
        let pattern = block_pattern(&water, basis, 1e-5, 1.0);
        let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
        let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
        rows.push(vec![
            label.to_string(),
            water.n_molecules().to_string(),
            dims.n().to_string(),
            format!("{:.0}", plan.avg_dim()),
            plan.max_dim().to_string(),
        ]);
        eprintln!(
            "{label}: {} molecules, dim(K~) = {}, dim(SM) avg {:.0} max {}",
            water.n_molecules(),
            dims.n(),
            plan.avg_dim(),
            plan.max_dim()
        );
    }
}

fn main() {
    let nreps_szv: &[usize] = if paper_scale() {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    } else {
        &[1, 2, 3, 4, 5]
    };
    let nreps_dzvp: &[usize] = if paper_scale() {
        &[1, 2, 3, 4, 5, 6]
    } else {
        &[1, 2, 3, 4]
    };

    let mut rows = Vec::new();
    series(&pattern_basis_szv(), "SZV", nreps_szv, &mut rows);
    series(&pattern_basis_dzvp(), "DZVP", nreps_dzvp, &mut rows);

    println!("\nFig. 4 — matrix dimension vs submatrix dimension");
    let header = ["basis", "molecules", "dim_K", "dim_SM_avg", "dim_SM_max"];
    print_table(&header, &rows);
    write_csv("fig04_submatrix_dimension.csv", &header, &rows);

    // Shape check: the submatrix dimension must flatten (linear-scaling
    // regime) while dim(K̃) keeps growing.
    let szv_dims: Vec<f64> = rows
        .iter()
        .filter(|r| r[0] == "SZV")
        .map(|r| r[3].parse::<f64>().expect("numeric"))
        .collect();
    if szv_dims.len() >= 3 {
        let last = szv_dims[szv_dims.len() - 1];
        let prev = szv_dims[szv_dims.len() - 2];
        let growth = (last - prev).abs() / prev.max(1.0);
        println!(
            "\nlinear-scaling check: last SZV dim(SM) step grew {:.1}% (flat = regime reached)",
            growth * 100.0
        );
    }
}
