//! Paper Fig. 5: estimated additional speedup S (Eq. 15) when combining
//! block columns into submatrices, as a function of the number of
//! submatrices, for the two heuristics of Sec. IV-C2: k-means on real-space
//! coordinates and METIS-style partitioning of the sparsity-pattern graph.
//!
//! Expected shape: both heuristics produce similar S despite using
//! completely different information; S peaks at intermediate submatrix
//! counts and degrades when over-combining.

use sm_bench::output::{fixed, paper_scale, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_core::cluster::{graph, groups_from_assignment, kmeans};
use sm_core::plan::estimated_speedup;
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn main() {
    // Paper: 6912 molecules (NREP = 6), eps = 1e-7. Default here: NREP = 4.
    let nrep = if paper_scale() { 6 } else { 4 };
    let water = WaterBox::cubic(nrep, SEED);
    let basis = pattern_basis_szv();
    let pattern = block_pattern(&water, &basis, 1e-7, 1.0);
    let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
    let singles = SubmatrixPlan::one_per_column(&pattern, &dims);
    let nmol = water.n_molecules();
    println!(
        "{} molecules, {} nonzero blocks, single-column cost {:.3e}",
        nmol,
        pattern.nnz(),
        singles.total_cost()
    );

    let points: Vec<[f64; 3]> = water.centers().iter().map(|c| [c.x, c.y, c.z]).collect();
    // Edge weights follow the coupling magnitude (Gaussian decay of the
    // molecule distance): inside dense neighborhoods an unweighted cut is
    // geometry-blind, while METIS-quality partitions need the decay signal.
    let smax = basis.max_sigma();
    let edges: Vec<(usize, usize, f64)> = pattern
        .entries()
        .iter()
        .filter(|&&(r, c)| r < c)
        .map(|&(r, c)| {
            let d = water
                .cell
                .distance(water.molecules[r].center(), water.molecules[c].center());
            (r, c, (-d * d / (4.0 * smax * smax)).exp())
        })
        .collect();
    let g = graph::Graph::from_edges(water.n_molecules(), &edges, vec![1.0; water.n_molecules()]);
    println!("sparsity graph: {} vertices, {} edges", g.n(), edges.len());

    let cluster_counts: Vec<usize> = [64, 32, 16, 8, 4, 2]
        .iter()
        .map(|per| nmol / per)
        .filter(|&k| k >= 2)
        .collect();

    let mut rows = Vec::new();
    for &k in &cluster_counts {
        let km = kmeans::kmeans(&points, k, 1, 100);
        let km_plan =
            SubmatrixPlan::from_groups(&pattern, &dims, &groups_from_assignment(&km.assignment, k));
        let s_km = estimated_speedup(&singles, &km_plan);

        let part = graph::partition_kway(&g, k, &graph::PartitionOptions::default());
        let gp_plan =
            SubmatrixPlan::from_groups(&pattern, &dims, &groups_from_assignment(&part, k));
        let s_gp = estimated_speedup(&singles, &gp_plan);

        rows.push(vec![
            km_plan.len().to_string(),
            fixed(s_km, 4),
            gp_plan.len().to_string(),
            fixed(s_gp, 4),
        ]);
        eprintln!(
            "k = {k}: k-means S = {s_km:.3} ({} SMs), graph S = {s_gp:.3} ({} SMs)",
            km_plan.len(),
            gp_plan.len()
        );
    }

    println!("\nFig. 5 — estimated speedup S vs number of submatrices");
    let header = ["n_sm_kmeans", "S_kmeans", "n_sm_graph", "S_graph"];
    print_table(&header, &rows);
    write_csv("fig05_clustering_speedup.csv", &header, &rows);

    // Shape check: the two heuristics agree to within ~20% somewhere in
    // the sweep, as the paper observes.
    let close = rows.iter().any(|r| {
        let a: f64 = r[1].parse().expect("numeric");
        let b: f64 = r[3].parse().expect("numeric");
        (a - b).abs() / a.max(b) < 0.2
    });
    println!(
        "\nheuristic agreement within 20% at some cluster count: {}",
        if close {
            "yes (paper's observation)"
        } else {
            "no"
        }
    );
}
