//! Paper Fig. 6: runtime of the submatrix method vs 2nd-order
//! Newton–Schulz for various ε_filter.
//!
//! Expected shape: both methods speed up as ε_filter grows (sparser
//! matrices); the submatrix method benefits much more strongly and
//! overtakes Newton–Schulz beyond a crossover filter (paper: ε > 1e-5).
//!
//! Two time columns per method: measured wall seconds on this machine
//! (laptop-scale system) and the analytic 80-core cluster model at the
//! same sparsity pattern (the substitution for the paper's testbed; see
//! DESIGN.md).

use std::time::Instant;

use sm_bench::output::{paper_scale, print_table, sci, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_comsim::{ClusterModel, SerialComm};
use sm_core::baseline::{newton_schulz_density, NewtonSchulzOptions};
use sm_core::model::{model_newton_schulz_run, model_submatrix_run, ns_iteration_estimate};
use sm_core::{submatrix_density, SubmatrixOptions, SubmatrixPlan};

fn main() {
    let comm = SerialComm::new();
    let nrep = if paper_scale() { 3 } else { 2 };
    let water = WaterBox::cubic(nrep, SEED);
    let basis = accuracy_basis();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    println!(
        "system: {} molecules ({} atoms), n = {}",
        water.n_molecules(),
        water.n_atoms(),
        kt.n()
    );

    let filters = [1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    let cluster = ClusterModel::paper_testbed();
    let mut rows = Vec::new();

    for &eps in &filters {
        // Filter the input to this experiment's sparsity.
        let mut kt_f = kt.clone();
        kt_f.store_mut().filter(eps);
        let pattern = kt_f.global_pattern(&comm);

        // Submatrix method, measured.
        let t0 = Instant::now();
        let (_, report) = submatrix_density(&kt_f, sys.mu, &SubmatrixOptions::default(), &comm);
        let t_sm = t0.elapsed().as_secs_f64();

        // Newton–Schulz, measured.
        let t0 = Instant::now();
        let (_, ns_report) = newton_schulz_density(
            &kt_f,
            sys.mu,
            &NewtonSchulzOptions {
                eps_filter: eps,
                max_iter: 200,
            },
            &comm,
        );
        let t_ns = t0.elapsed().as_secs_f64();

        // 80-core cluster model at the same pattern.
        let plan = SubmatrixPlan::one_per_column(&pattern, kt_f.dims());
        let sm_model = model_submatrix_run(&plan, &pattern, kt_f.dims(), 80, &cluster);
        let ns_iters = ns_iteration_estimate(0.05, eps.max(1e-12));
        let ns_model =
            model_newton_schulz_run(&pattern, kt_f.dims(), 80, 5, ns_iters, 2.0, &cluster);

        rows.push(vec![
            sci(eps),
            format!("{t_sm:.3}"),
            format!("{t_ns:.3}"),
            format!("{:.4}", sm_model.total()),
            format!("{:.4}", ns_model.total()),
            format!("{:.0}", report.avg_dim),
            ns_report.iterations.to_string(),
        ]);
        eprintln!(
            "eps {eps:>8.0e}: SM wall {t_sm:.3}s / NS wall {t_ns:.3}s | \
             model80 SM {:.4}s NS {:.4}s | avg dim {:.0}, NS iters {}",
            sm_model.total(),
            ns_model.total(),
            report.avg_dim,
            ns_report.iterations
        );
    }

    println!("\nFig. 6 — runtime vs eps_filter (crossover expected at moderate filters)");
    let header = [
        "eps_filter",
        "sm_wall_s",
        "ns_wall_s",
        "sm_model80_s",
        "ns_model80_s",
        "avg_sm_dim",
        "ns_iters",
    ];
    print_table(&header, &rows);
    write_csv("fig06_runtime_vs_filter.csv", &header, &rows);

    // Crossover check on the modeled 80-core times.
    let sm_last: f64 = rows.last().expect("rows")[3].parse().expect("numeric");
    let ns_last: f64 = rows.last().expect("rows")[4].parse().expect("numeric");
    println!(
        "\nat the loosest filter the submatrix method is {:.1}x {} than Newton-Schulz (model)",
        (ns_last / sm_last).max(sm_last / ns_last),
        if sm_last < ns_last {
            "faster"
        } else {
            "slower"
        }
    );
}
