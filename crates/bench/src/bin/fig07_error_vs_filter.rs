//! Paper Fig. 7: energy error of the submatrix method and Newton–Schulz
//! for different ε_filter (same system as Fig. 6).
//!
//! Expected shape: both errors grow with ε_filter and stay within roughly
//! an order of magnitude of each other — the approximation inherent to the
//! submatrix method does not dominate the truncation error. The sign of
//! the error can flip (the paper marks positive/negative separately).

use sm_bench::output::{paper_scale, print_table, sci, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::energy::{band_energy, signed_error_mev_per_atom};
use sm_chem::WaterBox;
use sm_comsim::SerialComm;
use sm_core::baseline::{newton_schulz_density, NewtonSchulzOptions};
use sm_core::{submatrix_density, SubmatrixOptions};

fn main() {
    let comm = SerialComm::new();
    let nrep = if paper_scale() { 3 } else { 2 };
    let water = WaterBox::cubic(nrep, SEED);
    let basis = accuracy_basis();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    let n_atoms = water.n_atoms();
    println!("system: {} molecules, n = {}", water.n_molecules(), kt.n());

    // Reference: Newton–Schulz at a near-build-precision filter (the paper
    // uses eps = 1e-15 against its 1e-9..1e-2 sweep).
    let (d_ref, _) = newton_schulz_density(
        &kt,
        sys.mu,
        &NewtonSchulzOptions {
            eps_filter: 1e-11,
            max_iter: 200,
        },
        &comm,
    );
    let e_ref = band_energy(&d_ref, &kt, &comm);
    println!("reference band energy: {e_ref:.8} Ha");

    let filters = [1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];
    let mut rows = Vec::new();
    for &eps in &filters {
        let mut kt_f = kt.clone();
        kt_f.store_mut().filter(eps);

        let (d_sm, _) = submatrix_density(&kt_f, sys.mu, &SubmatrixOptions::default(), &comm);
        let e_sm = band_energy(&d_sm, &kt, &comm);
        let err_sm = signed_error_mev_per_atom(e_sm, e_ref, n_atoms);

        let (d_ns, _) = newton_schulz_density(
            &kt_f,
            sys.mu,
            &NewtonSchulzOptions {
                eps_filter: eps,
                max_iter: 200,
            },
            &comm,
        );
        let e_ns = band_energy(&d_ns, &kt, &comm);
        let err_ns = signed_error_mev_per_atom(e_ns, e_ref, n_atoms);

        rows.push(vec![
            sci(eps),
            format!("{err_sm:+.6e}"),
            format!("{err_ns:+.6e}"),
        ]);
        eprintln!("eps {eps:>8.0e}: SM {err_sm:+.4e} meV/atom, NS {err_ns:+.4e} meV/atom");
    }

    println!("\nFig. 7 — signed energy error vs eps_filter");
    let header = [
        "eps_filter",
        "submatrix_mev_per_atom",
        "newton_schulz_mev_per_atom",
    ];
    print_table(&header, &rows);
    write_csv("fig07_error_vs_filter.csv", &header, &rows);

    // Shape check: errors grow toward loose filters for both methods.
    let first_sm: f64 = rows[0][1].parse::<f64>().expect("numeric").abs();
    let last_sm: f64 = rows.last().expect("rows")[1]
        .parse::<f64>()
        .expect("numeric")
        .abs();
    println!(
        "\nsubmatrix error grows {:.1e} -> {:.1e} meV/atom across the sweep",
        first_sm, last_sm
    );
}
