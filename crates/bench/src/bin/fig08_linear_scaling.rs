//! Paper Fig. 8: runtime of the submatrix method for increasing system
//! sizes at fixed resources (80 cores, ε_filter = 1e-5).
//!
//! Expected shape: once the linear-scaling regime is reached the modeled
//! time grows linearly in the number of atoms (the paper fits a straight
//! line). Times come from the 80-core cluster model over the exact counted
//! work of each system's plan; small systems are additionally measured in
//! wall-clock on this machine.

use std::time::Instant;

use sm_bench::output::{fixed, paper_scale, print_table, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_comsim::{ClusterModel, SerialComm};
use sm_core::model::model_submatrix_run;
use sm_core::{submatrix_density, SubmatrixOptions, SubmatrixPlan};
use sm_dbcsr::BlockedDims;

fn main() {
    let cluster = ClusterModel::paper_testbed();
    let basis = pattern_basis_szv();
    let nreps: &[usize] = if paper_scale() {
        &[2, 3, 4, 5, 6, 7, 8]
    } else {
        &[2, 3, 4, 5, 6]
    };

    let mut rows = Vec::new();
    for &nrep in nreps {
        let water = WaterBox::cubic(nrep, SEED);
        let pattern = block_pattern(&water, &basis, 1e-5, 1.0);
        let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
        let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
        let t = model_submatrix_run(&plan, &pattern, &dims, 80, &cluster);
        rows.push(vec![
            water.n_atoms().to_string(),
            format!("{:.4}", t.total()),
            format!("{:.4}", t.compute),
            format!("{:.5}", t.init + t.writeback),
        ]);
        eprintln!(
            "NREP {nrep}: {} atoms, modeled 80-core time {:.3}s (compute {:.3}s)",
            water.n_atoms(),
            t.total(),
            t.compute
        );
    }

    println!("\nFig. 8 — modeled 80-core runtime vs system size (eps = 1e-5)");
    let header = ["atoms", "total_s", "compute_s", "comm_s"];
    print_table(&header, &rows);
    write_csv("fig08_linear_scaling.csv", &header, &rows);

    // Linearity check across the last three sizes.
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| {
            (
                r[0].parse::<f64>().expect("numeric"),
                r[1].parse::<f64>().expect("numeric"),
            )
        })
        .collect();
    if pts.len() >= 3 {
        let k = pts.len();
        let r1 = pts[k - 1].1 / pts[k - 2].1;
        let n1 = pts[k - 1].0 / pts[k - 2].0;
        println!(
            "\nlinearity: time ratio {:.2} vs size ratio {:.2} over the last step \
             (equal = perfectly linear)",
            r1, n1
        );
    }

    // Small measured wall-clock companion series (this machine, laptop
    // basis ranges).
    let comm = SerialComm::new();
    let mut wall_rows = Vec::new();
    for nrep in [1usize, 2] {
        let water = WaterBox::cubic(nrep, SEED);
        let (sys, kt) = build_orthogonalized(&water, &accuracy_basis(), 1e-11, 1e-11);
        let mut kt_f = kt.clone();
        kt_f.store_mut().filter(1e-5);
        let t0 = Instant::now();
        let _ = submatrix_density(&kt_f, sys.mu, &SubmatrixOptions::default(), &comm);
        wall_rows.push(vec![
            water.n_atoms().to_string(),
            fixed(t0.elapsed().as_secs_f64(), 3),
        ]);
    }
    println!("\nmeasured wall-clock companion (this machine):");
    print_table(&["atoms", "wall_s"], &wall_rows);
    write_csv(
        "fig08_linear_scaling_wall.csv",
        &["atoms", "wall_s"],
        &wall_rows,
    );
}
