//! Paper Fig. 9: strong scaling of the submatrix method — fixed system
//! (NREP = 7, 32,928 atoms), cores scaled from 80 to 320.
//!
//! Expected shape: time falls with cores; efficiency relative to 80 cores
//! stays ≳ 0.8 at 320 cores (the paper reports 83%).

use sm_bench::output::{fixed, paper_scale, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_comsim::ClusterModel;
use sm_core::model::model_submatrix_run;
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn main() {
    let nrep = if paper_scale() { 7 } else { 5 };
    let water = WaterBox::cubic(nrep, SEED);
    let basis = pattern_basis_szv();
    let pattern = block_pattern(&water, &basis, 1e-5, 1.0);
    let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
    let plan = SubmatrixPlan::one_per_column(&pattern, &dims);
    let cluster = ClusterModel::paper_testbed();
    println!(
        "system: {} atoms, {} submatrices, avg dim {:.0}",
        water.n_atoms(),
        plan.len(),
        plan.avg_dim()
    );

    let core_counts = [80usize, 120, 160, 200, 240, 280, 320];
    let t80 = model_submatrix_run(&plan, &pattern, &dims, 80, &cluster).total();

    let mut rows = Vec::new();
    for &cores in &core_counts {
        let t = model_submatrix_run(&plan, &pattern, &dims, cores, &cluster).total();
        let efficiency = t80 * 80.0 / (t * cores as f64);
        rows.push(vec![
            cores.to_string(),
            format!("{t:.4}"),
            fixed(efficiency, 3),
        ]);
        eprintln!("{cores} cores: {t:.3}s, efficiency {efficiency:.3}");
    }

    println!("\nFig. 9 — strong scaling (modeled, eps = 1e-5)");
    let header = ["cores", "time_s", "efficiency"];
    print_table(&header, &rows);
    write_csv("fig09_strong_scaling.csv", &header, &rows);

    let final_eff: f64 = rows.last().expect("rows")[2].parse().expect("numeric");
    println!("\nefficiency at 4x cores: {final_eff:.2} (paper reports 0.83 on its testbed)");
}
