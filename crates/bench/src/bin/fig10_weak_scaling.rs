//! Paper Fig. 10: weak scaling — system size and cores grow together
//! (12,000 atoms / 40 cores per step, base NREP = 5 replicated along one
//! dimension), submatrix method vs Newton–Schulz.
//!
//! Expected shape: both lose efficiency toward many nodes, but the
//! submatrix method's weak-scaling efficiency stays above Newton–Schulz
//! (whose Cannon communication grows with the grid).

use sm_bench::output::{fixed, paper_scale, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_szv, SEED};
use sm_chem::builder::block_pattern;
use sm_chem::WaterBox;
use sm_comsim::ClusterModel;
use sm_core::model::{model_newton_schulz_run, model_submatrix_run, ns_iteration_estimate};
use sm_core::SubmatrixPlan;
use sm_dbcsr::BlockedDims;

fn main() {
    let base_nrep = if paper_scale() { 5 } else { 3 };
    let basis = pattern_basis_szv();
    let cluster = ClusterModel::paper_testbed();
    let replications: &[usize] = if paper_scale() {
        &[1, 2, 4, 8, 16, 32]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let ns_iters = ns_iteration_estimate(0.05, 1e-5);

    let mut rows = Vec::new();
    let mut t_sm_base = 0.0f64;
    let mut t_ns_base = 0.0f64;
    for (step, &nx) in replications.iter().enumerate() {
        let water = WaterBox::elongated(base_nrep, nx, SEED);
        let cores = 40 * nx;
        let pattern = block_pattern(&water, &basis, 1e-5, 1.0);
        let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
        let plan = SubmatrixPlan::one_per_column(&pattern, &dims);

        let t_sm = model_submatrix_run(&plan, &pattern, &dims, cores, &cluster).total();
        let t_ns =
            model_newton_schulz_run(&pattern, &dims, cores, 5, ns_iters, 2.0, &cluster).total();
        if step == 0 {
            t_sm_base = t_sm;
            t_ns_base = t_ns;
        }
        let eff_sm = t_sm_base / t_sm;
        let eff_ns = t_ns_base / t_ns;
        rows.push(vec![
            cores.to_string(),
            water.n_atoms().to_string(),
            format!("{t_sm:.4}"),
            fixed(eff_sm, 3),
            format!("{t_ns:.4}"),
            fixed(eff_ns, 3),
        ]);
        eprintln!(
            "{cores} cores / {} atoms: SM {t_sm:.3}s (eff {eff_sm:.3}), \
             NS {t_ns:.3}s (eff {eff_ns:.3})",
            water.n_atoms()
        );
    }

    println!("\nFig. 10 — weak scaling (modeled, eps = 1e-5)");
    let header = [
        "cores",
        "atoms",
        "sm_time_s",
        "sm_efficiency",
        "ns_time_s",
        "ns_efficiency",
    ];
    print_table(&header, &rows);
    write_csv("fig10_weak_scaling.csv", &header, &rows);

    let last = rows.last().expect("rows");
    let eff_sm: f64 = last[3].parse().expect("numeric");
    let eff_ns: f64 = last[5].parse().expect("numeric");
    println!(
        "\nfinal weak-scaling efficiency: submatrix {eff_sm:.2} vs Newton-Schulz {eff_ns:.2} \
         (paper: submatrix higher)"
    );
}
