//! Paper Fig. 11: block-wise and element-wise sparsity of the submatrices
//! compared to the block-wise sparsity of K̃, for SZV and DZVP.
//!
//! Expected shape: in the linear-scaling regime the submatrices are nearly
//! block-dense (fraction close to 1 relative to their own window), while
//! K̃'s global fill keeps dropping; element-wise, DZVP submatrices are
//! much sparser than block-wise storage suggests (< 20% in the paper) —
//! the motivation for future element-wise sparse kernels (Sec. V-C).

use sm_bench::output::{fixed, paper_scale, print_table, write_csv};
use sm_bench::workloads::{pattern_basis_dzvp, pattern_basis_szv, SEED};
use sm_chem::builder::{block_pattern, build_system};
use sm_chem::{BasisSet, WaterBox};
use sm_core::assembly::{assemble, SubmatrixSpec};
use sm_dbcsr::BlockedDims;

/// Element-wise nonzero fraction of a few sampled single-column
/// submatrices, assembled with real matrix values.
fn element_fill(water: &WaterBox, basis: &BasisSet, eps: f64, samples: usize) -> f64 {
    let sys = build_system(water, basis, 0, 1, eps);
    let comm = sm_comsim::SerialComm::new();
    let pattern = sys.k.global_pattern(&comm);
    let dims = sys.dims.clone();
    let nmol = water.n_molecules();
    let mut total_nonzero = 0usize;
    let mut total_elems = 0usize;
    for s in 0..samples {
        let col = (s * nmol) / samples;
        let spec = SubmatrixSpec::build(&pattern, &dims, &[col]);
        let a = assemble(&spec, &pattern, &dims, |r, c| sys.k.block(r, c));
        total_nonzero += a.count_above(eps);
        total_elems += a.nrows() * a.ncols();
    }
    total_nonzero as f64 / total_elems.max(1) as f64
}

fn series(basis: &BasisSet, label: &str, nreps: &[usize], eps: f64, rows: &mut Vec<Vec<String>>) {
    for &nrep in nreps {
        let water = WaterBox::cubic(nrep, SEED);
        let pattern = block_pattern(&water, basis, eps, 1.0);
        let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
        // Block-wise fill of K̃ globally and of an interior submatrix.
        let global_fill = pattern.fill_fraction();
        let mid = water.n_molecules() / 2;
        let spec = SubmatrixSpec::build(&pattern, &dims, &[mid]);
        let sm_block_fill = spec.block_fill(&pattern);
        let sm_elem_fill = element_fill(&water, basis, eps, 4);
        rows.push(vec![
            label.to_string(),
            water.n_molecules().to_string(),
            fixed(global_fill, 4),
            fixed(sm_block_fill, 4),
            fixed(sm_elem_fill, 4),
        ]);
        eprintln!(
            "{label} {} mols: K~ fill {global_fill:.3}, SM block fill {sm_block_fill:.3}, \
             SM element fill {sm_elem_fill:.3}",
            water.n_molecules()
        );
    }
}

fn main() {
    let eps = 1e-5;
    let nreps_szv: &[usize] = if paper_scale() {
        &[1, 2, 3, 4, 5, 6]
    } else {
        &[1, 2, 3, 4]
    };
    let nreps_dzvp: &[usize] = if paper_scale() {
        &[1, 2, 3, 4]
    } else {
        &[1, 2, 3]
    };

    let mut rows = Vec::new();
    series(&pattern_basis_szv(), "SZV", nreps_szv, eps, &mut rows);
    series(&pattern_basis_dzvp(), "DZVP", nreps_dzvp, eps, &mut rows);

    println!("\nFig. 11 — sparsity of K~ vs submatrices (block- and element-wise)");
    let header = [
        "basis",
        "molecules",
        "ktilde_block_fill",
        "sm_block_fill",
        "sm_element_fill",
    ];
    print_table(&header, &rows);
    write_csv("fig11_submatrix_sparsity.csv", &header, &rows);

    // Shape check: DZVP element fill < SZV element fill at the largest
    // common size (the paper's key observation).
    let szv_last: f64 = rows.iter().rfind(|r| r[0] == "SZV").expect("SZV rows")[4]
        .parse()
        .expect("numeric");
    let dzvp_last: f64 = rows.iter().rfind(|r| r[0] == "DZVP").expect("DZVP rows")[4]
        .parse()
        .expect("numeric");
    println!(
        "\nelement-wise fill at largest size: SZV {szv_last:.3} vs DZVP {dzvp_last:.3} \
         (paper: DZVP much sparser element-wise)"
    );
}
