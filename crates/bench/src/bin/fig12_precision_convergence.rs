//! Paper Fig. 12: convergence of the 3rd-order Padé sign iteration in
//! different precisions — energy difference from the converged FP64 result
//! for a combined submatrix of water molecules.
//!
//! Expected shape: all modes converge after ~6–8 iterations; the reduced-
//! precision energies land within a few meV/atom of FP64 but fluctuate at
//! their noise floor; GPU-FP32 and FPGA-FP32 differ slightly from each
//! other (summation order).

use sm_accel::pade::{energy_differences_mev_per_atom, pade3_sign_traced, PadeTraceOptions};
use sm_accel::PrecisionMode;
use sm_bench::output::{paper_scale, print_table, sci, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_core::assembly::{assemble, SubmatrixSpec};

fn main() {
    // Combined submatrix of a block of molecules (paper: 32 molecules of a
    // 4000-molecule system). Assemble from an NREP = 2 system by default.
    let group_size = if paper_scale() { 32 } else { 8 };
    let water = WaterBox::cubic(2, SEED);
    let basis = accuracy_basis();
    let comm = sm_comsim::SerialComm::new();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    let mut kt_f = kt.clone();
    kt_f.store_mut().filter(1e-6);
    let pattern = kt_f.global_pattern(&comm);
    let dims = kt_f.dims().clone();
    let group: Vec<usize> = (0..group_size).collect();
    let spec = SubmatrixSpec::build(&pattern, &dims, &group);
    let a = assemble(&spec, &pattern, &dims, |r, c| kt_f.block(r, c));
    let n_atoms = 3 * group_size;
    println!(
        "combined submatrix of {group_size} molecules: dim {} ({} atoms)",
        spec.dim, n_atoms
    );

    let opts = PadeTraceOptions {
        iterations: 15,
        n_atoms,
    };
    let t64 = pade3_sign_traced(&a, sys.mu, PrecisionMode::Fp64, &opts);
    let e_ref = t64.records.last().expect("records").energy;
    println!("converged FP64 energy: {e_ref:.8}");

    let mut rows = Vec::new();
    for mode in PrecisionMode::all() {
        let t = pade3_sign_traced(&a, sys.mu, mode, &opts);
        let diffs = energy_differences_mev_per_atom(&t, e_ref, n_atoms);
        for (r, d) in t.records.iter().zip(&diffs) {
            rows.push(vec![
                mode.label().to_string(),
                r.iteration.to_string(),
                format!("{d:+.6e}"),
                sci(r.involutority),
            ]);
        }
        let tail: Vec<f64> = diffs.iter().rev().take(5).map(|d| d.abs()).collect();
        let tail_max = tail.iter().fold(0.0f64, |m, &v| m.max(v));
        eprintln!(
            "{:<10}: final |dE| over last 5 iters <= {tail_max:.3e} meV/atom",
            mode.label()
        );
    }

    println!("\nFig. 12 — energy difference from converged FP64 per iteration");
    let header = ["mode", "iteration", "dE_mev_per_atom", "involutority"];
    print_table(&header, &rows);
    write_csv("fig12_precision_convergence.csv", &header, &rows);
}
