//! Paper Fig. 13: deviation from the involutority condition ‖Xₖ² − I‖_F in
//! every step of the 3rd-order sign iteration, per precision mode.
//!
//! Expected shape: FP64 plunges to ~1e-12; FP32 (GPU and FPGA, slightly
//! different trajectories) flattens around its rounding floor; FP16 and
//! FP16' flatten orders of magnitude higher — which is why involutority,
//! not energy, is the usable convergence criterion (Sec. VI-A).

use sm_accel::pade::{pade3_sign_traced, PadeTraceOptions};
use sm_accel::PrecisionMode;
use sm_bench::output::{paper_scale, print_table, sci, write_csv};
use sm_bench::workloads::{accuracy_basis, build_orthogonalized, SEED};
use sm_chem::WaterBox;
use sm_core::assembly::{assemble, SubmatrixSpec};

fn main() {
    let group_size = if paper_scale() { 32 } else { 8 };
    let water = WaterBox::cubic(2, SEED);
    let basis = accuracy_basis();
    let comm = sm_comsim::SerialComm::new();
    let (sys, kt) = build_orthogonalized(&water, &basis, 1e-11, 1e-11);
    let mut kt_f = kt.clone();
    kt_f.store_mut().filter(1e-6);
    let pattern = kt_f.global_pattern(&comm);
    let dims = kt_f.dims().clone();
    let group: Vec<usize> = (0..group_size).collect();
    let spec = SubmatrixSpec::build(&pattern, &dims, &group);
    let a = assemble(&spec, &pattern, &dims, |r, c| kt_f.block(r, c));
    println!("combined submatrix dim {}", spec.dim);

    let opts = PadeTraceOptions {
        iterations: 15,
        n_atoms: 3 * group_size,
    };

    let mut rows = Vec::new();
    let mut floors = Vec::new();
    for mode in PrecisionMode::all() {
        let t = pade3_sign_traced(&a, sys.mu, mode, &opts);
        let floor = t
            .records
            .iter()
            .map(|r| r.involutority)
            .fold(f64::INFINITY, f64::min);
        floors.push((mode.label(), floor));
        for r in &t.records {
            rows.push(vec![
                mode.label().to_string(),
                r.iteration.to_string(),
                sci(r.involutority),
            ]);
        }
        eprintln!("{:<10}: involutority floor {floor:.3e}", mode.label());
    }

    println!("\nFig. 13 — ||X^2 - I||_F per iteration");
    let header = ["mode", "iteration", "involutority"];
    print_table(&header, &rows);
    write_csv("fig13_involutority.csv", &header, &rows);

    println!("\nnoise floors (expected ordering FP64 < FP32/FPGA << FP16'/FP16):");
    for (label, floor) in &floors {
        println!("  {label:<10} {floor:.3e}");
    }
}
