//! `smdoctor` — operational health report over the workspace's results
//! directory.
//!
//! Reads every `BENCH_*.json` trajectory document and `TRACE_*.jsonl`
//! structured trace in `results/` (or the paths given on the command
//! line) and reports, per run:
//!
//! * **plan-cache pressure** — builds vs hits, evictions, final
//!   occupancy (from the `plan_cache.*` metrics);
//! * **steal effectiveness per epoch** — committed vs deferred jobs,
//!   groups, and ranks moved by each steal (from the `sched.*` events);
//! * **idle-time breakdown** — per-rank idle seconds against the batch
//!   makespan (from the `rank.idle` events);
//! * **byte budgets by precision** — engine value traffic split
//!   fp64 / fp32 / fp32_refined, plus collective vs point-to-point
//!   communicator bytes (from the `engine.value_bytes.*` and `comm.*`
//!   counters);
//! * **schema drift** — every BENCH document must carry
//!   [`BENCH_SCHEMA_VERSION`] and the provenance stamps
//!   (`git_commit`, `generated_at`); every trace header must speak
//!   [`sm_trace::TRACE_SCHEMA_VERSION`] and contain at least one event.
//!
//! With `--check`, any drift, corruption, or an empty artifact set is a
//! hard failure (exit 1) — CI runs `smdoctor --check` after the bench
//! binaries so the machine-readable result trajectory can never silently
//! rot.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sm_bench::output::{results_dir, Json, BENCH_SCHEMA_VERSION};

/// One problem found while auditing the artifacts. Printed with the file
/// it was found in; any of these fails `--check`.
struct Drift {
    file: String,
    what: String,
}

fn drift(report: &mut Vec<Drift>, file: &Path, what: impl Into<String>) {
    report.push(Drift {
        file: file.display().to_string(),
        what: what.into(),
    });
}

fn main() -> ExitCode {
    let mut check = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                println!(
                    "smdoctor [--check] [paths...]\n\n\
                     Audit BENCH_*.json and TRACE_*.jsonl artifacts (default: results/).\n\
                     --check  exit non-zero on schema drift, corruption, or no artifacts"
                );
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        let dir = results_dir();
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
            .unwrap_or_default();
        entries.sort();
        paths = entries
            .into_iter()
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                (name.starts_with("BENCH_") && name.ends_with(".json"))
                    || (name.starts_with("TRACE_") && name.ends_with(".jsonl"))
            })
            .collect();
    }

    let mut report = Vec::new();
    let mut benches = 0usize;
    let mut traces = 0usize;
    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".jsonl") {
            traces += 1;
            audit_trace(path, &mut report);
        } else {
            benches += 1;
            audit_bench(path, &mut report);
        }
    }

    println!(
        "\nsmdoctor: audited {benches} BENCH document(s), {traces} trace(s), \
         {} problem(s)",
        report.len()
    );
    for d in &report {
        println!("  DRIFT {}: {}", d.file, d.what);
    }
    if check && (benches + traces == 0) {
        println!("smdoctor --check: no artifacts found — nothing to vouch for");
        return ExitCode::FAILURE;
    }
    if check && !report.is_empty() {
        println!("smdoctor --check: FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Audit one `BENCH_*.json` trajectory document: parseable, stamped,
/// schema-current.
fn audit_bench(path: &Path, report: &mut Vec<Drift>) {
    println!("\n== {} ==", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return drift(report, path, format!("unreadable: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return drift(report, path, format!("malformed JSON: {e}")),
    };
    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == BENCH_SCHEMA_VERSION => {}
        Some(v) => drift(
            report,
            path,
            format!("schema_version {v} != current {BENCH_SCHEMA_VERSION}"),
        ),
        None => drift(report, path, "missing schema_version"),
    }
    for key in ["bench", "git_commit", "generated_at"] {
        match doc.get(key).and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => drift(report, path, format!("missing provenance stamp '{key}'")),
        }
    }
    if doc.get("data").is_none() {
        drift(report, path, "missing data payload");
    }
    println!(
        "  bench={} commit={} at={}",
        doc.get("bench").and_then(Json::as_str).unwrap_or("?"),
        doc.get("git_commit")
            .and_then(Json::as_str)
            .map(|c| &c[..c.len().min(12)])
            .unwrap_or("?"),
        doc.get("generated_at")
            .and_then(Json::as_str)
            .unwrap_or("?"),
    );
}

/// Parsed view of one trace line (event or metric).
struct TraceLine {
    doc: Json,
}

impl TraceLine {
    fn str(&self, key: &str) -> &str {
        self.doc.get(key).and_then(Json::as_str).unwrap_or("")
    }
    fn num(&self, key: &str) -> f64 {
        self.doc.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }
    fn field(&self, key: &str) -> f64 {
        self.doc
            .get("fields")
            .and_then(|f| f.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    }
}

/// Audit one `TRACE_*.jsonl` structured trace and print the ops report.
fn audit_trace(path: &Path, report: &mut Vec<Drift>) {
    println!("\n== {} ==", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return drift(report, path, format!("unreadable: {e}")),
    };
    let mut lines = text.lines();
    let header = match lines.next().map(Json::parse) {
        Some(Ok(h)) => h,
        Some(Err(e)) => return drift(report, path, format!("malformed header: {e}")),
        None => return drift(report, path, "empty trace file"),
    };
    if header.get("schema").and_then(Json::as_str) != Some("sm-trace") {
        return drift(report, path, "header is not an sm-trace header");
    }
    match header.get("version").and_then(Json::as_f64) {
        Some(v) if v == sm_trace::TRACE_SCHEMA_VERSION as f64 => {}
        v => {
            return drift(
                report,
                path,
                format!(
                    "trace schema version {v:?} != current {}",
                    sm_trace::TRACE_SCHEMA_VERSION
                ),
            )
        }
    }
    let label = header.get("label").and_then(Json::as_str).unwrap_or("?");

    let mut events = Vec::new();
    let mut metrics = Vec::new();
    for (i, line) in lines.enumerate() {
        match Json::parse(line) {
            Ok(doc) => {
                let t = TraceLine { doc };
                match t.str("type") {
                    "event" => events.push(t),
                    "metric" => metrics.push(t),
                    other => drift(
                        report,
                        path,
                        format!("line {}: unknown type '{other}'", i + 2),
                    ),
                }
            }
            Err(e) => drift(report, path, format!("line {}: {e}", i + 2)),
        }
    }
    if events.is_empty() {
        drift(
            report,
            path,
            "trace contains no events (instrumentation off?)",
        );
    }
    println!(
        "  label={label} events={} metrics={}",
        events.len(),
        metrics.len()
    );

    // Plan-cache pressure: per-engine-root builds/hits/evictions counters
    // plus the final occupancy gauge.
    let metric_u64 = |suffix: &str| -> u64 {
        metrics
            .iter()
            .filter(|m| m.str("name").ends_with(suffix))
            .map(|m| m.num("value") as u64)
            .sum()
    };
    let builds = metric_u64("/plan_cache.builds");
    let hits = metric_u64("/plan_cache.hits");
    let evictions = metric_u64("/plan_cache.evictions");
    let occupancy = metrics
        .iter()
        .filter(|m| m.str("name").ends_with("/plan_cache.occupancy"))
        .map(|m| m.num("value"))
        .fold(0.0f64, f64::max);
    if builds + hits > 0 {
        println!(
            "  plan cache: {hits} hits / {builds} builds ({:.1}% hit rate), \
             {evictions} evictions, occupancy {occupancy:.0}",
            100.0 * hits as f64 / (hits + builds) as f64
        );
    }

    // Steal effectiveness: sched.epoch narrates each epoch's committed vs
    // deferred split; sched.steal lists the ranks each straggler borrowed.
    let mut epochs: BTreeMap<u64, (f64, f64, f64)> = BTreeMap::new();
    let mut steals: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for ev in &events {
        let epoch_idx = ev
            .doc
            .get("path")
            .and_then(Json::as_str)
            .and_then(epoch_of_path);
        match ev.str("name") {
            "sched.epoch" => {
                if let Some(e) = epoch_idx {
                    epochs.insert(
                        e,
                        (
                            ev.field("groups"),
                            ev.field("committed"),
                            ev.field("deferred"),
                        ),
                    );
                }
            }
            "sched.steal" => {
                if let Some(e) = epoch_idx {
                    let s = steals.entry(e).or_default();
                    s.0 += 1;
                    s.1 += ev.field("stolen_ranks") as u64;
                }
            }
            _ => {}
        }
    }
    for (e, (groups, committed, deferred)) in &epochs {
        let (stolen_jobs, stolen_ranks) = steals.get(e).copied().unwrap_or((0, 0));
        println!(
            "  epoch {e}: {groups:.0} groups, {committed:.0} committed / {deferred:.0} deferred, \
             {stolen_jobs} stolen job(s) over {stolen_ranks} rank(s)"
        );
    }

    // Idle breakdown: rank.idle events (emitted once per world rank from
    // rank 0) carry idle wall seconds plus busy/wall fields.
    let idles: Vec<&TraceLine> = events
        .iter()
        .filter(|e| e.str("name") == "rank.idle")
        .collect();
    if !idles.is_empty() {
        let wall = idles.iter().map(|e| e.field("wall_s")).fold(0.0, f64::max);
        let idle_sum: f64 = idles.iter().map(|e| e.num("wall_s")).sum();
        let worst = idles
            .iter()
            .max_by(|a, b| a.num("wall_s").total_cmp(&b.num("wall_s")))
            .expect("non-empty");
        println!(
            "  idle: {} ranks, makespan {wall:.3}s, total idle {idle_sum:.3}s \
             (worst rank {:.0}: {:.3}s)",
            idles.len(),
            worst.field("rank"),
            worst.num("wall_s"),
        );
    }

    // Byte budgets: engine value traffic by precision, communicator
    // traffic by class.
    for prec in ["fp64", "fp32", "fp32_refined"] {
        let bytes = metric_u64(&format!("/engine.value_bytes.{prec}"));
        if bytes > 0 {
            println!("  engine value bytes [{prec}]: {bytes}");
        }
    }
    for class in ["collective", "p2p"] {
        let bytes = metric_u64(&format!("/comm.{class}.bytes"));
        let msgs = metric_u64(&format!("/comm.{class}.msgs"));
        if msgs > 0 {
            println!("  comm [{class}]: {bytes} bytes in {msgs} message(s)");
        }
    }
}

/// Extract the epoch index from a span path like
/// `batch:svc/epoch:2/group:0/...`.
fn epoch_of_path(path: &str) -> Option<u64> {
    path.split('/')
        .find_map(|seg| seg.strip_prefix("epoch:"))
        .and_then(|v| v.parse().ok())
}
