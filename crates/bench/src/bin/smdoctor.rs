//! `smdoctor` — operational health report and trace analysis over the
//! workspace's results directory.
//!
//! ```text
//! smdoctor [--check] [paths...]          audit artifacts (default: results/)
//! smdoctor critical-path <trace.jsonl>   deterministic cost-unit critical path
//! smdoctor export-perfetto <trace.jsonl> [out.json]   Chrome trace-event export
//! smdoctor calibrate <trace.jsonl>       fit perfmodel coefficients (report-only)
//! smdoctor compare <old.json> <new.json> deterministic-counter regression gate
//! smdoctor faults [bench-or-trace]       fault-injection & recovery report
//! smdoctor cache <manifest.smplans>      plan-cache manifest occupancy & ages
//! smdoctor serve-report <trace.jsonl>    streaming-service admission-window report
//! ```
//!
//! **Audit mode** reads every `BENCH_*.json`, `TRACE_*.jsonl`,
//! `PERFETTO_*.json`, `CALIB_*.json` and `*.csv` artifact in `results/`
//! (or the paths given; directories are globbed) and reports plan-cache
//! pressure, steal effectiveness, idle breakdowns, byte budgets, and
//! **schema drift** — with `--check`, any drift or an empty artifact set
//! is a hard failure (exit 1).
//!
//! **`critical-path`** reconstructs the epoch/group/job schedule from the
//! trace's scheduler narration and prints the longest chain of job
//! executions through the epoch barriers in perfmodel cost units — a pure
//! function of the schedule, bit-identical across traced reruns (the
//! two-clock rule) — plus wall-clock annotations, per-rank idle
//! attribution and per-job model-vs-measured skew.
//!
//! **`compare`** is the regression gate over the bench trajectory: it
//! diffs two stamped bench documents and exits 1 when any
//! **deterministic** quantity changed (schema versions, counters like
//! value bytes / eviction counts / stolen jobs, row sets). The plan-cache
//! `plan_builds`/`cache_hits` *split* may shift with benign races — only
//! their **sum** is deterministic (the consensus identity), so the gate
//! compares the sum. Wall-clock columns (`*_s`, `*seconds*`) only
//! soft-warn beyond a drift threshold.
//!
//! **`cache`** decodes a spilled plan-cache manifest (`SMPLANS` wire
//! format, written by `SubmatrixEngine::export_plans`) and prints the
//! schema version, producer tag, capacity, occupancy, lifetime
//! hit/build/eviction counters and per-fingerprint entry ages — the
//! warm-restart story at a glance, no engine required.
//!
//! **`serve-report`** reads a streaming-service trace (`smserved` /
//! `StreamingScfService`) and prints one row per admission window —
//! jobs admitted, queue rejects, and the epoch commit/defer splits the
//! window's scheduler run narrated — failing (exit 1) when the trace
//! carries no service narration at all.
//!
//! Exit codes: `0` healthy, `1` drift/regression, `2` usage errors
//! (missing/empty/unreadable inputs).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sm_bench::calibrate::{calibration_json, calibration_report};
use sm_bench::output::{results_dir, Json, BENCH_SCHEMA_VERSION, CSV_SCHEMA_VERSION};
use sm_dbcsr::wire::{PlanManifest, PLAN_MANIFEST_SCHEMA_VERSION};
use sm_trace::analyze::{
    critical_path, idle_attribution, job_phase_skew, phase_samples, TraceDoc, TraceError,
};

/// Exit code for usage errors: missing/empty/unreadable inputs.
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("critical-path") => cmd_critical_path(&args[1..]),
        Some("export-perfetto") => cmd_export_perfetto(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("serve-report") => cmd_serve_report(&args[1..]),
        Some("--help" | "-h") => {
            print_help();
            ExitCode::SUCCESS
        }
        _ => cmd_audit(&args),
    }
}

fn print_help() {
    println!(
        "smdoctor [--check] [paths...]\n\
         smdoctor critical-path <trace.jsonl>\n\
         smdoctor export-perfetto <trace.jsonl> [out.json]\n\
         smdoctor calibrate <trace.jsonl>\n\
         smdoctor compare <old-bench.json> <new-bench.json>\n\
         smdoctor faults [bench-or-trace]\n\
         smdoctor cache <manifest.smplans>\n\
         smdoctor serve-report <trace.jsonl>\n\n\
         Audit BENCH_*.json / TRACE_*.jsonl / PERFETTO_*.json / CALIB_*.json / *.csv\n\
         artifacts (default: results/; directories are globbed), analyze traces,\n\
         and gate deterministic counters between bench runs.\n\
         --check  exit 1 on schema drift, corruption, or no artifacts\n\
         exit codes: 0 healthy, 1 drift/regression, 2 usage (missing/empty input)"
    );
}

/// Read a file that must exist and be non-empty; usage-error otherwise.
fn read_input(path: &Path) -> Result<String, ExitCode> {
    match std::fs::read_to_string(path) {
        Ok(t) if t.trim().is_empty() => {
            eprintln!("smdoctor: {} is empty", path.display());
            Err(ExitCode::from(EXIT_USAGE))
        }
        Ok(t) => Ok(t),
        Err(e) => {
            eprintln!("smdoctor: cannot read {}: {e}", path.display());
            Err(ExitCode::from(EXIT_USAGE))
        }
    }
}

/// Parse a trace file into a [`TraceDoc`]; schema mismatches and
/// corruption are drift (exit 1), missing/empty files usage (exit 2).
fn load_trace(path: &Path) -> Result<TraceDoc, ExitCode> {
    let text = read_input(path)?;
    TraceDoc::parse(&text).map_err(|e| {
        eprintln!("smdoctor: {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

/// `smdoctor critical-path <trace.jsonl>`: the deterministic cost-unit
/// critical path, wall annotations, idle attribution, and per-job
/// model-vs-measured skew.
fn cmd_critical_path(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: smdoctor critical-path <trace.jsonl>");
        return ExitCode::from(EXIT_USAGE);
    };
    let path = Path::new(path);
    let doc = match load_trace(path) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let cp = match critical_path(&doc, None) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("smdoctor: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    // The deterministic rendering first — bit-identical across traced
    // reruns of the same schedule, pinned by the critical_path test
    // suite. Wall-clock annotations follow, clearly separated.
    print!("{}", cp.render());
    println!(
        "-- wall annotations (not deterministic) --\n\
         path wall {:.6}s over {} epoch(s)",
        cp.total_wall_s,
        cp.epochs.len()
    );

    if let Ok(idle) = idle_attribution(&doc, None) {
        for (r, units) in idle.est_idle_units.iter().enumerate() {
            let measured = idle
                .measured_busy_wall_s
                .get(r)
                .map(|(busy, wall)| format!(", measured busy {busy:.4}s / wall {wall:.4}s"))
                .unwrap_or_default();
            println!(
                "rank {r}: est idle {units:.6e} of {:.6e} units{measured}",
                idle.est_makespan_units
            );
        }
    }

    // Model-vs-measured skew: each job's cost-units-per-second against
    // the batch-wide mean for the same phase (1.00 = the perfmodel's
    // relative estimate matched; < 1 = slower than the model expected).
    // Report-only — never fed back into scheduling.
    let batch = phase_samples(&doc, &cp.label);
    let batch_rate: BTreeMap<&str, f64> = batch
        .iter()
        .filter_map(|(phase, pairs)| {
            let (c, w) = pairs
                .iter()
                .fold((0.0, 0.0), |(c, w), (pc, pw)| (c + pc, w + pw));
            (w > 0.0).then_some((phase.as_str(), c / w))
        })
        .collect();
    let skew = job_phase_skew(&doc, &cp.label);
    if !skew.is_empty() {
        println!("-- model-vs-measured skew by job (units/s vs batch mean; report-only) --");
        let mut by_job: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for ((job, phase), (cost, wall)) in &skew {
            if let (true, Some(&rate)) = (*wall > 0.0, batch_rate.get(phase.as_str())) {
                if rate > 0.0 {
                    by_job
                        .entry(*job)
                        .or_default()
                        .push(format!("{phase} {:.2}x", (cost / wall) / rate));
                }
            }
        }
        for (job, phases) in &by_job {
            println!("  job {job}: {}", phases.join(", "));
        }
    }
    ExitCode::SUCCESS
}

/// `smdoctor export-perfetto <trace.jsonl> [out.json]`: write the Chrome
/// trace-event document (opens in ui.perfetto.dev).
fn cmd_export_perfetto(args: &[String]) -> ExitCode {
    let (path, out) = match args {
        [p] => (Path::new(p), None),
        [p, o] => (Path::new(p), Some(PathBuf::from(o))),
        _ => {
            eprintln!("usage: smdoctor export-perfetto <trace.jsonl> [out.json]");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let doc = match load_trace(path) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let chrome = match sm_trace::chrome::export(&doc, None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smdoctor: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    // Default target: results/PERFETTO_<stem>.json with the TRACE_
    // prefix stripped (TRACE_scf_service.jsonl → PERFETTO_scf_service).
    let out = out.unwrap_or_else(|| {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        let stem = stem.strip_prefix("TRACE_").unwrap_or(stem);
        results_dir().join(format!("PERFETTO_{stem}.json"))
    });
    if let Err(e) = std::fs::write(&out, format!("{chrome}\n")) {
        eprintln!("smdoctor: cannot write {}: {e}", out.display());
        return ExitCode::from(EXIT_USAGE);
    }
    let slices = chrome
        .get("sm")
        .and_then(|sm| sm.get("slices"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    println!(
        "wrote {} ({slices:.0} slices) — open in https://ui.perfetto.dev",
        out.display()
    );
    ExitCode::SUCCESS
}

/// `smdoctor calibrate <trace.jsonl>`: fit perfmodel coefficients from
/// the trace's measured phases and print them (report-only; the traced
/// bench writes `results/CALIB_perfmodel.json` itself).
fn cmd_calibrate(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: smdoctor calibrate <trace.jsonl>");
        return ExitCode::from(EXIT_USAGE);
    };
    let path = Path::new(path);
    let doc = match load_trace(path) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let label = doc
        .batch_labels()
        .first()
        .cloned()
        .unwrap_or_else(|| doc.label.clone());
    let report = calibration_report(&doc, &label);
    if report.phases.is_empty() {
        eprintln!(
            "smdoctor: {}: no engine.phase samples to fit",
            path.display()
        );
        return ExitCode::from(EXIT_USAGE);
    }
    println!("perfmodel calibration [batch:{label}] (report-only; never fed back):");
    for p in &report.phases {
        println!(
            "  {:<8} {:.6e} s/unit  r²={:.4}  ({} samples, {:.3e} units, {:.4}s)",
            p.phase, p.seconds_per_unit, p.r_squared, p.samples, p.total_cost, p.total_seconds
        );
    }
    println!("{}", calibration_json(&label, &report));
    ExitCode::SUCCESS
}

/// One difference between two bench documents.
struct Diff {
    at: String,
    what: String,
    hard: bool,
}

/// `smdoctor compare <old> <new>`: diff two stamped bench documents.
/// Deterministic mismatches exit 1; wall-clock drift only warns.
fn cmd_compare(args: &[String]) -> ExitCode {
    let [old_path, new_path] = args else {
        eprintln!("usage: smdoctor compare <old-bench.json> <new-bench.json>");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut docs = Vec::new();
    for p in [old_path, new_path] {
        let path = Path::new(p);
        let text = match read_input(path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        match Json::parse(&text) {
            Ok(d) => docs.push(d),
            Err(e) => {
                eprintln!("smdoctor: {}: malformed JSON: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let (old, new) = (&docs[0], &docs[1]);

    let mut diffs: Vec<Diff> = Vec::new();
    // Envelope: bench name and schema version are deterministic identity;
    // git_commit/generated_at are provenance, expected to differ.
    for key in ["bench", "schema_version"] {
        let (a, b) = (old.get(key), new.get(key));
        if a != b {
            diffs.push(Diff {
                at: key.to_string(),
                what: format!("{} -> {}", render_opt(a), render_opt(b)),
                hard: true,
            });
        }
    }
    match (old.get("data"), new.get("data")) {
        (Some(a), Some(b)) => compare_value("data", a, b, &mut diffs),
        (a, b) => diffs.push(Diff {
            at: "data".into(),
            what: format!("payload presence {} -> {}", a.is_some(), b.is_some()),
            hard: true,
        }),
    }

    let hard: Vec<&Diff> = diffs.iter().filter(|d| d.hard).collect();
    let soft: Vec<&Diff> = diffs.iter().filter(|d| !d.hard).collect();
    for d in &soft {
        println!("  WARN {}: {}", d.at, d.what);
    }
    for d in &hard {
        println!("  REGRESSION {}: {}", d.at, d.what);
    }
    println!(
        "smdoctor compare: {} deterministic regression(s), {} wall-drift warning(s)",
        hard.len(),
        soft.len()
    );
    if hard.is_empty() {
        println!("smdoctor compare: PASS");
        ExitCode::SUCCESS
    } else {
        println!("smdoctor compare: FAIL");
        ExitCode::FAILURE
    }
}

fn render_opt(v: Option<&Json>) -> String {
    v.map(Json::to_string).unwrap_or_else(|| "absent".into())
}

/// `smdoctor faults [bench-or-trace]`: the fault-injection and recovery
/// report. By default reads `results/BENCH_faults.json` (the
/// `ablation_faults` artifact) and prints per-scenario counters plus
/// totals; given a `TRACE_*.jsonl` it instead counts the v3 recovery
/// narration (`fault.injected` / `sched.retry` / `job.quarantined`) per
/// epoch.
fn cmd_faults(args: &[String]) -> ExitCode {
    let path = match args {
        [] => results_dir().join("BENCH_faults.json"),
        [p] => PathBuf::from(p),
        _ => {
            eprintln!("usage: smdoctor faults [bench-or-trace]");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
        return faults_from_trace(&path);
    }
    let text = match read_input(&path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smdoctor: {}: malformed JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(series) = doc
        .get("data")
        .and_then(|d| d.get("series"))
        .and_then(Json::as_arr)
    else {
        eprintln!(
            "smdoctor: {}: no data.series — not a fault bench artifact (run ablation_faults)",
            path.display()
        );
        return ExitCode::FAILURE;
    };
    println!(
        "fault report [{}] — {} scenario(s):",
        doc.get("bench").and_then(Json::as_str).unwrap_or("?"),
        series.len()
    );
    // A fault row missing its counters is not a zero-fault row — it is
    // the wrong artifact (or a producer from another schema). Refuse it
    // as a usage error instead of printing fabricated zeros.
    let num = |row: &Json, key: &str| row.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    for (i, row) in series.iter().enumerate() {
        for key in [
            "world",
            "rank_failures",
            "poisoned_attempts",
            "retries",
            "quarantined_jobs",
            "recovery_epochs",
            "final_world_size",
            "survivor_utilization",
        ] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                eprintln!(
                    "smdoctor: {}: data.series[{i}] has no numeric '{key}' — \
                     not a fault bench artifact (run ablation_faults)",
                    path.display()
                );
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let mut totals = [0.0f64; 5];
    for row in series {
        let (failures, poisoned, retries, quarantined, epochs) = (
            num(row, "rank_failures"),
            num(row, "poisoned_attempts"),
            num(row, "retries"),
            num(row, "quarantined_jobs"),
            num(row, "recovery_epochs"),
        );
        println!(
            "  world {:.0} {:<22} {failures:.0} rank failure(s), {poisoned:.0} poisoned, \
             {retries:.0} retried, {quarantined:.0} quarantined, {epochs:.0} epoch(s), \
             final world {:.0}, utilization {:.3}",
            num(row, "world"),
            row.get("scenario").and_then(Json::as_str).unwrap_or("?"),
            num(row, "final_world_size"),
            num(row, "survivor_utilization"),
        );
        for (t, v) in totals
            .iter_mut()
            .zip([failures, poisoned, retries, quarantined, epochs])
        {
            *t += v;
        }
    }
    println!(
        "  totals: {:.0} rank failure(s), {:.0} poisoned attempt(s), {:.0} retried, \
         {:.0} quarantined, {:.0} recovery epoch(s)",
        totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    ExitCode::SUCCESS
}

/// Count the recovery narration events of a v3 trace, per epoch.
fn faults_from_trace(path: &Path) -> ExitCode {
    let text = match read_input(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let mut lines = text.lines();
    match lines.next().map(Json::parse) {
        Some(Ok(h))
            if h.get("schema").and_then(Json::as_str) == Some("sm-trace")
                && h.get("version").and_then(Json::as_f64)
                    == Some(sm_trace::TRACE_SCHEMA_VERSION as f64) => {}
        _ => {
            eprintln!(
                "smdoctor: {}: not a current sm-trace v{} header",
                path.display(),
                sm_trace::TRACE_SCHEMA_VERSION
            );
            return ExitCode::FAILURE;
        }
    }
    // epoch -> (injected, retries, quarantined)
    let mut per_epoch: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for line in lines {
        let Ok(doc) = Json::parse(line) else { continue };
        let t = TraceLine { doc };
        let slot = match t.str("name") {
            "fault.injected" => 0usize,
            "sched.retry" => 1,
            "job.quarantined" => 2,
            _ => continue,
        };
        let e = t
            .doc
            .get("path")
            .and_then(Json::as_str)
            .and_then(epoch_of_path)
            .unwrap_or(0);
        let c = per_epoch.entry(e).or_default();
        match slot {
            0 => c.0 += 1,
            1 => c.1 += 1,
            _ => c.2 += 1,
        }
    }
    if per_epoch.is_empty() {
        println!("no fault events — the trace ran fault-free");
        return ExitCode::SUCCESS;
    }
    for (e, (injected, retries, quarantined)) in &per_epoch {
        println!(
            "  epoch {e}: {injected} fault(s) injected, {retries} retry(ies), \
             {quarantined} quarantine(s)"
        );
    }
    ExitCode::SUCCESS
}

/// `smdoctor cache <manifest.smplans>`: decode a spilled plan-cache
/// manifest and print occupancy, lifetime counters and per-fingerprint
/// entry ages. Missing/empty files are usage errors (exit 2); a file
/// that is not a current-schema manifest is corruption (exit 1).
fn cmd_cache(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: smdoctor cache <manifest.smplans>");
        return ExitCode::from(EXIT_USAGE);
    };
    let path = Path::new(path);
    let bytes = match std::fs::read(path) {
        Ok(b) if b.is_empty() => {
            eprintln!("smdoctor: {} is empty", path.display());
            return ExitCode::from(EXIT_USAGE);
        }
        Ok(b) => b,
        Err(e) => {
            eprintln!("smdoctor: cannot read {}: {e}", path.display());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let m = match PlanManifest::decode(&bytes) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("smdoctor: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let capacity = if m.capacity == u64::MAX {
        "unbounded".to_string()
    } else {
        m.capacity.to_string()
    };
    let payload: usize = m.entries.iter().map(|e| e.words.len()).sum();
    println!(
        "plan-cache manifest {} (schema v{PLAN_MANIFEST_SCHEMA_VERSION})",
        path.display()
    );
    println!(
        "  producer tag {:#018x}, capacity {capacity}, occupancy {} plan(s) \
         ({payload} payload word(s))",
        m.tag,
        m.entries.len()
    );
    println!(
        "  lifetime: {} hit(s) / {} build(s), {} eviction(s), LRU tick {}",
        m.hits, m.builds, m.evictions, m.tick
    );

    // Group entries by fingerprint; age = LRU ticks since last touch, so
    // age 0 is the hottest plan and the largest age is next in line for
    // eviction on a bounded import.
    let mut by_fp: BTreeMap<u64, Vec<&sm_dbcsr::wire::PlanManifestEntry>> = BTreeMap::new();
    for e in &m.entries {
        by_fp.entry(e.fingerprint).or_default().push(e);
    }
    for (fp, entries) in &by_fp {
        let oldest = entries
            .iter()
            .map(|e| m.tick.saturating_sub(e.lru_stamp))
            .max()
            .unwrap_or(0);
        println!(
            "  fingerprint {fp:#018x}: {} plan(s), oldest age {oldest} tick(s)",
            entries.len()
        );
        for e in entries {
            println!(
                "    rank {}/{}: age {} tick(s), {} word(s)",
                e.rank,
                e.size,
                m.tick.saturating_sub(e.lru_stamp),
                e.words.len()
            );
        }
    }
    ExitCode::SUCCESS
}

/// Extract the admission-window index from a streaming-service span
/// root like `batch:serve.w3/epoch:0/...`.
fn window_of_path(path: &str) -> Option<u64> {
    let root = path.split('/').next()?;
    let (_, w) = root.rsplit_once(".w")?;
    w.parse().ok()
}

/// `smdoctor serve-report <trace.jsonl>`: per-admission-window report
/// over a streaming-service trace — jobs admitted, queue rejects, and
/// the epoch commit/defer splits each window's scheduler narrated. A
/// trace with no `service.window` narration fails (exit 1): it is not a
/// service trace.
fn cmd_serve_report(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: smdoctor serve-report <trace.jsonl>");
        return ExitCode::from(EXIT_USAGE);
    };
    let path = Path::new(path);
    let text = match read_input(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let mut lines = text.lines();
    match lines.next().map(Json::parse) {
        Some(Ok(h))
            if h.get("schema").and_then(Json::as_str) == Some("sm-trace")
                && h.get("version").and_then(Json::as_f64)
                    == Some(sm_trace::TRACE_SCHEMA_VERSION as f64) => {}
        _ => {
            eprintln!(
                "smdoctor: {}: not a current sm-trace v{} header",
                path.display(),
                sm_trace::TRACE_SCHEMA_VERSION
            );
            return ExitCode::FAILURE;
        }
    }

    // window -> (admitted, queue_rejects) from the service narration;
    // window -> (epochs, committed, deferred) from the per-window
    // scheduler runs (grouped by the `batch:<label>.w<N>` span root).
    let mut windows: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut epochs: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for line in lines {
        let Ok(doc) = Json::parse(line) else { continue };
        let t = TraceLine { doc };
        match t.str("name") {
            "service.window" => {
                // A window event missing its expected fields is a
                // producer bug, not an empty window — refuse it.
                let (Some(w), Some(admitted), Some(rejects)) = (
                    t.try_field("window"),
                    t.try_field("admitted"),
                    t.try_field("queue_rejects"),
                ) else {
                    eprintln!(
                        "smdoctor: {}: service.window event missing \
                         window/admitted/queue_rejects fields",
                        path.display()
                    );
                    return ExitCode::from(EXIT_USAGE);
                };
                windows.insert(w as u64, (admitted as u64, rejects as u64));
            }
            "sched.epoch" => {
                if let Some(w) = t
                    .doc
                    .get("path")
                    .and_then(Json::as_str)
                    .and_then(window_of_path)
                {
                    let e = epochs.entry(w).or_default();
                    e.0 += 1;
                    e.1 += t.field("committed") as u64;
                    e.2 += t.field("deferred") as u64;
                }
            }
            _ => {}
        }
    }
    if windows.is_empty() {
        eprintln!(
            "smdoctor: {}: no service.window narration — not a streaming-service trace \
             (run smserved or the scf_service_batch example with SM_TRACE set)",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    println!("service report — {} admission window(s):", windows.len());
    let mut totals = (0u64, 0u64, 0u64);
    for (w, (admitted, rejects)) in &windows {
        let (n_epochs, committed, deferred) = epochs.get(w).copied().unwrap_or((0, 0, 0));
        println!(
            "  window {w}: {admitted} admitted, {rejects} queue reject(s), \
             {n_epochs} epoch(s) ({committed} committed / {deferred} deferred)"
        );
        totals.0 += admitted;
        totals.1 += rejects;
        totals.2 += n_epochs;
    }
    println!(
        "  totals: {} admitted, {} queue reject(s), {} epoch(s)",
        totals.0, totals.1, totals.2
    );
    ExitCode::SUCCESS
}

/// Relative wall-clock drift beyond which `compare` warns (wall time is
/// an annotation, so it can never fail the gate — but a 2× swing is
/// worth a human look).
const WALL_DRIFT_WARN: f64 = 0.5;

/// Is this key/column a wall-clock annotation (excluded from the
/// deterministic contract by the two-clock rule)?
fn is_wall_key(key: &str) -> bool {
    key.ends_with("_s") || key.contains("seconds") || key.contains("wall")
}

/// Keys whose *sum* is deterministic while the split shifts with benign
/// plan-cache races between concurrent groups (the consensus identity
/// `hits + builds = Σ group_size × iterations` fixes only the sum).
const SUMMED_KEYS: [&str; 2] = ["plan_builds", "cache_hits"];

/// Recursive deterministic diff. Objects must agree on key sets; arrays
/// on length; scalars exactly — except wall-clock keys (soft warn beyond
/// [`WALL_DRIFT_WARN`]) and the [`SUMMED_KEYS`] pair (compared as a sum).
/// Tabular `{columns, rows}` payloads (the `bench_table` shape) get the
/// same treatment column-wise.
fn compare_value(at: &str, old: &Json, new: &Json, diffs: &mut Vec<Diff>) {
    match (old, new) {
        (Json::Obj(a), Json::Obj(b)) => {
            // bench_table payloads compare column-aware.
            if old.get("columns").is_some() && old.get("rows").is_some() {
                compare_table(at, old, new, diffs);
                return;
            }
            let a_keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            let b_keys: Vec<&str> = b.iter().map(|(k, _)| k.as_str()).collect();
            if a_keys != b_keys {
                diffs.push(Diff {
                    at: at.into(),
                    what: format!("object keys {a_keys:?} -> {b_keys:?}"),
                    hard: true,
                });
                return;
            }
            // The builds/hits split is only deterministic as a sum.
            if SUMMED_KEYS.iter().all(|k| old.get(k).is_some()) {
                let sum = |doc: &Json| -> f64 {
                    SUMMED_KEYS
                        .iter()
                        .filter_map(|k| doc.get(k).and_then(Json::as_f64))
                        .sum()
                };
                if sum(old) != sum(new) {
                    diffs.push(Diff {
                        at: format!("{at}.{}", SUMMED_KEYS.join("+")),
                        what: format!("consensus sum {} -> {}", sum(old), sum(new)),
                        hard: true,
                    });
                }
            }
            for (k, va) in a {
                if SUMMED_KEYS.contains(&k.as_str())
                    && SUMMED_KEYS.iter().all(|s| old.get(s).is_some())
                {
                    continue;
                }
                if let Some(vb) = new.get(k) {
                    compare_scalar_or_recurse(&format!("{at}.{k}"), k, va, vb, diffs);
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                diffs.push(Diff {
                    at: at.into(),
                    what: format!("array length {} -> {}", a.len(), b.len()),
                    hard: true,
                });
                return;
            }
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                compare_value(&format!("{at}[{i}]"), va, vb, diffs);
            }
        }
        _ => compare_scalar_or_recurse(at, at, old, new, diffs),
    }
}

/// Compare two leaf values under the key `key` (wall keys soft-warn;
/// everything else is deterministic), recursing for containers.
fn compare_scalar_or_recurse(at: &str, key: &str, old: &Json, new: &Json, diffs: &mut Vec<Diff>) {
    match (old, new) {
        (Json::Obj(_), _) | (Json::Arr(_), _) => compare_value(at, old, new, diffs),
        _ => {
            // Numeric comparison when both sides parse as numbers (table
            // cells are strings), string equality otherwise.
            let nums = (as_number(old), as_number(new));
            if let (Some(a), Some(b)) = nums {
                if is_wall_key(key) {
                    let base = a.abs().max(1e-12);
                    let drift = (b - a).abs() / base;
                    if drift > WALL_DRIFT_WARN {
                        diffs.push(Diff {
                            at: at.into(),
                            what: format!(
                                "wall drift {a} -> {b} ({:+.0}%)",
                                100.0 * (b - a) / base
                            ),
                            hard: false,
                        });
                    }
                } else if a != b {
                    diffs.push(Diff {
                        at: at.into(),
                        what: format!("{a} -> {b}"),
                        hard: true,
                    });
                }
            } else if old != new {
                diffs.push(Diff {
                    at: at.into(),
                    what: format!("{old} -> {new}"),
                    hard: true,
                });
            }
        }
    }
}

fn as_number(v: &Json) -> Option<f64> {
    match v {
        Json::Num(x) => Some(*x),
        Json::Str(s) => s.trim().parse().ok(),
        _ => None,
    }
}

/// Column-aware comparison of a `bench_table` payload: wall columns
/// soft-warn, the builds/hits column pair compares as a per-row sum,
/// everything else must match exactly.
fn compare_table(at: &str, old: &Json, new: &Json, diffs: &mut Vec<Diff>) {
    let cols = |doc: &Json| -> Vec<String> {
        doc.get("columns")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .map(|c| c.as_str().unwrap_or("").to_string())
                    .collect()
            })
            .unwrap_or_default()
    };
    let (ca, cb) = (cols(old), cols(new));
    if ca != cb {
        diffs.push(Diff {
            at: format!("{at}.columns"),
            what: format!("{ca:?} -> {cb:?}"),
            hard: true,
        });
        return;
    }
    fn rows(doc: &Json) -> Vec<&[Json]> {
        doc.get("rows")
            .and_then(Json::as_arr)
            .map(|rs| rs.iter().filter_map(Json::as_arr).collect())
            .unwrap_or_default()
    }
    let (ra, rb) = (rows(old), rows(new));
    if ra.len() != rb.len() {
        diffs.push(Diff {
            at: format!("{at}.rows"),
            what: format!("row count {} -> {}", ra.len(), rb.len()),
            hard: true,
        });
        return;
    }
    let summed: Vec<usize> = ca
        .iter()
        .enumerate()
        .filter(|(_, c)| SUMMED_KEYS.contains(&c.as_str()))
        .map(|(i, _)| i)
        .collect();
    let sum_all = summed.len() == SUMMED_KEYS.len();
    for (r, (row_a, row_b)) in ra.iter().zip(&rb).enumerate() {
        if sum_all {
            let sum = |row: &[Json]| -> f64 {
                summed
                    .iter()
                    .filter_map(|&i| row.get(i).and_then(as_number))
                    .sum()
            };
            if sum(row_a) != sum(row_b) {
                diffs.push(Diff {
                    at: format!("{at}.rows[{r}].{}", SUMMED_KEYS.join("+")),
                    what: format!("consensus sum {} -> {}", sum(row_a), sum(row_b)),
                    hard: true,
                });
            }
        }
        for (c, col) in ca.iter().enumerate() {
            if sum_all && summed.contains(&c) {
                continue;
            }
            let (Some(va), Some(vb)) = (row_a.get(c), row_b.get(c)) else {
                continue;
            };
            compare_scalar_or_recurse(&format!("{at}.rows[{r}].{col}"), col, va, vb, diffs);
        }
    }
}

// ---------------------------------------------------------------------
// Audit mode (the original smdoctor): schema + health over artifacts.
// ---------------------------------------------------------------------

/// One problem found while auditing the artifacts. Printed with the file
/// it was found in; any of these fails `--check`.
struct Drift {
    file: String,
    what: String,
}

fn drift(report: &mut Vec<Drift>, file: &Path, what: impl Into<String>) {
    report.push(Drift {
        file: file.display().to_string(),
        what: what.into(),
    });
}

/// Is this file name one of the audited artifact shapes?
fn is_artifact(name: &str) -> bool {
    (name.starts_with("BENCH_") && name.ends_with(".json"))
        || (name.starts_with("TRACE_") && name.ends_with(".jsonl"))
        || (name.starts_with("PERFETTO_") && name.ends_with(".json"))
        || (name.starts_with("CALIB_") && name.ends_with(".json"))
        || name.ends_with(".csv")
}

/// Glob a directory for audited artifacts, sorted. An unreadable
/// directory is a usage error (exit 2), never a silent empty set — an
/// audit that cannot see its inputs must not report "healthy".
fn collect_artifacts(dir: &Path) -> Result<Vec<PathBuf>, ExitCode> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) => {
            eprintln!("smdoctor: cannot read directory {}: {e}", dir.display());
            return Err(ExitCode::from(EXIT_USAGE));
        }
    };
    let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    Ok(entries
        .into_iter()
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            p.is_file() && is_artifact(name)
        })
        .collect())
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            other => inputs.push(PathBuf::from(other)),
        }
    }
    // Default to results/; any directory argument is globbed for
    // artifacts, file arguments are audited as given.
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut missing = false;
    if inputs.is_empty() {
        paths = match collect_artifacts(&results_dir()) {
            Ok(p) => p,
            Err(code) => return code,
        };
    } else {
        for input in inputs {
            if input.is_dir() {
                match collect_artifacts(&input) {
                    Ok(p) => paths.extend(p),
                    Err(code) => return code,
                }
            } else if input.is_file() {
                paths.push(input);
            } else {
                eprintln!("smdoctor: no such file or directory: {}", input.display());
                missing = true;
            }
        }
    }
    if missing {
        return ExitCode::from(EXIT_USAGE);
    }

    let mut report = Vec::new();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".jsonl") {
            *counts.entry("trace").or_default() += 1;
            audit_trace(path, &mut report);
        } else if name.starts_with("PERFETTO_") {
            *counts.entry("perfetto").or_default() += 1;
            audit_perfetto(path, &mut report);
        } else if name.ends_with(".csv") {
            *counts.entry("csv").or_default() += 1;
            audit_csv(path, &mut report);
        } else {
            // BENCH_ and CALIB_ share the stamped envelope; CALIB adds
            // the report-only pin.
            *counts
                .entry(if name.starts_with("CALIB_") {
                    "calib"
                } else {
                    "bench"
                })
                .or_default() += 1;
            audit_bench(path, &mut report);
        }
    }

    let audited: usize = counts.values().sum();
    println!(
        "\nsmdoctor: audited {audited} artifact(s) [{}], {} problem(s)",
        counts
            .iter()
            .map(|(k, v)| format!("{v} {k}"))
            .collect::<Vec<_>>()
            .join(", "),
        report.len()
    );
    for d in &report {
        println!("  DRIFT {}: {}", d.file, d.what);
    }
    if check && audited == 0 {
        println!("smdoctor --check: no artifacts found — nothing to vouch for");
        return ExitCode::FAILURE;
    }
    if check && !report.is_empty() {
        println!("smdoctor --check: FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Audit one stamped JSON document (`BENCH_*` / `CALIB_*`): parseable,
/// stamped, schema-current; calibration reports must be report-only.
fn audit_bench(path: &Path, report: &mut Vec<Drift>) {
    println!("\n== {} ==", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) if t.trim().is_empty() => return drift(report, path, "empty file"),
        Ok(t) => t,
        Err(e) => return drift(report, path, format!("unreadable: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return drift(report, path, format!("malformed JSON: {e}")),
    };
    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == BENCH_SCHEMA_VERSION => {}
        Some(v) => drift(
            report,
            path,
            format!("schema_version {v} != current {BENCH_SCHEMA_VERSION}"),
        ),
        None => drift(report, path, "missing schema_version"),
    }
    for key in ["bench", "git_commit", "generated_at"] {
        match doc.get(key).and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => drift(report, path, format!("missing provenance stamp '{key}'")),
        }
    }
    if doc.get("data").is_none() {
        drift(report, path, "missing data payload");
    }
    let is_calib = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("CALIB_"));
    if is_calib && doc.get("data").and_then(|d| d.get("report_only")) != Some(&Json::Bool(true)) {
        drift(
            report,
            path,
            "calibration report must stamp data.report_only=true (invariant 3)",
        );
    }
    println!(
        "  bench={} commit={} at={}",
        doc.get("bench").and_then(Json::as_str).unwrap_or("?"),
        doc.get("git_commit")
            .and_then(Json::as_str)
            .map(|c| &c[..c.len().min(12)])
            .unwrap_or("?"),
        doc.get("generated_at")
            .and_then(Json::as_str)
            .unwrap_or("?"),
    );
}

/// Audit one `PERFETTO_*.json` export: parseable, non-empty
/// `traceEvents`, current `sm` provenance stamp.
fn audit_perfetto(path: &Path, report: &mut Vec<Drift>) {
    println!("\n== {} ==", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) if t.trim().is_empty() => return drift(report, path, "empty file"),
        Ok(t) => t,
        Err(e) => return drift(report, path, format!("unreadable: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return drift(report, path, format!("malformed JSON: {e}")),
    };
    let n_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(|a| a.len());
    match n_events {
        Some(0) => drift(report, path, "traceEvents is empty"),
        Some(n) => println!("  {n} trace event(s)"),
        None => drift(report, path, "missing traceEvents array"),
    }
    let sm = doc.get("sm");
    match sm.and_then(|s| s.get("schema")).and_then(Json::as_str) {
        Some(sm_trace::chrome::PERFETTO_SCHEMA) => {}
        other => drift(report, path, format!("sm.schema {other:?}")),
    }
    match sm.and_then(|s| s.get("version")).and_then(Json::as_f64) {
        Some(v) if v == sm_trace::TRACE_SCHEMA_VERSION as f64 => {}
        v => drift(
            report,
            path,
            format!(
                "sm.version {v:?} != current {}",
                sm_trace::TRACE_SCHEMA_VERSION
            ),
        ),
    }
}

/// Audit one CSV artifact: the `# schema=sm-csv ...` stamp must lead and
/// carry the current version.
fn audit_csv(path: &Path, report: &mut Vec<Drift>) {
    println!("\n== {} ==", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) if t.trim().is_empty() => return drift(report, path, "empty file"),
        Ok(t) => t,
        Err(e) => return drift(report, path, format!("unreadable: {e}")),
    };
    let first = text.lines().next().unwrap_or("");
    if !first.starts_with("# schema=sm-csv ") {
        return drift(
            report,
            path,
            "missing '# schema=sm-csv ...' header stamp on line 1",
        );
    }
    let version = first
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("version="))
        .and_then(|v| v.parse::<u32>().ok());
    match version {
        Some(v) if v == CSV_SCHEMA_VERSION => {}
        v => drift(
            report,
            path,
            format!("csv schema version {v:?} != current {CSV_SCHEMA_VERSION}"),
        ),
    }
    let rows = text
        .lines()
        .skip(2)
        .filter(|l| !l.trim().is_empty())
        .count();
    println!("  {} data row(s)", rows);
}

/// Parsed view of one trace line (event or metric).
struct TraceLine {
    doc: Json,
}

impl TraceLine {
    fn str(&self, key: &str) -> &str {
        self.doc.get(key).and_then(Json::as_str).unwrap_or("")
    }
    fn num(&self, key: &str) -> f64 {
        self.try_num(key).unwrap_or(0.0)
    }
    fn field(&self, key: &str) -> f64 {
        self.try_field(key).unwrap_or(0.0)
    }
    /// Top-level numeric key, `None` when absent — callers that *expect*
    /// the key use this and report the gap instead of folding in 0.0.
    fn try_num(&self, key: &str) -> Option<f64> {
        self.doc.get(key).and_then(Json::as_f64)
    }
    /// Structured-payload numeric field, `None` when absent.
    fn try_field(&self, key: &str) -> Option<f64> {
        self.doc
            .get("fields")
            .and_then(|f| f.get(key))
            .and_then(Json::as_f64)
    }
}

/// Audit one `TRACE_*.jsonl` structured trace and print the ops report.
fn audit_trace(path: &Path, report: &mut Vec<Drift>) {
    println!("\n== {} ==", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return drift(report, path, format!("unreadable: {e}")),
    };
    let mut lines = text.lines();
    let header = match lines.next().map(Json::parse) {
        Some(Ok(h)) => h,
        Some(Err(e)) => return drift(report, path, format!("malformed header: {e}")),
        None => return drift(report, path, "empty trace file"),
    };
    if header.get("schema").and_then(Json::as_str) != Some("sm-trace") {
        return drift(report, path, "header is not an sm-trace header");
    }
    match header.get("version").and_then(Json::as_f64) {
        Some(v) if v == sm_trace::TRACE_SCHEMA_VERSION as f64 => {}
        v => {
            return drift(
                report,
                path,
                format!(
                    "trace schema version {v:?} != current {}",
                    sm_trace::TRACE_SCHEMA_VERSION
                ),
            )
        }
    }
    let label = header.get("label").and_then(Json::as_str).unwrap_or("?");

    let mut events = Vec::new();
    let mut metrics = Vec::new();
    for (i, line) in lines.enumerate() {
        match Json::parse(line) {
            Ok(doc) => {
                let t = TraceLine { doc };
                match t.str("type") {
                    "event" => events.push(t),
                    "metric" => metrics.push(t),
                    other => drift(
                        report,
                        path,
                        format!("line {}: unknown type '{other}'", i + 2),
                    ),
                }
            }
            Err(e) => drift(report, path, format!("line {}: {e}", i + 2)),
        }
    }
    if events.is_empty() {
        drift(
            report,
            path,
            "trace contains no events (instrumentation off?)",
        );
    }
    println!(
        "  label={label} events={} metrics={}",
        events.len(),
        metrics.len()
    );

    // Plan-cache pressure: per-engine-root builds/hits/evictions counters
    // plus the final occupancy gauge.
    let metric_u64 = |suffix: &str| -> u64 {
        metrics
            .iter()
            .filter(|m| m.str("name").ends_with(suffix))
            .map(|m| m.num("value") as u64)
            .sum()
    };
    let builds = metric_u64("/plan_cache.builds");
    let hits = metric_u64("/plan_cache.hits");
    let evictions = metric_u64("/plan_cache.evictions");
    let occupancy = metrics
        .iter()
        .filter(|m| m.str("name").ends_with("/plan_cache.occupancy"))
        .map(|m| m.num("value"))
        .fold(0.0f64, f64::max);
    if builds + hits > 0 {
        println!(
            "  plan cache: {hits} hits / {builds} builds ({:.1}% hit rate), \
             {evictions} evictions, occupancy {occupancy:.0}",
            100.0 * hits as f64 / (hits + builds) as f64
        );
    }

    // Steal effectiveness: sched.epoch narrates each epoch's committed vs
    // deferred split; sched.steal lists the ranks each straggler borrowed.
    let mut epochs: BTreeMap<u64, (f64, f64, f64)> = BTreeMap::new();
    let mut steals: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for ev in &events {
        let epoch_idx = ev
            .doc
            .get("path")
            .and_then(Json::as_str)
            .and_then(epoch_of_path);
        match ev.str("name") {
            "sched.epoch" => {
                if let Some(e) = epoch_idx {
                    epochs.insert(
                        e,
                        (
                            ev.field("groups"),
                            ev.field("committed"),
                            ev.field("deferred"),
                        ),
                    );
                }
            }
            "sched.steal" => {
                if let Some(e) = epoch_idx {
                    let s = steals.entry(e).or_default();
                    s.0 += 1;
                    s.1 += ev.field("stolen_ranks") as u64;
                }
            }
            _ => {}
        }
    }
    for (e, (groups, committed, deferred)) in &epochs {
        let (stolen_jobs, stolen_ranks) = steals.get(e).copied().unwrap_or((0, 0));
        println!(
            "  epoch {e}: {groups:.0} groups, {committed:.0} committed / {deferred:.0} deferred, \
             {stolen_jobs} stolen job(s) over {stolen_ranks} rank(s)"
        );
    }

    // Idle breakdown: rank.idle events (emitted once per world rank from
    // rank 0) carry idle wall seconds plus busy/wall fields.
    let idles: Vec<&TraceLine> = events
        .iter()
        .filter(|e| e.str("name") == "rank.idle")
        .collect();
    if !idles.is_empty() {
        // A rank.idle event without its expected fields is a malformed
        // trace, not an idle-free rank: report it as drift instead of
        // silently folding 0.0 into the breakdown.
        let mut complete = true;
        for e in &idles {
            for (what, present) in [
                ("wall_s value", e.try_num("wall_s").is_some()),
                ("fields.wall_s", e.try_field("wall_s").is_some()),
                ("fields.rank", e.try_field("rank").is_some()),
            ] {
                if !present {
                    drift(report, path, format!("rank.idle event missing {what}"));
                    complete = false;
                }
            }
        }
        if complete {
            let wall = idles.iter().map(|e| e.field("wall_s")).fold(0.0, f64::max);
            let idle_sum: f64 = idles.iter().map(|e| e.num("wall_s")).sum();
            let worst = idles
                .iter()
                .max_by(|a, b| a.num("wall_s").total_cmp(&b.num("wall_s")))
                .expect("non-empty");
            println!(
                "  idle: {} ranks, makespan {wall:.3}s, total idle {idle_sum:.3}s \
                 (worst rank {:.0}: {:.3}s)",
                idles.len(),
                worst.field("rank"),
                worst.num("wall_s"),
            );
        }
    }

    // Byte budgets: engine value traffic by precision, communicator
    // traffic by class.
    for prec in ["fp64", "fp32", "fp32_refined"] {
        let bytes = metric_u64(&format!("/engine.value_bytes.{prec}"));
        if bytes > 0 {
            println!("  engine value bytes [{prec}]: {bytes}");
        }
    }
    for class in ["collective", "p2p"] {
        let bytes = metric_u64(&format!("/comm.{class}.bytes"));
        let msgs = metric_u64(&format!("/comm.{class}.msgs"));
        if msgs > 0 {
            println!("  comm [{class}]: {bytes} bytes in {msgs} message(s)");
        }
    }

    // The deterministic cost-unit critical path, when the trace carries
    // schedule narration (v2 traces of scheduler runs).
    if let Ok(doc) = TraceDoc::parse(&text) {
        match critical_path(&doc, None) {
            Ok(cp) => println!(
                "  critical path: {:.6e} units over {} epoch(s), straggler job {:?}",
                cp.total_units,
                cp.epochs.len(),
                cp.straggler_job
            ),
            Err(TraceError::NoSchedule(_)) => {}
            Err(e) => drift(report, path, format!("critical path: {e}")),
        }
    }
}

/// Extract the epoch index from a span path like
/// `batch:svc/epoch:2/group:0/...`.
fn epoch_of_path(path: &str) -> Option<u64> {
    path.split('/')
        .find_map(|seg| seg.strip_prefix("epoch:"))
        .and_then(|v| v.parse().ok())
}
