//! `smserved` — the resident streaming SCF daemon.
//!
//! Wraps [`StreamingScfService::serve`] (the long-lived admission loop
//! over `ScfJobSpec` streams) in a line protocol on stdin, one reply line
//! per request on stdout:
//!
//! ```text
//! submit <name> <nb> <seed> [low|normal|high]   enqueue a banded GC system
//! window                                        close the admission window and run it
//! export <manifest.smplans>                     spill the plan cache to disk
//! import <manifest.smplans>                     restore plans from a spill
//! stats                                         lifetime counters
//! quit                                          stop the daemon
//! ```
//!
//! Flags: `--world <N>` (default 4), `--capacity <N>` (default 64),
//! `--label <s>` (trace label, default `serve`), `--trace <path>`
//! (record the session's structured trace and write it as JSONL on
//! exit — the input `smdoctor serve-report` reads), `--demo` (scripted
//! kill-and-restart session, no stdin).
//!
//! The demo session exercises the whole resident story end to end: a
//! cold daemon admits a mixed-priority window, spills its plan cache,
//! "dies"; a second daemon on a **fresh engine** imports the manifest,
//! replays the same systems and asserts the warm window replans nothing
//! (`symbolic_builds == 0`) with bitwise-identical densities — the
//! restart is invisible except in the wall clock.
//!
//! Jobs are deterministic banded grand-canonical systems (the scheduler
//! ablations' construction), so a session transcript is reproducible:
//! the same lines always produce the same densities, whatever the
//! arrival timing — only window membership matters (admission-window
//! determinism, ARCHITECTURE.md).

use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use sm_comsim::SerialComm;
use sm_core::engine::EngineOptions;
use sm_dbcsr::{BlockedDims, DbcsrMatrix};
use sm_linalg::Matrix;
use sm_pipeline::{
    Priority, ScfJobSpec, ServiceConfig, ServiceEvent, ServiceRequest, StreamingScfService,
    SubmatrixEngine,
};

/// Exit code for usage errors (mirrors `smdoctor`).
const EXIT_USAGE: u8 = 2;

/// Deterministic banded symmetric matrix with a spectral gap at 0 (the
/// scheduler ablations' construction).
fn banded(nb: usize, bs: usize, seed: u64) -> DbcsrMatrix {
    let n = nb * bs;
    let mut dense = Matrix::from_fn(n, n, |i, j| {
        let bi = (i / bs) as isize;
        let bj = (j / bs) as isize;
        if (bi - bj).abs() > 1 {
            0.0
        } else if i == j {
            (if i % 2 == 0 { 1.0 } else { -1.0 }) + ((seed % 13) as f64) * 0.011
        } else {
            0.05 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    dense.symmetrize();
    DbcsrMatrix::from_dense(&dense, BlockedDims::uniform(nb, bs), 0, 1, 0.0)
}

/// A grand-canonical SCF spec over [`banded`], half filling, µ = 0.
fn gc_spec(name: &str, nb: usize, seed: u64) -> ScfJobSpec {
    let kt0 = banded(nb, 2, seed);
    let n_electrons = kt0.n() as f64;
    let mut spec = ScfJobSpec::new(name, kt0, 0.0, n_electrons);
    spec.scf.max_iter = 8;
    spec.scf.tol = 1e-9;
    spec.scf.ensemble = sm_chem::ScfEnsemble::GrandCanonical;
    spec
}

fn fresh_engine() -> Arc<SubmatrixEngine> {
    Arc::new(SubmatrixEngine::new(EngineOptions {
        parallel: false,
        ..EngineOptions::default()
    }))
}

/// One reply line per [`ServiceEvent`].
fn render(event: &ServiceEvent) -> String {
    match event {
        ServiceEvent::Admitted {
            seq,
            name,
            queue_depth,
        } => format!("admitted seq={seq} name={name} queue={queue_depth}"),
        ServiceEvent::Refused { name, error } => format!("refused name={name}: {error}"),
        ServiceEvent::Window(w) => {
            let jobs: Vec<String> = w
                .outcome
                .results
                .iter()
                .map(|r| {
                    let (iters, conv) = r
                        .scf
                        .as_ref()
                        .map_or((0, false), |s| (s.iterations, s.converged));
                    format!("{}(iters={iters},converged={conv})", r.name)
                })
                .collect();
            format!(
                "window {} ran {} job(s) in {} epoch(s): {}",
                w.window,
                w.admitted.len(),
                w.outcome.schedule.epochs.len(),
                jobs.join(" ")
            )
        }
        ServiceEvent::WindowFailed(e) => format!("window-failed: {e}"),
        ServiceEvent::PlansExported(path, n) => {
            format!("exported {n} plan(s) to {}", path.display())
        }
        ServiceEvent::PlansImported(path, n) => {
            format!("imported {n} plan(s) from {}", path.display())
        }
        ServiceEvent::PlanIoFailed(e) => format!("plan-io-failed: {e}"),
        ServiceEvent::Stats(s) => format!(
            "stats windows={} jobs={} backpressure={} rejected={} high-water={}",
            s.windows, s.jobs_run, s.backpressure_rejects, s.admission_rejects, s.queue_high_water
        ),
        ServiceEvent::Stopped(s) => format!("stopped windows={} jobs={}", s.windows, s.jobs_run),
    }
}

/// Parse one protocol line into a request; `Err` is a message for the
/// user, `Ok(None)` a blank/comment line.
fn parse_line(line: &str) -> Result<Option<ServiceRequest>, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    match words.as_slice() {
        [] | ["#", ..] => Ok(None),
        ["submit", name, nb, seed] | ["submit", name, nb, seed, _] => {
            let priority = match words.get(4) {
                None => Priority::Normal,
                Some(p) => Priority::parse(p)
                    .ok_or_else(|| format!("bad priority '{p}' (low|normal|high)"))?,
            };
            let nb: usize = nb.parse().map_err(|_| format!("bad nb '{nb}'"))?;
            let seed: u64 = seed.parse().map_err(|_| format!("bad seed '{seed}'"))?;
            if nb == 0 {
                return Err("nb must be >= 1".into());
            }
            Ok(Some(ServiceRequest::Submit(
                Box::new(gc_spec(name, nb, seed)),
                priority,
            )))
        }
        ["window"] => Ok(Some(ServiceRequest::CloseWindow)),
        ["export", path] => Ok(Some(ServiceRequest::ExportPlans(PathBuf::from(path)))),
        ["import", path] => Ok(Some(ServiceRequest::ImportPlans(PathBuf::from(path)))),
        ["stats"] => Ok(Some(ServiceRequest::Stats)),
        ["quit"] | ["shutdown"] => Ok(Some(ServiceRequest::Shutdown)),
        other => Err(format!(
            "unknown request '{}' (submit|window|export|import|stats|quit)",
            other.join(" ")
        )),
    }
}

/// Stand up a daemon thread over channels.
fn spawn_daemon(
    engine: Arc<SubmatrixEngine>,
    config: ServiceConfig,
) -> (
    Sender<ServiceRequest>,
    Receiver<ServiceEvent>,
    std::thread::JoinHandle<()>,
) {
    let svc = StreamingScfService::new(engine, config);
    let (req_tx, req_rx) = channel();
    let (evt_tx, evt_rx) = channel();
    let handle = std::thread::spawn(move || svc.serve(req_rx, evt_tx));
    (req_tx, evt_rx, handle)
}

/// The interactive loop: one request line in, one reply line out.
fn run_stdin(engine: Arc<SubmatrixEngine>, config: ServiceConfig) -> ExitCode {
    let (req_tx, evt_rx, handle) = spawn_daemon(engine, config);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("smserved: stdin: {e}");
                break;
            }
        };
        let req = match parse_line(&line) {
            Ok(Some(req)) => req,
            Ok(None) => continue,
            Err(msg) => {
                println!("error: {msg}");
                continue;
            }
        };
        let shutdown = matches!(req, ServiceRequest::Shutdown);
        if req_tx.send(req).is_err() {
            break;
        }
        match evt_rx.recv() {
            Ok(event) => println!("{}", render(&event)),
            Err(_) => break,
        }
        if shutdown {
            break;
        }
    }
    // EOF without `quit`: dropping the request channel stops the loop,
    // which answers with the final Stopped event.
    drop(req_tx);
    if let Ok(event) = evt_rx.recv() {
        println!("{}", render(&event));
    }
    let _ = handle.join();
    ExitCode::SUCCESS
}

/// The scripted kill-and-restart session (`--demo`).
fn run_demo(config: ServiceConfig) -> ExitCode {
    let submit =
        |name: &str, nb: usize, seed: u64, p: &str| format!("submit {name} {nb} {seed} {p}");
    let manifest = std::env::temp_dir().join("smserved_demo.smplans");
    let manifest_str = manifest.display().to_string();

    println!("# cold daemon: admit a mixed-priority window, run it, spill plans");
    let cold_engine = fresh_engine();
    let (req_tx, evt_rx, handle) = spawn_daemon(Arc::clone(&cold_engine), config.clone());
    let script = [
        submit("bulk-a", 6, 1, "low"),
        submit("urgent", 4, 2, "high"),
        submit("steady", 5, 3, "normal"),
        "window".to_string(),
        format!("export {manifest_str}"),
        "stats".to_string(),
        "quit".to_string(),
    ];
    let mut cold_window = None;
    for line in &script {
        println!("> {line}");
        let req = parse_line(line)
            .expect("demo script parses")
            .expect("non-empty");
        let shutdown = matches!(req, ServiceRequest::Shutdown);
        req_tx.send(req).expect("daemon alive");
        let event = evt_rx.recv().expect("daemon replies");
        println!("{}", render(&event));
        if let ServiceEvent::Window(w) = event {
            cold_window = Some(w);
        }
        if shutdown {
            break;
        }
    }
    let _ = handle.join();
    let cold_stats = cold_engine.stats();
    let cold_window = cold_window.expect("cold window ran");
    assert!(
        cold_stats.symbolic_builds > 0,
        "cold window must build plans"
    );

    println!("\n# restart: fresh engine (a new process in miniature), import, replay");
    let warm_engine = fresh_engine();
    let (req_tx, evt_rx, handle) = spawn_daemon(Arc::clone(&warm_engine), config);
    let script = [
        format!("import {manifest_str}"),
        submit("bulk-a", 6, 1, "low"),
        submit("urgent", 4, 2, "high"),
        submit("steady", 5, 3, "normal"),
        "window".to_string(),
        "quit".to_string(),
    ];
    let mut warm_window = None;
    for line in &script {
        println!("> {line}");
        let req = parse_line(line)
            .expect("demo script parses")
            .expect("non-empty");
        let shutdown = matches!(req, ServiceRequest::Shutdown);
        req_tx.send(req).expect("daemon alive");
        let event = evt_rx.recv().expect("daemon replies");
        println!("{}", render(&event));
        match event {
            ServiceEvent::Window(w) => warm_window = Some(w),
            ServiceEvent::PlanIoFailed(e) => {
                eprintln!("smserved: demo import failed: {e}");
                return ExitCode::FAILURE;
            }
            _ => {}
        }
        if shutdown {
            break;
        }
    }
    let _ = handle.join();
    let warm_stats = warm_engine.stats();
    let warm_window = warm_window.expect("warm window ran");

    // The resident contract, asserted in-binary: a warm restart replans
    // nothing and changes no numbers.
    assert_eq!(
        warm_stats.symbolic_builds, 0,
        "warm restart must replan nothing"
    );
    assert_eq!(
        warm_stats.cache_hits, warm_stats.executions,
        "every warm planning decision is a hit"
    );
    let comm = SerialComm::new();
    for (c, w) in cold_window
        .outcome
        .results
        .iter()
        .zip(&warm_window.outcome.results)
    {
        assert_eq!(c.name, w.name);
        assert!(
            c.result
                .to_dense(&comm)
                .allclose(&w.result.to_dense(&comm), 0.0),
            "job '{}' density changed across the restart",
            c.name
        );
    }
    println!(
        "\ndemo OK: warm restart replanned nothing ({} hits / 0 builds), \
         densities bitwise-identical across the restart; manifest at {manifest_str}",
        warm_stats.cache_hits
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServiceConfig::default();
    let mut demo = false;
    let mut trace: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |what: &str| -> Result<&String, ExitCode> {
            it.next().ok_or_else(|| {
                eprintln!("smserved: {what} needs a value");
                ExitCode::from(EXIT_USAGE)
            })
        };
        match arg.as_str() {
            "--demo" => demo = true,
            "--world" => match flag_value("--world").map(|v| v.parse()) {
                Ok(Ok(n)) if n >= 1 => config.world_size = n,
                Ok(_) => {
                    eprintln!("smserved: --world must be a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
                Err(code) => return code,
            },
            "--capacity" => match flag_value("--capacity").map(|v| v.parse()) {
                Ok(Ok(n)) if n >= 1 => config.queue_capacity = n,
                Ok(_) => {
                    eprintln!("smserved: --capacity must be a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
                Err(code) => return code,
            },
            "--label" => match flag_value("--label") {
                Ok(v) => config.trace_label = v.clone(),
                Err(code) => return code,
            },
            "--trace" => match flag_value("--trace") {
                Ok(v) => trace = Some(PathBuf::from(v)),
                Err(code) => return code,
            },
            "--help" | "-h" => {
                println!(
                    "smserved [--world N] [--capacity N] [--label s] [--trace path] [--demo]\n\
                     stdin protocol: submit <name> <nb> <seed> [low|normal|high] | window |\n\
                     export <path> | import <path> | stats | quit"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("smserved: unknown flag '{other}' (try --help)");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let session = trace
        .as_ref()
        .map(|_| sm_trace::TraceSession::start(&config.trace_label));
    let code = if demo {
        run_demo(config)
    } else {
        run_stdin(fresh_engine(), config)
    };
    if let (Some(path), Some(session)) = (trace, session) {
        if let Err(e) = session.write_jsonl(&path) {
            eprintln!("smserved: cannot write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} ({} events, {} metrics)",
            path.display(),
            session.events().len(),
            session.metrics().len()
        );
    }
    code
}
