//! Paper Table I: peak, matrix-multiply and sign-algorithm throughput per
//! precision mode on an RTX 2080 Ti (n = 3972), plus the Stratix 10 FPGA
//! row of Sec. VI-B.
//!
//! These are **modelled** values (published peaks + occupancy/overhead
//! model) — no GPU exists in this environment; see DESIGN.md. The expected
//! shape: FP16 > FP16' > FP32 ≫ FP64 at every level, with the sign
//! algorithm paying a visible overhead on the fast modes and almost none
//! on FP64.

use sm_accel::perfmodel::{fpga_row, gpu_table, DeviceModel};
use sm_bench::output::{fixed, print_table, write_csv};

fn main() {
    let n = 3972;
    let iters = 7;
    println!("Table I — modelled throughputs at n = {n}, {iters} sign iterations\n");

    let mut rows = Vec::new();
    for r in gpu_table(&DeviceModel::rtx_2080_ti(), n, iters) {
        rows.push(vec![
            r.mode.to_string(),
            fixed(r.peak_tflops, 1),
            fixed(r.matmul_tflops, 1),
            fixed(r.sign_tflops, 1),
            fixed(r.gflops_per_watt(), 0),
        ]);
    }
    let f = fpga_row(&DeviceModel::stratix_10(), n);
    rows.push(vec![
        f.mode.to_string(),
        fixed(f.peak_tflops, 1),
        fixed(f.matmul_tflops, 1),
        fixed(f.sign_tflops, 1),
        fixed(f.gflops_per_watt(), 0),
    ]);

    let header = [
        "precision",
        "peak_tflops",
        "matmul_tflops",
        "sign_tflops",
        "gflops_per_watt",
    ];
    print_table(&header, &rows);
    write_csv("table1_gpu_throughput.csv", &header, &rows);

    println!(
        "\npaper's measured anchors: FP16 56.4/35.2, FP16' 38.2/27.8, FP32 12.2/10.4, \
         FP64 0.5/0.5 TFLOP/s (matmul/sign); FPGA 2.7/1.75"
    );
}
