//! Perfmodel calibration reports from traced runs — **report-only**.
//!
//! Fits `sm_accel::perfmodel` phase coefficients (seconds per cost unit
//! for gather/solve/scatter) from the `(cost, wall)` sample pairs a
//! traced scheduler run records, and writes the result as
//! `results/CALIB_perfmodel.json` (standard stamped envelope; `data`
//! carries `report_only: true`).
//!
//! The ROADMAP's "feed measured runs back into `accel::perfmodel`
//! coefficients" item lands here deliberately *castrated*: the report is
//! for humans and `smdoctor`, and **nothing in the scheduler or engine
//! ever reads it** — schedules stay pure functions of the static
//! estimates (invariant 3), which the bitwise equivalence suites pin
//! with calibration artifacts present on disk.

use crate::output::{write_stamped_json, Json};
use sm_accel::perfmodel::{fit_seconds_per_unit, CalibrationReport, PhaseCoeff};
use sm_trace::analyze::{phase_samples, TraceDoc};
use std::path::PathBuf;

/// Fit per-phase coefficients from the `engine.phase` events of the
/// traced batch `label`. Phases with no usable signal (no samples, or
/// all costs zero) are omitted; phases come out in sorted name order.
pub fn calibration_report(doc: &TraceDoc, label: &str) -> CalibrationReport {
    let samples = phase_samples(doc, label);
    CalibrationReport {
        phases: samples
            .iter()
            .filter_map(|(phase, pairs)| fit_seconds_per_unit(phase, pairs))
            .collect(),
    }
}

/// Render a calibration report as the `data` payload of a
/// `CALIB_*.json` document (deterministic key order; `report_only` is
/// stamped `true` — see the module docs).
pub fn calibration_json(label: &str, report: &CalibrationReport) -> Json {
    let phase_obj = |p: &PhaseCoeff| {
        Json::Obj(vec![
            ("phase".to_string(), Json::Str(p.phase.clone())),
            (
                "seconds_per_unit".to_string(),
                Json::Num(p.seconds_per_unit),
            ),
            ("r_squared".to_string(), Json::Num(p.r_squared)),
            ("samples".to_string(), Json::Num(p.samples as f64)),
            ("total_cost".to_string(), Json::Num(p.total_cost)),
            ("total_seconds".to_string(), Json::Num(p.total_seconds)),
        ])
    };
    Json::obj([
        ("label", Json::Str(label.to_string())),
        ("report_only", Json::Bool(true)),
        (
            "phases",
            Json::Arr(report.phases.iter().map(phase_obj).collect()),
        ),
    ])
}

/// Fit and write `results/CALIB_perfmodel.json` for the traced batch
/// `label`, returning the written path. The standard tail call of a
/// traced bench run (`ablation_scf_service` does this after its traced
/// rerun).
pub fn write_calibration(doc: &TraceDoc, label: &str) -> PathBuf {
    let report = calibration_report(doc, label);
    write_stamped_json("CALIB", "perfmodel", calibration_json(label, &report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_trace::analyze::RecEvent;

    fn doc_with_phases() -> TraceDoc {
        let ev = |path: &str, cost: f64, wall: f64| RecEvent {
            path: path.into(),
            name: "engine.phase".into(),
            seq: 0,
            cost,
            wall_s: wall,
            fields: Vec::new(),
        };
        TraceDoc {
            label: "c".into(),
            version: sm_trace::TRACE_SCHEMA_VERSION,
            events: vec![
                ev(
                    "batch:c/epoch:0/group:0/job:0/iter:0/phase:solve",
                    100.0,
                    0.01,
                ),
                ev(
                    "batch:c/epoch:0/group:0/job:0/iter:1/phase:solve",
                    200.0,
                    0.02,
                ),
                ev(
                    "batch:c/epoch:0/group:0/job:0/iter:0/phase:gather",
                    4096.0,
                    0.001,
                ),
                // Zero-cost phase: contributes no usable signal alone.
                ev(
                    "batch:c/epoch:0/group:0/job:0/iter:0/phase:scatter",
                    0.0,
                    0.002,
                ),
            ],
            metrics: Vec::new(),
        }
    }

    #[test]
    fn fits_each_phase_and_omits_degenerate_ones() {
        let report = calibration_report(&doc_with_phases(), "c");
        let solve = report.phase("solve").expect("solve fitted");
        assert!((solve.seconds_per_unit - 1e-4).abs() < 1e-12);
        assert_eq!(solve.samples, 2);
        assert!(report.phase("gather").is_some());
        // All-zero-cost scatter has no slope to fit.
        assert!(report.phase("scatter").is_none());
    }

    #[test]
    fn json_payload_is_report_only_with_stable_keys() {
        let report = calibration_report(&doc_with_phases(), "c");
        let data = calibration_json("c", &report);
        assert_eq!(data.get("report_only"), Some(&Json::Bool(true)));
        let text = data.to_string();
        assert!(text.starts_with("{\"label\":\"c\",\"report_only\":true,\"phases\":["));
        assert!(text.contains("\"phase\":\"gather\""));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&text).unwrap(), data);
    }
}
