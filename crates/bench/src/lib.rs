//! # sm-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index) plus ablation studies and criterion micro-benches.
//! Binaries print the same series the paper plots and drop CSV files under
//! `results/`.
//!
//! Scale conventions: the laptop-scale defaults finish in seconds to a few
//! minutes; experiments that *solve* systems use a shortened basis range
//! ([`workloads::accuracy_basis`]) so per-column submatrices stay small,
//! while pattern/model experiments use the standard ranges. Passing
//! `--paper` to a binary enlarges the workload toward the paper's sizes.

pub mod calibrate;
pub mod output;
pub mod workloads;
