//! CSV + console output helpers shared by the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment CSVs are written (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Schema version of the CSV artifacts' `# schema=sm-csv ...` comment
/// header (same discipline as the JSON stamps: bump only with a
/// migration note; `smdoctor --check` audits it).
pub const CSV_SCHEMA_VERSION: u32 = 1;

/// The `# schema=sm-csv ...` comment line stamped atop every CSV output
/// (self-describing artifacts: schema version + producing bench).
pub fn csv_schema_header(stem: &str) -> String {
    format!("# schema=sm-csv version={CSV_SCHEMA_VERSION} bench={stem}")
}

/// Write a CSV file into [`results_dir`] and announce it on stdout.
///
/// The first line is the [`csv_schema_header`] comment stamp (consumers
/// skip `#` lines), then the column header, then the rows. Every CSV
/// additionally materializes as a stable-schema `BENCH_<stem>.json`
/// trajectory document (see [`write_bench_json`]), so all experiment
/// binaries feed the machine-readable result trajectory without
/// per-binary plumbing.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let stem = name.strip_suffix(".csv").unwrap_or(name);
    let mut f = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(f, "{}", csv_schema_header(stem)).expect("write schema stamp");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("wrote {} ({} rows)", path.display(), rows.len());
    write_bench_json(stem, bench_table(header, rows));
}

/// Schema version of the `BENCH_*.json` trajectory documents. Bump only
/// with a migration note; downstream tooling keys on it.
pub const BENCH_SCHEMA_VERSION: f64 = 1.0;

/// Tabular payload for a `BENCH_*.json` document: column names plus
/// stringly-typed rows (exactly the CSV cells, so the two outputs can
/// never disagree).
pub fn bench_table(header: &[&str], rows: &[Vec<String>]) -> Json {
    Json::obj([
        (
            "columns",
            Json::Arr(header.iter().map(|h| Json::Str(h.to_string())).collect()),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Write `results/BENCH_<name>.json`, the stable-schema machine-readable
/// trajectory record of one experiment binary. Stable key order:
/// `{"bench", "schema_version", "git_commit", "generated_at", "data"}` —
/// every document stamps the schema version, the workspace git commit it
/// was produced from, and an ISO-8601 UTC timestamp, so a results
/// directory is self-describing long after the run (`smdoctor --check`
/// verifies the stamps). `data` is the binary-specific payload (usually
/// [`bench_table`], optionally richer).
pub fn write_bench_json(name: &str, data: Json) {
    write_stamped_json("BENCH", name, data);
}

/// Write `results/<prefix>_<name>.json` with the standard provenance
/// stamp envelope (`bench`/`schema_version`/`git_commit`/`generated_at`/
/// `data` in stable key order). The shared writer behind
/// [`write_bench_json`] and the calibration report
/// (`results/CALIB_perfmodel.json`) — every stamped artifact passes the
/// same `smdoctor --check` audit.
pub fn write_stamped_json(prefix: &str, name: &str, data: Json) -> PathBuf {
    let doc = Json::obj([
        ("bench", Json::Str(name.to_string())),
        ("schema_version", Json::Num(BENCH_SCHEMA_VERSION)),
        ("git_commit", Json::Str(workspace_git_commit())),
        ("generated_at", Json::Str(iso8601_utc_now())),
        ("data", data),
    ]);
    let path = results_dir().join(format!("{prefix}_{name}.json"));
    fs::write(&path, format!("{doc}\n")).expect("cannot write stamped json");
    println!("wrote {}", path.display());
    path
}

/// The workspace git commit (`git rev-parse HEAD`), or `"unknown"` when
/// git or the repository is unavailable — provenance stamping must never
/// fail a bench run.
pub fn workspace_git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current UTC time as an ISO-8601 string (`2026-02-03T17:05:00Z`),
/// derived from the system clock without external crates.
pub fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_from_unix(secs)
}

/// Render Unix seconds as an ISO-8601 UTC timestamp. Civil-from-days
/// conversion after Howard Hinnant's algorithm (proleptic Gregorian).
pub fn iso8601_from_unix(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year [0, 365]
    let mp = (5 * doy + 2) / 153; // March-based month [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Print an aligned table to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// The workspace JSON value (moved to `sm_trace::json` so the trace
/// analyzers share the same parser/serializer; re-exported here so every
/// existing `sm_bench::output::Json` call site keeps working).
pub use sm_trace::json::Json;

/// Write a JSON document into [`results_dir`] and announce it on stdout —
/// the standard machine-readable output of the experiment binaries.
pub fn write_json(name: &str, doc: &Json) {
    let path = results_dir().join(name);
    fs::write(&path, format!("{doc}\n")).expect("cannot write JSON file");
    println!("wrote {}", path.display());
}

/// Format a float in compact scientific notation for tables.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Format a float with fixed decimals.
pub fn fixed(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// True if `--paper` (larger, paper-scale workloads) was passed.
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(1234.5), "1.234e3");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn json_rendering() {
        let doc = Json::obj([
            ("name", Json::Str("x\"y".into())),
            ("n", Json::Num(4.0)),
            ("t", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"x\"y","n":4,"t":0.125,"ok":true,"xs":[1,2]}"#
        );
    }

    #[test]
    fn csv_roundtrip() {
        write_csv(
            "test_output_helper.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let content =
            std::fs::read_to_string(results_dir().join("test_output_helper.csv")).unwrap();
        assert_eq!(
            content,
            "# schema=sm-csv version=1 bench=test_output_helper\na,b\n1,2\n"
        );
        std::fs::remove_file(results_dir().join("test_output_helper.csv")).unwrap();
        // The CSV also materialized as a stable-schema BENCH document,
        // stamped with provenance in a fixed key order.
        let bench =
            std::fs::read_to_string(results_dir().join("BENCH_test_output_helper.json")).unwrap();
        let doc = Json::parse(&bench).expect("BENCH document parses");
        let keys: Vec<&str> = match &doc {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(
            keys,
            [
                "bench",
                "schema_version",
                "git_commit",
                "generated_at",
                "data"
            ]
        );
        assert_eq!(
            doc.get("bench").unwrap().as_str(),
            Some("test_output_helper")
        );
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64(),
            Some(BENCH_SCHEMA_VERSION)
        );
        assert!(!doc.get("git_commit").unwrap().as_str().unwrap().is_empty());
        let stamp = doc.get("generated_at").unwrap().as_str().unwrap();
        assert!(
            stamp.len() == 20 && stamp.ends_with('Z') && &stamp[4..5] == "-",
            "ISO-8601 UTC stamp, got {stamp:?}"
        );
        let data = doc.get("data").unwrap();
        assert_eq!(
            data.get("columns").unwrap().as_arr().unwrap(),
            &[Json::Str("a".into()), Json::Str("b".into())]
        );
        std::fs::remove_file(results_dir().join("BENCH_test_output_helper.json")).unwrap();
    }

    #[test]
    fn iso8601_conversion_matches_known_instants() {
        assert_eq!(iso8601_from_unix(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_from_unix(86_399), "1970-01-01T23:59:59Z");
        assert_eq!(iso8601_from_unix(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso8601_from_unix(1_700_000_000), "2023-11-14T22:13:20Z");
    }

    #[test]
    fn json_parser_roundtrips_serializer_output() {
        let doc = Json::obj([
            ("name", Json::Str("a \"quoted\" name\n".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(-0.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "nested",
                Json::Arr(vec![Json::Num(1.0), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Accessors walk the tree without pattern matching at call sites.
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(doc.get("nested").unwrap().as_arr().unwrap().len(), 3);
        assert!(Json::parse("{\"x\": 1} trailing").is_err());
        assert!(Json::parse("{\"x\": }").is_err());
    }
}
