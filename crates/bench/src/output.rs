//! CSV + console output helpers shared by the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment CSVs are written (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Write a CSV file into [`results_dir`] and announce it on stdout.
///
/// Every CSV additionally materializes as a stable-schema
/// `BENCH_<stem>.json` trajectory document (see [`write_bench_json`]), so
/// all experiment binaries feed the machine-readable result trajectory
/// without per-binary plumbing.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("wrote {} ({} rows)", path.display(), rows.len());
    let stem = name.strip_suffix(".csv").unwrap_or(name);
    write_bench_json(stem, bench_table(header, rows));
}

/// Schema version of the `BENCH_*.json` trajectory documents. Bump only
/// with a migration note; downstream tooling keys on it.
pub const BENCH_SCHEMA_VERSION: f64 = 1.0;

/// Tabular payload for a `BENCH_*.json` document: column names plus
/// stringly-typed rows (exactly the CSV cells, so the two outputs can
/// never disagree).
pub fn bench_table(header: &[&str], rows: &[Vec<String>]) -> Json {
    Json::obj([
        (
            "columns",
            Json::Arr(header.iter().map(|h| Json::Str(h.to_string())).collect()),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Write `results/BENCH_<name>.json`, the stable-schema machine-readable
/// trajectory record of one experiment binary:
/// `{"bench", "schema_version", "data"}` where `data` is the
/// binary-specific payload (usually [`bench_table`], optionally richer).
pub fn write_bench_json(name: &str, data: Json) {
    let doc = Json::obj([
        ("bench", Json::Str(name.to_string())),
        ("schema_version", Json::Num(BENCH_SCHEMA_VERSION)),
        ("data", data),
    ]);
    let path = results_dir().join(format!("BENCH_{name}.json"));
    fs::write(&path, format!("{doc}\n")).expect("cannot write BENCH json");
    println!("wrote {}", path.display());
}

/// Print an aligned table to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Minimal JSON value for the experiment binaries' machine-readable
/// output (the workspace has no serde; this covers what the benches emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/inf; null keeps the document valid.
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Write a JSON document into [`results_dir`] and announce it on stdout —
/// the standard machine-readable output of the experiment binaries.
pub fn write_json(name: &str, doc: &Json) {
    let path = results_dir().join(name);
    fs::write(&path, format!("{doc}\n")).expect("cannot write JSON file");
    println!("wrote {}", path.display());
}

/// Format a float in compact scientific notation for tables.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Format a float with fixed decimals.
pub fn fixed(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// True if `--paper` (larger, paper-scale workloads) was passed.
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(1234.5), "1.234e3");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn json_rendering() {
        let doc = Json::obj([
            ("name", Json::Str("x\"y".into())),
            ("n", Json::Num(4.0)),
            ("t", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"x\"y","n":4,"t":0.125,"ok":true,"xs":[1,2]}"#
        );
    }

    #[test]
    fn csv_roundtrip() {
        write_csv(
            "test_output_helper.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let content =
            std::fs::read_to_string(results_dir().join("test_output_helper.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(results_dir().join("test_output_helper.csv")).unwrap();
        // The CSV also materialized as a stable-schema BENCH document.
        let bench =
            std::fs::read_to_string(results_dir().join("BENCH_test_output_helper.json")).unwrap();
        assert_eq!(
            bench,
            "{\"bench\":\"test_output_helper\",\"schema_version\":1,\
             \"data\":{\"columns\":[\"a\",\"b\"],\"rows\":[[\"1\",\"2\"]]}}\n"
        );
        std::fs::remove_file(results_dir().join("BENCH_test_output_helper.json")).unwrap();
    }
}
