//! CSV + console output helpers shared by the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where experiment CSVs are written (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Write a CSV file into [`results_dir`] and announce it on stdout.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("wrote {} ({} rows)", path.display(), rows.len());
}

/// Print an aligned table to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Format a float in compact scientific notation for tables.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Format a float with fixed decimals.
pub fn fixed(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// True if `--paper` (larger, paper-scale workloads) was passed.
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(1234.5), "1.234e3");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn csv_roundtrip() {
        write_csv(
            "test_output_helper.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let content =
            std::fs::read_to_string(results_dir().join("test_output_helper.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(results_dir().join("test_output_helper.csv")).unwrap();
    }
}
