//! Shared workload construction for the experiment binaries.

use sm_chem::builder::{build_system, SystemMatrices};
use sm_chem::{BasisSet, WaterBox};
use sm_comsim::SerialComm;
use sm_core::baseline::{orthogonalize_sparse, NewtonSchulzOptions};
use sm_dbcsr::DbcsrMatrix;

/// Deterministic seed used by every experiment.
pub const SEED: u64 = 42;

/// Basis for experiments that *solve* systems (Figs. 1, 6, 7 analogues):
/// SZV with shortened decay ranges so single-column submatrices stay
/// laptop-sized while preserving the linear-scaling structure. DESIGN.md
/// documents this scale substitution.
pub fn accuracy_basis() -> BasisSet {
    BasisSet::szv().with_range_scale(0.55)
}

/// Basis for pattern/dimension/model experiments (Figs. 4, 5, 8–11):
/// standard ranges.
pub fn pattern_basis_szv() -> BasisSet {
    BasisSet::szv()
}

/// DZVP variant for the basis-set comparisons of Figs. 4 and 11.
pub fn pattern_basis_dzvp() -> BasisSet {
    BasisSet::dzvp()
}

/// Build the system and its Löwdin-orthogonalized Kohn–Sham matrix on a
/// single rank. `eps_build` bounds which matrix elements exist at all;
/// `eps_ortho` filters the sparse inverse-square-root iteration.
pub fn build_orthogonalized(
    water: &WaterBox,
    basis: &BasisSet,
    eps_build: f64,
    eps_ortho: f64,
) -> (SystemMatrices, DbcsrMatrix) {
    let comm = SerialComm::new();
    let sys = build_system(water, basis, 0, 1, eps_build);
    let (kt, _, report) = orthogonalize_sparse(
        &sys.s,
        &sys.k,
        &NewtonSchulzOptions {
            eps_filter: eps_ortho,
            max_iter: 200,
        },
        &comm,
    );
    assert!(
        report.converged,
        "orthogonalization failed to converge (residual {})",
        report.residual
    );
    (sys, kt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basis_is_shorter_ranged() {
        assert!(accuracy_basis().max_sigma() < pattern_basis_szv().max_sigma());
    }

    #[test]
    fn build_orthogonalized_small_system() {
        let water = WaterBox::cubic(1, SEED);
        let basis = accuracy_basis();
        let (sys, kt) = build_orthogonalized(&water, &basis, 1e-10, 1e-11);
        assert_eq!(kt.n(), water.n_molecules() * basis.n_per_molecule());
        assert!(sys.mu.is_finite());
        assert!(kt.local_nnz_blocks() > 0);
    }
}
