//! Synthetic Gaussian basis sets.
//!
//! The paper uses SZV-MOLOPT-SR-GTH (single-zeta valence, 6 functions per
//! H₂O) and DZVP-MOLOPT-SR-GTH (double-zeta + polarization, 23 per H₂O).
//! This module models each basis function by three numbers that fully
//! determine the structure the submatrix method cares about:
//!
//! * the **atom** it is centred on (O, H₁ or H₂ of its molecule),
//! * a Gaussian **decay range** σ (Å) controlling how fast two-centre
//!   matrix elements fall off with distance — DZVP's extra zeta shells are
//!   more diffuse, which is why its submatrices grow faster than the
//!   function count (paper Sec. V-C),
//! * an **onsite energy** ε (Hartree-like units) placing occupied valence
//!   shells below and virtual/polarization shells above the gap.
//!
//! Ranges are deliberately shorter than the physical MOLOPT tails so that
//! laptop-scale runs stay tractable; `range_scale` lets experiments dial
//! the paper-scale behaviour back in (see DESIGN.md's substitution table).

/// Atom slot within a water molecule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomSlot {
    /// The oxygen.
    O,
    /// First hydrogen.
    H1,
    /// Second hydrogen.
    H2,
}

impl AtomSlot {
    /// Index into [`crate::water::Water::atoms`].
    pub fn index(self) -> usize {
        match self {
            AtomSlot::O => 0,
            AtomSlot::H1 => 1,
            AtomSlot::H2 => 2,
        }
    }
}

/// One basis function of the per-molecule set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasisFunction {
    /// Which atom of the molecule carries the function.
    pub atom: AtomSlot,
    /// Gaussian decay range σ in Å.
    pub sigma: f64,
    /// Onsite (diagonal Kohn–Sham) energy.
    pub onsite: f64,
    /// Sign channel (±1) giving two-centre couplings an angular-like
    /// alternation so the synthetic spectrum is not artificially degenerate.
    pub parity: f64,
}

/// Basis-set families from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisKind {
    /// SZV-MOLOPT-SR-GTH: 4 functions on O + 1 on each H = 6 per H₂O.
    Szv,
    /// DZVP-MOLOPT-SR-GTH: 13 on O + 5 on each H = 23 per H₂O.
    Dzvp,
}

/// A per-molecule basis description.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSet {
    /// Family tag.
    pub kind: BasisKind,
    /// Functions of one molecule, in block order.
    pub functions: Vec<BasisFunction>,
    /// Multiplier applied to every σ (1.0 = this reproduction's default
    /// laptop-scale ranges; larger values approach the paper's physical
    /// ranges and submatrix dimensions).
    pub range_scale: f64,
}

fn f(atom: AtomSlot, sigma: f64, onsite: f64, parity: f64) -> BasisFunction {
    BasisFunction {
        atom,
        sigma,
        onsite,
        parity,
    }
}

impl BasisSet {
    /// The SZV-MOLOPT-SR-GTH stand-in: O(2s, 2p×3) + H(1s) ×2.
    pub fn szv() -> Self {
        use AtomSlot::*;
        BasisSet {
            kind: BasisKind::Szv,
            functions: vec![
                f(O, 1.10, -1.35, 1.0),  // O 2s
                f(O, 1.25, -0.60, 1.0),  // O 2p_x
                f(O, 1.25, -0.60, -1.0), // O 2p_y
                f(O, 1.25, -0.55, 1.0),  // O 2p_z
                f(H1, 1.20, -0.20, 1.0), // H 1s
                f(H2, 1.20, -0.20, -1.0),
            ],
            range_scale: 1.0,
        }
    }

    /// The DZVP-MOLOPT-SR-GTH stand-in: O(2s×2, 2p×6, d×5) + H(1s×2, p×3)
    /// ×2. The second-zeta and polarization shells are more diffuse
    /// (larger σ), reproducing the "larger basis sets are usually more
    /// long-ranged" behaviour of paper Sec. V-C.
    pub fn dzvp() -> Self {
        use AtomSlot::*;
        let mut functions = vec![
            f(O, 1.00, -1.40, 1.0), // O 2s ζ1
            f(O, 1.60, 0.30, 1.0),  // O 2s ζ2 (diffuse, virtual)
            f(O, 1.15, -0.60, 1.0), // O 2p ζ1
            f(O, 1.15, -0.60, -1.0),
            f(O, 1.15, -0.55, 1.0),
            f(O, 1.70, 0.10, 1.0), // O 2p ζ2 (diffuse, antibonding-like)
            f(O, 1.70, 0.10, -1.0),
            f(O, 1.70, 0.13, 1.0),
        ];
        // O d polarization ×5, compact and high-lying.
        for k in 0..5 {
            functions.push(f(
                O,
                0.95,
                0.85 + 0.02 * k as f64,
                if k % 2 == 0 { 1.0 } else { -1.0 },
            ));
        }
        // H shells.
        for slot in [H1, H2] {
            let sgn = if slot == H1 { 1.0 } else { -1.0 };
            functions.push(f(slot, 1.05, -0.22, sgn)); // 1s ζ1
            functions.push(f(slot, 1.65, 0.40, sgn)); // 1s ζ2 (diffuse)
            functions.push(f(slot, 0.95, 0.95, sgn)); // p pol ×3
            functions.push(f(slot, 0.95, 0.97, -sgn));
            functions.push(f(slot, 0.95, 0.99, sgn));
        }
        BasisSet {
            kind: BasisKind::Dzvp,
            functions,
            range_scale: 1.0,
        }
    }

    /// Construct by kind.
    pub fn of(kind: BasisKind) -> Self {
        match kind {
            BasisKind::Szv => BasisSet::szv(),
            BasisKind::Dzvp => BasisSet::dzvp(),
        }
    }

    /// Scale all decay ranges (returns self for chaining).
    pub fn with_range_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.range_scale = scale;
        self
    }

    /// Functions per molecule (6 for SZV, 23 for DZVP).
    pub fn n_per_molecule(&self) -> usize {
        self.functions.len()
    }

    /// Effective σ of function `k` including the range scale.
    pub fn sigma(&self, k: usize) -> f64 {
        self.functions[k].sigma * self.range_scale
    }

    /// Largest effective σ of the set.
    pub fn max_sigma(&self) -> f64 {
        self.functions
            .iter()
            .map(|b| b.sigma * self.range_scale)
            .fold(0.0, f64::max)
    }

    /// Two-centre decay factor between functions `a` and `b` at distance
    /// `d` Å: `exp(−d² / (2(σ_a² + σ_b²)))` — the Gaussian-product overlap
    /// law.
    pub fn pair_decay(&self, a: usize, b: usize, d: f64) -> f64 {
        let sa = self.sigma(a);
        let sb = self.sigma(b);
        (-d * d / (2.0 * (sa * sa + sb * sb))).exp()
    }

    /// Distance beyond which every pair decay is below `eps`.
    pub fn cutoff_radius(&self, eps: f64) -> f64 {
        assert!(eps > 0.0 && eps < 1.0, "cutoff eps must be in (0,1)");
        let smax = self.max_sigma();
        (2.0 * (2.0 * smax * smax) * (1.0 / eps).ln()).sqrt()
    }

    /// Doubly-occupied orbitals per water molecule (8 valence electrons).
    pub fn occupied_per_molecule(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_counts_match_paper() {
        assert_eq!(BasisSet::szv().n_per_molecule(), 6);
        assert_eq!(BasisSet::dzvp().n_per_molecule(), 23);
    }

    #[test]
    fn dzvp_is_longer_ranged_than_szv() {
        assert!(BasisSet::dzvp().max_sigma() > BasisSet::szv().max_sigma());
    }

    #[test]
    fn pair_decay_properties() {
        let b = BasisSet::szv();
        assert!((b.pair_decay(0, 0, 0.0) - 1.0).abs() < 1e-15);
        // Monotone decreasing in distance.
        let d1 = b.pair_decay(0, 1, 2.0);
        let d2 = b.pair_decay(0, 1, 4.0);
        assert!(d1 > d2 && d2 > 0.0);
        // Symmetric in the pair.
        assert_eq!(b.pair_decay(0, 3, 3.0), b.pair_decay(3, 0, 3.0));
    }

    #[test]
    fn cutoff_radius_bounds_pair_decay() {
        for basis in [BasisSet::szv(), BasisSet::dzvp()] {
            let eps = 1e-5;
            let rc = basis.cutoff_radius(eps);
            let n = basis.n_per_molecule();
            for a in 0..n {
                for b in 0..n {
                    assert!(
                        basis.pair_decay(a, b, rc) <= eps * (1.0 + 1e-12),
                        "pair ({a},{b}) exceeds eps at cutoff"
                    );
                }
            }
        }
    }

    #[test]
    fn range_scale_stretches_cutoff() {
        let b1 = BasisSet::szv();
        let b2 = BasisSet::szv().with_range_scale(2.0);
        assert!((b2.cutoff_radius(1e-5) - 2.0 * b1.cutoff_radius(1e-5)).abs() < 1e-9);
        assert_eq!(b2.n_per_molecule(), 6);
    }

    #[test]
    fn onsite_energies_separate_occupied_and_virtual() {
        // SZV: all 6 functions valence-like (occupied bands come from the
        // molecular diagonalization); DZVP polarization shells must sit
        // well above zero.
        let dz = BasisSet::dzvp();
        let high: Vec<&BasisFunction> = dz.functions.iter().filter(|f| f.onsite > 0.5).collect();
        assert!(high.len() >= 8, "DZVP needs high-lying polarization shells");
    }

    #[test]
    fn of_kind_roundtrip() {
        assert_eq!(BasisSet::of(BasisKind::Szv).kind, BasisKind::Szv);
        assert_eq!(BasisSet::of(BasisKind::Dzvp).kind, BasisKind::Dzvp);
    }

    #[test]
    fn atom_slots_index_correctly() {
        assert_eq!(AtomSlot::O.index(), 0);
        assert_eq!(AtomSlot::H1.index(), 1);
        assert_eq!(AtomSlot::H2.index(), 2);
    }
}
