//! Overlap and Kohn–Sham matrix assembly in DBCSR block form.
//!
//! Two-centre matrix elements follow the Gaussian-product decay law of
//! [`crate::basis::BasisSet::pair_decay`]; one DBCSR block per molecule
//! (paper Fig. 2's "each column corresponds to a water molecule"). The
//! builder walks a cell-list neighbor search, so cost and memory scale
//! linearly with the number of molecules — the full dense matrix is never
//! formed.
//!
//! The synthetic model:
//!
//! * `S_ab = δ_ab + s0 · decay(a, b, d_ab)` with same-atom off-diagonal
//!   elements exactly zero (different angular momenta on one centre are
//!   orthogonal), which keeps `S` positive definite;
//! * `K_ab = ε_a δ_ab + t0 · p_a p_b · decay(a, b, d_ab)` (same-atom
//!   off-diagonal elements again zero);
//! * the chemical potential µ is placed mid-gap of the *isolated molecule*
//!   spectrum, and tests verify the gap survives in the condensed phase.

use sm_dbcsr::{BlockedDims, CooPattern, DbcsrMatrix};
use sm_linalg::Matrix;

use crate::basis::BasisSet;
use crate::geometry::Vec3;
use crate::water::WaterBox;

/// Strength of the overlap's two-centre term within a molecule.
pub const S0: f64 = 0.12;

/// Strength (negative: bonding) of the intramolecular Kohn–Sham hopping.
pub const T0: f64 = -0.35;

/// Intermolecular overlap amplitude. Much weaker than the covalent
/// intramolecular term — MOLOPT basis functions of different molecules
/// overlap through their tails only, which is what keeps the
/// condensed-phase HOMO–LUMO gap open.
pub const S0_INTER: f64 = 0.030;

/// Intermolecular Kohn–Sham hopping amplitude.
pub const T0_INTER: f64 = -0.045;

/// Matrix elements below this magnitude are not built at all; experiments
/// then apply their own `eps_filter ≥ eps_build` on top (paper Sec. V-A).
pub const DEFAULT_EPS_BUILD: f64 = 1e-10;

/// The assembled system: overlap, Kohn–Sham matrix, block partition and the
/// mid-gap chemical potential.
#[derive(Debug, Clone)]
pub struct SystemMatrices {
    /// Block partition (one block per molecule).
    pub dims: BlockedDims,
    /// Overlap matrix `S`.
    pub s: DbcsrMatrix,
    /// Kohn–Sham matrix `K`.
    pub k: DbcsrMatrix,
    /// Mid-gap chemical potential of the isolated molecule.
    pub mu: f64,
    /// Doubly-occupied orbitals per molecule.
    pub occupied_per_molecule: usize,
}

/// Assemble `S` and `K` for `rank` of a `comm_size`-rank communicator.
/// With `comm_size = 1` the matrices are replicated (all blocks local).
pub fn build_system(
    water: &WaterBox,
    basis: &BasisSet,
    rank: usize,
    comm_size: usize,
    eps_build: f64,
) -> SystemMatrices {
    let nmol = water.n_molecules();
    let nbf = basis.n_per_molecule();
    let dims = BlockedDims::uniform(nmol, nbf);
    let mut s = DbcsrMatrix::new(dims.clone(), rank, comm_size);
    let mut k = DbcsrMatrix::new(dims.clone(), rank, comm_size);

    // Pairs are found at the element-magnitude cutoff: an element is
    // s0·decay or t0·decay, so decay must reach eps_build / max(|s0|,|t0|).
    let amp = S0_INTER.abs().max(T0_INTER.abs());
    let decay_floor = (eps_build / amp).min(0.5);
    let rc = basis.cutoff_radius(decay_floor) + 2.5; // margin for O–H offsets

    for (i, j) in neighbor_pairs(water, rc) {
        let owned_ij = s.is_mine(i, j);
        let owned_ji = s.is_mine(j, i);
        if !owned_ij && !owned_ji {
            continue;
        }
        let (sb, kb) = pair_blocks(water, basis, i, j);
        let keep_s = sm_linalg::norms::max_norm(&sb) > eps_build;
        let keep_k = sm_linalg::norms::max_norm(&kb) > eps_build;
        if owned_ij {
            if keep_s {
                s.insert_block(i, j, sb.clone());
            }
            if keep_k {
                k.insert_block(i, j, kb.clone());
            }
        }
        if owned_ji && i != j {
            if keep_s {
                s.insert_block(j, i, sb.transpose());
            }
            if keep_k {
                k.insert_block(j, i, kb.transpose());
            }
        }
    }

    let mu = molecular_mu(basis);
    SystemMatrices {
        dims,
        s,
        k,
        mu,
        occupied_per_molecule: basis.occupied_per_molecule(),
    }
}

/// The `(nbf × nbf)` overlap and Kohn–Sham blocks coupling molecules `i`
/// and `j` (`i == j` gives the diagonal block).
fn pair_blocks(water: &WaterBox, basis: &BasisSet, i: usize, j: usize) -> (Matrix, Matrix) {
    let nbf = basis.n_per_molecule();
    let ai = water.molecules[i].atoms();
    let aj = water.molecules[j].atoms();
    let mut sb = Matrix::zeros(nbf, nbf);
    let mut kb = Matrix::zeros(nbf, nbf);
    for (b, fb) in basis.functions.iter().enumerate() {
        for (a, fa) in basis.functions.iter().enumerate() {
            let same_center = i == j && fa.atom == fb.atom;
            if same_center {
                if a == b {
                    sb[(a, b)] = 1.0;
                    kb[(a, b)] = fa.onsite;
                }
                continue; // same-centre off-diagonal: orthogonal shells
            }
            let pa = ai[fa.atom.index()];
            let pb = aj[fb.atom.index()];
            let d = water.cell.distance(pa, pb);
            let decay = basis.pair_decay(a, b, d);
            // Normalize amplitudes by basis size so larger basis sets keep
            // bounded Gershgorin row sums (S stays SPD, bands stay narrow).
            let size_scale = 6.0 / nbf as f64;
            let (s_amp, t_amp) = if i == j {
                (S0, T0)
            } else {
                (S0_INTER, T0_INTER)
            };
            sb[(a, b)] = s_amp * size_scale * decay;
            kb[(a, b)] = t_amp * size_scale * decay * fa.parity * fb.parity;
        }
    }
    (sb, kb)
}

/// Mid-gap chemical potential from the isolated-molecule generalized
/// eigenproblem `K c = ε S c` (solved via Löwdin orthogonalization).
pub fn molecular_mu(basis: &BasisSet) -> f64 {
    let water = WaterBox::isolated_molecule();
    let (sb, kb) = pair_blocks(&water, basis, 0, 0);
    let s_inv_half =
        sm_linalg::roots::inv_sqrt_eig(&sb).expect("molecular overlap must be positive definite");
    let kt = sm_linalg::gemm::matmul(
        &sm_linalg::gemm::matmul(&s_inv_half, &kb).expect("shape"),
        &s_inv_half,
    )
    .expect("shape");
    let eigs = sm_linalg::eigh::eigvalsh(&kt).expect("symmetric by construction");
    let occ = basis.occupied_per_molecule();
    assert!(
        occ < eigs.len(),
        "basis must have virtual orbitals above the occupied set"
    );
    0.5 * (eigs[occ - 1] + eigs[occ])
}

/// HOMO–LUMO gap of the isolated molecule (a model sanity metric).
pub fn molecular_gap(basis: &BasisSet) -> f64 {
    let water = WaterBox::isolated_molecule();
    let (sb, kb) = pair_blocks(&water, basis, 0, 0);
    let s_inv_half = sm_linalg::roots::inv_sqrt_eig(&sb).expect("SPD");
    let kt = sm_linalg::gemm::matmul(
        &sm_linalg::gemm::matmul(&s_inv_half, &kb).expect("shape"),
        &s_inv_half,
    )
    .expect("shape");
    let eigs = sm_linalg::eigh::eigvalsh(&kt).expect("symmetric");
    let occ = basis.occupied_per_molecule();
    eigs[occ] - eigs[occ - 1]
}

impl WaterBox {
    /// A single molecule in a huge cell (effectively no periodic images).
    pub fn isolated_molecule() -> WaterBox {
        let mut b = WaterBox::cubic(1, 0);
        b.molecules.truncate(1);
        b.cell = crate::geometry::Cell::cubic(1e6);
        // Recenter away from the boundary so wrap effects cannot appear.
        let shift = Vec3::new(5e5, 5e5, 5e5).sub(b.molecules[0].o);
        let w = b.molecules[0];
        b.molecules[0] = crate::water::Water {
            o: w.o.add(shift),
            h1: w.h1.add(shift),
            h2: w.h2.add(shift),
        };
        b
    }
}

/// All unordered neighbor pairs `(i, j)` with `i <= j` whose oxygen
/// distance is below `rc`, via cell-list search (falls back to brute force
/// for boxes smaller than ~3 bins per axis).
pub fn neighbor_pairs(water: &WaterBox, rc: f64) -> Vec<(usize, usize)> {
    let n = water.n_molecules();
    let l = water.cell.lengths;
    let nb = [
        (l.x / rc).floor() as usize,
        (l.y / rc).floor() as usize,
        (l.z / rc).floor() as usize,
    ];
    let mut pairs = Vec::new();
    if nb.iter().any(|&b| b < 3) {
        for i in 0..n {
            pairs.push((i, i));
            for j in (i + 1)..n {
                if water
                    .cell
                    .distance(water.molecules[i].o, water.molecules[j].o)
                    < rc
                {
                    pairs.push((i, j));
                }
            }
        }
        return pairs;
    }

    let bin_of = |p: Vec3| -> (usize, usize, usize) {
        let w = water.cell.wrap(p);
        (
            ((w.x / l.x * nb[0] as f64) as usize).min(nb[0] - 1),
            ((w.y / l.y * nb[1] as f64) as usize).min(nb[1] - 1),
            ((w.z / l.z * nb[2] as f64) as usize).min(nb[2] - 1),
        )
    };
    let mut bins: std::collections::HashMap<(usize, usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, w) in water.molecules.iter().enumerate() {
        bins.entry(bin_of(w.o)).or_default().push(i);
    }
    for i in 0..n {
        pairs.push((i, i));
        let (bx, by, bz) = bin_of(water.molecules[i].o);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nbx = (bx as i64 + dx).rem_euclid(nb[0] as i64) as usize;
                    let nby = (by as i64 + dy).rem_euclid(nb[1] as i64) as usize;
                    let nbz = (bz as i64 + dz).rem_euclid(nb[2] as i64) as usize;
                    let Some(members) = bins.get(&(nbx, nby, nbz)) else {
                        continue;
                    };
                    for &j in members {
                        if j <= i {
                            continue;
                        }
                        if water
                            .cell
                            .distance(water.molecules[i].o, water.molecules[j].o)
                            < rc
                        {
                            pairs.push((i, j));
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Predicted block sparsity pattern at element threshold `eps`, optionally
/// inflated by `fill_factor` to model the longer range of the
/// *orthogonalized* Kohn–Sham matrix (Löwdin fill-in). Pattern-only:
/// supports the large-system dimension/sparsity studies (paper Figs. 4, 11)
/// without building matrix values.
pub fn block_pattern(water: &WaterBox, basis: &BasisSet, eps: f64, fill_factor: f64) -> CooPattern {
    let amp = S0_INTER.abs().max(T0_INTER.abs());
    let decay_floor = (eps / amp).min(0.5);
    let rc = (basis.cutoff_radius(decay_floor) + 2.5) * fill_factor;
    let mut coords = Vec::new();
    for (i, j) in neighbor_pairs(water, rc) {
        coords.push((i, j));
        if i != j {
            coords.push((j, i));
        }
    }
    CooPattern::from_coords(coords, water.n_molecules())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_comsim::SerialComm;

    #[test]
    fn molecular_gap_is_open() {
        for basis in [BasisSet::szv(), BasisSet::dzvp()] {
            let gap = molecular_gap(&basis);
            assert!(
                gap > 0.2,
                "{:?} molecular HOMO-LUMO gap too small: {gap}",
                basis.kind
            );
        }
    }

    #[test]
    fn mu_sits_inside_molecular_gap() {
        let basis = BasisSet::szv();
        let mu = molecular_mu(&basis);
        // µ must be between the extreme onsite energies.
        assert!(mu > -1.35 && mu < 0.5, "unexpected mu {mu}");
    }

    #[test]
    fn overlap_is_spd_in_condensed_phase() {
        let water = WaterBox::cubic(1, 42);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, DEFAULT_EPS_BUILD);
        let dense = sys.s.to_dense(&SerialComm::new());
        assert!(
            sm_linalg::cholesky::is_spd(&dense),
            "condensed-phase overlap must stay positive definite"
        );
    }

    #[test]
    fn matrices_are_symmetric() {
        let water = WaterBox::cubic(1, 7);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, DEFAULT_EPS_BUILD);
        let comm = SerialComm::new();
        let sd = sys.s.to_dense(&comm);
        let kd = sys.k.to_dense(&comm);
        assert!(sd.asymmetry() < 1e-12, "S asymmetry {}", sd.asymmetry());
        assert!(kd.asymmetry() < 1e-12, "K asymmetry {}", kd.asymmetry());
    }

    #[test]
    fn diagonal_blocks_have_unit_overlap_diag_and_onsites() {
        let water = WaterBox::cubic(1, 3);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, DEFAULT_EPS_BUILD);
        let blk = sys.s.block(0, 0).expect("diagonal block exists");
        for a in 0..basis.n_per_molecule() {
            assert!((blk[(a, a)] - 1.0).abs() < 1e-15);
        }
        let kblk = sys.k.block(0, 0).expect("diagonal block exists");
        for (a, f) in basis.functions.iter().enumerate() {
            assert!((kblk[(a, a)] - f.onsite).abs() < 1e-15);
        }
    }

    #[test]
    fn neighbor_pairs_brute_force_matches_cell_list() {
        // NREP=2 box is big enough for cell lists at small rc.
        let water = WaterBox::cubic(2, 42);
        let rc = 4.0;
        let from_cells = neighbor_pairs(&water, rc);
        // Independent brute force.
        let n = water.n_molecules();
        let mut brute = Vec::new();
        for i in 0..n {
            brute.push((i, i));
            for j in (i + 1)..n {
                if water
                    .cell
                    .distance(water.molecules[i].o, water.molecules[j].o)
                    < rc
                {
                    brute.push((i, j));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(from_cells, brute);
    }

    #[test]
    fn pattern_sparsifies_with_larger_threshold() {
        let water = WaterBox::cubic(2, 42);
        let basis = BasisSet::szv();
        let loose = block_pattern(&water, &basis, 1e-3, 1.0);
        let tight = block_pattern(&water, &basis, 1e-8, 1.0);
        assert!(loose.nnz() < tight.nnz());
        assert!(loose.is_symmetric());
        assert!(tight.is_symmetric());
    }

    #[test]
    fn pattern_matches_built_matrix_structure() {
        // The predicted pattern at eps must cover every built S block.
        let water = WaterBox::cubic(1, 42);
        let basis = BasisSet::szv();
        let eps = 1e-6;
        let sys = build_system(&water, &basis, 0, 1, eps);
        let pattern = block_pattern(&water, &basis, eps, 1.0);
        for (coord, _) in sys.s.store().iter() {
            assert!(
                pattern.id_of(coord.0, coord.1).is_some(),
                "built block {coord:?} missing from predicted pattern"
            );
        }
    }

    #[test]
    fn linear_scaling_nnz_growth() {
        // Beyond the linear-scaling onset, blocks per column saturate:
        // nnz grows ~linearly in molecule count (paper Sec. II-A, Fig. 4).
        let basis = BasisSet::szv();
        let p2 = block_pattern(&WaterBox::cubic(2, 1), &basis, 1e-5, 1.0);
        let p3 = block_pattern(&WaterBox::cubic(3, 1), &basis, 1e-5, 1.0);
        let per_col2 = p2.nnz() as f64 / p2.nb() as f64;
        let per_col3 = p3.nnz() as f64 / p3.nb() as f64;
        // Within 30% of each other ⇒ per-column count has saturated.
        assert!(
            (per_col2 - per_col3).abs() / per_col3 < 0.3,
            "per-column nnz {per_col2} vs {per_col3} not yet linear-scaling"
        );
    }

    #[test]
    fn distributed_build_matches_serial() {
        let water = WaterBox::cubic(1, 13);
        let basis = BasisSet::szv();
        let serial = build_system(&water, &basis, 0, 1, 1e-8);
        let dense_ref = serial.s.to_dense(&SerialComm::new());
        use sm_comsim::Comm as _;
        let (results, _) = sm_comsim::run_ranks(4, |c| {
            let sys = build_system(&water, &basis, c.rank(), c.size(), 1e-8);
            sys.s.to_dense(c)
        });
        for d in results {
            assert!(d.allclose(&dense_ref, 1e-14));
        }
    }
}
