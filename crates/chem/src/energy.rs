//! Energy and electron-count observables at block-sparse cost.
//!
//! The evaluation compares methods by the band-structure energy
//! `E = Tr(D K)` (paper Eq. 10, Figs. 1 and 7, in meV/atom). These helpers
//! compute it from distributed matrices without densifying.

use sm_comsim::Comm;
use sm_dbcsr::ops::{trace, trace_of_product};
use sm_dbcsr::DbcsrMatrix;

/// Hartree → electron-volt conversion.
pub const HARTREE_TO_EV: f64 = 27.211386245988;

/// Band-structure energy `2·Tr(D̃ K̃)` (spin factor 2) from distributed
/// matrices (collective).
pub fn band_energy<C: Comm>(density: &DbcsrMatrix, k_tilde: &DbcsrMatrix, comm: &C) -> f64 {
    2.0 * trace_of_product(density, k_tilde, comm)
}

/// Electron count `2·Tr(D̃)` (collective).
pub fn electron_count<C: Comm>(density: &DbcsrMatrix, comm: &C) -> f64 {
    2.0 * trace(density, comm)
}

/// Absolute energy error per atom in meV, the paper's accuracy metric
/// (Figs. 1 and 7): `|E − E_ref| / n_atoms` converted from Hartree-like
/// model units to meV.
pub fn error_mev_per_atom(e: f64, e_ref: f64, n_atoms: usize) -> f64 {
    ((e - e_ref) * HARTREE_TO_EV * 1000.0 / n_atoms as f64).abs()
}

/// Signed energy error per atom in meV (Fig. 7 distinguishes positive and
/// negative errors by marker).
pub fn signed_error_mev_per_atom(e: f64, e_ref: f64, n_atoms: usize) -> f64 {
    (e - e_ref) * HARTREE_TO_EV * 1000.0 / n_atoms as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisSet;
    use crate::builder::{build_system, DEFAULT_EPS_BUILD};
    use crate::ortho::orthogonalize_dense;
    use crate::reference::DenseReference;
    use crate::water::WaterBox;
    use sm_comsim::SerialComm;
    use sm_dbcsr::{BlockedDims, DbcsrMatrix};

    #[test]
    fn sparse_band_energy_matches_dense_reference() {
        let water = WaterBox::cubic(1, 42);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, DEFAULT_EPS_BUILD);
        let comm = SerialComm::new();
        let s = sys.s.to_dense(&comm);
        let k = sys.k.to_dense(&comm);
        let (kt, _) = orthogonalize_dense(&s, &k).unwrap();
        let r = DenseReference::new(&kt).unwrap();
        let d_dense = r.density(sys.mu);

        let dims = BlockedDims::uniform(water.n_molecules(), basis.n_per_molecule());
        let d_sparse = DbcsrMatrix::from_dense(&d_dense, dims.clone(), 0, 1, 0.0);
        let kt_sparse = DbcsrMatrix::from_dense(&kt, dims, 0, 1, 0.0);

        let e_sparse = band_energy(&d_sparse, &kt_sparse, &comm);
        let e_dense = r.band_energy(sys.mu);
        assert!(
            (e_sparse - e_dense).abs() < 1e-8,
            "sparse {e_sparse} vs dense {e_dense}"
        );

        let n = electron_count(&d_sparse, &comm);
        assert!((n - r.electron_count(sys.mu, 0.0)).abs() < 1e-8);
    }

    #[test]
    fn error_metric_units() {
        // 1 Hartree error over 1 atom = 27211.4 meV.
        let err = error_mev_per_atom(1.0, 0.0, 1);
        assert!((err - 27211.386245988).abs() < 1e-6);
        // Per-atom normalization.
        let err = error_mev_per_atom(1.0, 0.0, 100);
        assert!((err - 272.11386245988).abs() < 1e-8);
        // Signed version keeps the sign.
        assert!(signed_error_mev_per_atom(0.0, 1.0, 1) < 0.0);
    }
}
