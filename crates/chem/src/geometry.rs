//! Vectors and periodic cells.
//!
//! All lengths are in Ångström. Cells are orthorhombic (the paper's water
//! cubes are cubic; 1-D replication for weak scaling produces elongated
//! boxes), with minimum-image periodic distances.

/// 3-vector in Å.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

#[allow(clippy::should_implement_trait)] // value-semantics helpers, deliberately not operator overloads
impl Vec3 {
    /// Construct from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Vector addition.
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Vector subtraction.
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// A unit vector along this direction.
    ///
    /// # Panics
    /// Panics on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self.scale(1.0 / n)
    }
}

/// Orthorhombic periodic cell with edge lengths `(lx, ly, lz)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Edge lengths in Å.
    pub lengths: Vec3,
}

impl Cell {
    /// Cubic cell of edge `a`.
    pub fn cubic(a: f64) -> Self {
        Cell {
            lengths: Vec3::new(a, a, a),
        }
    }

    /// Orthorhombic cell.
    pub fn orthorhombic(lx: f64, ly: f64, lz: f64) -> Self {
        Cell {
            lengths: Vec3::new(lx, ly, lz),
        }
    }

    /// Cell volume in Å³.
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Wrap a position into `[0, L)` per axis.
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x.rem_euclid(self.lengths.x),
            p.y.rem_euclid(self.lengths.y),
            p.z.rem_euclid(self.lengths.z),
        )
    }

    /// Minimum-image displacement `b − a`.
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = b.sub(a);
        for (c, l) in [
            (&mut d.x, self.lengths.x),
            (&mut d.y, self.lengths.y),
            (&mut d.z, self.lengths.z),
        ] {
            *c -= l * (*c / l).round();
        }
        d
    }

    /// Minimum-image distance between two positions.
    pub fn distance(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.add(b), Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a.sub(b), Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a.scale(2.0), Vec3::new(2.0, 4.0, 6.0));
        assert!((a.dot(b) - 6.0).abs() < 1e-15);
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn cross_product_orthogonality() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        let c = Vec3::new(1.0, 2.0, 3.0).cross(Vec3::new(4.0, 5.0, 6.0));
        assert!(c.dot(Vec3::new(1.0, 2.0, 3.0)).abs() < 1e-12);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(2.0, -3.0, 6.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vec3::default().normalized();
    }

    #[test]
    fn wrap_into_cell() {
        let c = Cell::cubic(10.0);
        let w = c.wrap(Vec3::new(12.0, -1.0, 5.0));
        assert!((w.x - 2.0).abs() < 1e-12);
        assert!((w.y - 9.0).abs() < 1e-12);
        assert!((w.z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minimum_image_shorter_than_direct() {
        let c = Cell::cubic(10.0);
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(9.0, 0.0, 0.0);
        // Across the boundary: distance 2, not 8.
        assert!((c.distance(a, b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_anisotropic() {
        let c = Cell::orthorhombic(10.0, 20.0, 30.0);
        let a = Vec3::new(9.5, 19.5, 0.5);
        let b = Vec3::new(0.5, 0.5, 29.5);
        let d = c.min_image(a, b);
        assert!((d.x - 1.0).abs() < 1e-12);
        assert!((d.y - 1.0).abs() < 1e-12);
        assert!((d.z + 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume() {
        assert!((Cell::cubic(2.0).volume() - 8.0).abs() < 1e-15);
        assert!((Cell::orthorhombic(1.0, 2.0, 3.0).volume() - 6.0).abs() < 1e-15);
    }
}
