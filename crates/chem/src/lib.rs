//! # sm-chem — synthetic quantum-chemistry substrate
//!
//! The paper evaluates on cubes of liquid water described with
//! SZV-/DZVP-MOLOPT-SR-GTH Gaussian basis sets inside CP2K. This crate
//! replaces CP2K's integral machinery with a *synthetic but structurally
//! faithful* model (the substitution is documented in DESIGN.md):
//!
//! * [`water`] generates periodic liquid-water boxes: a 32-molecule base
//!   cell replicated `NREP³` times (or along one axis for weak-scaling),
//!   exactly like the paper's benchmark systems;
//! * [`basis`] describes per-element basis shells with Gaussian decay
//!   ranges — 6 functions per H₂O for SZV, 23 for DZVP, with DZVP's more
//!   diffuse shells producing the longer-ranged blocks of paper Fig. 4;
//! * [`builder`] assembles the overlap matrix `S` and a gapped tight-binding
//!   Kohn–Sham matrix `K` directly in DBCSR block form (one block per
//!   molecule, matching Fig. 2) using cell-list neighbor search — never
//!   through a dense intermediate;
//! * [`ortho`] forms the Löwdin-orthogonalized `K̃ = S^{-1/2} K S^{-1/2}`
//!   (dense path for reference-scale systems);
//! * [`mod@reference`] computes ground-truth density matrices and band-structure
//!   energies by dense diagonalization;
//! * [`energy`] evaluates `Tr(D K̃)` and electron counts at block-sparse
//!   cost;
//! * [`scf`] closes the self-consistency loop with a damped model feedback
//!   on top of the persistent `SubmatrixEngine`, reusing one cached
//!   symbolic plan across all iterations.
//!
//! What the submatrix method consumes is only the *block sparsity pattern*
//! (short-ranged, banded, linear-scaling nnz) and a symmetric `K̃` with a
//! spectral gap at the chemical potential; tests in this crate pin down both
//! properties.

pub mod basis;
pub mod builder;
pub mod energy;
pub mod geometry;
pub mod ortho;
pub mod reference;
pub mod scf;
pub mod water;

pub use basis::{BasisKind, BasisSet};
pub use builder::SystemMatrices;
pub use geometry::{Cell, Vec3};
pub use scf::{ScfDriver, ScfEnsemble, ScfOptions, ScfResult};
pub use water::WaterBox;
