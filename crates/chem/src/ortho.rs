//! Löwdin symmetric orthogonalization.
//!
//! The paper's diagonalization-based submatrix solver requires a symmetric
//! input, so instead of `S^{-1}K` it uses `K̃ = S^{-1/2} K S^{-1/2}`
//! (Sec. IV-F, Eq. 16). This module provides the dense reference path; the
//! block-sparse Newton–Schulz path lives in `sm-core::baseline` because it
//! shares the DBCSR iteration machinery.

use sm_linalg::gemm::matmul;
use sm_linalg::roots::inv_sqrt_eig;
use sm_linalg::{LinalgError, Matrix};

/// Dense Löwdin orthogonalization: returns `(K̃, S^{-1/2})`.
pub fn orthogonalize_dense(s: &Matrix, k: &Matrix) -> Result<(Matrix, Matrix), LinalgError> {
    let s_inv_half = inv_sqrt_eig(s)?;
    let tmp = matmul(&s_inv_half, k)?;
    let mut kt = matmul(&tmp, &s_inv_half)?;
    // Roundoff can leave ~1e-15 asymmetry; the eigensolver wants exact
    // symmetry.
    kt.symmetrize();
    Ok((kt, s_inv_half))
}

/// Dense generalized eigenvalues of `K c = ε S c` via Löwdin (for reference
/// spectra and gap checks).
pub fn generalized_eigenvalues(s: &Matrix, k: &Matrix) -> Result<Vec<f64>, LinalgError> {
    let (kt, _) = orthogonalize_dense(s, k)?;
    sm_linalg::eigh::eigvalsh(&kt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisSet;
    use crate::builder::{build_system, DEFAULT_EPS_BUILD};
    use crate::water::WaterBox;
    use sm_comsim::SerialComm;

    fn small_system() -> (Matrix, Matrix, f64, usize) {
        let water = WaterBox::cubic(1, 42);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, DEFAULT_EPS_BUILD);
        let comm = SerialComm::new();
        (
            sys.s.to_dense(&comm),
            sys.k.to_dense(&comm),
            sys.mu,
            water.n_molecules() * basis.occupied_per_molecule(),
        )
    }

    #[test]
    fn orthogonalized_matrix_is_symmetric() {
        let (s, k, _, _) = small_system();
        let (kt, _) = orthogonalize_dense(&s, &k).unwrap();
        assert_eq!(kt.asymmetry(), 0.0);
    }

    #[test]
    fn s_inv_half_whitens_s() {
        let (s, k, _, _) = small_system();
        let (_, w) = orthogonalize_dense(&s, &k).unwrap();
        let waw = matmul(&matmul(&w, &s).unwrap(), &w).unwrap();
        assert!(waw.allclose(&Matrix::identity(s.nrows()), 1e-9));
    }

    #[test]
    fn condensed_phase_gap_stays_open_at_mu() {
        // The whole reproduction hinges on this: the orthogonalized
        // Kohn–Sham spectrum must have a gap at µ so sign(K̃ − µI) is well
        // conditioned (paper Sec. III-B).
        let (s, k, mu, n_occ) = small_system();
        let eigs = generalized_eigenvalues(&s, &k).unwrap();
        let homo = eigs[n_occ - 1];
        let lumo = eigs[n_occ];
        assert!(
            homo < mu && mu < lumo,
            "mu {mu} outside condensed-phase gap [{homo}, {lumo}]"
        );
        assert!(
            lumo - homo > 0.05,
            "condensed-phase gap too small: {}",
            lumo - homo
        );
    }

    #[test]
    fn eigenvalue_count_matches_dimension() {
        let (s, k, _, _) = small_system();
        let eigs = generalized_eigenvalues(&s, &k).unwrap();
        assert_eq!(eigs.len(), s.nrows());
    }
}
