//! Dense reference solutions.
//!
//! Ground truth for all accuracy experiments (paper Figs. 1, 7): the
//! density matrix from a full dense eigendecomposition of `K̃`, the
//! band-structure energy, and the exact canonical chemical potential.

use sm_linalg::eigh::{eigh, Eigh};
use sm_linalg::fermi::fermi_occupation;
use sm_linalg::gemm::matmul;
use sm_linalg::sign::extended_signum;
use sm_linalg::{LinalgError, Matrix};

/// Dense reference results for one orthogonalized Kohn–Sham matrix.
#[derive(Debug, Clone)]
pub struct DenseReference {
    /// Eigendecomposition of `K̃`.
    pub decomposition: Eigh,
}

impl DenseReference {
    /// Diagonalize `K̃` once; all quantities below reuse the decomposition.
    pub fn new(k_tilde: &Matrix) -> Result<Self, LinalgError> {
        Ok(DenseReference {
            decomposition: eigh(k_tilde)?,
        })
    }

    /// Zero-temperature grand-canonical density matrix
    /// `D̃ = (I − sign(K̃ − µI)) / 2` (orthogonal basis, Eq. 16's core).
    pub fn density(&self, mu: f64) -> Matrix {
        self.decomposition
            .apply(|e| 0.5 * (1.0 - extended_signum(e - mu)))
    }

    /// Finite-temperature density matrix via Fermi occupations.
    pub fn density_at_temperature(&self, mu: f64, kt: f64) -> Matrix {
        self.decomposition.apply(|e| fermi_occupation(e, mu, kt))
    }

    /// Band-structure energy `2·Σ_occ ε_i = 2·Tr(D̃ K̃)` (spin factor 2).
    pub fn band_energy(&self, mu: f64) -> f64 {
        2.0 * self
            .decomposition
            .eigenvalues
            .iter()
            .filter(|&&e| e < mu)
            .sum::<f64>()
    }

    /// Electron count `2·Tr(D̃)` at the given µ (and optional temperature).
    pub fn electron_count(&self, mu: f64, kt: f64) -> f64 {
        2.0 * self
            .decomposition
            .eigenvalues
            .iter()
            .map(|&e| fermi_occupation(e, mu, kt))
            .sum::<f64>()
    }

    /// Exact canonical µ: midpoint between the `n_occ`-th and
    /// `(n_occ+1)`-th eigenvalue (zero temperature).
    pub fn canonical_mu(&self, n_occ: usize) -> f64 {
        let e = &self.decomposition.eigenvalues;
        assert!(n_occ >= 1 && n_occ < e.len(), "occupation outside spectrum");
        0.5 * (e[n_occ - 1] + e[n_occ])
    }

    /// HOMO–LUMO gap at the given occupation.
    pub fn gap(&self, n_occ: usize) -> f64 {
        let e = &self.decomposition.eigenvalues;
        e[n_occ] - e[n_occ - 1]
    }
}

/// Band energy directly from a density matrix: `E = 2·Tr(D̃ K̃)`.
pub fn band_energy_of(density: &Matrix, k_tilde: &Matrix) -> Result<f64, LinalgError> {
    Ok(2.0 * matmul(density, k_tilde)?.trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisSet;
    use crate::builder::{build_system, DEFAULT_EPS_BUILD};
    use crate::ortho::orthogonalize_dense;
    use crate::water::WaterBox;
    use sm_comsim::SerialComm;

    fn reference_setup() -> (Matrix, f64, usize) {
        let water = WaterBox::cubic(1, 42);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, DEFAULT_EPS_BUILD);
        let comm = SerialComm::new();
        let s = sys.s.to_dense(&comm);
        let k = sys.k.to_dense(&comm);
        let (kt, _) = orthogonalize_dense(&s, &k).unwrap();
        let n_occ = water.n_molecules() * basis.occupied_per_molecule();
        (kt, sys.mu, n_occ)
    }

    #[test]
    fn density_is_idempotent_projector() {
        let (kt, mu, _) = reference_setup();
        let r = DenseReference::new(&kt).unwrap();
        let d = r.density(mu);
        let d2 = matmul(&d, &d).unwrap();
        assert!(d2.allclose(&d, 1e-9), "density must be a projector");
    }

    #[test]
    fn electron_count_matches_occupation() {
        let (kt, mu, n_occ) = reference_setup();
        let r = DenseReference::new(&kt).unwrap();
        // 8 valence electrons per molecule.
        assert!((r.electron_count(mu, 0.0) - 2.0 * n_occ as f64).abs() < 1e-9);
        let d = r.density(mu);
        assert!((2.0 * d.trace() - 2.0 * n_occ as f64).abs() < 1e-9);
    }

    #[test]
    fn band_energy_consistency() {
        let (kt, mu, _) = reference_setup();
        let r = DenseReference::new(&kt).unwrap();
        let d = r.density(mu);
        let e_trace = band_energy_of(&d, &kt).unwrap();
        assert!((e_trace - r.band_energy(mu)).abs() < 1e-8);
        assert!(e_trace < 0.0, "occupied valence states must be bound");
    }

    #[test]
    fn canonical_mu_reproduces_gap_midpoint() {
        let (kt, mu, n_occ) = reference_setup();
        let r = DenseReference::new(&kt).unwrap();
        let mu_c = r.canonical_mu(n_occ);
        // The molecular mid-gap µ and the condensed-phase canonical µ must
        // select the same occupation.
        assert!((r.electron_count(mu_c, 0.0) - r.electron_count(mu, 0.0)).abs() < 1e-12);
        assert!(r.gap(n_occ) > 0.0);
    }

    #[test]
    fn finite_temperature_density_trace_continuous() {
        let (kt, mu, n_occ) = reference_setup();
        let r = DenseReference::new(&kt).unwrap();
        let d_cold = r.density_at_temperature(mu, 1e-6);
        let d_zero = r.density(mu);
        assert!(d_cold.allclose(&d_zero, 1e-6));
        // Warmer density keeps the electron count (µ mid-gap, symmetricish
        // spectrum ⇒ small drift allowed).
        let d_warm = r.density_at_temperature(mu, 0.02);
        let drift = (2.0 * d_warm.trace() - 2.0 * n_occ as f64).abs();
        assert!(drift < 0.5, "electron drift {drift} too large at kT=0.02");
    }
}
