//! A damped self-consistent-field driver on the persistent submatrix
//! engine.
//!
//! In CP2K the density matrix is recomputed every SCF step (and every MD
//! step) while the sparsity pattern of the orthogonalized Kohn–Sham matrix
//! stays fixed — exactly the workload the symbolic/numeric phase split of
//! [`SubmatrixEngine`] targets. This driver closes the fixed-point loop
//! with the same model feedback the `scf_loop` example uses (onsite
//! potential shifted by the local-charge deviation, linear mixing) and
//! reuses **one cached plan across all iterations**: after the first
//! iteration every density build is a numeric-phase replay.
//!
//! ## Service re-entrancy
//!
//! A driver normally owns a private engine ([`ScfDriver::new`]), but a
//! batched multi-system service wants many concurrent SCF loops to share
//! *one* engine — one bounded plan cache amortized across every system —
//! so [`ScfDriver::with_engine`] accepts a shared [`Arc`]`<`[`SubmatrixEngine`]`>`.
//! To stay correct under that sharing, all per-run accounting
//! ([`ScfResult::symbolic_builds`], [`ScfResult::cache_hits`], the
//! aggregated [`ScfResult::report`]) is derived from this run's own
//! per-iteration reports, never from deltas of the engine's global
//! counters (which other jobs bump concurrently).
//!
//! ## Ensembles
//!
//! The driver-level [`ScfOptions::ensemble`] selector (payload-free, so
//! there is nothing a caller could set and have silently ignored) picks
//! between:
//!
//! * [`ScfEnsemble::Canonical`] (the default, and the historical
//!   behavior) — the engine target is built from the run's electron
//!   count and the `mu_tol`/`mu_max_iter` knobs, with the solver forced
//!   to diagonalization (the µ bisection needs stored decompositions).
//!   Multi-rank runs match serial runs to floating-point reduction
//!   accuracy (the bisection reduces electron counts across ranks).
//! * [`ScfEnsemble::GrandCanonical`] — fixed µ (`mu0`), no
//!   electron-count adjustment, any solver method. The engine's
//!   grand-canonical numeric phase is **bitwise-identical** across
//!   communicator sizes, so a grand-canonical SCF run produces
//!   bit-identical densities on any subgroup — the property the
//!   `scf_service_equivalence` suite pins. (One caveat rides the
//!   *convergence decision*: `|ΔE|` is computed from a group-summed
//!   energy whose rounding depends on the group size, so iteration
//!   counts — and with them final densities — agree across group sizes
//!   provided no iteration's `|ΔE|` lands within an ulp of `tol`; the
//!   per-iteration densities themselves are unconditionally bitwise.)

use std::sync::Arc;

use sm_comsim::Comm;
use sm_core::engine::{EngineOptions, EngineReport, Ensemble, NumericOptions, SubmatrixEngine};
use sm_core::solver::SolveOptions;
use sm_dbcsr::{ops, DbcsrMatrix};

use crate::energy::{band_energy, electron_count};

/// Which statistical ensemble the SCF loop's density builds use — a
/// **payload-free, driver-level** selector. Deliberately not the engine's
/// [`Ensemble`]: the canonical target is always rebuilt from
/// [`ScfDriver::run`]'s `n_electrons` argument and the
/// `mu_tol`/`mu_max_iter` knobs of [`ScfOptions`], so there is no payload
/// a caller could set and have silently ignored — and splicing
/// `..NumericOptions::default()` into `ScfOptions::numeric` cannot
/// accidentally change the ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScfEnsemble {
    /// Fixed electron count (the default, and the historical behavior):
    /// µ is bisected every iteration to hold `n_electrons`; the solver is
    /// forced to diagonalization (the bisection needs stored
    /// decompositions). Multi-rank runs match serial runs to
    /// floating-point reduction accuracy.
    #[default]
    Canonical,
    /// Fixed chemical potential `mu0`, no electron-count adjustment, any
    /// solver method. The engine's grand-canonical numeric phase is
    /// bit-reproducible across communicator sizes — the bitwise path the
    /// `scf_service_equivalence` suite pins.
    GrandCanonical,
}

/// SCF-loop configuration.
#[derive(Debug, Clone)]
pub struct ScfOptions {
    /// Strength of the model Hartree-like feedback: the diagonal of `K̃`
    /// shifts by `coupling · (occupation − average)`.
    pub coupling: f64,
    /// Linear-mixing factor `α` (`K̃ ← (1−α)·K̃ + α·K̃_new`); damping for
    /// stability.
    pub mixing: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Convergence threshold on `|ΔE|`.
    pub tol: f64,
    /// Electron-count tolerance of the canonical µ bisection.
    pub mu_tol: f64,
    /// Bisection budget of the canonical µ adjustment.
    pub mu_max_iter: usize,
    /// The ensemble of the density builds (see [`ScfEnsemble`]).
    pub ensemble: ScfEnsemble,
    /// Numeric-phase options of the inner density build. The `ensemble`
    /// field of this struct is **ignored** — the driver-level
    /// [`ScfOptions::ensemble`] selector governs (so a spliced
    /// `..NumericOptions::default()` cannot change the ensemble), and
    /// under [`ScfEnsemble::Canonical`] the solver method is forced to
    /// diagonalization. `use_selected_columns` is forced off in both
    /// modes (the SCF loop needs full density diagonals for its
    /// feedback); the remaining solver knobs (`kt`, `tol`, `max_iter`)
    /// and `precision` are honored.
    pub numeric: NumericOptions,
    /// Symbolic-phase options of the shared engine.
    pub engine: EngineOptions,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            coupling: 0.10,
            mixing: 0.5,
            max_iter: 30,
            tol: 1e-8,
            mu_tol: 1e-9,
            mu_max_iter: 200,
            ensemble: ScfEnsemble::Canonical,
            numeric: NumericOptions::default(),
            engine: EngineOptions::default(),
        }
    }
}

/// One SCF iteration's observables.
#[derive(Debug, Clone, Copy)]
pub struct ScfIteration {
    /// Band-structure energy `2·Tr(D̃ K̃₀)`.
    pub energy: f64,
    /// Energy change versus the previous iteration.
    pub de: f64,
    /// Electron count `2·Tr(D̃)`.
    pub electrons: f64,
    /// Chemical potential used (after canonical adjustment).
    pub mu: f64,
    /// True if this iteration's plan came from the engine cache.
    pub plan_cached: bool,
    /// Value-payload bytes this rank received in the iteration's gather
    /// (deterministic; halves under the `f32` wire of `Fp32*` precision).
    pub gather_value_bytes: u64,
    /// Value-payload bytes this rank sent in the iteration's result
    /// scatter (deterministic).
    pub scatter_value_bytes: u64,
}

/// Result of an SCF run.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// True if `|ΔE|` dropped below the threshold within the budget.
    pub converged: bool,
    /// Per-iteration observables, in order.
    pub iterations: Vec<ScfIteration>,
    /// The final density matrix.
    pub density: DbcsrMatrix,
    /// Symbolic plans built *on this run's behalf* (1 per rank when the
    /// pattern is fixed and nothing else warmed the cache, as in this
    /// model feedback). Counted from this run's own iteration reports, so
    /// the figure stays exact when the engine is shared with concurrent
    /// jobs.
    pub symbolic_builds: usize,
    /// Plan-cache hits over the whole run (same job-local accounting).
    pub cache_hits: usize,
    /// Whole-run engine instrumentation: every iteration's
    /// [`EngineReport`] folded into one record via
    /// [`EngineReport::absorb_iteration`] — additive counters (transfer
    /// and value bytes, phase seconds, bisection steps) summed across
    /// iterations, plan-shape figures from the (shared) cached plan, `mu`
    /// from the final iteration.
    pub report: EngineReport,
}

/// Damped SCF loop reusing one cached submatrix plan across iterations.
pub struct ScfDriver {
    opts: ScfOptions,
    engine: Arc<SubmatrixEngine>,
}

impl ScfDriver {
    /// Build a driver (and its private engine) from options.
    pub fn new(opts: ScfOptions) -> Self {
        let engine = Arc::new(SubmatrixEngine::new(opts.engine.clone()));
        ScfDriver { opts, engine }
    }

    /// Build a driver over an existing **shared** engine — the re-entrancy
    /// hook a batched multi-system service uses so every concurrent SCF
    /// loop plans through one (optionally bounded) cache. `opts.engine` is
    /// ignored in this form: the shared engine's own options govern the
    /// symbolic phase.
    pub fn with_engine(opts: ScfOptions, engine: Arc<SubmatrixEngine>) -> Self {
        ScfDriver { opts, engine }
    }

    /// The underlying engine (e.g. for
    /// [`stats`](SubmatrixEngine::stats)).
    pub fn engine(&self) -> &SubmatrixEngine {
        &self.engine
    }

    /// Run the loop from the orthogonalized Kohn–Sham matrix `kt0`
    /// (collective). `n_electrons` fixes the canonical target; `mu0` seeds
    /// the chemical potential.
    ///
    /// `comm` may be any communicator — including a scheduler subgroup
    /// ([`sm_comsim::SubComm`]), so several SCF systems can iterate
    /// concurrently on disjoint rank groups of one world (see the
    /// `scf_subgroup` test).
    pub fn run<C: Comm>(
        &self,
        kt0: &DbcsrMatrix,
        mu0: f64,
        n_electrons: f64,
        comm: &C,
    ) -> ScfResult {
        let numeric = match self.opts.ensemble {
            // Grand canonical: fixed µ = `mu0`, no electron-count
            // adjustment, any solver method. This is the bitwise path —
            // the engine's grand-canonical numeric phase is
            // bit-reproducible across communicator sizes.
            ScfEnsemble::GrandCanonical => NumericOptions {
                ensemble: Ensemble::GrandCanonical,
                solve: self.opts.numeric.solve,
                use_selected_columns: false,
                precision: self.opts.numeric.precision,
                backend: self.opts.numeric.backend,
            },
            // Canonical (the default): the target is built from this
            // run's electron count and the driver's µ-bisection knobs.
            ScfEnsemble::Canonical => NumericOptions {
                ensemble: Ensemble::Canonical {
                    n_electrons,
                    tol: self.opts.mu_tol,
                    max_iter: self.opts.mu_max_iter,
                },
                solve: SolveOptions {
                    // Canonical µ adjustment needs stored decompositions.
                    method: sm_core::solver::SignMethod::Diagonalization,
                    ..self.opts.numeric.solve
                },
                use_selected_columns: false,
                // The caller's precision knob is honored: Fp32* runs the
                // gathers over the f32 wire and diagonalizes the
                // f32-rounded operator (see sm_core::solver); the SCF
                // feedback loop damps the remaining rounding noise like
                // any other perturbation.
                precision: self.opts.numeric.precision,
                // Backend is irrelevant under diagonalization but carried
                // for report faithfulness.
                backend: self.opts.numeric.backend,
            },
        };
        let avg_occ = n_electrons / (2.0 * kt0.n() as f64);

        let mut kt = kt0.clone();
        let mut iterations: Vec<ScfIteration> = Vec::new();
        let mut aggregate: Option<EngineReport> = None;
        let mut density = None;
        let mut previous_energy = f64::INFINITY;
        let mut converged = false;

        for it in 0..self.opts.max_iter {
            // Span over the whole iteration, so the engine's plan/phase
            // events nest under `iter:<n>`. The iteration count is
            // group-collective (the convergence decision compares a
            // reduced energy every rank holds), so traced span trees stay
            // deterministic at fixed world size.
            let _iter_span = sm_trace::span(sm_trace::SpanKind::Iteration, it);
            let (d, report) = self.engine.density(&kt, mu0, &numeric, comm);
            let plan_cached = report.plan_cached;

            let energy = band_energy(&d, kt0, comm);
            let electrons = electron_count(&d, comm);
            let de = energy - previous_energy;
            sm_trace::emit(
                "scf.iteration",
                report.total_cost,
                0.0,
                &[
                    ("energy", energy),
                    ("electrons", electrons),
                    ("plan_cached", if plan_cached { 1.0 } else { 0.0 }),
                ],
            );
            iterations.push(ScfIteration {
                energy,
                de,
                electrons,
                mu: report.mu,
                plan_cached,
                gather_value_bytes: report.gather_value_bytes,
                scatter_value_bytes: report.scatter_value_bytes,
            });
            match &mut aggregate {
                Some(agg) => agg.absorb_iteration(&report),
                None => aggregate = Some(report),
            }

            if de.abs() < self.opts.tol {
                sm_trace::emit("scf.converged", (it + 1) as f64, 0.0, &[("energy", energy)]);
                density = Some(d);
                converged = true;
                break;
            }
            previous_energy = energy;

            // Model feedback: K̃_new = K̃₀ + coupling·diag(occupation − avg)
            // on every owned diagonal block, then linear mixing. The
            // update touches only existing diagonal blocks, so the
            // sparsity pattern — and with it the cached plan — is stable.
            let mut kt_new = kt0.clone();
            for b in 0..kt0.nb() {
                if !kt_new.is_mine(b, b) {
                    continue;
                }
                let occ = d
                    .block(b, b)
                    .expect("density diagonal block exists (pattern has diagonals)");
                let mut kb = kt_new
                    .block(b, b)
                    .expect("Kohn-Sham diagonal block exists")
                    .clone();
                for i in 0..kb.nrows() {
                    kb[(i, i)] += self.opts.coupling * (occ[(i, i)] - avg_occ);
                }
                kt_new.store_mut().insert((b, b), kb);
            }
            ops::scale(&mut kt, 1.0 - self.opts.mixing);
            ops::axpy(&mut kt, self.opts.mixing, &kt_new);
            density = Some(d);
        }

        // Job-local accounting from this run's own iteration reports —
        // never deltas of the engine's lifetime counters, which other
        // jobs sharing the engine bump concurrently.
        let symbolic_builds = iterations.iter().filter(|i| !i.plan_cached).count();
        let cache_hits = iterations.len() - symbolic_builds;
        ScfResult {
            converged,
            iterations,
            density: density.expect("max_iter >= 1 produces a density"),
            symbolic_builds,
            cache_hits,
            report: aggregate.expect("max_iter >= 1 produces a report"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisSet;
    use crate::builder::build_system;
    use crate::water::WaterBox;
    use sm_comsim::SerialComm;
    use sm_core::baseline::{orthogonalize_sparse, NewtonSchulzOptions};

    fn small_system() -> (DbcsrMatrix, f64, f64) {
        let water = WaterBox::cubic(1, 42);
        let basis = BasisSet::szv();
        let comm = SerialComm::new();
        let sys = build_system(&water, &basis, 0, 1, 1e-10);
        let (kt, _, report) = orthogonalize_sparse(
            &sys.s,
            &sys.k,
            &NewtonSchulzOptions {
                eps_filter: 1e-12,
                max_iter: 200,
            },
            &comm,
        );
        assert!(report.converged);
        let n_elec = 8.0 * water.n_molecules() as f64;
        (kt, sys.mu, n_elec)
    }

    #[test]
    fn scf_converges_and_reuses_one_plan() {
        let (kt, mu, n_elec) = small_system();
        let comm = SerialComm::new();
        let driver = ScfDriver::new(ScfOptions::default());
        let result = driver.run(&kt, mu, n_elec, &comm);
        assert!(result.converged, "SCF did not converge");
        assert!(result.iterations.len() >= 2);
        // The tentpole claim: the pattern is fixed, so exactly one
        // symbolic build serves every iteration.
        assert_eq!(result.symbolic_builds, 1);
        assert_eq!(result.cache_hits, result.iterations.len() - 1);
        // Electrons conserved throughout.
        for it in &result.iterations {
            assert!(
                (it.electrons - n_elec).abs() < 1e-5,
                "electron count drifted: {}",
                it.electrons
            );
        }
        // Energy settles: the final change is below tolerance.
        let last = result.iterations.last().unwrap();
        assert!(last.de.abs() < 1e-8);
    }

    #[test]
    fn scf_runs_in_reduced_precision_and_stays_close_to_fp64() {
        use sm_linalg::Precision;
        let (kt, mu, n_elec) = small_system();
        let comm = SerialComm::new();
        let reference = ScfDriver::new(ScfOptions::default()).run(&kt, mu, n_elec, &comm);
        assert!(reference.converged);
        let driver = ScfDriver::new(ScfOptions {
            numeric: NumericOptions {
                precision: Precision::Fp32Refined,
                ..NumericOptions::default()
            },
            ..ScfOptions::default()
        });
        let result = driver.run(&kt, mu, n_elec, &comm);
        assert!(result.converged, "fp32-refined SCF did not converge");
        // One cached plan still serves every iteration — precision never
        // touches the symbolic phase.
        assert_eq!(result.symbolic_builds, 1);
        let e64 = reference.iterations.last().unwrap().energy;
        let e32 = result.iterations.last().unwrap().energy;
        assert!(
            (e64 - e32).abs() < 1e-5,
            "refined-precision SCF energy drifted: {e64} vs {e32}"
        );
        for it in &result.iterations {
            assert!((it.electrons - n_elec).abs() < 1e-4);
        }
    }

    #[test]
    fn grand_canonical_scf_runs_at_fixed_mu() {
        let (kt, mu, n_elec) = small_system();
        let comm = SerialComm::new();
        let driver = ScfDriver::new(ScfOptions {
            ensemble: ScfEnsemble::GrandCanonical,
            ..ScfOptions::default()
        });
        let result = driver.run(&kt, mu, n_elec, &comm);
        assert!(result.converged, "grand-canonical SCF did not converge");
        // Fixed µ: every iteration reports exactly the seed µ and zero
        // bisection steps.
        for it in &result.iterations {
            assert_eq!(it.mu, mu);
        }
        assert_eq!(result.report.bisect_iterations, 0);
        assert_eq!(result.report.mu, mu);
        // One cached plan still serves every iteration.
        assert_eq!(result.symbolic_builds, 1);
        assert_eq!(result.cache_hits, result.iterations.len() - 1);
    }

    #[test]
    fn shared_engine_accounting_is_job_local() {
        let (kt, mu, n_elec) = small_system();
        let comm = SerialComm::new();
        let engine = Arc::new(SubmatrixEngine::new(EngineOptions::default()));
        let opts = ScfOptions::default();
        let first =
            ScfDriver::with_engine(opts.clone(), engine.clone()).run(&kt, mu, n_elec, &comm);
        // First run over the fresh shared engine pays for the plan once.
        assert_eq!(first.symbolic_builds, 1);
        // A second driver on the same engine finds the plan warm: *its*
        // accounting shows zero builds — engine-lifetime deltas would
        // misattribute concurrent jobs' work, per-iteration flags cannot.
        let second =
            ScfDriver::with_engine(opts.clone(), engine.clone()).run(&kt, mu, n_elec, &comm);
        assert_eq!(second.symbolic_builds, 0);
        assert_eq!(second.cache_hits, second.iterations.len());
        assert!(second.report.plan_cached);
        assert_eq!(engine.stats().symbolic_builds, 1);
        // The aggregated report sums the per-iteration byte telemetry.
        let gather_sum: u64 = second.iterations.iter().map(|i| i.gather_value_bytes).sum();
        assert_eq!(second.report.gather_value_bytes, gather_sum);
    }

    #[test]
    fn scf_density_matches_direct_build_at_fixed_point() {
        let (kt, mu, n_elec) = small_system();
        let comm = SerialComm::new();
        let driver = ScfDriver::new(ScfOptions {
            // Zero coupling: the fixed point is the plain density of kt.
            coupling: 0.0,
            ..ScfOptions::default()
        });
        let result = driver.run(&kt, mu, n_elec, &comm);
        assert!(result.converged);
        let n = electron_count(&result.density, &comm);
        assert!((n - n_elec).abs() < 1e-6);
    }
}
