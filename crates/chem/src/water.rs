//! Liquid-water benchmark systems.
//!
//! The paper's benchmark (Sec. V) is "a fixed-size region containing 32 H₂O
//! molecules that is repeated in each dimension by a factor NREP", i.e.
//! `32·NREP³` molecules. The weak-scaling study replicates a larger base in
//! one dimension only. This module reproduces both constructions with a
//! deterministic, seeded liquid-like arrangement.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::geometry::{Cell, Vec3};

/// Edge length of the 32-molecule base cell: 32 H₂O at ~1 g/cm³ occupy
/// (9.85 Å)³.
pub const BASE_CELL_A: f64 = 9.85;

/// Molecules per base cell (the paper's building block).
pub const MOLS_PER_CELL: usize = 32;

/// O–H bond length in Å.
pub const OH_BOND: f64 = 0.9572;

/// H–O–H angle in radians (104.52°).
pub const HOH_ANGLE: f64 = 104.52 * std::f64::consts::PI / 180.0;

/// A water molecule: oxygen plus two hydrogens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Water {
    /// Oxygen position.
    pub o: Vec3,
    /// First hydrogen.
    pub h1: Vec3,
    /// Second hydrogen.
    pub h2: Vec3,
}

impl Water {
    /// Atom positions in order O, H, H.
    pub fn atoms(&self) -> [Vec3; 3] {
        [self.o, self.h1, self.h2]
    }

    /// Geometric center of the molecule (used by the k-means combination
    /// heuristic, paper Sec. IV-C2).
    pub fn center(&self) -> Vec3 {
        self.o.add(self.h1).add(self.h2).scale(1.0 / 3.0)
    }
}

/// A periodic box of water molecules.
#[derive(Debug, Clone)]
pub struct WaterBox {
    /// The periodic cell.
    pub cell: Cell,
    /// Molecules; the index order is the block order of all matrices.
    pub molecules: Vec<Water>,
}

impl WaterBox {
    /// The paper's benchmark system: 32-molecule base cell replicated
    /// `nrep` times in every dimension (`32·nrep³` molecules, `96·nrep³`
    /// atoms). `seed` controls the liquid arrangement deterministically.
    ///
    /// Molecule indexing is consecutive within each base-cell image — the
    /// "building block" ordering that gives the banded matrix structure of
    /// paper Fig. 2 and Sec. IV-B2.
    pub fn cubic(nrep: usize, seed: u64) -> Self {
        assert!(nrep >= 1);
        let base = base_cell(seed);
        let a = BASE_CELL_A;
        let cell = Cell::cubic(a * nrep as f64);
        let mut molecules = Vec::with_capacity(MOLS_PER_CELL * nrep * nrep * nrep);
        for ix in 0..nrep {
            for iy in 0..nrep {
                for iz in 0..nrep {
                    let shift = Vec3::new(a * ix as f64, a * iy as f64, a * iz as f64);
                    for w in &base {
                        molecules.push(Water {
                            o: w.o.add(shift),
                            h1: w.h1.add(shift),
                            h2: w.h2.add(shift),
                        });
                    }
                }
            }
        }
        WaterBox { cell, molecules }
    }

    /// Weak-scaling system (paper Fig. 10): a cubic base of `nrep_base³`
    /// cells further replicated `nx` times along x only.
    pub fn elongated(nrep_base: usize, nx: usize, seed: u64) -> Self {
        assert!(nx >= 1);
        let base_box = WaterBox::cubic(nrep_base, seed);
        let lx = base_box.cell.lengths.x;
        let cell = Cell::orthorhombic(
            lx * nx as f64,
            base_box.cell.lengths.y,
            base_box.cell.lengths.z,
        );
        let mut molecules = Vec::with_capacity(base_box.molecules.len() * nx);
        for i in 0..nx {
            let shift = Vec3::new(lx * i as f64, 0.0, 0.0);
            for w in &base_box.molecules {
                molecules.push(Water {
                    o: w.o.add(shift),
                    h1: w.h1.add(shift),
                    h2: w.h2.add(shift),
                });
            }
        }
        WaterBox { cell, molecules }
    }

    /// Number of molecules.
    pub fn n_molecules(&self) -> usize {
        self.molecules.len()
    }

    /// Number of atoms (3 per molecule).
    pub fn n_atoms(&self) -> usize {
        3 * self.molecules.len()
    }

    /// Molecule centers (k-means input).
    pub fn centers(&self) -> Vec<Vec3> {
        self.molecules.iter().map(Water::center).collect()
    }
}

/// Generate the 32-molecule base cell: oxygens on a jittered lattice with a
/// minimum-distance guarantee, hydrogens at the experimental geometry in a
/// deterministic pseudo-random orientation.
fn base_cell(seed: u64) -> Vec<Water> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cell = Cell::cubic(BASE_CELL_A);
    // 4×4×2 lattice = 32 sites, jittered. Sites are ~2.46 Å apart in x/y
    // and ~4.9 Å in z before jitter; jitter keeps ≥ 2.2 Å O–O separation.
    let (nx, ny, nz) = (4usize, 4usize, 2usize);
    let sp = Vec3::new(
        BASE_CELL_A / nx as f64,
        BASE_CELL_A / ny as f64,
        BASE_CELL_A / nz as f64,
    );
    let mut waters = Vec::with_capacity(MOLS_PER_CELL);
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                let jitter = Vec3::new(
                    rng.gen_range(-0.15..0.15) * sp.x,
                    rng.gen_range(-0.15..0.15) * sp.y,
                    rng.gen_range(-0.1..0.1) * sp.z,
                );
                let o = cell.wrap(Vec3::new(
                    (ix as f64 + 0.5) * sp.x + jitter.x,
                    (iy as f64 + 0.5) * sp.y + jitter.y,
                    (iz as f64 + 0.5) * sp.z + jitter.z,
                ));
                waters.push(orient_water(o, &mut rng));
            }
        }
    }
    waters
}

/// Place the two hydrogens of a molecule at the experimental geometry in a
/// random orientation drawn from `rng`.
fn orient_water(o: Vec3, rng: &mut impl Rng) -> Water {
    // Random orthonormal frame (u, v).
    let u = random_unit(rng);
    let mut v = random_unit(rng);
    // Gram-Schmidt; retry degenerate draws.
    let mut w = v.sub(u.scale(u.dot(v)));
    while w.norm() < 1e-6 {
        v = random_unit(rng);
        w = v.sub(u.scale(u.dot(v)));
    }
    let v = w.normalized();
    let half = HOH_ANGLE / 2.0;
    let d1 = u.scale(half.cos()).add(v.scale(half.sin()));
    let d2 = u.scale(half.cos()).sub(v.scale(half.sin()));
    Water {
        o,
        h1: o.add(d1.scale(OH_BOND)),
        h2: o.add(d2.scale(OH_BOND)),
    }
}

fn random_unit(rng: &mut impl Rng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        let n = v.norm();
        if n > 1e-3 && n <= 1.0 {
            return v.scale(1.0 / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_counts_match_paper() {
        // NREP = 2 => 256 molecules = 768 atoms (paper Sec. V-B).
        let b = WaterBox::cubic(2, 42);
        assert_eq!(b.n_molecules(), 256);
        assert_eq!(b.n_atoms(), 768);
        // NREP = 6 => 20736 atoms (paper Fig. 6 caption) — count only.
        assert_eq!(32 * 6 * 6 * 6 * 3, 20736);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = WaterBox::cubic(1, 7);
        let b = WaterBox::cubic(1, 7);
        assert_eq!(a.molecules, b.molecules);
        let c = WaterBox::cubic(1, 8);
        assert_ne!(a.molecules, c.molecules);
    }

    #[test]
    fn oxygens_keep_minimum_distance() {
        let b = WaterBox::cubic(1, 42);
        for (i, wi) in b.molecules.iter().enumerate() {
            for wj in &b.molecules[i + 1..] {
                let d = b.cell.distance(wi.o, wj.o);
                assert!(d > 1.6, "O-O distance {d} too small");
            }
        }
    }

    #[test]
    fn molecular_geometry_is_experimental() {
        let b = WaterBox::cubic(1, 1);
        for w in &b.molecules {
            let d1 = w.h1.sub(w.o).norm();
            let d2 = w.h2.sub(w.o).norm();
            assert!((d1 - OH_BOND).abs() < 1e-12);
            assert!((d2 - OH_BOND).abs() < 1e-12);
            let cosang = w.h1.sub(w.o).dot(w.h2.sub(w.o)) / (d1 * d2);
            assert!((cosang - HOH_ANGLE.cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn replication_preserves_density() {
        let b1 = WaterBox::cubic(1, 3);
        let b2 = WaterBox::cubic(2, 3);
        let d1 = b1.n_molecules() as f64 / b1.cell.volume();
        let d2 = b2.n_molecules() as f64 / b2.cell.volume();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn replicated_images_are_shifted_copies() {
        let b = WaterBox::cubic(2, 5);
        // Image (1,0,0) starts at molecule 32·(1·2·2 + 0 + 0)? Indexing is
        // ix-major: image (ix,iy,iz) occupies [32*(ix*4+iy*2+iz) ..].
        let img = &b.molecules[32 * 4..32 * 5]; // ix=1, iy=0, iz=0
        for (w0, w1) in b.molecules[..32].iter().zip(img) {
            let d = w1.o.sub(w0.o);
            assert!((d.x - BASE_CELL_A).abs() < 1e-12);
            assert!(d.y.abs() < 1e-12 && d.z.abs() < 1e-12);
        }
    }

    #[test]
    fn elongated_box_counts_and_cell() {
        let b = WaterBox::elongated(2, 3, 9);
        assert_eq!(b.n_molecules(), 32 * 8 * 3);
        assert!((b.cell.lengths.x - BASE_CELL_A * 2.0 * 3.0).abs() < 1e-12);
        assert!((b.cell.lengths.y - BASE_CELL_A * 2.0).abs() < 1e-12);
    }

    #[test]
    fn centers_inside_reasonable_bounds() {
        let b = WaterBox::cubic(1, 11);
        for c in b.centers() {
            assert!(c.x > -2.0 && c.x < BASE_CELL_A + 2.0);
            assert!(c.z > -2.0 && c.z < BASE_CELL_A + 2.0);
        }
    }
}
