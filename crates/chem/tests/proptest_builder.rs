//! Property-based tests of the chemistry substrate: the invariants the
//! submatrix method relies on must hold for every seed and box size.

use proptest::prelude::*;

use sm_chem::builder::{block_pattern, build_system};
use sm_chem::{BasisSet, WaterBox};
use sm_comsim::SerialComm;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matrices_symmetric_for_any_seed(seed in 0u64..1000) {
        let water = WaterBox::cubic(1, seed);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, 1e-9);
        let comm = SerialComm::new();
        prop_assert!(sm_dbcsr::ops::asymmetry(&sys.s, &comm) < 1e-12);
        prop_assert!(sm_dbcsr::ops::asymmetry(&sys.k, &comm) < 1e-12);
    }

    #[test]
    fn overlap_spd_for_any_seed(seed in 0u64..500) {
        let water = WaterBox::cubic(1, seed);
        let basis = BasisSet::szv();
        let sys = build_system(&water, &basis, 0, 1, 1e-9);
        let comm = SerialComm::new();
        let dense = sys.s.to_dense(&comm);
        prop_assert!(sm_linalg::cholesky::is_spd(&dense));
    }

    #[test]
    fn pattern_symmetric_and_diagonal_complete(
        seed in 0u64..200,
        nrep in 1usize..3,
    ) {
        let water = WaterBox::cubic(nrep, seed);
        let basis = BasisSet::szv();
        let p = block_pattern(&water, &basis, 1e-5, 1.0);
        prop_assert!(p.is_symmetric());
        for c in 0..p.nb() {
            prop_assert!(p.id_of(c, c).is_some(), "diagonal block {c} missing");
        }
    }

    #[test]
    fn tighter_eps_never_removes_blocks(seed in 0u64..100) {
        let water = WaterBox::cubic(2, seed);
        let basis = BasisSet::szv();
        let loose = block_pattern(&water, &basis, 1e-3, 1.0);
        let tight = block_pattern(&water, &basis, 1e-7, 1.0);
        prop_assert!(tight.nnz() >= loose.nnz());
        for &(r, c) in loose.entries() {
            prop_assert!(tight.id_of(r, c).is_some());
        }
    }

    #[test]
    fn water_geometry_valid_for_any_seed(seed in 0u64..1000, nrep in 1usize..3) {
        let b = WaterBox::cubic(nrep, seed);
        prop_assert_eq!(b.n_molecules(), 32 * nrep * nrep * nrep);
        for w in &b.molecules {
            let d1 = w.h1.sub(w.o).norm();
            let d2 = w.h2.sub(w.o).norm();
            prop_assert!((d1 - sm_chem::water::OH_BOND).abs() < 1e-9);
            prop_assert!((d2 - sm_chem::water::OH_BOND).abs() < 1e-9);
        }
    }
}
