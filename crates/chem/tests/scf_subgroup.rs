//! SCF over scheduler subgroups: several independent SCF systems iterate
//! *concurrently* on disjoint subcommunicator groups of one rank world,
//! each driver reusing its own cached plan. Subgroup runs must agree with
//! the serial driver (bitwise for 1-rank groups, whose collectives are
//! all local; to reduction accuracy for wider groups, whose canonical µ
//! bisection reduces across ranks).

use sm_chem::builder::build_system;
use sm_chem::{BasisSet, ScfDriver, ScfOptions, WaterBox};
use sm_comsim::{run_ranks, Comm, SerialComm};
use sm_core::baseline::{orthogonalize_sparse, NewtonSchulzOptions};
use sm_core::engine::EngineOptions;
use sm_dbcsr::DbcsrMatrix;
use sm_linalg::Matrix;

/// Orthogonalized Kohn–Sham matrix of a small water system as a dense
/// reference every rank can redistribute from.
fn system(seed: u64) -> (Matrix, sm_dbcsr::BlockedDims, f64, f64) {
    let water = WaterBox::cubic(1, seed);
    let basis = BasisSet::szv();
    let comm = SerialComm::new();
    let sys = build_system(&water, &basis, 0, 1, 1e-10);
    let ns = NewtonSchulzOptions {
        eps_filter: 1e-12,
        max_iter: 200,
    };
    let (kt, _, _) = orthogonalize_sparse(&sys.s, &sys.k, &ns, &comm);
    let n_elec = 8.0 * water.n_molecules() as f64;
    (kt.to_dense(&comm), kt.dims().clone(), sys.mu, n_elec)
}

fn scf_opts() -> ScfOptions {
    ScfOptions {
        max_iter: 6,
        engine: EngineOptions {
            parallel: false,
            ..EngineOptions::default()
        },
        ..ScfOptions::default()
    }
}

#[test]
fn concurrent_scf_runs_on_subgroups_match_serial() {
    let systems: Vec<_> = [42u64, 7].iter().map(|&s| system(s)).collect();

    // Serial references.
    let serial: Vec<_> = systems
        .iter()
        .map(|(dense, dims, mu, ne)| {
            let comm = SerialComm::new();
            let kt = DbcsrMatrix::from_dense(dense, dims.clone(), 0, 1, 0.0);
            let driver = ScfDriver::new(scf_opts());
            let r = driver.run(&kt, *mu, *ne, &comm);
            (r.iterations.clone(), r.density.to_dense(&comm), r.converged)
        })
        .collect();

    // A 6-rank world: system 0 on a 2-rank group, system 1 on a 4-rank
    // group, both SCF loops iterating concurrently.
    let systems_ref = &systems;
    let (results, _) = run_ranks(6, |c| {
        let which = usize::from(c.rank() >= 2);
        let sub = c.split(which as u64, c.rank() as u64);
        let (dense, dims, mu, ne) = &systems_ref[which];
        let kt = DbcsrMatrix::from_dense(dense, dims.clone(), sub.rank(), sub.size(), 0.0);
        let driver = ScfDriver::new(scf_opts());
        let r = driver.run(&kt, *mu, *ne, &sub);
        (
            which,
            r.iterations.len(),
            r.converged,
            r.density.to_dense(&sub),
            r.symbolic_builds,
        )
    });

    for (which, n_iter, converged, density, builds) in results {
        let (ref_iters, ref_density, ref_converged) = &serial[which];
        assert_eq!(n_iter, ref_iters.len(), "system {which} iteration count");
        assert_eq!(converged, *ref_converged);
        assert!(
            density.allclose(ref_density, 1e-10),
            "system {which} subgroup density deviates from serial"
        );
        // One plan per rank of the subgroup, reused across all iterations.
        assert_eq!(builds, 1, "system {which} replanned inside the SCF loop");
    }
}

#[test]
fn single_rank_subgroup_scf_is_bitwise_serial() {
    let (dense, dims, mu, ne) = system(42);
    let comm = SerialComm::new();
    let kt = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
    let driver = ScfDriver::new(scf_opts());
    let reference = driver.run(&kt, mu, ne, &comm);
    let ref_density = reference.density.to_dense(&comm);
    let ref_energies: Vec<f64> = reference.iterations.iter().map(|i| i.energy).collect();

    let (dense_ref, dims_ref) = (&dense, &dims);
    let (results, _) = run_ranks(2, |c| {
        // Each rank its own color: two singleton groups running the same
        // system independently.
        let sub = c.split(c.rank() as u64, 0);
        let kt = DbcsrMatrix::from_dense(dense_ref, dims_ref.clone(), sub.rank(), sub.size(), 0.0);
        let driver = ScfDriver::new(scf_opts());
        let r = driver.run(&kt, mu, ne, &sub);
        (
            r.density.to_dense(&sub),
            r.iterations.iter().map(|i| i.energy).collect::<Vec<_>>(),
        )
    });
    for (density, energies) in results {
        assert!(
            density.allclose(&ref_density, 0.0),
            "singleton-subgroup SCF must be bitwise-identical to serial"
        );
        assert_eq!(energies, ref_energies);
    }
}
