//! 2-D Cartesian rank topology.
//!
//! libDBCSR arranges MPI ranks in a 2-D Cartesian grid and maps block rows
//! and columns onto it (paper Sec. II-C); Cannon's algorithm then shifts
//! blocks along rows and columns of this grid. This helper centralizes the
//! rank ↔ (row, col) arithmetic.

/// A `rows × cols` Cartesian process grid with row-major rank numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cart2d {
    rows: usize,
    cols: usize,
}

impl Cart2d {
    /// Create a grid; panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "Cart2d dimensions must be positive");
        Cart2d { rows, cols }
    }

    /// The most-square grid for `size` ranks: the factorization
    /// `rows × cols = size` with `rows ≤ cols` and `rows` maximal.
    pub fn squarest(size: usize) -> Self {
        assert!(size > 0);
        let mut rows = (size as f64).sqrt() as usize;
        while rows > 1 && !size.is_multiple_of(rows) {
            rows -= 1;
        }
        Cart2d::new(rows.max(1), size / rows.max(1))
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total ranks in the grid.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size(), "rank {rank} outside grid");
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at coordinates `(r, c)` (wrapping in both dimensions, as
    /// Cannon's shifts require periodic boundaries).
    pub fn rank_at(&self, r: isize, c: isize) -> usize {
        let rr = r.rem_euclid(self.rows as isize) as usize;
        let cc = c.rem_euclid(self.cols as isize) as usize;
        rr * self.cols + cc
    }

    /// Neighbor `steps` to the left (westward shift, wrapping).
    pub fn left(&self, rank: usize, steps: usize) -> usize {
        let (r, c) = self.coords(rank);
        self.rank_at(r as isize, c as isize - steps as isize)
    }

    /// Neighbor `steps` to the right (eastward, wrapping).
    pub fn right(&self, rank: usize, steps: usize) -> usize {
        let (r, c) = self.coords(rank);
        self.rank_at(r as isize, c as isize + steps as isize)
    }

    /// Neighbor `steps` upward (northward, wrapping).
    pub fn up(&self, rank: usize, steps: usize) -> usize {
        let (r, c) = self.coords(rank);
        self.rank_at(r as isize - steps as isize, c as isize)
    }

    /// Neighbor `steps` downward (southward, wrapping).
    pub fn down(&self, rank: usize, steps: usize) -> usize {
        let (r, c) = self.coords(rank);
        self.rank_at(r as isize + steps as isize, c as isize)
    }

    /// Owner rank of block `(block_row, block_col)` under the cyclic
    /// round-robin distribution DBCSR uses.
    pub fn owner_of_block(&self, block_row: usize, block_col: usize) -> usize {
        (block_row % self.rows) * self.cols + (block_col % self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let g = Cart2d::new(3, 4);
        for rank in 0..12 {
            let (r, c) = g.coords(rank);
            assert_eq!(g.rank_at(r as isize, c as isize), rank);
        }
    }

    #[test]
    fn squarest_factorizations() {
        assert_eq!(Cart2d::squarest(16), Cart2d::new(4, 4));
        assert_eq!(Cart2d::squarest(12), Cart2d::new(3, 4));
        assert_eq!(Cart2d::squarest(7), Cart2d::new(1, 7));
        assert_eq!(Cart2d::squarest(1), Cart2d::new(1, 1));
        assert_eq!(Cart2d::squarest(80), Cart2d::new(8, 10));
    }

    #[test]
    fn shifts_wrap() {
        let g = Cart2d::new(2, 3);
        // rank 0 at (0,0)
        assert_eq!(g.left(0, 1), g.rank_at(0, -1));
        assert_eq!(g.left(0, 1), 2);
        assert_eq!(g.right(2, 1), 0);
        assert_eq!(g.up(0, 1), 3);
        assert_eq!(g.down(3, 1), 0);
    }

    #[test]
    fn multi_step_shifts() {
        let g = Cart2d::new(3, 3);
        assert_eq!(g.left(0, 3), 0);
        assert_eq!(g.down(1, 3), 1);
        assert_eq!(g.right(0, 5), g.right(0, 2));
    }

    #[test]
    fn owner_distribution_is_cyclic() {
        let g = Cart2d::new(2, 2);
        assert_eq!(g.owner_of_block(0, 0), 0);
        assert_eq!(g.owner_of_block(0, 1), 1);
        assert_eq!(g.owner_of_block(1, 0), 2);
        assert_eq!(g.owner_of_block(1, 1), 3);
        assert_eq!(g.owner_of_block(2, 2), 0);
        assert_eq!(g.owner_of_block(5, 3), 3);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn coords_out_of_range_panics() {
        Cart2d::new(2, 2).coords(4);
    }
}
