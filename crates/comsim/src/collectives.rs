//! Collective algorithms shared by every point-to-point transport.
//!
//! [`ThreadComm`](crate::thread::ThreadComm) and
//! [`SubComm`](crate::subcomm::SubComm) both build their collectives on a
//! tagged send/recv primitive; the algorithms themselves (reduce-to-root
//! then broadcast for allreduce, ring exchanges for the gathers and
//! all-to-all, root fan-out for broadcast) live here once, parameterized
//! over the [`Transport`]. Keeping a single copy is part of the
//! equivalence story: the serial/distributed bitwise contract depends on
//! both communicators combining values in the same order.

use std::time::Duration;

use crate::comm::{Payload, ReduceOp};
use crate::fault::CommError;

/// The point-to-point substrate a collective runs on. Tags are supplied
/// by the caller (each transport manages its own collective-tag
/// sequence/namespace).
pub(crate) trait Transport {
    fn p2p_rank(&self) -> usize;
    fn p2p_size(&self) -> usize;
    fn send_p2p(&self, dst: usize, tag: u64, payload: Payload);
    fn recv_p2p(&self, src: usize, tag: u64) -> Payload;

    /// Deadline receive for the fallible collective variants. Transports
    /// without a failure model either have the message or never will, so
    /// the default just forwards to the blocking receive.
    fn recv_p2p_deadline(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        let _ = timeout;
        Ok(self.recv_p2p(src, tag))
    }
}

/// In-place elementwise reduction; every rank ends with the combined
/// vector. Rank 0 combines contributions in ascending source order, which
/// fixes the floating-point summation order independent of transport.
pub(crate) fn allreduce_f64<T: Transport>(
    t: &T,
    tag_up: u64,
    tag_down: u64,
    op: ReduceOp,
    x: &mut [f64],
) {
    if t.p2p_rank() == 0 {
        for src in 1..t.p2p_size() {
            let contrib = t.recv_p2p(src, tag_up).into_f64();
            assert_eq!(contrib.len(), x.len(), "allreduce length mismatch");
            for (xi, ci) in x.iter_mut().zip(contrib) {
                *xi = op.combine(*xi, ci);
            }
        }
        for dst in 1..t.p2p_size() {
            t.send_p2p(dst, tag_down, Payload::F64(x.to_vec()));
        }
    } else {
        t.send_p2p(0, tag_up, Payload::F64(x.to_vec()));
        let combined = t.recv_p2p(0, tag_down).into_f64();
        x.copy_from_slice(&combined);
    }
}

/// Gather each rank's (variable-length) vector on every rank, indexed by
/// source rank. Generic over the payload direction via the two closures.
fn allgather_with<T: Transport, V: Clone>(
    t: &T,
    tag: u64,
    local: &[V],
    wrap: impl Fn(Vec<V>) -> Payload,
    unwrap: impl Fn(Payload) -> Vec<V>,
) -> Vec<Vec<V>> {
    for dst in 0..t.p2p_size() {
        if dst != t.p2p_rank() {
            t.send_p2p(dst, tag, wrap(local.to_vec()));
        }
    }
    let mut out = vec![Vec::new(); t.p2p_size()];
    out[t.p2p_rank()] = local.to_vec();
    for (src, slot) in out.iter_mut().enumerate() {
        if src != t.p2p_rank() {
            *slot = unwrap(t.recv_p2p(src, tag));
        }
    }
    out
}

pub(crate) fn allgather_u64<T: Transport>(t: &T, tag: u64, local: &[u64]) -> Vec<Vec<u64>> {
    allgather_with(t, tag, local, Payload::U64, Payload::into_u64)
}

pub(crate) fn allgather_f64<T: Transport>(t: &T, tag: u64, local: &[f64]) -> Vec<Vec<f64>> {
    allgather_with(t, tag, local, Payload::F64, Payload::into_f64)
}

/// Personalized all-to-all: `sends[d]` goes to rank `d`; returns the
/// payload received from each source (the self-slot passes through
/// locally).
pub(crate) fn alltoallv<T: Transport>(t: &T, tag: u64, sends: Vec<Payload>) -> Vec<Payload> {
    assert_eq!(
        sends.len(),
        t.p2p_size(),
        "alltoallv needs one payload per rank"
    );
    let mut out: Vec<Option<Payload>> = (0..t.p2p_size()).map(|_| None).collect();
    for (dst, payload) in sends.into_iter().enumerate() {
        if dst == t.p2p_rank() {
            out[dst] = Some(payload);
        } else {
            t.send_p2p(dst, tag, payload);
        }
    }
    for (src, slot) in out.iter_mut().enumerate() {
        if src != t.p2p_rank() {
            *slot = Some(t.recv_p2p(src, tag));
        }
    }
    out.into_iter().map(|p| p.expect("filled above")).collect()
}

/// Broadcast `root`'s vector to all ranks (in place).
pub(crate) fn broadcast_f64<T: Transport>(t: &T, tag: u64, root: usize, x: &mut Vec<f64>) {
    if t.p2p_rank() == root {
        for dst in 0..t.p2p_size() {
            if dst != root {
                t.send_p2p(dst, tag, Payload::F64(x.clone()));
            }
        }
    } else {
        *x = t.recv_p2p(root, tag).into_f64();
    }
}

/// Fallible [`allreduce_f64`]: identical combine order (so results stay
/// bitwise-equal to the infallible path), but every receive carries a
/// deadline and a short or missing contribution surfaces as a typed
/// [`CommError`] instead of a panic or a hang.
pub(crate) fn try_allreduce_f64<T: Transport>(
    t: &T,
    tag_up: u64,
    tag_down: u64,
    op: ReduceOp,
    x: &mut [f64],
    timeout: Duration,
) -> Result<(), CommError> {
    if t.p2p_rank() == 0 {
        for src in 1..t.p2p_size() {
            let contrib = t.recv_p2p_deadline(src, tag_up, timeout)?.into_f64();
            if contrib.len() != x.len() {
                return Err(CommError::Truncated {
                    expected: x.len(),
                    got: contrib.len(),
                });
            }
            for (xi, ci) in x.iter_mut().zip(contrib) {
                *xi = op.combine(*xi, ci);
            }
        }
        for dst in 1..t.p2p_size() {
            t.send_p2p(dst, tag_down, Payload::F64(x.to_vec()));
        }
    } else {
        t.send_p2p(0, tag_up, Payload::F64(x.to_vec()));
        let combined = t.recv_p2p_deadline(0, tag_down, timeout)?.into_f64();
        if combined.len() != x.len() {
            return Err(CommError::Truncated {
                expected: x.len(),
                got: combined.len(),
            });
        }
        x.copy_from_slice(&combined);
    }
    Ok(())
}

/// Fallible [`allgather_u64`]: deadline receives, typed errors.
pub(crate) fn try_allgather_u64<T: Transport>(
    t: &T,
    tag: u64,
    local: &[u64],
    timeout: Duration,
) -> Result<Vec<Vec<u64>>, CommError> {
    for dst in 0..t.p2p_size() {
        if dst != t.p2p_rank() {
            t.send_p2p(dst, tag, Payload::U64(local.to_vec()));
        }
    }
    let mut out = vec![Vec::new(); t.p2p_size()];
    out[t.p2p_rank()] = local.to_vec();
    for (src, slot) in out.iter_mut().enumerate() {
        if src != t.p2p_rank() {
            *slot = t.recv_p2p_deadline(src, tag, timeout)?.into_u64();
        }
    }
    Ok(out)
}

/// Fallible [`barrier_p2p`]: a dead or absent member surfaces as a typed
/// error on every survivor instead of hanging the group.
pub(crate) fn try_barrier_p2p<T: Transport>(
    t: &T,
    tag_up: u64,
    tag_down: u64,
    timeout: Duration,
) -> Result<(), CommError> {
    if t.p2p_rank() == 0 {
        for src in 1..t.p2p_size() {
            t.recv_p2p_deadline(src, tag_up, timeout)?;
        }
        for dst in 1..t.p2p_size() {
            t.send_p2p(dst, tag_down, Payload::U64(Vec::new()));
        }
    } else {
        t.send_p2p(0, tag_up, Payload::U64(Vec::new()));
        t.recv_p2p_deadline(0, tag_down, timeout)?;
    }
    Ok(())
}

/// Gather-to-root + release fan-out: a barrier for transports without a
/// shared in-memory barrier (subcommunicators).
pub(crate) fn barrier_p2p<T: Transport>(t: &T, tag_up: u64, tag_down: u64) {
    if t.p2p_rank() == 0 {
        for src in 1..t.p2p_size() {
            t.recv_p2p(src, tag_up);
        }
        for dst in 1..t.p2p_size() {
            t.send_p2p(dst, tag_down, Payload::U64(Vec::new()));
        }
    } else {
        t.send_p2p(0, tag_up, Payload::U64(Vec::new()));
        t.recv_p2p(0, tag_down);
    }
}
