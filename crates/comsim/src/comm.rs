//! The communicator abstraction and its single-rank implementation.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use crate::fault::CommError;

/// Message payload. Keeping this a closed enum (instead of generics) lets
/// heterogeneous traffic — dense block data, block-ID lists, raw bytes —
/// share one mailbox and one byte-accounting path.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Dense floating-point data (matrix blocks, reduction operands).
    F64(Vec<f64>),
    /// Single-precision dense data — the reduced-precision value wire
    /// format of `sm_dbcsr::wire` (half the bytes of `F64`).
    F32(Vec<f32>),
    /// Index/ID lists (block IDs, counts, permutations).
    U64(Vec<u64>),
    /// Opaque bytes.
    Bytes(Vec<u8>),
}

impl Payload {
    /// Wire size in bytes (what an MPI implementation would move).
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len() * 8,
            Payload::F32(v) => v.len() * 4,
            Payload::U64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Unwrap an `F64` payload.
    ///
    /// # Panics
    /// Panics if the payload has a different variant — a protocol error.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwrap an `F32` payload.
    ///
    /// # Panics
    /// Panics if the payload has a different variant — a protocol error.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("expected F32 payload, got {other:?}"),
        }
    }

    /// Unwrap a `U64` payload.
    ///
    /// # Panics
    /// Panics if the payload has a different variant — a protocol error.
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }

    /// Unwrap a `Bytes` payload.
    ///
    /// # Panics
    /// Panics if the payload has a different variant — a protocol error.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {other:?}"),
        }
    }
}

/// Reduction operators for [`Comm::allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Combine two scalars.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// MPI-like communicator. All collectives are blocking and must be entered
/// by every rank of the communicator (as in MPI).
pub trait Comm {
    /// This rank's index in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Post a message to `dst` with a user `tag`. Sending to self is
    /// allowed and delivered through the local mailbox.
    fn send(&self, dst: usize, tag: u64, payload: Payload);

    /// Blocking receive of the message from `src` carrying `tag`.
    /// Messages between the same (src, dst, tag) triple preserve order.
    fn recv(&self, src: usize, tag: u64) -> Payload;

    /// Fallible send: returns [`CommError::RankFailed`] instead of
    /// panicking when the destination is known dead. The default forwards
    /// to [`send`](Comm::send) (transports without a fault model cannot
    /// lose a peer).
    fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        self.send(dst, tag, payload);
        Ok(())
    }

    /// Deadline-based receive: blocks at most `timeout`, then returns
    /// [`CommError::Timeout`]; a peer known to have failed yields
    /// [`CommError::RankFailed`] without waiting. This is the primitive
    /// that guarantees a dead peer can never hang a group. The default
    /// forwards to the blocking [`recv`](Comm::recv) (single-threaded and
    /// fault-free transports either have the message or never will).
    fn recv_deadline(&self, src: usize, tag: u64, timeout: Duration) -> Result<Payload, CommError> {
        let _ = timeout;
        Ok(self.recv(src, tag))
    }

    /// Deadline counterpart of [`recv_subgroup`](Comm::recv_subgroup),
    /// used by subcommunicators' fallible collectives.
    fn recv_subgroup_deadline(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        let _ = timeout;
        Ok(self.recv_subgroup(src, tag))
    }

    /// Fallible counterpart of [`send_subgroup`](Comm::send_subgroup).
    fn try_send_subgroup(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        self.send_subgroup(dst, tag, payload);
        Ok(())
    }

    /// Synchronize all ranks.
    fn barrier(&self);

    /// In-place elementwise reduction across ranks; every rank ends up
    /// with the combined vector.
    fn allreduce_f64(&self, op: ReduceOp, x: &mut [f64]);

    /// Gather each rank's (variable-length) vector on every rank, indexed
    /// by source rank.
    fn allgather_u64(&self, local: &[u64]) -> Vec<Vec<u64>>;

    /// Gather each rank's (variable-length) f64 vector on every rank.
    fn allgather_f64(&self, local: &[f64]) -> Vec<Vec<f64>>;

    /// Personalized all-to-all: `sends[d]` goes to rank `d`; returns the
    /// vector received from each source rank (empty vectors allowed).
    fn alltoallv(&self, sends: Vec<Payload>) -> Vec<Payload>;

    /// Broadcast `root`'s vector to all ranks (in place).
    fn broadcast_f64(&self, root: usize, x: &mut Vec<f64>);

    /// Collectively partition this communicator into subgroups by `color`
    /// (MPI_Comm_split): every rank must call this; ranks sharing a color
    /// form one [`SubComm`](crate::subcomm::SubComm), ordered by
    /// `(key, rank)`. See [`crate::subcomm`] for the tag-namespace
    /// contract.
    fn split(&self, color: u64, key: u64) -> crate::subcomm::SubComm<'_, Self>
    where
        Self: Sized,
    {
        crate::subcomm::split(self, color, key)
    }

    /// Transport hook for subcommunicator traffic: deliver a message whose
    /// tag lives in the reserved [`SUBGROUP_BIT`](crate::subcomm::SUBGROUP_BIT)
    /// namespace (which [`send`](Comm::send) implementations may reject
    /// for user traffic). Not for direct use — [`SubComm`](crate::subcomm::SubComm)
    /// is the only caller.
    fn send_subgroup(&self, dst: usize, tag: u64, payload: Payload) {
        self.send(dst, tag, payload);
    }

    /// Receive counterpart of [`send_subgroup`](Comm::send_subgroup).
    fn recv_subgroup(&self, src: usize, tag: u64) -> Payload {
        self.recv(src, tag)
    }
}

/// Trivial single-rank communicator: all operations are local no-ops or
/// self-delivery through a mailbox.
#[derive(Default)]
pub struct SerialComm {
    mailbox: parking_lot::Mutex<HashMap<u64, VecDeque<Payload>>>,
}

impl SerialComm {
    /// Create a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Comm for SerialComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert_eq!(dst, 0, "SerialComm only has rank 0");
        self.mailbox
            .lock()
            .entry(tag)
            .or_default()
            .push_back(payload);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        assert_eq!(src, 0, "SerialComm only has rank 0");
        self.mailbox
            .lock()
            .get_mut(&tag)
            .and_then(|q| q.pop_front())
            .expect("SerialComm::recv with empty mailbox would deadlock")
    }

    /// A single rank has nobody to wait on: if the mailbox is empty now it
    /// stays empty, so an empty mailbox is an immediate [`CommError::Timeout`]
    /// rather than the deadlock panic of the blocking [`recv`](Comm::recv).
    fn recv_deadline(
        &self,
        src: usize,
        tag: u64,
        _timeout: Duration,
    ) -> Result<Payload, CommError> {
        assert_eq!(src, 0, "SerialComm only has rank 0");
        self.mailbox
            .lock()
            .get_mut(&tag)
            .and_then(|q| q.pop_front())
            .ok_or(CommError::Timeout { src, tag })
    }

    fn barrier(&self) {}

    fn allreduce_f64(&self, _op: ReduceOp, _x: &mut [f64]) {}

    fn allgather_u64(&self, local: &[u64]) -> Vec<Vec<u64>> {
        vec![local.to_vec()]
    }

    fn allgather_f64(&self, local: &[f64]) -> Vec<Vec<f64>> {
        vec![local.to_vec()]
    }

    fn alltoallv(&self, sends: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(sends.len(), 1);
        sends
    }

    fn broadcast_f64(&self, root: usize, _x: &mut Vec<f64>) {
        assert_eq!(root, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_byte_len() {
        assert_eq!(Payload::F64(vec![0.0; 3]).byte_len(), 24);
        assert_eq!(Payload::F32(vec![0.0; 3]).byte_len(), 12);
        assert_eq!(Payload::U64(vec![0; 2]).byte_len(), 16);
        assert_eq!(Payload::Bytes(vec![0; 5]).byte_len(), 5);
    }

    #[test]
    fn payload_unwrap() {
        assert_eq!(Payload::F64(vec![1.0]).into_f64(), vec![1.0]);
        assert_eq!(Payload::F32(vec![1.5]).into_f32(), vec![1.5]);
        assert_eq!(Payload::U64(vec![2]).into_u64(), vec![2]);
        assert_eq!(Payload::Bytes(vec![3]).into_bytes(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn payload_wrong_f32_unwrap_panics() {
        Payload::F64(vec![1.0]).into_f32();
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn payload_wrong_unwrap_panics() {
        Payload::U64(vec![1]).into_f64();
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.combine(1.0, 2.0), 3.0);
        assert_eq!(ReduceOp::Max.combine(1.0, 2.0), 2.0);
        assert_eq!(ReduceOp::Min.combine(1.0, 2.0), 1.0);
    }

    #[test]
    fn serial_comm_self_messaging() {
        let c = SerialComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        c.send(0, 7, Payload::F64(vec![1.0, 2.0]));
        c.send(0, 7, Payload::F64(vec![3.0]));
        assert_eq!(c.recv(0, 7).into_f64(), vec![1.0, 2.0]);
        assert_eq!(c.recv(0, 7).into_f64(), vec![3.0]);
    }

    #[test]
    fn serial_recv_deadline_times_out_instead_of_deadlocking() {
        let c = SerialComm::new();
        assert_eq!(
            c.recv_deadline(0, 7, Duration::from_millis(1)),
            Err(CommError::Timeout { src: 0, tag: 7 })
        );
        c.try_send(0, 7, Payload::U64(vec![9])).unwrap();
        assert_eq!(
            c.recv_deadline(0, 7, Duration::from_millis(1))
                .unwrap()
                .into_u64(),
            vec![9]
        );
    }

    #[test]
    fn serial_collectives() {
        let c = SerialComm::new();
        c.barrier();
        let mut x = vec![1.0, 2.0];
        c.allreduce_f64(ReduceOp::Sum, &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
        assert_eq!(c.allgather_u64(&[5, 6]), vec![vec![5, 6]]);
        let recv = c.alltoallv(vec![Payload::U64(vec![9])]);
        assert_eq!(recv[0].clone().into_u64(), vec![9]);
        let mut b = vec![4.0];
        c.broadcast_f64(0, &mut b);
        assert_eq!(b, vec![4.0]);
    }
}
