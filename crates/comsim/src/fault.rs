//! Deterministic fault injection for the simulated communicators.
//!
//! A [`FaultPlan`] is a *seeded, immutable script* of abnormal conditions —
//! rank-fails-at-epoch-N, message drops/delays, slow ranks, poisoned job
//! attempts — that the communicators ([`ThreadComm`](crate::thread::ThreadComm)
//! via [`run_ranks_with_faults`](crate::thread::run_ranks_with_faults)) and
//! the scheduler consult through **pure queries**. Because the plan is pure
//! data, every layer that reads it reaches the same conclusions without any
//! cross-rank agreement protocol, and a run under a given plan is exactly
//! reproducible: rerunning the same seed yields identical retry, quarantine,
//! and injection counters. That is what lets the `fault_equivalence` suite
//! assert bitwise-identical results for every non-quarantined job.
//!
//! Abnormal *outcomes* surface as typed [`CommError`]s from the fallible
//! communicator variants (`try_send`, `recv_deadline`, `try_allreduce_f64`,
//! …) instead of panics; deadline-based receives guarantee a dead peer can
//! never hang a group. Shared runtime state — which ranks have actually
//! failed, how many injections fired — lives in a [`FaultState`] so
//! surviving ranks can detect a death *deterministically* (a failing rank
//! poisons its channels and raises its flag; the timeout is only the
//! backstop of last resort).
//!
//! ## What never fails
//!
//! Rank 0 is the coordinator: it collects results, commits the fault
//! consensus, and reports to the caller. Plans must not fail rank 0 — the
//! same assumption MPI applications make about the rank that holds the
//! session — and [`FaultPlan::random`] never generates such a plan.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Typed communication failure, returned by the fallible communicator
/// variants instead of a panic. Programmer errors (wrong payload variant,
/// tag-namespace trespass) still panic; `CommError` is reserved for
/// conditions a robust caller is expected to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank has failed (poisoned its channels or was committed
    /// failed by consensus); no further messages from it can arrive.
    RankFailed {
        /// World rank of the dead peer.
        rank: usize,
    },
    /// No matching message arrived before the deadline.
    Timeout {
        /// Source rank the receive was posted against.
        src: usize,
        /// Tag the receive was posted against.
        tag: u64,
    },
    /// A payload arrived shorter than the protocol requires.
    Truncated {
        /// Elements the protocol expected.
        expected: usize,
        /// Elements actually received.
        got: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout { src, tag } => {
                write!(f, "timed out waiting for src {src} tag {tag:#x}")
            }
            CommError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated payload: expected {expected} elements, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// One message-delay rule: every `every`-th message from `src` to `dst`
/// (counting from the first) is stalled by `micros`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DelayRule {
    src: usize,
    dst: usize,
    every: u64,
    micros: u64,
}

/// Seeded, immutable fault script. Build with the `with_*`/`fail_*`
/// methods or [`FaultPlan::random`]; query from any rank — all queries are
/// pure functions of the plan, so no coordination is needed to agree on
/// what the plan says.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// rank → epoch at whose boundary the rank dies (before consensus).
    rank_fail_epoch: BTreeMap<usize, usize>,
    /// (job, attempt) pairs whose execution is detected as corrupt and
    /// discarded (attempts are 1-based).
    poisoned: BTreeSet<(usize, usize)>,
    /// rank → per-send stall in microseconds (wall-clock only; results
    /// are unaffected — this models a straggler, not corruption).
    slow: BTreeMap<usize, u64>,
    delays: Vec<DelayRule>,
    /// (src, dst, nth): the nth message (0-based) from src to dst is lost.
    drops: BTreeSet<(usize, usize, u64)>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the seed this plan was derived from (reporting only).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Rank `rank` dies at the boundary of epoch `epoch`, before taking
    /// part in that epoch's fault consensus. Rank 0 must never fail (it is
    /// the coordinator); schedulers assert this on installation.
    pub fn fail_rank(mut self, rank: usize, epoch: usize) -> Self {
        self.rank_fail_epoch.insert(rank, epoch);
        self
    }

    /// Attempt `attempt` (1-based) of job `job` is detected as corrupt and
    /// discarded; the job re-enters the deferred queue (or is quarantined
    /// once its retry budget is exhausted).
    pub fn poison_job(mut self, job: usize, attempt: usize) -> Self {
        self.poisoned.insert((job, attempt));
        self
    }

    /// Every send from `rank` stalls `micros` microseconds (wall-clock
    /// straggler; deterministic in results).
    pub fn slow_rank(mut self, rank: usize, micros: u64) -> Self {
        self.slow.insert(rank, micros);
        self
    }

    /// Every `every`-th message from `src` to `dst` is delayed by
    /// `micros` microseconds.
    pub fn delay_messages(mut self, src: usize, dst: usize, every: u64, micros: u64) -> Self {
        assert!(every >= 1, "delay period must be >= 1");
        self.delays.push(DelayRule {
            src,
            dst,
            every,
            micros,
        });
        self
    }

    /// The `nth` message (0-based send count) from `src` to `dst` is lost
    /// on the wire. Dropped messages surface at the receiver as
    /// [`CommError::Timeout`] from a deadline receive — only protocols
    /// built on the fallible variants should be subjected to drops.
    pub fn drop_message(mut self, src: usize, dst: usize, nth: u64) -> Self {
        self.drops.insert((src, dst, nth));
        self
    }

    /// Seeded random plan, safe for the scheduler's recovery contract:
    /// rank failures at epoch boundaries (never rank 0), poisoned job
    /// attempts, and a wall-clock straggler — but no message drops, which
    /// only deadline-based protocols tolerate.
    pub fn random(seed: u64, world: usize, n_jobs: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new().with_seed(seed);
        if world >= 2 {
            let max_failures = (world - 1).min(2);
            let n_failures = (rng.next() % (max_failures as u64 + 1)) as usize;
            let mut failing = BTreeSet::new();
            while failing.len() < n_failures {
                failing.insert(1 + (rng.next() % (world as u64 - 1)) as usize);
            }
            for rank in failing {
                plan = plan.fail_rank(rank, (rng.next() % 4) as usize);
            }
        }
        if n_jobs > 0 {
            let n_poison = (rng.next() % (n_jobs as u64 / 3 + 2)) as usize;
            for _ in 0..n_poison {
                let job = (rng.next() % n_jobs as u64) as usize;
                let attempt = 1 + (rng.next() % 2) as usize;
                plan = plan.poison_job(job, attempt);
            }
        }
        if rng.next().is_multiple_of(2) {
            plan = plan.slow_rank((rng.next() % world as u64) as usize, 20);
        }
        plan
    }

    /// The seed recorded at construction (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.rank_fail_epoch.is_empty()
            && self.poisoned.is_empty()
            && self.slow.is_empty()
            && self.delays.is_empty()
            && self.drops.is_empty()
    }

    /// Epoch at whose boundary `rank` dies, if the plan fails it.
    pub fn fails_at(&self, rank: usize) -> Option<usize> {
        self.rank_fail_epoch.get(&rank).copied()
    }

    /// Ranks the plan ever fails, ascending.
    pub fn failing_ranks(&self) -> Vec<usize> {
        self.rank_fail_epoch.keys().copied().collect()
    }

    /// Number of poisoned (job, attempt) pairs in the plan.
    pub fn poisoned_attempts(&self) -> usize {
        self.poisoned.len()
    }

    /// Whether attempt `attempt` (1-based) of `job` is poisoned.
    pub fn is_poisoned(&self, job: usize, attempt: usize) -> bool {
        self.poisoned.contains(&(job, attempt))
    }

    /// Per-send stall for `rank`, if the plan slows it.
    pub fn slow_stall(&self, rank: usize) -> Option<Duration> {
        self.slow.get(&rank).map(|&us| Duration::from_micros(us))
    }

    /// Whether the `seq`-th message from `src` to `dst` is dropped.
    pub fn drops_message(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.drops.contains(&(src, dst, seq))
    }

    /// Delay for the `seq`-th message from `src` to `dst`, if any rule
    /// matches (first matching rule wins).
    pub fn delay_for(&self, src: usize, dst: usize, seq: u64) -> Option<Duration> {
        self.delays
            .iter()
            .find(|r| r.src == src && r.dst == dst && (seq + 1).is_multiple_of(r.every))
            .map(|r| Duration::from_micros(r.micros))
    }
}

/// Shared runtime fault state for one communicator world: which ranks have
/// actually failed (raised deterministically by the failing rank itself as
/// it poisons its channels) plus counters for every injection that fired.
#[derive(Debug)]
pub struct FaultState {
    failed: Vec<AtomicBool>,
    rank_failures: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    stalls: AtomicU64,
}

impl FaultState {
    /// Fresh state for a `size`-rank world with no failures.
    pub fn new(size: usize) -> Self {
        FaultState {
            failed: (0..size).map(|_| AtomicBool::new(false)).collect(),
            rank_failures: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        }
    }

    /// Raise `rank`'s failed flag (idempotent; counted once).
    pub fn mark_failed(&self, rank: usize) {
        if !self.failed[rank].swap(true, Ordering::SeqCst) {
            self.rank_failures.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Whether `rank` has failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.failed[rank].load(Ordering::SeqCst)
    }

    /// Ranks currently marked failed, ascending.
    pub fn failed_ranks(&self) -> Vec<usize> {
        (0..self.failed.len())
            .filter(|&r| self.is_failed(r))
            .collect()
    }

    pub(crate) fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_delay(&self) {
        self.delayed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the injection counters.
    pub fn snapshot(&self) -> InjectionStats {
        InjectionStats {
            rank_failures: self.rank_failures.load(Ordering::SeqCst),
            dropped_messages: self.dropped.load(Ordering::Relaxed),
            delayed_messages: self.delayed.load(Ordering::Relaxed),
            slow_stalls: self.stalls.load(Ordering::Relaxed),
        }
    }
}

/// Counters of injections that actually fired during a run. Deterministic
/// for a given (plan, protocol) pair — reruns of the same seed reproduce
/// them exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Distinct ranks that raised their failed flag.
    pub rank_failures: u64,
    /// Messages lost to drop rules.
    pub dropped_messages: u64,
    /// Messages stalled by delay rules.
    pub delayed_messages: u64,
    /// Sends stalled by slow-rank rules.
    pub slow_stalls: u64,
}

/// SplitMix64 — the same tiny deterministic generator the tag salt uses.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_queries_are_pure_and_match_builders() {
        let plan = FaultPlan::new()
            .fail_rank(2, 1)
            .poison_job(4, 1)
            .slow_rank(1, 10)
            .delay_messages(0, 1, 2, 5)
            .drop_message(1, 0, 3);
        assert_eq!(plan.fails_at(2), Some(1));
        assert_eq!(plan.fails_at(0), None);
        assert_eq!(plan.failing_ranks(), vec![2]);
        assert!(plan.is_poisoned(4, 1));
        assert!(!plan.is_poisoned(4, 2));
        assert_eq!(plan.slow_stall(1), Some(Duration::from_micros(10)));
        assert_eq!(plan.slow_stall(0), None);
        // every=2 delays the 2nd, 4th, ... messages (seq 1, 3, ...).
        assert_eq!(plan.delay_for(0, 1, 0), None);
        assert_eq!(plan.delay_for(0, 1, 1), Some(Duration::from_micros(5)));
        assert!(plan.drops_message(1, 0, 3));
        assert!(!plan.drops_message(1, 0, 2));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn random_plans_are_reproducible_and_spare_rank_zero() {
        for seed in 0..64u64 {
            let a = FaultPlan::random(seed, 6, 12);
            let b = FaultPlan::random(seed, 6, 12);
            assert_eq!(a, b, "same seed must yield the identical plan");
            assert_eq!(a.fails_at(0), None, "rank 0 is the coordinator");
            assert!(a.failing_ranks().len() <= 2);
        }
        // Different seeds eventually differ.
        assert_ne!(FaultPlan::random(1, 6, 12), FaultPlan::random(2, 6, 12));
    }

    #[test]
    fn fault_state_flags_and_counters() {
        let st = FaultState::new(4);
        assert!(!st.is_failed(3));
        st.mark_failed(3);
        st.mark_failed(3); // idempotent
        assert!(st.is_failed(3));
        assert_eq!(st.failed_ranks(), vec![3]);
        st.count_drop();
        st.count_delay();
        st.count_stall();
        let snap = st.snapshot();
        assert_eq!(snap.rank_failures, 1);
        assert_eq!(snap.dropped_messages, 1);
        assert_eq!(snap.delayed_messages, 1);
        assert_eq!(snap.slow_stalls, 1);
    }

    #[test]
    fn comm_error_displays() {
        assert_eq!(
            CommError::RankFailed { rank: 3 }.to_string(),
            "rank 3 failed"
        );
        assert!(CommError::Timeout { src: 1, tag: 0x10 }
            .to_string()
            .contains("0x10"));
        assert!(CommError::Truncated {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("expected 4"));
    }
}
