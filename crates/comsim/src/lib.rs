//! # sm-comsim — simulated message-passing substrate
//!
//! The paper runs on MPI across 2–32 Omni-Path-connected nodes. This crate
//! replaces MPI with two complementary pieces:
//!
//! * a **rank-per-thread communicator** ([`thread::ThreadComm`]) implementing
//!   the [`comm::Comm`] trait (point-to-point send/recv with tags, barrier,
//!   reductions, gathers, all-to-all). Every transfer is counted
//!   ([`stats::CommStats`]) so the transfer-deduplication claims of paper
//!   Sec. IV-B can be measured. [`comm::Comm::split`] carves any
//!   communicator into per-job subgroups ([`subcomm::SubComm`], the
//!   `MPI_Comm_split` analogue) whose traffic rides a reserved tag
//!   namespace and is accounted per group;
//! * an **analytic cluster model** ([`model::ClusterModel`] +
//!   [`model::SimClock`]) that converts per-rank FLOP and byte counts into a
//!   simulated wall-clock time for bulk-synchronous supersteps. The scaling
//!   experiments (paper Figs. 8–10) use this model to emulate 40–1280 cores
//!   on a laptop-class machine; DESIGN.md documents the substitution.
//!
//! A [`comm::SerialComm`] single-rank implementation backs unit tests and
//! the dense reference paths.

pub mod cart;
mod collectives;
pub mod comm;
pub mod model;
pub mod stats;
pub mod subcomm;
pub mod thread;

pub use cart::Cart2d;
pub use comm::{Comm, Payload, ReduceOp, SerialComm};
pub use model::{ClusterModel, SimClock};
pub use stats::CommStats;
pub use subcomm::{SubComm, SUBGROUP_BIT};
pub use thread::{run_ranks, ThreadComm, COLLECTIVE_BIT};
