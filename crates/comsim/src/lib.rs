//! # sm-comsim — simulated message-passing substrate
//!
//! The paper runs on MPI across 2–32 Omni-Path-connected nodes. This crate
//! replaces MPI with two complementary pieces:
//!
//! * a **rank-per-thread communicator** ([`thread::ThreadComm`]) implementing
//!   the [`comm::Comm`] trait (point-to-point send/recv with tags, barrier,
//!   reductions, gathers, all-to-all). Every transfer is counted
//!   ([`stats::CommStats`]) so the transfer-deduplication claims of paper
//!   Sec. IV-B can be measured. [`comm::Comm::split`] carves any
//!   communicator into per-job subgroups ([`subcomm::SubComm`], the
//!   `MPI_Comm_split` analogue) whose traffic rides a reserved tag
//!   namespace and is accounted per group;
//! * an **analytic cluster model** ([`model::ClusterModel`] +
//!   [`model::SimClock`]) that converts per-rank FLOP and byte counts into a
//!   simulated wall-clock time for bulk-synchronous supersteps. The scaling
//!   experiments (paper Figs. 8–10) use this model to emulate 40–1280 cores
//!   on a laptop-class machine; DESIGN.md documents the substitution.
//!
//! A [`comm::SerialComm`] single-rank implementation backs unit tests and
//! the dense reference paths.
//!
//! A third piece makes the substrate *break on purpose*: the
//! [`fault`] module scripts deterministic rank deaths, message
//! drops/delays, and stragglers ([`fault::FaultPlan`], installed by
//! [`thread::run_ranks_with_faults`]), with typed [`fault::CommError`]s
//! and deadline-based receives so a dead peer can never hang a group —
//! the substrate the scheduler's epoch-level recovery is built on.

pub mod cart;
mod collectives;
pub mod comm;
pub mod fault;
pub mod model;
pub mod stats;
pub mod subcomm;
pub mod thread;

pub use cart::Cart2d;
pub use comm::{Comm, Payload, ReduceOp, SerialComm};
pub use fault::{CommError, FaultPlan, FaultState, InjectionStats};
pub use model::{ClusterModel, SimClock};
pub use stats::CommStats;
pub use subcomm::{split_known, SubComm, SUBGROUP_BIT};
pub use thread::{run_ranks, run_ranks_with_faults, ThreadComm, COLLECTIVE_BIT};
