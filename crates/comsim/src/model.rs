//! Analytic cluster-time model.
//!
//! The paper measures on 2–32 dual-socket Skylake nodes (40 cores each)
//! linked by 100 Gb/s Omni-Path. Running 1280 MPI ranks is out of scope for
//! this reproduction, so the scaling experiments (Figs. 8–10) convert
//! *counted* work — floating-point operations and transferred bytes per
//! rank — into simulated seconds with a classic α–β machine model:
//!
//! ```text
//! t_superstep = max_ranks(flops / rate) + α · messages + bytes / β
//! ```
//!
//! Supersteps model the bulk-synchronous structure of both algorithms:
//! Cannon's shifts in Newton–Schulz iterations, and the
//! initialize/solve/write-back phases of the submatrix method. The model
//! intentionally captures *shape* (who wins, where the crossover sits, how
//! efficiency decays), not absolute times; DESIGN.md documents this
//! substitution.

/// Machine parameters of the modeled cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterModel {
    /// Sustained per-core throughput for dense kernels, FLOP/s.
    pub flops_per_core: f64,
    /// Sustained per-core throughput for sparse/memory-bound kernels,
    /// FLOP/s. Sparse block multiplies run far below the dense rate — the
    /// gap is exactly what the submatrix method exploits (paper Sec. I).
    pub sparse_flops_per_core: f64,
    /// Point-to-point message latency α, seconds.
    pub latency: f64,
    /// Per-link bandwidth β, bytes/s.
    pub bandwidth: f64,
    /// Cores per node (40 on the paper's Skylake nodes).
    pub cores_per_node: usize,
}

impl ClusterModel {
    /// Parameters resembling the paper's testbed: dual Xeon Gold 6148
    /// (40 cores, 2.4 GHz) and 100 Gb/s Omni-Path. The dense rate is a
    /// realistic sustained `dsyevd`/GEMM mix (~8 GFLOP/s/core), the sparse
    /// rate reflects memory-bound small-block multiplies (~1.2 GFLOP/s/core).
    pub fn paper_testbed() -> Self {
        ClusterModel {
            flops_per_core: 8.0e9,
            sparse_flops_per_core: 1.2e9,
            latency: 1.5e-6,
            bandwidth: 12.5e9,
            cores_per_node: 40,
        }
    }

    /// Time to execute `flops` dense floating-point operations on one core.
    pub fn dense_compute_time(&self, flops: f64) -> f64 {
        flops / self.flops_per_core
    }

    /// Time to execute `flops` sparse (memory-bound) operations on one core.
    pub fn sparse_compute_time(&self, flops: f64) -> f64 {
        flops / self.sparse_flops_per_core
    }

    /// α–β time for one rank to move `bytes` in `messages` messages.
    pub fn transfer_time(&self, bytes: f64, messages: f64) -> f64 {
        self.latency * messages + bytes / self.bandwidth
    }
}

/// Per-rank simulated clock. Accumulate compute and communication charges,
/// then combine clocks across ranks at superstep boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    time: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Charge dense compute work.
    pub fn charge_dense(&mut self, model: &ClusterModel, flops: f64) {
        self.time += model.dense_compute_time(flops);
    }

    /// Charge sparse (memory-bound) compute work.
    pub fn charge_sparse(&mut self, model: &ClusterModel, flops: f64) {
        self.time += model.sparse_compute_time(flops);
    }

    /// Charge a data transfer.
    pub fn charge_transfer(&mut self, model: &ClusterModel, bytes: f64, messages: f64) {
        self.time += model.transfer_time(bytes, messages);
    }

    /// Charge raw seconds (e.g. a modeled constant overhead).
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.time += seconds;
    }

    /// Superstep barrier over a set of per-rank clocks: every clock jumps
    /// to the maximum (all ranks wait for the slowest).
    pub fn synchronize(clocks: &mut [SimClock]) {
        let t = clocks.iter().map(|c| c.time).fold(0.0, f64::max);
        for c in clocks {
            c.time = t;
        }
    }

    /// Convenience: the maximum time over a set of clocks.
    pub fn max_time(clocks: &[SimClock]) -> f64 {
        clocks.iter().map(|c| c.time).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_plausible() {
        let m = ClusterModel::paper_testbed();
        assert!(m.flops_per_core > m.sparse_flops_per_core);
        assert_eq!(m.cores_per_node, 40);
        // 1 GB at 12.5 GB/s ≈ 80 ms.
        let t = m.transfer_time(1e9, 1.0);
        assert!((t - (1.5e-6 + 0.08)).abs() < 1e-9);
    }

    #[test]
    fn compute_times_scale_linearly() {
        let m = ClusterModel::paper_testbed();
        assert!((m.dense_compute_time(8.0e9) - 1.0).abs() < 1e-12);
        assert!((m.sparse_compute_time(1.2e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clock_accumulates_charges() {
        let m = ClusterModel::paper_testbed();
        let mut c = SimClock::new();
        c.charge_dense(&m, 8.0e9);
        c.charge_transfer(&m, 12.5e9, 0.0);
        c.charge_seconds(0.5);
        assert!((c.time() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn synchronize_jumps_to_slowest() {
        let mut clocks = vec![SimClock::new(); 3];
        clocks[1].charge_seconds(2.0);
        clocks[2].charge_seconds(1.0);
        SimClock::synchronize(&mut clocks);
        for c in &clocks {
            assert_eq!(c.time(), 2.0);
        }
        assert_eq!(SimClock::max_time(&clocks), 2.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = ClusterModel::paper_testbed();
        let t_small = m.transfer_time(8.0, 1.0);
        assert!(
            t_small > 0.9 * m.latency,
            "8-byte message should be latency-bound"
        );
    }
}
