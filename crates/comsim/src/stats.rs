//! Per-rank communication accounting.
//!
//! The paper's Sec. IV-B argues for *deduplicated* block transfers: each
//! DBCSR block travels at most once between any pair of ranks during
//! submatrix-method initialization. These counters make that property
//! measurable (see the `ablation_dedup_transfers` bench).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe transfer counters for one communicator.
#[derive(Debug)]
pub struct CommStats {
    bytes_sent: Vec<AtomicU64>,
    msgs_sent: Vec<AtomicU64>,
}

impl CommStats {
    /// Fresh zeroed counters for `size` ranks.
    pub fn new(size: usize) -> Arc<Self> {
        Arc::new(CommStats {
            bytes_sent: (0..size).map(|_| AtomicU64::new(0)).collect(),
            msgs_sent: (0..size).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Record a message of `bytes` sent by `rank`. Self-sends are counted
    /// too; callers that want MPI-comparable numbers should avoid
    /// self-sends or subtract them.
    pub fn record_send(&self, rank: usize, bytes: usize) {
        self.bytes_sent[rank].fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_sent[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes sent by one rank.
    pub fn bytes_sent_by(&self, rank: usize) -> u64 {
        self.bytes_sent[rank].load(Ordering::Relaxed)
    }

    /// Messages sent by one rank.
    pub fn msgs_sent_by(&self, rank: usize) -> u64 {
        self.msgs_sent[rank].load(Ordering::Relaxed)
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total messages sent across all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of ranks tracked.
    pub fn size(&self) -> usize {
        self.bytes_sent.len()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for a in &self.bytes_sent {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.msgs_sent {
            a.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = CommStats::new(3);
        s.record_send(0, 100);
        s.record_send(0, 50);
        s.record_send(2, 10);
        assert_eq!(s.bytes_sent_by(0), 150);
        assert_eq!(s.msgs_sent_by(0), 2);
        assert_eq!(s.bytes_sent_by(1), 0);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let s = CommStats::new(2);
        s.record_send(1, 9);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_msgs(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let s = CommStats::new(4);
        std::thread::scope(|scope| {
            for r in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(r, 8);
                    }
                });
            }
        });
        assert_eq!(s.total_bytes(), 4 * 1000 * 8);
        assert_eq!(s.total_msgs(), 4000);
    }
}
