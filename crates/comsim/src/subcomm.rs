//! Subcommunicators: partition a communicator into independent groups.
//!
//! [`split`] mirrors `MPI_Comm_split`: every rank of the parent calls it
//! collectively with a `color` and a `key`; ranks sharing a color form one
//! [`SubComm`], ordered by `(key, parent rank)`. The subcommunicator
//! implements the full [`Comm`] trait — point-to-point with tags, barrier,
//! reductions, gathers, all-to-all — by translating sub-ranks to parent
//! ranks and rewriting tags into a reserved namespace, so any collective
//! code written against [`Comm`] (the submatrix engine, the SCF driver,
//! the wire block exchanges) runs unchanged inside a subgroup.
//!
//! ## Tag discipline
//!
//! The parent's tag space gains a second reserved bit: all subgroup
//! traffic rides parent tags with [`SUBGROUP_BIT`] set, so it can never
//! cross-match direct parent-level user sends (which `sm-dbcsr`'s
//! `user_tag` guard keeps clear of both reserved bits). Within that
//! namespace, bit [`SUB_COLLECTIVE_BIT`] separates the subgroup's own
//! collective traffic from its user sends — the same guard the parent
//! applies with [`COLLECTIVE_BIT`], one level down. User tags inside a
//! subgroup must therefore fit in the low [`SUB_TAG_BITS`] bits; the
//! existing wire-format tags (small constants) all do.
//!
//! Because colors partition the parent's ranks, two live subgroups can
//! never exchange messages, and a salt derived from the color keeps
//! traffic of a subgroup distinguishable from a later same-shape split.
//! One restriction is enforced at runtime: subcommunicators cannot be
//! split again (nested namespaces would overflow the tag word).
//!
//! ## Re-split lifecycle
//!
//! Splits are cheap, borrow-scoped handles, so a scheduler can tear a
//! grouping down and re-deal the same world every **epoch**: drop the
//! epoch's `SubComm`s, then call [`Comm::split`] again on the *world*
//! comm — regrouping is always a fresh one-level split, never a nested
//! one, so the tag-namespace invariant survives any number of epochs.
//! Same-color re-splits share a tag salt, which is safe because every
//! protocol here fully drains its messages before the handle is dropped;
//! callers that want per-epoch namespaces mix the epoch index into the
//! color (the scheduler does). Each new handle starts with **fresh
//! zeroed [`CommStats`]**, giving per-epoch traffic accounting for free,
//! while the parent's counters keep accumulating across epochs. The
//! `resplit_lifecycle` integration suite pins all of this.
//!
//! ## Statistics
//!
//! Each [`SubComm`] handle carries its own [`CommStats`] sized to the
//! subgroup, counting the traffic *this rank* sent within the group
//! (indexed by sub-rank). Parent-level counters still see the same bytes;
//! the subgroup view is what lets a scheduler attribute traffic per job
//! group — aggregate across members with
//! [`SubComm::group_traffic_totals`].

use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use crate::collectives::{self, Transport};
use crate::comm::{Comm, Payload, ReduceOp};
use crate::fault::CommError;
use crate::stats::CommStats;
use crate::thread::COLLECTIVE_BIT;

/// Parent-tag bit reserved for subgroup traffic (bit 62; bit 63 is the
/// parent's own [`COLLECTIVE_BIT`]).
pub const SUBGROUP_BIT: u64 = 1 << 62;

/// Bit separating a subgroup's internal collective traffic from its user
/// sends, inside the subgroup namespace.
pub const SUB_COLLECTIVE_BIT: u64 = 1 << 46;

/// Width of the user tag space inside a subgroup.
pub const SUB_TAG_BITS: u32 = 46;

/// Bits of color-derived salt mixed into every subgroup tag.
const SALT_BITS: u32 = 15;
const SALT_SHIFT: u32 = 47;

/// One rank's handle on a subgroup of a parent communicator. Created
/// collectively by [`split`] / [`Comm::split`].
pub struct SubComm<'a, C: Comm> {
    parent: &'a C,
    color: u64,
    /// This rank's index within the subgroup.
    rank: usize,
    /// Parent ranks of the subgroup members, indexed by sub-rank.
    members: Vec<usize>,
    salt: u64,
    stats: Arc<CommStats>,
    coll_seq: Cell<u64>,
}

/// Collectively split `parent` into subgroups by `color`; members are
/// ranked by `(key, parent rank)`. Every parent rank must call this (it
/// performs a parent-level allgather), and every parent rank receives a
/// subcommunicator — there is no `MPI_UNDEFINED`; callers that want idle
/// ranks give them a private color and leave the subgroup unused.
pub fn split<C: Comm>(parent: &C, color: u64, key: u64) -> SubComm<'_, C> {
    let mine = [color, key];
    let all = parent.allgather_u64(&mine);
    let mut members: Vec<(u64, usize)> = all
        .iter()
        .enumerate()
        .filter(|(_, ck)| ck[0] == color)
        .map(|(r, ck)| (ck[1], r))
        .collect();
    members.sort();
    let members: Vec<usize> = members.into_iter().map(|(_, r)| r).collect();
    let rank = members
        .iter()
        .position(|&r| r == parent.rank())
        .expect("calling rank is always a member of its own color");
    let stats = CommStats::new(members.len());
    SubComm {
        parent,
        color,
        rank,
        members,
        salt: salt_for_color(color),
        stats,
        coll_seq: Cell::new(0),
    }
}

/// Build a subgroup from an **explicitly agreed member list** instead of a
/// parent-level collective. Every member must call this with the *same*
/// `color` and `members` (parent ranks, in sub-rank order); no message is
/// exchanged, so ranks outside `members` — including dead ones — are not
/// involved at all. This is the group-formation primitive of the fault
/// recovery path: after the fault consensus commits a survivor set, each
/// survivor derives its group membership from the same pure function of
/// the committed view and calls `split_known`, where the collective
/// [`split`] would hang waiting for failed ranks.
///
/// # Panics
/// Panics if the calling rank is not in `members` or `members` is empty —
/// both programmer errors in the caller's group computation.
pub fn split_known<C: Comm>(parent: &C, color: u64, members: Vec<usize>) -> SubComm<'_, C> {
    assert!(!members.is_empty(), "a subgroup needs at least one member");
    let rank = members
        .iter()
        .position(|&r| r == parent.rank())
        .expect("split_known caller must be in the member list");
    let stats = CommStats::new(members.len());
    SubComm {
        parent,
        color,
        rank,
        members,
        salt: salt_for_color(color),
        stats,
        coll_seq: Cell::new(0),
    }
}

/// SplitMix64-style salt from the subgroup color, truncated to
/// [`SALT_BITS`]. Distinguishes (probabilistically) the tag namespaces of
/// differently-colored splits over time; same-color re-splits share a
/// namespace, which is safe because every protocol here fully drains its
/// messages (each send matched by a blocking recv).
fn salt_for_color(color: u64) -> u64 {
    let mut z = color.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) & ((1 << SALT_BITS) - 1)
}

impl<'a, C: Comm> SubComm<'a, C> {
    /// The color this subgroup was formed with.
    pub fn color(&self) -> u64 {
        self.color
    }

    /// Parent rank of subgroup member `sub_rank`.
    pub fn parent_rank_of(&self, sub_rank: usize) -> usize {
        self.members[sub_rank]
    }

    /// Parent ranks of all members, indexed by sub-rank.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The parent communicator.
    pub fn parent(&self) -> &'a C {
        self.parent
    }

    /// This handle's subgroup traffic counters: what *this rank* sent
    /// within the group, indexed by sub-rank. (Ranks do not share memory,
    /// so each member holds its own row; reduce across the group with
    /// [`group_traffic_totals`](Self::group_traffic_totals).)
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Group-wide `(bytes, messages)` sent within the subgroup so far
    /// (collective: sums every member's local counters).
    pub fn group_traffic_totals(&self) -> (u64, u64) {
        let mut x = [
            self.stats.total_bytes() as f64,
            self.stats.total_msgs() as f64,
        ];
        self.allreduce_f64(ReduceOp::Sum, &mut x);
        (x[0] as u64, x[1] as u64)
    }

    fn user_parent_tag(&self, tag: u64) -> u64 {
        assert!(
            tag >> SUB_TAG_BITS == 0,
            "subgroup user tag {tag:#x} exceeds {SUB_TAG_BITS} bits"
        );
        SUBGROUP_BIT | (self.salt << SALT_SHIFT) | tag
    }

    fn next_collective_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        assert!(
            seq >> SUB_TAG_BITS == 0,
            "subgroup collective sequence overflowed"
        );
        SUBGROUP_BIT | (self.salt << SALT_SHIFT) | SUB_COLLECTIVE_BIT | seq
    }

    /// Per-send accounting shared by the infallible and fallible send
    /// paths: every subgroup send funnels through here, so this one
    /// chokepoint tags all group traffic with the sender's span context.
    /// The collective/p2p distinction is already on the wire: internal
    /// collectives carry SUB_COLLECTIVE_BIT, user sends keep it clear.
    fn account_send(&self, dst: usize, parent_tag: u64, bytes: usize) {
        if dst == self.rank {
            return;
        }
        self.stats.record_send(self.rank, bytes);
        if sm_trace::enabled() {
            let class = if parent_tag & SUB_COLLECTIVE_BIT != 0 {
                "collective"
            } else {
                "p2p"
            };
            sm_trace::counter_add(
                &sm_trace::scoped(&format!("comm.{class}.bytes")),
                bytes as u64,
            );
            sm_trace::counter_add(&sm_trace::scoped(&format!("comm.{class}.msgs")), 1);
        }
    }

    fn send_raw(&self, dst: usize, parent_tag: u64, payload: Payload) {
        self.account_send(dst, parent_tag, payload.byte_len());
        self.parent
            .send_subgroup(self.members[dst], parent_tag, payload);
    }

    fn recv_raw(&self, src: usize, parent_tag: u64) -> Payload {
        self.parent.recv_subgroup(self.members[src], parent_tag)
    }

    fn recv_raw_deadline(
        &self,
        src: usize,
        parent_tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        self.parent
            .recv_subgroup_deadline(self.members[src], parent_tag, timeout)
            .map_err(|e| match e {
                // Report failures in the caller's coordinates (the parent
                // answers in parent ranks).
                CommError::RankFailed { .. } => CommError::RankFailed {
                    rank: self.members[src],
                },
                other => other,
            })
    }

    /// Fallible [`Comm::allreduce_f64`]: the same deterministic combine
    /// order, but deadline-based receives — a dead member surfaces as
    /// [`CommError`] instead of hanging the group.
    pub fn try_allreduce_f64(
        &self,
        op: ReduceOp,
        x: &mut [f64],
        timeout: Duration,
    ) -> Result<(), CommError> {
        let tag_up = self.next_collective_tag();
        let tag_down = self.next_collective_tag();
        collectives::try_allreduce_f64(self, tag_up, tag_down, op, x, timeout)
    }

    /// Fallible [`Comm::allgather_u64`] with deadline-based receives.
    pub fn try_allgather_u64(
        &self,
        local: &[u64],
        timeout: Duration,
    ) -> Result<Vec<Vec<u64>>, CommError> {
        collectives::try_allgather_u64(self, self.next_collective_tag(), local, timeout)
    }

    /// Fallible [`Comm::barrier`] with deadline-based receives.
    pub fn try_barrier(&self, timeout: Duration) -> Result<(), CommError> {
        let tag_up = self.next_collective_tag();
        let tag_down = self.next_collective_tag();
        collectives::try_barrier_p2p(self, tag_up, tag_down, timeout)
    }
}

impl<C: Comm> Transport for SubComm<'_, C> {
    fn p2p_rank(&self) -> usize {
        self.rank
    }

    fn p2p_size(&self) -> usize {
        self.members.len()
    }

    fn send_p2p(&self, dst: usize, tag: u64, payload: Payload) {
        self.send_raw(dst, tag, payload);
    }

    fn recv_p2p(&self, src: usize, tag: u64) -> Payload {
        self.recv_raw(src, tag)
    }

    fn recv_p2p_deadline(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        self.recv_raw_deadline(src, tag, timeout)
    }
}

impl<C: Comm> Comm for SubComm<'_, C> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        self.send_raw(dst, self.user_parent_tag(tag), payload);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        self.recv_raw(src, self.user_parent_tag(tag))
    }

    fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        let parent_tag = self.user_parent_tag(tag);
        self.account_send(dst, parent_tag, payload.byte_len());
        self.parent
            .try_send_subgroup(self.members[dst], parent_tag, payload)
            .map_err(|e| match e {
                CommError::RankFailed { .. } => CommError::RankFailed {
                    rank: self.members[dst],
                },
                other => other,
            })
    }

    fn recv_deadline(&self, src: usize, tag: u64, timeout: Duration) -> Result<Payload, CommError> {
        self.recv_raw_deadline(src, self.user_parent_tag(tag), timeout)
    }

    /// Synchronize the subgroup only. (The parent barrier would deadlock:
    /// other subgroups are off running their own work.) Implemented as a
    /// gather-to-root plus release fan-out over the subgroup's own tags.
    fn barrier(&self) {
        let tag_up = self.next_collective_tag();
        let tag_down = self.next_collective_tag();
        collectives::barrier_p2p(self, tag_up, tag_down);
    }

    fn allreduce_f64(&self, op: ReduceOp, x: &mut [f64]) {
        let tag_up = self.next_collective_tag();
        let tag_down = self.next_collective_tag();
        collectives::allreduce_f64(self, tag_up, tag_down, op, x);
    }

    fn allgather_u64(&self, local: &[u64]) -> Vec<Vec<u64>> {
        collectives::allgather_u64(self, self.next_collective_tag(), local)
    }

    fn allgather_f64(&self, local: &[f64]) -> Vec<Vec<f64>> {
        collectives::allgather_f64(self, self.next_collective_tag(), local)
    }

    fn alltoallv(&self, sends: Vec<Payload>) -> Vec<Payload> {
        collectives::alltoallv(self, self.next_collective_tag(), sends)
    }

    fn broadcast_f64(&self, root: usize, x: &mut Vec<f64>) {
        collectives::broadcast_f64(self, self.next_collective_tag(), root, x)
    }

    fn split(&self, _color: u64, _key: u64) -> SubComm<'_, Self> {
        panic!("nested subcommunicator splits are not supported (tag namespace is one level deep)");
    }

    fn send_subgroup(&self, _dst: usize, _tag: u64, _payload: Payload) {
        panic!("nested subcommunicator splits are not supported (tag namespace is one level deep)");
    }

    fn recv_subgroup(&self, _src: usize, _tag: u64) -> Payload {
        panic!("nested subcommunicator splits are not supported (tag namespace is one level deep)");
    }

    fn recv_subgroup_deadline(
        &self,
        _src: usize,
        _tag: u64,
        _timeout: Duration,
    ) -> Result<Payload, CommError> {
        panic!("nested subcommunicator splits are not supported (tag namespace is one level deep)");
    }

    fn try_send_subgroup(
        &self,
        _dst: usize,
        _tag: u64,
        _payload: Payload,
    ) -> Result<(), CommError> {
        panic!("nested subcommunicator splits are not supported (tag namespace is one level deep)");
    }
}

/// Debug check used by the raw subgroup transport hooks: a subgroup parent
/// tag must carry [`SUBGROUP_BIT`] and keep the parent's collective bit
/// clear.
#[inline]
pub(crate) fn assert_subgroup_tag(tag: u64) {
    debug_assert!(
        tag & SUBGROUP_BIT != 0 && tag & COLLECTIVE_BIT == 0,
        "subgroup transport used with a non-subgroup tag {tag:#x}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SerialComm;
    use crate::thread::run_ranks;

    #[test]
    fn serial_split_is_singleton() {
        let c = SerialComm::new();
        let sub = c.split(7, 0);
        assert_eq!(sub.rank(), 0);
        assert_eq!(sub.size(), 1);
        assert_eq!(sub.members(), &[0]);
        let mut x = vec![2.0];
        sub.allreduce_f64(ReduceOp::Sum, &mut x);
        assert_eq!(x, vec![2.0]);
        sub.barrier();
        assert_eq!(sub.allgather_u64(&[4, 5]), vec![vec![4, 5]]);
        let got = sub.alltoallv(vec![Payload::U64(vec![1])]);
        assert_eq!(got[0].clone().into_u64(), vec![1]);
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        let (results, _) = run_ranks(6, |c| {
            // Even/odd split with keys reversing the natural order.
            let color = (c.rank() % 2) as u64;
            let key = (10 - c.rank()) as u64;
            let sub = c.split(color, key);
            (sub.rank(), sub.size(), sub.members().to_vec())
        });
        // Color 0 = parent ranks {0,2,4}, keys {10,8,6} => order 4,2,0.
        assert_eq!(results[4].0, 0);
        assert_eq!(results[2].0, 1);
        assert_eq!(results[0].0, 2);
        for r in [0, 2, 4] {
            assert_eq!(results[r].1, 3);
            assert_eq!(results[r].2, vec![4, 2, 0]);
        }
        // Color 1 = parent ranks {1,3,5}.
        assert_eq!(results[5].2, vec![5, 3, 1]);
    }

    #[test]
    fn subgroup_collectives_are_independent() {
        let (results, _) = run_ranks(6, |c| {
            let color = (c.rank() / 3) as u64; // {0,1,2} vs {3,4,5}
            let sub = c.split(color, c.rank() as u64);
            // Different groups do *different numbers* of collectives —
            // exactly what a world-level collective could never survive.
            let rounds = 1 + color as usize * 3;
            let mut total = 0.0;
            for _ in 0..rounds {
                let mut x = vec![sub.rank() as f64 + 1.0];
                sub.allreduce_f64(ReduceOp::Sum, &mut x);
                total = x[0];
            }
            sub.barrier();
            total
        });
        for r in results {
            assert_eq!(r, 6.0); // 1+2+3 in both groups
        }
    }

    #[test]
    fn subgroup_point_to_point_and_user_tags() {
        let (results, _) = run_ranks(4, |c| {
            let color = (c.rank() % 2) as u64;
            let sub = c.split(color, c.rank() as u64);
            // Ring within each 2-member subgroup, reusing the *same* user
            // tag in both groups: namespaces must not cross-match.
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(next, 3, Payload::U64(vec![c.rank() as u64 * 100]));
            sub.recv(prev, 3).into_u64()[0]
        });
        assert_eq!(results, vec![200, 300, 0, 100]);
    }

    #[test]
    fn subgroup_stats_attribute_traffic_per_group() {
        let (results, _) = run_ranks(4, |c| {
            let color = (c.rank() / 2) as u64;
            let sub = c.split(color, c.rank() as u64);
            if sub.rank() == 0 {
                sub.send(1, 1, Payload::F64(vec![0.0; 10])); // 80 bytes
            } else {
                sub.recv(0, 1);
            }
            sub.group_traffic_totals()
        });
        for (bytes, msgs) in results {
            assert_eq!(bytes, 80);
            assert_eq!(msgs, 1);
        }
    }

    #[test]
    fn world_and_subgroup_traffic_coexist() {
        // Parent-level user sends concurrent with subgroup traffic on the
        // same tag value: the SUBGROUP_BIT namespace keeps them apart.
        let (results, _) = run_ranks(4, |c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as u64);
            if c.rank() == 0 {
                c.send(1, 9, Payload::U64(vec![111]));
            }
            sub.send((sub.rank() + 1) % 2, 9, Payload::U64(vec![c.rank() as u64]));
            let from_sub = sub.recv((sub.rank() + 1) % 2, 9).into_u64()[0];
            let from_world = if c.rank() == 1 {
                c.recv(0, 9).into_u64()[0]
            } else {
                0
            };
            (from_sub, from_world)
        });
        assert_eq!(results[0].0, 2);
        assert_eq!(results[1], (3, 111));
    }

    #[test]
    #[should_panic(expected = "nested subcommunicator")]
    fn nested_split_rejected() {
        let c = SerialComm::new();
        let sub = c.split(0, 0);
        let _ = sub.split(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 46 bits")]
    fn oversized_subgroup_user_tag_rejected() {
        let c = SerialComm::new();
        let sub = c.split(0, 0);
        sub.send(0, 1 << 50, Payload::U64(vec![1]));
    }

    #[test]
    fn full_collective_suite_inside_subgroups() {
        let (results, _) = run_ranks(6, |c| {
            let color = (c.rank() / 3) as u64;
            let sub = c.split(color, c.rank() as u64);
            let mut x = vec![sub.rank() as f64];
            sub.allreduce_f64(ReduceOp::Max, &mut x);
            let g = sub.allgather_u64(&[sub.rank() as u64]);
            let gf = sub.allgather_f64(&[sub.rank() as f64 * 0.5]);
            let a = sub.alltoallv(
                (0..sub.size())
                    .map(|d| Payload::U64(vec![(sub.rank() * 10 + d) as u64]))
                    .collect(),
            );
            let mut b = if sub.rank() == 1 {
                vec![42.0]
            } else {
                Vec::new()
            };
            sub.broadcast_f64(1, &mut b);
            (
                x[0],
                g,
                gf,
                a.into_iter().map(|p| p.into_u64()).collect::<Vec<_>>(),
                b,
            )
        });
        for (max, g, gf, a, b) in results {
            assert_eq!(max, 2.0);
            assert_eq!(g, vec![vec![0], vec![1], vec![2]]);
            assert_eq!(gf, vec![vec![0.0], vec![0.5], vec![1.0]]);
            for (src, v) in a.iter().enumerate() {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0] / 10, src as u64);
            }
            assert_eq!(b, vec![42.0]);
        }
    }
}
