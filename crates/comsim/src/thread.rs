//! Rank-per-thread communicator.
//!
//! [`run_ranks`] spawns one OS thread per rank and hands each a
//! [`ThreadComm`]. Point-to-point messages flow through crossbeam channels
//! into a per-rank mailbox keyed by `(source, tag)`; collectives are built
//! on top of the point-to-point layer plus a shared barrier, mirroring how
//! an MPI implementation layers its collectives.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::collectives::{self, Transport};
use crate::comm::{Comm, Payload, ReduceOp};
use crate::stats::CommStats;

/// Tag bit reserved for internal collective traffic. User tags must keep
/// this bit clear; `sm-dbcsr`'s wire module funnels all tagged block
/// traffic through a checked constructor that enforces this.
pub const COLLECTIVE_BIT: u64 = 1 << 63;

type Envelope = (usize, u64, Payload);

/// Communicator handle owned by one rank thread.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    mailbox: std::cell::RefCell<HashMap<(usize, u64), VecDeque<Payload>>>,
    barrier: Arc<std::sync::Barrier>,
    stats: Arc<CommStats>,
    /// Monotonically increasing collective sequence number; keeps the tags
    /// of successive collectives distinct so traffic can never cross-match.
    coll_seq: std::cell::Cell<u64>,
}

impl ThreadComm {
    /// Shared transfer counters for the whole communicator.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    fn next_collective_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_BIT | seq
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(
            tag & COLLECTIVE_BIT == 0,
            "user tags must not set the collective bit"
        );
        assert!(
            tag & crate::subcomm::SUBGROUP_BIT == 0,
            "user tags must not set the subgroup bit"
        );
        self.send_internal(dst, tag, payload);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        self.recv_internal(src, tag)
    }

    fn barrier(&self) {
        self.barrier.wait();
    }

    fn allreduce_f64(&self, op: ReduceOp, x: &mut [f64]) {
        let tag_up = self.next_collective_tag();
        let tag_down = self.next_collective_tag();
        collectives::allreduce_f64(self, tag_up, tag_down, op, x);
    }

    fn allgather_u64(&self, local: &[u64]) -> Vec<Vec<u64>> {
        collectives::allgather_u64(self, self.next_collective_tag(), local)
    }

    fn allgather_f64(&self, local: &[f64]) -> Vec<Vec<f64>> {
        collectives::allgather_f64(self, self.next_collective_tag(), local)
    }

    fn alltoallv(&self, sends: Vec<Payload>) -> Vec<Payload> {
        collectives::alltoallv(self, self.next_collective_tag(), sends)
    }

    fn broadcast_f64(&self, root: usize, x: &mut Vec<f64>) {
        collectives::broadcast_f64(self, self.next_collective_tag(), root, x)
    }

    fn send_subgroup(&self, dst: usize, tag: u64, payload: Payload) {
        crate::subcomm::assert_subgroup_tag(tag);
        self.send_internal(dst, tag, payload);
    }

    fn recv_subgroup(&self, src: usize, tag: u64) -> Payload {
        crate::subcomm::assert_subgroup_tag(tag);
        self.recv_internal(src, tag)
    }
}

impl Transport for ThreadComm {
    fn p2p_rank(&self) -> usize {
        self.rank
    }

    fn p2p_size(&self) -> usize {
        self.size
    }

    fn send_p2p(&self, dst: usize, tag: u64, payload: Payload) {
        self.send_internal(dst, tag, payload);
    }

    fn recv_p2p(&self, src: usize, tag: u64) -> Payload {
        self.recv_internal(src, tag)
    }
}

impl ThreadComm {
    fn send_internal(&self, dst: usize, tag: u64, payload: Payload) {
        // Count only inter-rank traffic: MPI self-sends are memcpys.
        if dst != self.rank {
            self.stats.record_send(self.rank, payload.byte_len());
        }
        if dst == self.rank {
            self.mailbox
                .borrow_mut()
                .entry((self.rank, tag))
                .or_default()
                .push_back(payload);
        } else {
            self.senders[dst]
                .send((self.rank, tag, payload))
                .expect("receiver thread terminated early");
        }
    }

    fn recv_internal(&self, src: usize, tag: u64) -> Payload {
        if let Some(p) = self
            .mailbox
            .borrow_mut()
            .get_mut(&(src, tag))
            .and_then(|q| q.pop_front())
        {
            return p;
        }
        loop {
            let (from, t, payload) = self
                .receiver
                .recv()
                .expect("all senders dropped while still expecting a message");
            if from == src && t == tag {
                return payload;
            }
            self.mailbox
                .borrow_mut()
                .entry((from, t))
                .or_default()
                .push_back(payload);
        }
    }
}

/// Run `f(comm)` on `size` rank threads and collect the per-rank results
/// (indexed by rank) plus the shared transfer statistics.
///
/// Panics in any rank are propagated to the caller.
pub fn run_ranks<T, F>(size: usize, f: F) -> (Vec<T>, Arc<CommStats>)
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let stats = CommStats::new(size);
    let barrier = Arc::new(std::sync::Barrier::new(size));

    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = unbounded::<Envelope>();
        senders.push(s);
        receivers.push(r);
    }

    let comms: Vec<ThreadComm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ThreadComm {
            rank,
            size,
            senders: senders.clone(),
            receiver,
            mailbox: std::cell::RefCell::new(HashMap::new()),
            barrier: Arc::clone(&barrier),
            stats: Arc::clone(&stats),
            coll_seq: std::cell::Cell::new(0),
        })
        .collect();

    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_themselves() {
        let (ranks, _) = run_ranks(4, |c| (c.rank(), c.size()));
        for (i, (r, s)) in ranks.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 4);
        }
    }

    #[test]
    fn ring_send_recv() {
        let n = 5;
        let (results, stats) = run_ranks(n, |c| {
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            c.send(next, 1, Payload::U64(vec![c.rank() as u64]));
            c.recv(prev, 1).into_u64()[0]
        });
        for (i, &got) in results.iter().enumerate() {
            assert_eq!(got as usize, (i + n - 1) % n);
        }
        assert_eq!(stats.total_msgs(), n as u64);
        assert_eq!(stats.total_bytes(), 8 * n as u64);
    }

    #[test]
    fn message_order_preserved_per_tag() {
        let (results, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                for k in 0..10u64 {
                    c.send(1, 3, Payload::U64(vec![k]));
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv(0, 3).into_u64()[0]).collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 10, Payload::U64(vec![10]));
                c.send(1, 20, Payload::U64(vec![20]));
                0
            } else {
                // Receive in reverse order of sending.
                let b = c.recv(0, 20).into_u64()[0];
                let a = c.recv(0, 10).into_u64()[0];
                (a * 100 + b) as usize
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let (results, _) = run_ranks(6, |c| {
            let mut x = vec![c.rank() as f64, 1.0];
            c.allreduce_f64(ReduceOp::Sum, &mut x);
            let mut y = vec![c.rank() as f64];
            c.allreduce_f64(ReduceOp::Max, &mut y);
            (x, y)
        });
        for (x, y) in results {
            assert_eq!(x, vec![15.0, 6.0]);
            assert_eq!(y, vec![5.0]);
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let (results, _) = run_ranks(3, |c| {
            let local: Vec<u64> = (0..c.rank() as u64).collect();
            c.allgather_u64(&local)
        });
        for r in results {
            assert_eq!(r[0], Vec::<u64>::new());
            assert_eq!(r[1], vec![0]);
            assert_eq!(r[2], vec![0, 1]);
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_data() {
        let n = 4;
        let (results, _) = run_ranks(n, |c| {
            let sends: Vec<Payload> = (0..n)
                .map(|d| Payload::U64(vec![(c.rank() * 10 + d) as u64]))
                .collect();
            c.alltoallv(sends)
        });
        for (me, recvd) in results.into_iter().enumerate() {
            for (src, p) in recvd.into_iter().enumerate() {
                assert_eq!(p.into_u64(), vec![(src * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let (results, _) = run_ranks(4, |c| {
            let mut x = if c.rank() == 2 {
                vec![7.5, -1.0]
            } else {
                Vec::new()
            };
            c.broadcast_f64(2, &mut x);
            x
        });
        for r in results {
            assert_eq!(r, vec![7.5, -1.0]);
        }
    }

    #[test]
    fn barrier_separates_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn self_send_is_local_and_uncounted() {
        let (results, stats) = run_ranks(2, |c| {
            c.send(c.rank(), 5, Payload::U64(vec![42]));
            c.recv(c.rank(), 5).into_u64()[0]
        });
        assert_eq!(results, vec![42, 42]);
        assert_eq!(
            stats.total_bytes(),
            0,
            "self-sends must not count as traffic"
        );
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let (results, _) = run_ranks(3, |c| {
            let mut sums = Vec::new();
            for round in 0..5 {
                let mut x = vec![(c.rank() + round) as f64];
                c.allreduce_f64(ReduceOp::Sum, &mut x);
                sums.push(x[0]);
            }
            sums
        });
        for r in results {
            assert_eq!(r, vec![3.0, 6.0, 9.0, 12.0, 15.0]);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let (results, _) = run_ranks(1, |c| {
            let mut x = vec![3.0];
            c.allreduce_f64(ReduceOp::Sum, &mut x);
            let g = c.allgather_u64(&[1, 2]);
            let a = c.alltoallv(vec![Payload::U64(vec![9])]);
            (x[0], g[0].clone(), a[0].clone().into_u64())
        });
        assert_eq!(results[0].0, 3.0);
        assert_eq!(results[0].1, vec![1, 2]);
        assert_eq!(results[0].2, vec![9]);
    }
}
