//! Rank-per-thread communicator.
//!
//! [`run_ranks`] spawns one OS thread per rank and hands each a
//! [`ThreadComm`]. Point-to-point messages flow through crossbeam channels
//! into a per-rank mailbox keyed by `(source, tag)`; collectives are built
//! on top of the point-to-point layer plus a shared barrier, mirroring how
//! an MPI implementation layers its collectives.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::collectives::{self, Transport};
use crate::comm::{Comm, Payload, ReduceOp};
use crate::fault::{CommError, FaultPlan, FaultState, InjectionStats};
use crate::stats::CommStats;

/// Tag bit reserved for internal collective traffic. User tags must keep
/// this bit clear; `sm-dbcsr`'s wire module funnels all tagged block
/// traffic through a checked constructor that enforces this.
pub const COLLECTIVE_BIT: u64 = 1 << 63;

/// Tag of the poison envelope a dying rank broadcasts so peers blocked in
/// `recv` fail fast instead of hanging. It carries *both* reserved bits,
/// which no collective (`COLLECTIVE_BIT` only), subgroup (`SUBGROUP_BIT`
/// only) or user (neither) tag can ever match.
const POISON_TAG: u64 = COLLECTIVE_BIT | crate::subcomm::SUBGROUP_BIT;

/// Poll period for re-checking peer-failure flags while blocked in a
/// receive; the poison envelope normally wakes the receiver long before
/// this fires, so it is a liveness backstop, not the detection path.
const FAILURE_POLL: Duration = Duration::from_millis(5);

type Envelope = (usize, u64, Payload);

/// Per-rank fault-injection context installed by
/// [`run_ranks_with_faults`]: the shared plan/state plus this rank's
/// deterministic per-destination send counters (what drop/delay rules key
/// on).
struct FaultCtx {
    plan: Arc<FaultPlan>,
    state: Arc<FaultState>,
    send_seq: RefCell<Vec<u64>>,
}

/// Communicator handle owned by one rank thread.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    mailbox: std::cell::RefCell<HashMap<(usize, u64), VecDeque<Payload>>>,
    barrier: Arc<std::sync::Barrier>,
    stats: Arc<CommStats>,
    /// Monotonically increasing collective sequence number; keeps the tags
    /// of successive collectives distinct so traffic can never cross-match.
    coll_seq: std::cell::Cell<u64>,
    /// Fault-injection context, if this world runs under a [`FaultPlan`].
    fault: Option<FaultCtx>,
    /// Peers this rank has *observed* failing (poison envelope or failed
    /// channel), independent of any installed plan.
    peer_failed: RefCell<Vec<bool>>,
}

impl ThreadComm {
    /// Shared transfer counters for the whole communicator.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// The fault plan this world runs under, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Shared runtime fault state, if a plan is installed.
    pub fn fault_state(&self) -> Option<&Arc<FaultState>> {
        self.fault.as_ref().map(|f| &f.state)
    }

    /// Announce this rank's death: raise its failed flag (when fault state
    /// is installed) and post a poison envelope to every peer so blocked
    /// receivers fail fast instead of hanging. Idempotent; called
    /// automatically when a rank thread unwinds mid-epoch.
    pub fn poison_peers(&self) {
        if let Some(f) = &self.fault {
            f.state.mark_failed(self.rank);
        }
        self.peer_failed.borrow_mut()[self.rank] = true;
        for dst in 0..self.size {
            if dst != self.rank {
                // Control traffic: uncounted, and a dead receiver is fine.
                let _ = self.senders[dst].send((self.rank, POISON_TAG, Payload::U64(Vec::new())));
            }
        }
    }

    fn next_collective_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_BIT | seq
    }

    fn note_peer_failed(&self, rank: usize) {
        self.peer_failed.borrow_mut()[rank] = true;
        if let Some(f) = &self.fault {
            f.state.mark_failed(rank);
        }
    }

    fn peer_known_failed(&self, rank: usize) -> bool {
        self.peer_failed.borrow()[rank]
            || self.fault.as_ref().is_some_and(|f| f.state.is_failed(rank))
    }
}

impl Drop for ThreadComm {
    /// A rank thread that unwinds mid-epoch poisons its channels on the
    /// way out, so peers blocked in `recv` on it fail fast (clean panic or
    /// [`CommError::RankFailed`] from the deadline variants) instead of
    /// hanging until process teardown.
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.poison_peers();
        }
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(
            tag & COLLECTIVE_BIT == 0,
            "user tags must not set the collective bit"
        );
        assert!(
            tag & crate::subcomm::SUBGROUP_BIT == 0,
            "user tags must not set the subgroup bit"
        );
        self.send_internal(dst, tag, payload);
    }

    fn recv(&self, src: usize, tag: u64) -> Payload {
        self.recv_internal(src, tag)
    }

    fn try_send(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        assert!(
            tag & COLLECTIVE_BIT == 0,
            "user tags must not set the collective bit"
        );
        assert!(
            tag & crate::subcomm::SUBGROUP_BIT == 0,
            "user tags must not set the subgroup bit"
        );
        self.try_send_internal(dst, tag, payload)
    }

    fn recv_deadline(&self, src: usize, tag: u64, timeout: Duration) -> Result<Payload, CommError> {
        self.recv_deadline_internal(src, tag, timeout)
    }

    fn recv_subgroup_deadline(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        crate::subcomm::assert_subgroup_tag(tag);
        self.recv_deadline_internal(src, tag, timeout)
    }

    fn barrier(&self) {
        self.barrier.wait();
    }

    fn allreduce_f64(&self, op: ReduceOp, x: &mut [f64]) {
        let tag_up = self.next_collective_tag();
        let tag_down = self.next_collective_tag();
        collectives::allreduce_f64(self, tag_up, tag_down, op, x);
    }

    fn allgather_u64(&self, local: &[u64]) -> Vec<Vec<u64>> {
        collectives::allgather_u64(self, self.next_collective_tag(), local)
    }

    fn allgather_f64(&self, local: &[f64]) -> Vec<Vec<f64>> {
        collectives::allgather_f64(self, self.next_collective_tag(), local)
    }

    fn alltoallv(&self, sends: Vec<Payload>) -> Vec<Payload> {
        collectives::alltoallv(self, self.next_collective_tag(), sends)
    }

    fn broadcast_f64(&self, root: usize, x: &mut Vec<f64>) {
        collectives::broadcast_f64(self, self.next_collective_tag(), root, x)
    }

    fn send_subgroup(&self, dst: usize, tag: u64, payload: Payload) {
        crate::subcomm::assert_subgroup_tag(tag);
        self.send_internal(dst, tag, payload);
    }

    fn recv_subgroup(&self, src: usize, tag: u64) -> Payload {
        crate::subcomm::assert_subgroup_tag(tag);
        self.recv_internal(src, tag)
    }

    fn try_send_subgroup(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        crate::subcomm::assert_subgroup_tag(tag);
        self.try_send_internal(dst, tag, payload)
    }
}

impl Transport for ThreadComm {
    fn p2p_rank(&self) -> usize {
        self.rank
    }

    fn p2p_size(&self) -> usize {
        self.size
    }

    fn send_p2p(&self, dst: usize, tag: u64, payload: Payload) {
        self.send_internal(dst, tag, payload);
    }

    fn recv_p2p(&self, src: usize, tag: u64) -> Payload {
        self.recv_internal(src, tag)
    }

    fn recv_p2p_deadline(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        self.recv_deadline_internal(src, tag, timeout)
    }
}

impl ThreadComm {
    /// Injection point + channel delivery. `Err(RankFailed)` when the
    /// receiver thread is gone; self-sends always succeed locally.
    fn deliver(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        if dst == self.rank {
            self.mailbox
                .borrow_mut()
                .entry((self.rank, tag))
                .or_default()
                .push_back(payload);
            return Ok(());
        }
        if let Some(f) = &self.fault {
            let seq = {
                let mut seqs = f.send_seq.borrow_mut();
                let s = seqs[dst];
                seqs[dst] += 1;
                s
            };
            if f.plan.drops_message(self.rank, dst, seq) {
                f.state.count_drop();
                if sm_trace::enabled() {
                    sm_trace::emit(
                        "fault.injected",
                        0.0,
                        0.0,
                        &[
                            ("drop", 1.0),
                            ("src", self.rank as f64),
                            ("dst", dst as f64),
                            ("seq", seq as f64),
                        ],
                    );
                }
                // Lost on the wire: never delivered, never counted.
                return Ok(());
            }
            if let Some(d) = f.plan.delay_for(self.rank, dst, seq) {
                f.state.count_delay();
                std::thread::sleep(d);
            }
            if let Some(d) = f.plan.slow_stall(self.rank) {
                f.state.count_stall();
                std::thread::sleep(d);
            }
        }
        // Count only inter-rank traffic: MPI self-sends are memcpys.
        self.stats.record_send(self.rank, payload.byte_len());
        self.senders[dst]
            .send((self.rank, tag, payload))
            .map_err(|_| CommError::RankFailed { rank: dst })
    }

    fn send_internal(&self, dst: usize, tag: u64, payload: Payload) {
        if self.deliver(dst, tag, payload).is_err() {
            // Receiver thread gone. Under a fault model that is an
            // expected condition (sends to the dead are dropped, as MPI
            // buffered sends to a failed peer would be); without one it is
            // a programmer error in the test harness.
            if self.fault.is_some() || self.peer_known_failed(dst) {
                self.note_peer_failed(dst);
            } else {
                panic!("receiver thread terminated early");
            }
        }
    }

    fn try_send_internal(&self, dst: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        if dst != self.rank && self.peer_known_failed(dst) {
            return Err(CommError::RankFailed { rank: dst });
        }
        match self.deliver(dst, tag, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.note_peer_failed(dst);
                Err(e)
            }
        }
    }

    /// File an incoming envelope: poison marks the sender failed, anything
    /// else is buffered by `(source, tag)`.
    fn stash(&self, (from, tag, payload): Envelope) {
        if tag == POISON_TAG {
            self.note_peer_failed(from);
        } else {
            self.mailbox
                .borrow_mut()
                .entry((from, tag))
                .or_default()
                .push_back(payload);
        }
    }

    fn pop_mailbox(&self, src: usize, tag: u64) -> Option<Payload> {
        self.mailbox
            .borrow_mut()
            .get_mut(&(src, tag))
            .and_then(|q| q.pop_front())
    }

    /// Drain everything already queued in the channel without blocking;
    /// used before concluding a peer is dead, so messages it sent before
    /// dying are never lost.
    fn drain_channel(&self) {
        while let Ok(env) = self.receiver.try_recv() {
            self.stash(env);
        }
    }

    fn recv_internal(&self, src: usize, tag: u64) -> Payload {
        loop {
            if let Some(p) = self.pop_mailbox(src, tag) {
                return p;
            }
            if self.peer_known_failed(src) {
                // The peer died, but messages it sent first still count.
                self.drain_channel();
                if let Some(p) = self.pop_mailbox(src, tag) {
                    return p;
                }
                panic!(
                    "rank {src} failed while rank {} was blocked in recv (tag {tag:#x}); \
                     fault-tolerant callers should use recv_deadline",
                    self.rank
                );
            }
            match self.receiver.recv_timeout(FAILURE_POLL) {
                Ok(env) => self.stash(env),
                Err(RecvTimeoutError::Timeout) => {} // re-check failure flags
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("own sender handle keeps the channel alive")
                }
            }
        }
    }

    fn recv_deadline_internal(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.pop_mailbox(src, tag) {
                return Ok(p);
            }
            if self.peer_known_failed(src) {
                self.drain_channel();
                return match self.pop_mailbox(src, tag) {
                    Some(p) => Ok(p),
                    None => Err(CommError::RankFailed { rank: src }),
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { src, tag });
            }
            match self
                .receiver
                .recv_timeout((deadline - now).min(FAILURE_POLL))
            {
                Ok(env) => self.stash(env),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("own sender handle keeps the channel alive")
                }
            }
        }
    }
}

/// Run `f(comm)` on `size` rank threads and collect the per-rank results
/// (indexed by rank) plus the shared transfer statistics.
///
/// Panics in any rank are propagated to the caller.
pub fn run_ranks<T, F>(size: usize, f: F) -> (Vec<T>, Arc<CommStats>)
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let (comms, stats) = build_comms(size, None);
    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    (results, stats)
}

/// Like [`run_ranks`], but with `plan` installed on every rank's
/// communicator: drop/delay/slow rules fire deterministically in the send
/// path, and rank deaths propagate through the poison protocol plus the
/// shared [`FaultState`]. Returns per-rank results (`None` for a rank the
/// plan fails whose thread unwound — a *planned* death, already poisoned
/// on the way down; panics of ranks the plan does not fail propagate),
/// the shared transfer statistics, and the injection counters that
/// actually fired.
///
/// The world-sized in-memory [`Comm::barrier`] must not be crossed after a
/// planned rank failure — dead ranks can never arrive. Protocols that
/// survive faults are built on deadline receives and subgroup collectives
/// over surviving members only (see `sm_pipeline`'s recovery executor).
pub fn run_ranks_with_faults<T, F>(
    size: usize,
    plan: FaultPlan,
    f: F,
) -> (Vec<Option<T>>, Arc<CommStats>, InjectionStats)
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Sync,
{
    assert!(size >= 1, "need at least one rank");
    let plan = Arc::new(plan);
    let state = Arc::new(FaultState::new(size));
    let (comms, stats) = build_comms(size, Some((Arc::clone(&plan), Arc::clone(&state))));
    let results: Vec<Option<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(v) => Some(v),
                Err(cause) => {
                    if plan.fails_at(rank).is_some() {
                        // A planned death (the rank poisoned its channels
                        // on the way down): absorbed into the fault model.
                        None
                    } else {
                        std::panic::resume_unwind(cause)
                    }
                }
            })
            .collect()
    });
    (results, stats, state.snapshot())
}

fn build_comms(
    size: usize,
    fault: Option<(Arc<FaultPlan>, Arc<FaultState>)>,
) -> (Vec<ThreadComm>, Arc<CommStats>) {
    let stats = CommStats::new(size);
    let barrier = Arc::new(std::sync::Barrier::new(size));

    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = unbounded::<Envelope>();
        senders.push(s);
        receivers.push(r);
    }

    let comms: Vec<ThreadComm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ThreadComm {
            rank,
            size,
            senders: senders.clone(),
            receiver,
            mailbox: std::cell::RefCell::new(HashMap::new()),
            barrier: Arc::clone(&barrier),
            stats: Arc::clone(&stats),
            coll_seq: std::cell::Cell::new(0),
            fault: fault.as_ref().map(|(plan, state)| FaultCtx {
                plan: Arc::clone(plan),
                state: Arc::clone(state),
                send_seq: RefCell::new(vec![0; size]),
            }),
            peer_failed: RefCell::new(vec![false; size]),
        })
        .collect();
    (comms, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_themselves() {
        let (ranks, _) = run_ranks(4, |c| (c.rank(), c.size()));
        for (i, (r, s)) in ranks.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 4);
        }
    }

    #[test]
    fn ring_send_recv() {
        let n = 5;
        let (results, stats) = run_ranks(n, |c| {
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            c.send(next, 1, Payload::U64(vec![c.rank() as u64]));
            c.recv(prev, 1).into_u64()[0]
        });
        for (i, &got) in results.iter().enumerate() {
            assert_eq!(got as usize, (i + n - 1) % n);
        }
        assert_eq!(stats.total_msgs(), n as u64);
        assert_eq!(stats.total_bytes(), 8 * n as u64);
    }

    #[test]
    fn message_order_preserved_per_tag() {
        let (results, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                for k in 0..10u64 {
                    c.send(1, 3, Payload::U64(vec![k]));
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv(0, 3).into_u64()[0]).collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                c.send(1, 10, Payload::U64(vec![10]));
                c.send(1, 20, Payload::U64(vec![20]));
                0
            } else {
                // Receive in reverse order of sending.
                let b = c.recv(0, 20).into_u64()[0];
                let a = c.recv(0, 10).into_u64()[0];
                (a * 100 + b) as usize
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let (results, _) = run_ranks(6, |c| {
            let mut x = vec![c.rank() as f64, 1.0];
            c.allreduce_f64(ReduceOp::Sum, &mut x);
            let mut y = vec![c.rank() as f64];
            c.allreduce_f64(ReduceOp::Max, &mut y);
            (x, y)
        });
        for (x, y) in results {
            assert_eq!(x, vec![15.0, 6.0]);
            assert_eq!(y, vec![5.0]);
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let (results, _) = run_ranks(3, |c| {
            let local: Vec<u64> = (0..c.rank() as u64).collect();
            c.allgather_u64(&local)
        });
        for r in results {
            assert_eq!(r[0], Vec::<u64>::new());
            assert_eq!(r[1], vec![0]);
            assert_eq!(r[2], vec![0, 1]);
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_data() {
        let n = 4;
        let (results, _) = run_ranks(n, |c| {
            let sends: Vec<Payload> = (0..n)
                .map(|d| Payload::U64(vec![(c.rank() * 10 + d) as u64]))
                .collect();
            c.alltoallv(sends)
        });
        for (me, recvd) in results.into_iter().enumerate() {
            for (src, p) in recvd.into_iter().enumerate() {
                assert_eq!(p.into_u64(), vec![(src * 10 + me) as u64]);
            }
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let (results, _) = run_ranks(4, |c| {
            let mut x = if c.rank() == 2 {
                vec![7.5, -1.0]
            } else {
                Vec::new()
            };
            c.broadcast_f64(2, &mut x);
            x
        });
        for r in results {
            assert_eq!(r, vec![7.5, -1.0]);
        }
    }

    #[test]
    fn barrier_separates_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_ranks(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn self_send_is_local_and_uncounted() {
        let (results, stats) = run_ranks(2, |c| {
            c.send(c.rank(), 5, Payload::U64(vec![42]));
            c.recv(c.rank(), 5).into_u64()[0]
        });
        assert_eq!(results, vec![42, 42]);
        assert_eq!(
            stats.total_bytes(),
            0,
            "self-sends must not count as traffic"
        );
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let (results, _) = run_ranks(3, |c| {
            let mut sums = Vec::new();
            for round in 0..5 {
                let mut x = vec![(c.rank() + round) as f64];
                c.allreduce_f64(ReduceOp::Sum, &mut x);
                sums.push(x[0]);
            }
            sums
        });
        for r in results {
            assert_eq!(r, vec![3.0, 6.0, 9.0, 12.0, 15.0]);
        }
    }

    #[test]
    fn recv_deadline_times_out_cleanly() {
        let (results, _) = run_ranks(2, |c| {
            if c.rank() == 0 {
                c.recv_deadline(1, 9, Duration::from_millis(20))
            } else {
                Ok(Payload::U64(Vec::new())) // rank 1 sends nothing
            }
        });
        assert_eq!(results[0], Err(CommError::Timeout { src: 1, tag: 9 }));
    }

    #[test]
    fn planned_rank_death_unblocks_deadline_receivers() {
        let plan = FaultPlan::new().fail_rank(1, 0);
        let (results, _, inj) = run_ranks_with_faults(2, plan, |c| {
            if c.rank() == 1 {
                c.poison_peers();
                return Err(CommError::RankFailed { rank: 1 });
            }
            c.recv_deadline(1, 4, Duration::from_secs(30))
        });
        assert_eq!(results[0], Some(Err(CommError::RankFailed { rank: 1 })));
        assert_eq!(inj.rank_failures, 1);
    }

    #[test]
    fn messages_sent_before_death_are_still_delivered() {
        let plan = FaultPlan::new().fail_rank(1, 0);
        let (results, _, _) = run_ranks_with_faults(2, plan, |c| {
            if c.rank() == 1 {
                c.send(0, 2, Payload::U64(vec![77]));
                c.poison_peers();
                return 0;
            }
            let first = c
                .recv_deadline(1, 2, Duration::from_secs(30))
                .unwrap()
                .into_u64()[0];
            // No further message can arrive: the death must surface as
            // RankFailed (fast), never as a hang.
            assert_eq!(
                c.recv_deadline(1, 2, Duration::from_secs(30)),
                Err(CommError::RankFailed { rank: 1 })
            );
            first
        });
        assert_eq!(results[0], Some(77));
    }

    #[test]
    fn planned_panic_is_absorbed_and_peers_fail_fast() {
        let plan = FaultPlan::new().fail_rank(1, 0);
        let (results, _, inj) = run_ranks_with_faults(2, plan, |c| {
            if c.rank() == 1 {
                // Unwinding poisons the channels via Drop.
                panic!("simulated mid-epoch crash");
            }
            c.recv_deadline(1, 8, Duration::from_secs(30))
        });
        assert_eq!(results[1], None, "planned death is absorbed");
        assert_eq!(results[0], Some(Err(CommError::RankFailed { rank: 1 })));
        assert_eq!(inj.rank_failures, 1);
    }

    #[test]
    fn dropped_message_surfaces_as_timeout() {
        let plan = FaultPlan::new().drop_message(1, 0, 0);
        let (results, _, inj) = run_ranks_with_faults(2, plan, |c| {
            if c.rank() == 1 {
                c.send(0, 3, Payload::U64(vec![1])); // dropped on the wire
                c.send(0, 3, Payload::U64(vec![2])); // delivered
                return None;
            }
            let got = c
                .recv_deadline(1, 3, Duration::from_secs(30))
                .unwrap()
                .into_u64()[0];
            Some((got, c.recv_deadline(1, 3, Duration::from_millis(30))))
        });
        let (got, second) = results[0].clone().unwrap().unwrap();
        assert_eq!(got, 2, "the first send was lost, the second arrives");
        assert_eq!(second, Err(CommError::Timeout { src: 1, tag: 3 }));
        assert_eq!(inj.dropped_messages, 1);
    }

    #[test]
    fn delay_and_slow_rules_change_timing_not_results() {
        let plan = FaultPlan::new()
            .delay_messages(0, 1, 1, 100)
            .slow_rank(0, 50);
        let (results, _, inj) = run_ranks_with_faults(2, plan, |c| {
            if c.rank() == 0 {
                c.send(1, 6, Payload::U64(vec![5]));
                0
            } else {
                c.recv(0, 6).into_u64()[0]
            }
        });
        assert_eq!(results[1], Some(5));
        assert_eq!(inj.delayed_messages, 1);
        assert_eq!(inj.slow_stalls, 1);
    }

    #[test]
    fn try_send_to_failed_rank_returns_rank_failed() {
        let plan = FaultPlan::new().fail_rank(1, 0);
        let (results, _, _) = run_ranks_with_faults(2, plan, |c| {
            if c.rank() == 1 {
                c.poison_peers();
                return Ok(());
            }
            // Wait until the death is observable, then try_send must fail
            // typed instead of panicking.
            assert_eq!(
                c.recv_deadline(1, 1, Duration::from_secs(30)),
                Err(CommError::RankFailed { rank: 1 })
            );
            c.try_send(1, 1, Payload::U64(vec![1]))
        });
        assert_eq!(results[0], Some(Err(CommError::RankFailed { rank: 1 })));
    }

    #[test]
    fn single_rank_world_works() {
        let (results, _) = run_ranks(1, |c| {
            let mut x = vec![3.0];
            c.allreduce_f64(ReduceOp::Sum, &mut x);
            let g = c.allgather_u64(&[1, 2]);
            let a = c.alltoallv(vec![Payload::U64(vec![9])]);
            (x[0], g[0].clone(), a[0].clone().into_u64())
        });
        assert_eq!(results[0].0, 3.0);
        assert_eq!(results[0].1, vec![1, 2]);
        assert_eq!(results[0].2, vec![9]);
    }
}
