//! Property-based tests of the thread communicator's collectives across
//! random rank counts and payload sizes: the correctness of every
//! distributed result in the repo rests on these.

use proptest::prelude::*;

use sm_comsim::{run_ranks, Comm, Payload, ReduceOp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn allreduce_sum_is_rank_invariant(size in 1usize..9, len in 1usize..8) {
        let (results, _) = run_ranks(size, |c| {
            let mut x: Vec<f64> = (0..len).map(|i| (c.rank() * 10 + i) as f64).collect();
            c.allreduce_f64(ReduceOp::Sum, &mut x);
            x
        });
        let expect: Vec<f64> = (0..len)
            .map(|i| (0..size).map(|r| (r * 10 + i) as f64).sum())
            .collect();
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn allreduce_min_max_bracket(size in 1usize..9) {
        let (results, _) = run_ranks(size, |c| {
            let mut mn = vec![c.rank() as f64];
            c.allreduce_f64(ReduceOp::Min, &mut mn);
            let mut mx = vec![c.rank() as f64];
            c.allreduce_f64(ReduceOp::Max, &mut mx);
            (mn[0], mx[0])
        });
        for (mn, mx) in results {
            prop_assert_eq!(mn, 0.0);
            prop_assert_eq!(mx, (size - 1) as f64);
        }
    }

    #[test]
    fn allgather_preserves_per_rank_data(size in 1usize..8, base_len in 0usize..5) {
        let (results, _) = run_ranks(size, |c| {
            let local: Vec<u64> = (0..base_len + c.rank()).map(|i| i as u64).collect();
            c.allgather_u64(&local)
        });
        for gathered in results {
            prop_assert_eq!(gathered.len(), size);
            for (src, v) in gathered.iter().enumerate() {
                prop_assert_eq!(v.len(), base_len + src);
            }
        }
    }

    #[test]
    fn alltoallv_is_a_transpose(size in 1usize..8) {
        let (results, _) = run_ranks(size, |c| {
            let sends: Vec<Payload> = (0..size)
                .map(|d| Payload::U64(vec![(c.rank() * 100 + d) as u64]))
                .collect();
            c.alltoallv(sends)
        });
        for (me, received) in results.into_iter().enumerate() {
            for (src, p) in received.into_iter().enumerate() {
                prop_assert_eq!(p.into_u64(), vec![(src * 100 + me) as u64]);
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone(size in 1usize..8, root_pick in 0usize..8) {
        let root = root_pick % size;
        let (results, _) = run_ranks(size, |c| {
            let mut x = if c.rank() == root { vec![3.25, -1.5] } else { Vec::new() };
            c.broadcast_f64(root, &mut x);
            x
        });
        for r in results {
            prop_assert_eq!(&r, &vec![3.25, -1.5]);
        }
    }

    #[test]
    fn point_to_point_ring_any_size(size in 2usize..9, payload in 0u64..1000) {
        let (results, _) = run_ranks(size, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, Payload::U64(vec![payload + c.rank() as u64]));
            c.recv(prev, 7).into_u64()[0]
        });
        for (me, got) in results.into_iter().enumerate() {
            let prev = (me + size - 1) % size;
            prop_assert_eq!(got, payload + prev as u64);
        }
    }
}
