//! `SubComm` re-split lifecycle: the contract the scheduler's epoch loop
//! leans on. A subcommunicator is torn down (dropped) between epochs and
//! the **world** comm is re-split — always a fresh one-level split, never
//! a nested one — with fresh per-group `CommStats`, so traffic is
//! attributed per epoch. These tests pin: drop-then-resplit from the same
//! world comm succeeds (same colors or new ones), per-group counters
//! reset with every split while the parent's keep accumulating, epoch-
//! salted tag namespaces never cross-match, and the nested-split
//! rejection still fires.

use sm_comsim::{run_ranks, Comm, Payload, ReduceOp, SerialComm};
use sm_trace::{Metric, SpanKind, TraceSession};

#[test]
fn drop_then_resplit_from_same_world_succeeds() {
    let (results, _) = run_ranks(6, |c| {
        let mut sums = Vec::new();
        // Epoch 0: two groups of three.
        {
            let sub = c.split((c.rank() / 3) as u64, c.rank() as u64);
            let mut x = vec![sub.rank() as f64 + 1.0];
            sub.allreduce_f64(ReduceOp::Sum, &mut x);
            sums.push(x[0]);
        } // epoch 0's SubComm dropped here
          // Epoch 1: regrouped — three groups of two, from the same world.
        {
            let sub = c.split((c.rank() % 3) as u64, c.rank() as u64);
            let mut x = vec![sub.rank() as f64 + 1.0];
            sub.allreduce_f64(ReduceOp::Sum, &mut x);
            sums.push(x[0]);
        }
        sums
    });
    for r in results {
        assert_eq!(r, vec![6.0, 3.0]); // 1+2+3 then 1+2
    }
}

#[test]
fn per_group_stats_reset_per_epoch_while_parent_accumulates() {
    let (results, world_stats) = run_ranks(4, |c| {
        let payload = || Payload::F64(vec![0.0; 10]); // 80 bytes
        let mut per_epoch = Vec::new();
        for epoch in 0..3u64 {
            // Epoch-salted color, exactly like the scheduler's loop.
            let sub = c.split((epoch << 32) | (c.rank() % 2) as u64, c.rank() as u64);
            // A fresh split starts at zero: per-epoch accounting needs no
            // manual reset.
            assert_eq!(sub.stats().total_bytes(), 0);
            assert_eq!(sub.stats().total_msgs(), 0);
            if sub.rank() == 0 {
                sub.send(1, 1, payload());
            } else {
                sub.recv(0, 1);
            }
            per_epoch.push(sub.group_traffic_totals());
        }
        per_epoch
    });
    for per_epoch in results {
        // Every epoch's group moved exactly one 80-byte message — the
        // previous epoch's traffic never leaks into the new counters.
        assert_eq!(per_epoch, vec![(80, 1), (80, 1), (80, 1)]);
    }
    // The parent-level counters keep accumulating across epochs: at least
    // the 3 epochs × 2 groups × 1 payload message (plus the splits' own
    // allgather traffic, which also rides the parent).
    assert!(world_stats.total_msgs() >= 6);
    assert!(world_stats.total_bytes() >= 6 * 80);
}

#[test]
fn same_color_resplit_reuses_namespace_safely() {
    // The scheduler drains every protocol before an epoch ends, so a
    // same-color re-split (same tag salt) must still deliver cleanly.
    let (results, _) = run_ranks(4, |c| {
        let mut got = Vec::new();
        for epoch in 0..4u64 {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as u64);
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(next, 7, Payload::U64(vec![epoch * 100 + c.rank() as u64]));
            got.push(sub.recv(prev, 7).into_u64()[0]);
        }
        got
    });
    for (rank, got) in results.into_iter().enumerate() {
        let peer = ((rank + 2) % 4) as u64; // the other member of the pair
        assert_eq!(got, (0..4).map(|e| e * 100 + peer).collect::<Vec<_>>());
    }
}

#[test]
fn regrouped_membership_changes_sub_rank_mapping() {
    // Between epochs a rank can land in a different group at a different
    // sub-rank; the membership tables must follow.
    let (results, _) = run_ranks(6, |c| {
        let a = {
            let sub = c.split((c.rank() / 3) as u64, c.rank() as u64);
            (sub.rank(), sub.size(), sub.members().to_vec())
        };
        let b = {
            // Reverse keys: sub-rank order flips within each new group.
            let sub = c.split((c.rank() % 2) as u64, (10 - c.rank()) as u64);
            (sub.rank(), sub.size(), sub.members().to_vec())
        };
        (a, b)
    });
    // Epoch 0: ranks {0,1,2} and {3,4,5}, keyed by rank.
    assert_eq!(results[4].0, (1, 3, vec![3, 4, 5]));
    // Epoch 1: colors by parity, keys reversed: color 0 = {4,2,0}.
    assert_eq!(results[4].1, (0, 3, vec![4, 2, 0]));
    assert_eq!(results[0].1 .0, 2, "rank 0 moved to the last sub-rank");
}

#[test]
fn interleaved_epoch_tags_never_cross_match() {
    // Two epochs exchange on the SAME user tag with different epoch-
    // salted colors; a stale message from epoch 0 must never satisfy an
    // epoch-1 recv even though both ride the subgroup namespace.
    let (results, _) = run_ranks(4, |c| {
        let mut got = Vec::new();
        for epoch in 0..2u64 {
            let sub = c.split((epoch << 32) | (c.rank() / 2) as u64, c.rank() as u64);
            if sub.rank() == 0 {
                sub.send(1, 5, Payload::U64(vec![epoch + 1]));
                got.push(0);
            } else {
                got.push(sub.recv(0, 5).into_u64()[0]);
            }
        }
        got
    });
    assert_eq!(results[1], vec![1, 2]);
    assert_eq!(results[3], vec![1, 2]);
}

/// One traced two-epoch regrouping round: epoch-salted splits, one p2p
/// payload per group per epoch, one subgroup allreduce per group per
/// epoch, with the span context re-installed to match the new grouping.
/// Returns the session's counter metrics as sorted `(key, value)` pairs.
fn traced_regrouping_round(label: &'static str) -> Vec<(String, u64)> {
    let session = TraceSession::start(label);
    let (results, _) = run_ranks(4, |c| {
        let _batch = sm_trace::span(SpanKind::Batch, label);
        let mut fresh = Vec::new();
        for epoch in 0..2u64 {
            let _epoch = sm_trace::span(SpanKind::Epoch, epoch);
            // Epoch-salted color: the group id a rank lands in changes
            // between epochs (parity, then half-split).
            let color = if epoch == 0 {
                (c.rank() % 2) as u64
            } else {
                (c.rank() / 2) as u64
            };
            let sub = c.split((epoch << 32) | color, c.rank() as u64);
            // Fresh split ⇒ fresh CommStats, also under tracing.
            fresh.push((sub.stats().total_bytes(), sub.stats().total_msgs()));
            let _group = sm_trace::span(SpanKind::Group, color);
            if sub.rank() == 0 {
                sub.send(1, 1, Payload::F64(vec![0.0; 10])); // 80 bytes
            } else {
                sub.recv(0, 1);
            }
            let mut x = vec![sub.rank() as f64];
            sub.allreduce_f64(ReduceOp::Sum, &mut x);
            assert_eq!(x[0], 1.0); // 0 + 1 in every group of two
        }
        fresh
    });
    for fresh in results {
        assert_eq!(fresh, vec![(0, 0), (0, 0)], "resplit must zero CommStats");
    }
    let mut counters: Vec<(String, u64)> = session
        .metrics_under(&format!("batch:{label}"))
        .into_iter()
        .filter_map(|(k, m)| match m {
            Metric::Counter(v) => Some((k, v)),
            _ => None,
        })
        .collect();
    counters.sort();
    counters
}

#[test]
fn trace_counters_follow_regrouped_span_contexts_deterministically() {
    let first = traced_regrouping_round("resplit-a");
    // Exactly one 80-byte p2p message lands under every (epoch, group)
    // context — traffic is attributed to the grouping live at send time,
    // so regrouping moves the keys, not the totals.
    for epoch in 0..2 {
        for group in 0..2 {
            let at = |name: &str| {
                let key = format!("batch:resplit-a/epoch:{epoch}/group:{group}/{name}");
                first
                    .iter()
                    .find(|(k, _)| *k == key)
                    .unwrap_or_else(|| panic!("missing counter {key}"))
                    .1
            };
            assert_eq!(at("comm.p2p.bytes"), 80);
            assert_eq!(at("comm.p2p.msgs"), 1);
            assert!(
                at("comm.collective.bytes") > 0,
                "allreduce rides collective tags"
            );
        }
    }
    // And the whole counter map is reproducible run-to-run (keys are
    // relabelled to compare across the two session labels).
    let second = traced_regrouping_round("resplit-b");
    let relabel = |v: Vec<(String, u64)>| -> Vec<(String, u64)> {
        v.into_iter()
            .map(|(k, n)| {
                (
                    k.split_once('/')
                        .map_or(k.clone(), |(_, rest)| rest.to_string()),
                    n,
                )
            })
            .collect()
    };
    assert_eq!(relabel(first), relabel(second));
}

#[test]
fn rank_death_mid_batch_poisons_cleanly_and_preserves_prior_messages() {
    use sm_comsim::{run_ranks_with_faults, split_known, CommError, FaultPlan};
    use std::time::Duration;

    // The drop-during-epoch regression: rank 3 dies between epochs —
    // its ThreadComm is dropped while every peer still holds protocol
    // state — and the survivors must (a) still receive anything it sent
    // before dying, (b) get a fast typed error instead of a hang for
    // anything it never sent, and (c) regroup without it.
    let plan = FaultPlan::new().fail_rank(3, 1);
    let (results, _, injected) = run_ranks_with_faults(4, plan, |c| {
        // Epoch 0: full world. Rank 3 ships a payload that must survive
        // its upcoming death, then everyone runs a collective round.
        if c.rank() == 3 {
            c.send(0, 9, Payload::U64(vec![33]));
        }
        {
            let sub = c.split(0, c.rank() as u64);
            let mut x = vec![1.0];
            sub.allreduce_f64(ReduceOp::Sum, &mut x);
            assert_eq!(x[0], 4.0);
        }
        // Epoch 1 boundary: the planned death (the panic is absorbed by
        // the harness for planned ranks; Drop poisons the channels).
        if c.rank() == 3 {
            panic!("planned death at the epoch boundary");
        }
        if c.rank() == 0 {
            // (a) Messages sent before the death are preserved...
            let kept = c
                .recv_deadline(3, 9, Duration::from_secs(5))
                .expect("pre-death message must be delivered")
                .into_u64();
            assert_eq!(kept, vec![33]);
            // (b) ...while a receive the dead rank can never satisfy
            // fails fast with the typed error, not the full deadline.
            match c.recv_deadline(3, 10, Duration::from_secs(30)) {
                Err(CommError::RankFailed { rank: 3 }) => {}
                other => panic!("expected RankFailed for rank 3, got {other:?}"),
            }
        }
        // (c) The surviving world regroups explicitly — no collective
        // over the dead rank — and its collectives still work.
        let sub = split_known(c, 1u64 << 32, vec![0, 1, 2]);
        let mut x = vec![1.0];
        sub.allreduce_f64(ReduceOp::Sum, &mut x);
        assert_eq!(x[0], 3.0);
        c.rank()
    });
    assert_eq!(injected.rank_failures, 1);
    assert_eq!(results[3], None, "the dead rank must produce no result");
    assert_eq!(results.iter().flatten().count(), 3);
}

#[test]
#[should_panic(expected = "nested subcommunicator")]
fn nested_split_rejection_still_fires_after_resplit() {
    // Regrouping must always come from the world comm: even after a
    // drop-and-resplit cycle, splitting a live SubComm is rejected.
    let c = SerialComm::new();
    {
        let sub = c.split(0, 0);
        sub.barrier();
    }
    let sub = c.split(1, 0);
    let _ = sub.split(0, 0);
}
