//! Submatrix index sets, dense assembly and result extraction.
//!
//! Step 1 of the method (paper Sec. III-A): for a set of block columns
//! `cols`, the principal submatrix is induced by the union of nonzero block
//! rows of those columns. Step 3 scatters the columns of `f(a)` that
//! originate from `cols` back into the block-sparse result, *retaining the
//! sparsity pattern of the input*.

use std::collections::BTreeMap;

use sm_dbcsr::{BlockedDims, CooPattern};
use sm_linalg::Matrix;

/// Index-set description of one (possibly combined) submatrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmatrixSpec {
    /// The block columns this submatrix is generated from (sorted).
    pub cols: Vec<usize>,
    /// Union of nonzero block rows of those columns (sorted ascending).
    pub rows: Vec<usize>,
    /// Element offset of each entry of `rows` inside the dense submatrix.
    pub row_offsets: Vec<usize>,
    /// Dense dimension of the submatrix.
    pub dim: usize,
}

impl SubmatrixSpec {
    /// Build the spec for a group of block columns.
    ///
    /// # Panics
    /// Panics if `cols` is empty or a column's diagonal block is missing
    /// from the pattern (every orthogonalized Kohn–Sham matrix has nonzero
    /// diagonal blocks).
    pub fn build(pattern: &CooPattern, dims: &BlockedDims, cols: &[usize]) -> Self {
        assert!(
            !cols.is_empty(),
            "submatrix needs at least one block column"
        );
        let mut cols = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        let rows = pattern.rows_in_cols(&cols);
        for &c in &cols {
            assert!(
                rows.binary_search(&c).is_ok(),
                "block column {c} has no diagonal entry; cannot extract its result"
            );
        }
        let mut row_offsets = Vec::with_capacity(rows.len());
        let mut off = 0usize;
        for &r in &rows {
            row_offsets.push(off);
            off += dims.size(r);
        }
        SubmatrixSpec {
            cols,
            rows,
            row_offsets,
            dim: off,
        }
    }

    /// Position of block `b` inside `rows`, if included.
    pub fn position_of(&self, b: usize) -> Option<usize> {
        self.rows.binary_search(&b).ok()
    }

    /// Element offset of block `b` inside the dense submatrix.
    pub fn offset_of(&self, b: usize) -> Option<usize> {
        self.position_of(b).map(|p| self.row_offsets[p])
    }

    /// Estimated floating-point cost of solving this submatrix, the `n³`
    /// model of paper Eq. 14.
    pub fn cost(&self) -> f64 {
        (self.dim as f64).powi(3)
    }

    /// All block coordinates `(br, bc)` of the original matrix that fall
    /// inside this principal submatrix *and* are nonzero in the pattern —
    /// i.e. the blocks that must be transferred to assemble it
    /// (Sec. IV-A3).
    pub fn required_blocks(&self, pattern: &CooPattern) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for &bc in &self.rows {
            for br in pattern.rows_in_col(bc) {
                if self.position_of(br).is_some() {
                    out.push((br, bc));
                }
            }
        }
        out
    }

    /// Dense fraction: nonzero blocks of the submatrix relative to its full
    /// block grid (the block-wise submatrix sparsity of paper Fig. 11).
    pub fn block_fill(&self, pattern: &CooPattern) -> f64 {
        let nb = self.rows.len();
        if nb == 0 {
            return 0.0;
        }
        self.required_blocks(pattern).len() as f64 / (nb * nb) as f64
    }
}

/// Assemble the dense principal submatrix. `block_of(br, bc)` must return
/// the stored block or `None` if zero; all required blocks must be locally
/// available (the transfer plan guarantees this in distributed runs).
pub fn assemble<'a>(
    spec: &SubmatrixSpec,
    pattern: &CooPattern,
    dims: &BlockedDims,
    block_of: impl Fn(usize, usize) -> Option<&'a Matrix>,
) -> Matrix {
    let mut a = Matrix::zeros(spec.dim, spec.dim);
    for (pj, &bc) in spec.rows.iter().enumerate() {
        let col_off = spec.row_offsets[pj];
        for br in pattern.rows_in_col(bc) {
            let Some(pi) = spec.position_of(br) else {
                continue;
            };
            let row_off = spec.row_offsets[pi];
            let Some(blk) = block_of(br, bc) else {
                continue; // structurally present but numerically dropped
            };
            debug_assert_eq!(blk.shape(), (dims.size(br), dims.size(bc)));
            for j in 0..blk.ncols() {
                for i in 0..blk.nrows() {
                    a[(row_off + i, col_off + j)] = blk[(i, j)];
                }
            }
        }
    }
    a
}

/// Extract the result blocks originating from this spec's block columns
/// out of the dense `f(a)`, keyed by `(block_row, block_col)` — only
/// coordinates present in the input pattern are produced (paper
/// Sec. III-A step 3).
pub fn extract_result(
    spec: &SubmatrixSpec,
    pattern: &CooPattern,
    dims: &BlockedDims,
    f_a: &Matrix,
) -> BTreeMap<(usize, usize), Matrix> {
    assert_eq!(f_a.shape(), (spec.dim, spec.dim), "result shape mismatch");
    let mut out = BTreeMap::new();
    for &bc in &spec.cols {
        let col_off = spec
            .offset_of(bc)
            .expect("spec columns are always included in rows");
        for br in pattern.rows_in_col(bc) {
            let Some(pi) = spec.position_of(br) else {
                continue;
            };
            let row_off = spec.row_offsets[pi];
            let mut blk = Matrix::zeros(dims.size(br), dims.size(bc));
            for j in 0..blk.ncols() {
                for i in 0..blk.nrows() {
                    blk[(i, j)] = f_a[(row_off + i, col_off + j)];
                }
            }
            out.insert((br, bc), blk);
        }
    }
    out
}

/// Extract result blocks from a *selected-columns* evaluation: `cols_mat`
/// holds only the contributing columns of `f(a)` — the element columns of
/// the spec's own block columns, in spec order — as produced by
/// `solver::sign_columns_from_decomposition`. Semantically identical to
/// [`extract_result`] on the full `f(a)`, at `O(dim · k)` memory.
pub fn extract_result_from_columns(
    spec: &SubmatrixSpec,
    pattern: &CooPattern,
    dims: &BlockedDims,
    cols_mat: &Matrix,
) -> BTreeMap<(usize, usize), Matrix> {
    let expected_cols: usize = spec.cols.iter().map(|&c| dims.size(c)).sum();
    assert_eq!(
        cols_mat.shape(),
        (spec.dim, expected_cols),
        "selected-columns matrix shape mismatch"
    );
    let mut out = BTreeMap::new();
    let mut base_j = 0usize;
    for &bc in &spec.cols {
        let cs = dims.size(bc);
        for br in pattern.rows_in_col(bc) {
            let Some(pi) = spec.position_of(br) else {
                continue;
            };
            let row_off = spec.row_offsets[pi];
            let mut blk = Matrix::zeros(dims.size(br), cs);
            for j in 0..cs {
                for i in 0..blk.nrows() {
                    blk[(i, j)] = cols_mat[(row_off + i, base_j + j)];
                }
            }
            out.insert((br, bc), blk);
        }
        base_j += cs;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pattern of a 4-block tridiagonal matrix with 2-element blocks.
    fn tridiag_setup() -> (CooPattern, BlockedDims) {
        let mut coords = Vec::new();
        for i in 0..4 {
            coords.push((i, i));
            if i + 1 < 4 {
                coords.push((i, i + 1));
                coords.push((i + 1, i));
            }
        }
        (
            CooPattern::from_coords(coords, 4),
            BlockedDims::uniform(4, 2),
        )
    }

    #[test]
    fn spec_for_single_column() {
        let (p, d) = tridiag_setup();
        let s = SubmatrixSpec::build(&p, &d, &[1]);
        assert_eq!(s.cols, vec![1]);
        assert_eq!(s.rows, vec![0, 1, 2]);
        assert_eq!(s.dim, 6);
        assert_eq!(s.row_offsets, vec![0, 2, 4]);
        assert_eq!(s.offset_of(1), Some(2));
        assert_eq!(s.offset_of(3), None);
    }

    #[test]
    fn spec_for_combined_columns_unions_rows() {
        let (p, d) = tridiag_setup();
        let s = SubmatrixSpec::build(&p, &d, &[1, 2]);
        assert_eq!(s.rows, vec![0, 1, 2, 3]);
        assert_eq!(s.dim, 8);
        // Duplicate columns collapse.
        let s2 = SubmatrixSpec::build(&p, &d, &[2, 1, 1]);
        assert_eq!(s, s2);
    }

    #[test]
    fn edge_column_is_smaller() {
        let (p, d) = tridiag_setup();
        let s = SubmatrixSpec::build(&p, &d, &[0]);
        assert_eq!(s.rows, vec![0, 1]);
        assert_eq!(s.dim, 4);
    }

    #[test]
    fn required_blocks_are_pattern_intersection() {
        let (p, d) = tridiag_setup();
        let s = SubmatrixSpec::build(&p, &d, &[1]);
        let req = s.required_blocks(&p);
        // Principal submatrix on {0,1,2}: tridiagonal coupling inside.
        let expect = vec![(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (1, 2), (2, 2)];
        let mut req_sorted = req.clone();
        req_sorted.sort_unstable();
        let mut expect_sorted = expect;
        expect_sorted.sort_unstable();
        assert_eq!(req_sorted, expect_sorted);
        // (2,0) and (0,2) are zero in the tridiagonal pattern: excluded.
        assert!(!req_sorted.contains(&(2, 0)));
    }

    #[test]
    fn block_fill_of_tridiagonal_window() {
        let (p, d) = tridiag_setup();
        let s = SubmatrixSpec::build(&p, &d, &[1]);
        // 7 of 9 blocks present.
        assert!((s.block_fill(&p) - 7.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn assemble_and_extract_roundtrip() {
        let (p, d) = tridiag_setup();
        // Build a full dense tridiagonal matrix and its block map.
        let n = d.n();
        let dense = Matrix::from_fn(n, n, |i, j| {
            if (i / 2) as isize - (j / 2) as isize == 0
                || ((i / 2) as isize - (j / 2) as isize).abs() == 1
            {
                (i * n + j) as f64 * 0.01 + 1.0
            } else {
                0.0
            }
        });
        let mut blocks: BTreeMap<(usize, usize), Matrix> = BTreeMap::new();
        for &(br, bc) in p.entries() {
            let rows: Vec<usize> = d.range(br).collect();
            let cols: Vec<usize> = d.range(bc).collect();
            blocks.insert((br, bc), dense.submatrix(&rows, &cols));
        }

        let spec = SubmatrixSpec::build(&p, &d, &[1]);
        let a = assemble(&spec, &p, &d, |r, c| blocks.get(&(r, c)));
        // The assembled submatrix equals the dense principal submatrix on
        // element indices 0..6 (blocks 0,1,2) *with zeros where the pattern
        // is zero* — for a tridiagonal window including blocks 0..2 the
        // (0,2)/(2,0) block pairs are zero in both.
        let idx: Vec<usize> = (0..6).collect();
        let expect = dense.principal_submatrix(&idx);
        assert!(a.allclose(&expect, 0.0));

        // Identity function roundtrip: extracting from f(a) = a returns
        // exactly the original blocks of column 1.
        let result = extract_result(&spec, &p, &d, &a);
        assert_eq!(result.len(), 3); // rows 0,1,2 of column 1
        for ((br, bc), blk) in &result {
            assert!(blocks[&(*br, *bc)].allclose(blk, 0.0));
        }
    }

    #[test]
    fn extract_only_requested_columns() {
        let (p, d) = tridiag_setup();
        let spec = SubmatrixSpec::build(&p, &d, &[1, 2]);
        let f_a = Matrix::identity(spec.dim);
        let result = extract_result(&spec, &p, &d, &f_a);
        // Columns 1 and 2 each have 3 pattern rows.
        assert_eq!(result.len(), 6);
        assert!(result.keys().all(|&(_, bc)| bc == 1 || bc == 2));
    }

    #[test]
    fn cost_is_cubic() {
        let (p, d) = tridiag_setup();
        let s = SubmatrixSpec::build(&p, &d, &[1]);
        assert_eq!(s.cost(), 216.0);
    }

    #[test]
    #[should_panic(expected = "at least one block column")]
    fn empty_cols_rejected() {
        let (p, d) = tridiag_setup();
        SubmatrixSpec::build(&p, &d, &[]);
    }

    #[test]
    fn missing_numerical_block_assembles_as_zero() {
        let (p, d) = tridiag_setup();
        let spec = SubmatrixSpec::build(&p, &d, &[0]);
        let a = assemble(&spec, &p, &d, |_, _| None);
        assert!(a.allclose(&Matrix::zeros(4, 4), 0.0));
    }
}

#[cfg(test)]
mod selected_column_extraction_tests {
    use super::*;

    fn tridiag_setup() -> (CooPattern, BlockedDims) {
        let mut coords = Vec::new();
        for i in 0..4 {
            coords.push((i, i));
            if i + 1 < 4 {
                coords.push((i, i + 1));
                coords.push((i + 1, i));
            }
        }
        (
            CooPattern::from_coords(coords, 4),
            BlockedDims::uniform(4, 2),
        )
    }

    #[test]
    fn column_extraction_matches_full_extraction() {
        let (p, d) = tridiag_setup();
        let spec = SubmatrixSpec::build(&p, &d, &[1, 2]);
        // Fake a full f(a) with distinguishable entries.
        let f_a = Matrix::from_fn(spec.dim, spec.dim, |i, j| (i * 100 + j) as f64);
        let full = extract_result(&spec, &p, &d, &f_a);
        // Carve the contributing columns out of f_a manually.
        let mut cols = Vec::new();
        for &bc in &spec.cols {
            let off = spec.offset_of(bc).unwrap();
            for j in 0..d.size(bc) {
                cols.push(off + j);
            }
        }
        let all_rows: Vec<usize> = (0..spec.dim).collect();
        let cols_mat = f_a.submatrix(&all_rows, &cols);
        let from_cols = extract_result_from_columns(&spec, &p, &d, &cols_mat);
        assert_eq!(full.len(), from_cols.len());
        for (coord, blk) in &full {
            assert!(
                from_cols[coord].allclose(blk, 0.0),
                "block {coord:?} differs"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_column_count_panics() {
        let (p, d) = tridiag_setup();
        let spec = SubmatrixSpec::build(&p, &d, &[1]);
        let bad = Matrix::zeros(spec.dim, 5);
        extract_result_from_columns(&spec, &p, &d, &bad);
    }
}
