//! The paper's comparator: sparse Newton–Schulz purification on DBCSR.
//!
//! CP2K's default grand-canonical linear-scaling path evaluates
//! `sign(K̃ − µI)` with the 2nd-order Newton–Schulz iteration (Eq. 11)
//! directly on the distributed block-sparse matrix, filtering small blocks
//! after every multiplication (`eps_filter` controls both sparsity and the
//! convergence threshold, Sec. V-A). Sparse Löwdin orthogonalization via
//! the coupled Newton–Schulz inverse square root lives here too.

use sm_comsim::Comm;
use sm_dbcsr::multiply::{multiply, MultiplyStats};
use sm_dbcsr::ops;
use sm_dbcsr::DbcsrMatrix;

/// Options of the sparse Newton–Schulz sign iteration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonSchulzOptions {
    /// Block filter threshold applied after every multiplication; also
    /// sets the convergence criterion (as in CP2K).
    pub eps_filter: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for NewtonSchulzOptions {
    fn default() -> Self {
        NewtonSchulzOptions {
            eps_filter: 1e-7,
            max_iter: 100,
        }
    }
}

/// Instrumentation of a sparse iteration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparseIterationReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the convergence criterion was met.
    pub converged: bool,
    /// Accumulated multiplication statistics (this rank).
    pub multiply: MultiplyStats,
    /// Final residual `‖X² − I‖_F / √n`.
    pub residual: f64,
}

/// Sparse Newton–Schulz evaluation of `sign(K̃ − µI)` (collective).
///
/// The iterate is pre-scaled by a Frobenius-norm bound so the iteration
/// starts inside its convergence region.
pub fn newton_schulz_sign<C: Comm>(
    k_tilde: &DbcsrMatrix,
    mu: f64,
    opts: &NewtonSchulzOptions,
    comm: &C,
) -> (DbcsrMatrix, SparseIterationReport) {
    let n = k_tilde.n();
    let sqrt_n = (n.max(1) as f64).sqrt();

    let mut x = k_tilde.clone();
    ops::shift_diag(&mut x, -mu);
    let bound = ops::fro_norm(&x, comm);
    if bound > 0.0 {
        ops::scale(&mut x, 1.0 / bound);
    }

    let mut report = SparseIterationReport::default();
    // Convergence threshold tied to eps_filter (CP2K semantics): iterate
    // until the involutority residual falls below it.
    let tol = opts.eps_filter.max(1e-14);

    for it in 0..opts.max_iter {
        report.iterations = it + 1;
        // Y = X² (filtered).
        let (y, s1) = multiply(&x, &x, comm, Some(opts.eps_filter))
            .expect("newton_schulz_sign: operands share partition and grid");
        report.multiply.merge(&s1);
        // residual = ‖Y − I‖_F / √n.
        let mut resid_m = y.clone();
        ops::shift_diag(&mut resid_m, -1.0);
        let residual = ops::fro_norm(&resid_m, comm) / sqrt_n;
        report.residual = residual;
        if residual <= tol {
            report.converged = true;
            break;
        }
        // X ← ½ X (3I − Y)
        let mut z = y;
        ops::scale(&mut z, -1.0);
        ops::shift_diag(&mut z, 3.0);
        let (xz, s2) = multiply(&x, &z, comm, Some(opts.eps_filter))
            .expect("newton_schulz_sign: operands share partition and grid");
        report.multiply.merge(&s2);
        x = xz;
        ops::scale(&mut x, 0.5);
    }

    (x, report)
}

/// Sparse density matrix via Newton–Schulz purification (collective):
/// `D̃ = (I − sign(K̃ − µI)) / 2`.
pub fn newton_schulz_density<C: Comm>(
    k_tilde: &DbcsrMatrix,
    mu: f64,
    opts: &NewtonSchulzOptions,
    comm: &C,
) -> (DbcsrMatrix, SparseIterationReport) {
    let (mut sign, report) = newton_schulz_sign(k_tilde, mu, opts, comm);
    ops::scale(&mut sign, -0.5);
    ops::shift_diag(&mut sign, 0.5);
    (sign, report)
}

/// Sparse Löwdin orthogonalization: `K̃ = S^{-1/2} K S^{-1/2}` with the
/// inverse square root from the coupled Newton–Schulz iteration (collective).
/// Returns `(K̃, S^{-1/2}, report)`.
pub fn orthogonalize_sparse<C: Comm>(
    s: &DbcsrMatrix,
    k: &DbcsrMatrix,
    opts: &NewtonSchulzOptions,
    comm: &C,
) -> (DbcsrMatrix, DbcsrMatrix, SparseIterationReport) {
    let n = s.n();
    let sqrt_n = (n.max(1) as f64).sqrt();
    let theta = ops::fro_norm(s, comm).max(f64::MIN_POSITIVE);

    // Y ← S/θ, Z ← I.
    let mut y = s.clone();
    ops::scale(&mut y, 1.0 / theta);
    let mut z = DbcsrMatrix::identity(s.dims().clone(), s.rank(), comm.size());

    let mut report = SparseIterationReport::default();
    let tol = opts.eps_filter.max(1e-14);
    for it in 0..opts.max_iter {
        report.iterations = it + 1;
        // T = (3I − Z Y)/2
        let (zy, s1) = multiply(&z, &y, comm, Some(opts.eps_filter))
            .expect("orthogonalize_sparse: operands share partition and grid");
        report.multiply.merge(&s1);
        let mut t = zy.clone();
        ops::scale(&mut t, -0.5);
        ops::shift_diag(&mut t, 1.5);
        // Convergence: ‖Z Y − I‖_F/√n.
        let mut resid_m = zy;
        ops::shift_diag(&mut resid_m, -1.0);
        let residual = ops::fro_norm(&resid_m, comm) / sqrt_n;
        report.residual = residual;
        if residual <= tol {
            report.converged = true;
            break;
        }
        let (y2, s2) = multiply(&y, &t, comm, Some(opts.eps_filter))
            .expect("orthogonalize_sparse: operands share partition and grid");
        report.multiply.merge(&s2);
        let (z2, s3) = multiply(&t, &z, comm, Some(opts.eps_filter))
            .expect("orthogonalize_sparse: operands share partition and grid");
        report.multiply.merge(&s3);
        y = y2;
        z = z2;
    }

    // S^{-1/2} = Z / √θ.
    ops::scale(&mut z, 1.0 / theta.sqrt());
    // K̃ = Z K Z.
    let (zk, s4) = multiply(&z, k, comm, Some(opts.eps_filter))
        .expect("orthogonalize_sparse: operands share partition and grid");
    report.multiply.merge(&s4);
    let (kt, s5) = multiply(&zk, &z, comm, Some(opts.eps_filter))
        .expect("orthogonalize_sparse: operands share partition and grid");
    report.multiply.merge(&s5);
    (kt, z, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_comsim::{run_ranks, SerialComm};
    use sm_dbcsr::BlockedDims;
    use sm_linalg::sign::sign_eig;
    use sm_linalg::Matrix;

    fn banded_gapped(nb: usize, bs: usize) -> (Matrix, BlockedDims) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                if i % 2 == 0 {
                    1.2
                } else {
                    -1.2
                }
            } else {
                0.08 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        (dense, dims)
    }

    #[test]
    fn sparse_sign_matches_dense() {
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let opts = NewtonSchulzOptions {
            eps_filter: 1e-10,
            max_iter: 100,
        };
        let (sign, report) = newton_schulz_sign(&m, 0.0, &opts, &comm);
        assert!(report.converged, "NS did not converge");
        let expect = sign_eig(&dense).unwrap();
        let got = sign.to_dense(&comm);
        assert!(
            got.allclose(&expect, 1e-6),
            "max diff {}",
            got.max_abs_diff(&expect)
        );
        assert!(report.multiply.local_flops > 0);
    }

    #[test]
    fn filtering_trades_accuracy_for_sparsity() {
        let (dense, dims) = banded_gapped(12, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let tight = newton_schulz_sign(
            &m,
            0.0,
            &NewtonSchulzOptions {
                eps_filter: 1e-11,
                max_iter: 100,
            },
            &comm,
        );
        let loose = newton_schulz_sign(
            &m,
            0.0,
            &NewtonSchulzOptions {
                eps_filter: 1e-3,
                max_iter: 100,
            },
            &comm,
        );
        // Looser filter ⇒ no more stored blocks than the tight run.
        assert!(loose.0.local_nnz_blocks() <= tight.0.local_nnz_blocks());
        // And no more flops.
        assert!(loose.1.multiply.local_flops <= tight.1.multiply.local_flops);
    }

    #[test]
    fn density_from_ns_is_projector_like() {
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let (d, _) = newton_schulz_density(
            &m,
            0.0,
            &NewtonSchulzOptions {
                eps_filter: 1e-10,
                max_iter: 100,
            },
            &comm,
        );
        let dd = d.to_dense(&comm);
        let eigs = sm_linalg::eigh::eigvalsh(&dd).unwrap();
        for e in eigs {
            assert!(
                (-1e-5..=1.0 + 1e-5).contains(&e),
                "eigenvalue {e} outside [0,1]"
            );
        }
        // Half the states occupied for the symmetric spectrum.
        assert!((dd.trace() - 8.0).abs() < 1e-4);
    }

    #[test]
    fn distributed_ns_matches_serial() {
        let (dense, dims) = banded_gapped(6, 2);
        let comm = SerialComm::new();
        let opts = NewtonSchulzOptions {
            eps_filter: 1e-9,
            max_iter: 100,
        };
        let serial = {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            newton_schulz_sign(&m, 0.0, &opts, &comm).0.to_dense(&comm)
        };
        let (results, _) = run_ranks(4, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            newton_schulz_sign(&m, 0.0, &opts, c).0.to_dense(c)
        });
        for r in results {
            assert!(r.allclose(&serial, 1e-10));
        }
    }

    #[test]
    fn sparse_lowdin_matches_dense() {
        // SPD banded S, symmetric K.
        let dims = BlockedDims::uniform(6, 2);
        let n = dims.n();
        let mut s = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if (i as isize - j as isize).abs() <= 2 {
                0.08
            } else {
                0.0
            }
        });
        s.symmetrize();
        let (k, _) = banded_gapped(6, 2);
        let comm = SerialComm::new();
        let s_sparse = DbcsrMatrix::from_dense(&s, dims.clone(), 0, 1, 0.0);
        let k_sparse = DbcsrMatrix::from_dense(&k, dims, 0, 1, 0.0);
        let opts = NewtonSchulzOptions {
            eps_filter: 1e-12,
            max_iter: 100,
        };
        let (kt, w, report) = orthogonalize_sparse(&s_sparse, &k_sparse, &opts, &comm);
        assert!(report.converged);
        // Dense reference.
        let w_ref = sm_linalg::roots::inv_sqrt_eig(&s).unwrap();
        assert!(w.to_dense(&comm).allclose(&w_ref, 1e-7));
        let kt_ref = {
            let t = sm_linalg::gemm::matmul(&w_ref, &k).unwrap();
            sm_linalg::gemm::matmul(&t, &w_ref).unwrap()
        };
        assert!(kt.to_dense(&comm).allclose(&kt_ref, 1e-6));
    }

    #[test]
    fn iteration_budget_reported_when_not_converged() {
        let (dense, dims) = banded_gapped(4, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let (_, report) = newton_schulz_sign(
            &m,
            0.0,
            &NewtonSchulzOptions {
                eps_filter: 1e-15,
                max_iter: 2,
            },
            &comm,
        );
        assert!(!report.converged);
        assert_eq!(report.iterations, 2);
    }
}
