//! Multilevel k-way graph partitioning of the sparsity pattern.
//!
//! The paper's second combination heuristic (Sec. IV-C2) partitions the
//! graph whose nodes are block columns and whose edges mark nonzero
//! coupling blocks, using METIS' multilevel k-way scheme. This module
//! reimplements the quality core as recursive bisection: BFS-grown compact
//! halves, Fiduccia–Mattheyses boundary refinement per bisection, and a
//! final k-way boundary-refinement sweep — minimizing edge cut under a
//! balance constraint, like METIS' default objective.

use sm_dbcsr::CooPattern;

use super::XorShift;

/// Undirected weighted graph in CSR adjacency form.
#[derive(Debug, Clone)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
    adjwgt: Vec<f64>,
    vwgt: Vec<f64>,
}

impl Graph {
    /// Build from explicit (deduplicated, symmetric) edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)], vwgt: Vec<f64>) -> Self {
        assert_eq!(vwgt.len(), n);
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            assert!(u < n && v < n && u != v, "invalid edge ({u},{v})");
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0);
        for mut list in adj {
            list.sort_by_key(|&(v, _)| v);
            for (v, w) in list {
                adjncy.push(v);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len());
        }
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Build the block-column graph of a sparsity pattern: one vertex per
    /// block column, an edge `(r, c)` for every off-diagonal nonzero block
    /// (unit weights — the paper's graph is unweighted).
    pub fn from_pattern(pattern: &CooPattern) -> Self {
        let n = pattern.nb();
        let mut edges = Vec::new();
        for &(r, c) in pattern.entries() {
            if r < c {
                edges.push((r, c, 1.0));
            }
        }
        Graph::from_edges(n, &edges, vec![1.0; n])
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adjncy[self.xadj[u]..self.xadj[u + 1]]
            .iter()
            .copied()
            .zip(self.adjwgt[self.xadj[u]..self.xadj[u + 1]].iter().copied())
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Edge cut of a partition.
    pub fn edge_cut(&self, part: &[usize]) -> f64 {
        let mut cut = 0.0;
        for u in 0..self.n() {
            for (v, w) in self.neighbors(u) {
                if u < v && part[u] != part[v] {
                    cut += w;
                }
            }
        }
        cut
    }
}

/// Options for the partitioner.
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// Allowed imbalance: max part weight ≤ `balance · total/k`.
    pub balance: f64,
    /// Legacy multilevel knob (kept for API stability); the recursive
    /// bisection scheme does not coarsen.
    pub coarsen_to: usize,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            balance: 1.10,
            coarsen_to: 256,
            refine_passes: 10,
            seed: 1,
        }
    }
}

/// Multilevel k-way partition via recursive bisection: split the vertex
/// set into two weight-proportional halves with a BFS-grown, FM-refined
/// bisection, then recurse. Recursive bisection with compact (ball-shaped)
/// halves is what keeps the column unions small under the n³ cost model.
pub fn partition_kway(g: &Graph, k: usize, opts: &PartitionOptions) -> Vec<usize> {
    assert!(k >= 1);
    if k == 1 {
        return vec![0; g.n()];
    }
    if g.n() <= k {
        return (0..g.n()).map(|v| v % k).collect();
    }
    let mut rng = XorShift::new(opts.seed);
    let mut part = vec![0usize; g.n()];
    let all: Vec<usize> = (0..g.n()).collect();
    recursive_bisect(g, &all, k, 0, &mut part, opts, &mut rng);
    // Final k-way boundary sweep across bisection seams.
    refine_fm(g, k, &mut part, opts);
    part
}

/// Recursively bisect `verts` (global indices into `g`) into `k` parts with
/// ids `base..base + k`.
fn recursive_bisect(
    g: &Graph,
    verts: &[usize],
    k: usize,
    base: usize,
    part: &mut [usize],
    opts: &PartitionOptions,
    rng: &mut XorShift,
) {
    if k == 1 || verts.len() <= 1 {
        for &v in verts {
            part[v] = base;
        }
        return;
    }
    let k1 = k / 2;
    let k2 = k - k1;
    let frac = k1 as f64 / k as f64;
    let (sub, to_global) = induced_subgraph(g, verts);
    let side = bisect(&sub, frac, opts, rng);
    let mut left = Vec::with_capacity(verts.len());
    let mut right = Vec::with_capacity(verts.len());
    for (local, &global) in to_global.iter().enumerate() {
        if side[local] {
            left.push(global);
        } else {
            right.push(global);
        }
    }
    // Degenerate splits (can happen on disconnected shards): fall back to a
    // plain size split to guarantee progress.
    if left.is_empty() || right.is_empty() {
        let cut = (verts.len() as f64 * frac).round() as usize;
        left = verts[..cut.max(1).min(verts.len() - 1)].to_vec();
        right = verts[left.len()..].to_vec();
    }
    recursive_bisect(g, &left, k1, base, part, opts, rng);
    recursive_bisect(g, &right, k2, base + k1, part, opts, rng);
}

/// Induced subgraph on a vertex subset; returns the subgraph and the
/// local→global index map.
fn induced_subgraph(g: &Graph, verts: &[usize]) -> (Graph, Vec<usize>) {
    let mut local_of = std::collections::HashMap::with_capacity(verts.len());
    for (l, &v) in verts.iter().enumerate() {
        local_of.insert(v, l);
    }
    let mut edges = Vec::new();
    let mut vwgt = Vec::with_capacity(verts.len());
    for (lu, &u) in verts.iter().enumerate() {
        vwgt.push(g.vwgt[u]);
        for (v, w) in g.neighbors(u) {
            if let Some(&lv) = local_of.get(&v) {
                if lu < lv {
                    edges.push((lu, lv, w));
                }
            }
        }
    }
    (Graph::from_edges(verts.len(), &edges, vwgt), verts.to_vec())
}

/// Bisect a graph into a side of target weight `frac·total` (true) and the
/// remainder (false): several BFS-region starts, boundary-FM refinement,
/// keep the best cut.
fn bisect(g: &Graph, frac: f64, opts: &PartitionOptions, rng: &mut XorShift) -> Vec<bool> {
    let n = g.n();
    let total = g.total_vwgt();
    let target = frac * total;
    let restarts = 4usize;
    let mut best: Option<(f64, Vec<bool>)> = None;
    for _ in 0..restarts {
        let mut side = vec![false; n];
        // Grow a compact BFS ball from a random seed until the target
        // weight is reached.
        let seed = rng.next_below(n);
        let mut weight = 0.0;
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; n];
        queue.push_back(seed);
        seen[seed] = true;
        while let Some(v) = queue.pop_front() {
            if weight >= target {
                break;
            }
            side[v] = true;
            weight += g.vwgt[v];
            for (u, _) in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        // Disconnected leftovers: fill from unvisited vertices if the ball
        // exhausted its component early.
        if weight < target {
            #[allow(clippy::needless_range_loop)] // reads and writes side[v]
            for v in 0..n {
                if weight >= target {
                    break;
                }
                if !side[v] {
                    side[v] = true;
                    weight += g.vwgt[v];
                }
            }
        }
        refine_bisection(g, &mut side, target, opts);
        let cut = cut_of_bisection(g, &side);
        if best.as_ref().is_none_or(|(c, _)| cut < *c) {
            best = Some((cut, side));
        }
    }
    best.expect("restarts >= 1").1
}

fn cut_of_bisection(g: &Graph, side: &[bool]) -> f64 {
    let mut cut = 0.0;
    for u in 0..g.n() {
        for (v, w) in g.neighbors(u) {
            if u < v && side[u] != side[v] {
                cut += w;
            }
        }
    }
    cut
}

/// FM-style refinement of a bisection: greedily move boundary vertices to
/// the other side when the cut gain is positive and the weight stays within
/// the balance tolerance of the target split.
#[allow(clippy::needless_range_loop)] // vertex sweep needs the index for neighbors()
fn refine_bisection(g: &Graph, side: &mut [bool], target: f64, opts: &PartitionOptions) {
    let n = g.n();
    let total = g.total_vwgt();
    let tol = (opts.balance - 1.0).max(0.01) * total;
    let mut w_true: f64 = (0..n).filter(|&v| side[v]).map(|v| g.vwgt[v]).sum();
    for _ in 0..opts.refine_passes {
        let mut improved = false;
        #[allow(clippy::needless_range_loop)] // vertex sweep reads and writes side[v]
        for v in 0..n {
            let mut internal = 0.0;
            let mut external = 0.0;
            for (u, w) in g.neighbors(v) {
                if side[u] == side[v] {
                    internal += w;
                } else {
                    external += w;
                }
            }
            let gain = external - internal;
            if gain <= 0.0 {
                continue;
            }
            let new_w_true = if side[v] {
                w_true - g.vwgt[v]
            } else {
                w_true + g.vwgt[v]
            };
            if (new_w_true - target).abs() <= tol {
                side[v] = !side[v];
                w_true = new_w_true;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Boundary FM refinement: greedily move boundary vertices to the neighbor
/// part with the largest positive cut gain, respecting the balance bound.
fn refine_fm(g: &Graph, k: usize, part: &mut [usize], opts: &PartitionOptions) {
    let n = g.n();
    let max_weight = opts.balance * g.total_vwgt() / k as f64;
    let mut weights = vec![0.0f64; k];
    for v in 0..n {
        weights[part[v]] += g.vwgt[v];
    }
    for _ in 0..opts.refine_passes {
        let mut improved = false;
        for v in 0..n {
            let home = part[v];
            // Connectivity of v to each part.
            let mut conn = vec![0.0f64; k];
            for (u, w) in g.neighbors(v) {
                conn[part[u]] += w;
            }
            let mut best_part = home;
            let mut best_gain = 0.0;
            for p in 0..k {
                if p == home {
                    continue;
                }
                let gain = conn[p] - conn[home];
                if gain > best_gain && weights[p] + g.vwgt[v] <= max_weight {
                    best_gain = gain;
                    best_part = p;
                }
            }
            if best_part != home {
                weights[home] -= g.vwgt[v];
                weights[best_part] += g.vwgt[v];
                part[v] = best_part;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques joined by one weak edge: the canonical partition test.
    fn two_cliques(size: usize) -> Graph {
        let mut edges = Vec::new();
        for a in 0..size {
            for b in (a + 1)..size {
                edges.push((a, b, 1.0));
                edges.push((size + a, size + b, 1.0));
            }
        }
        edges.push((0, size, 0.01)); // weak bridge
        Graph::from_edges(2 * size, &edges, vec![1.0; 2 * size])
    }

    #[test]
    fn bipartition_cuts_the_bridge() {
        let g = two_cliques(8);
        let part = partition_kway(&g, 2, &PartitionOptions::default());
        // Each clique entirely in one part.
        for v in 1..8 {
            assert_eq!(part[v], part[0], "first clique split");
        }
        for v in 9..16 {
            assert_eq!(part[v], part[8], "second clique split");
        }
        assert_ne!(part[0], part[8]);
        assert!((g.edge_cut(&part) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn partition_is_balanced() {
        // Ring of 64 vertices into 4 parts: each part 14..=18 vertices.
        let edges: Vec<(usize, usize, f64)> = (0..64).map(|i| (i, (i + 1) % 64, 1.0)).collect();
        let g = Graph::from_edges(64, &edges, vec![1.0; 64]);
        let part = partition_kway(&g, 4, &PartitionOptions::default());
        let mut counts = [0usize; 4];
        for &p in &part {
            counts[p] += 1;
        }
        for &c in &counts {
            assert!((8..=24).contains(&c), "part sizes {counts:?} too skewed");
        }
    }

    #[test]
    fn banded_pattern_partitions_contiguously_enough() {
        // A 1-D banded pattern behaves like a path graph: a good k-way cut
        // has ~k-1 cut regions, far below a random partition's cut.
        let mut coords = Vec::new();
        let nb: usize = 60;
        for i in 0..nb {
            for j in i.saturating_sub(2)..(i + 3).min(nb) {
                coords.push((i, j));
            }
        }
        let p = CooPattern::from_coords(coords, nb);
        let g = Graph::from_pattern(&p);
        let part = partition_kway(&g, 6, &PartitionOptions::default());
        let cut = g.edge_cut(&part);
        // Random assignment cut for comparison.
        let random: Vec<usize> = (0..nb).map(|i| (i * 7 + 3) % 6).collect();
        let random_cut = g.edge_cut(&random);
        assert!(
            cut < random_cut / 2.0,
            "partitioner cut {cut} should beat random {random_cut}"
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = two_cliques(4);
        // First clique: vertices 0..4.
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.n(), 4);
        assert_eq!(map, vec![0, 1, 2, 3]);
        // Complete K4: each vertex has 3 neighbors; the weak bridge to the
        // other clique is gone.
        for v in 0..4 {
            assert_eq!(sub.neighbors(v).count(), 3);
        }
    }

    #[test]
    fn bisection_of_two_cliques_is_clean() {
        let g = two_cliques(8);
        let mut rng = XorShift::new(5);
        let side = bisect(&g, 0.5, &PartitionOptions::default(), &mut rng);
        let left: usize = side.iter().filter(|&&s| s).count();
        assert_eq!(left, 8, "halves must balance");
        // All of one clique on one side.
        for v in 1..8 {
            assert_eq!(side[v], side[0]);
        }
    }

    #[test]
    fn k_one_puts_everything_together() {
        let g = two_cliques(4);
        let part = partition_kway(&g, 1, &PartitionOptions::default());
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn tiny_graph_with_k_equal_n() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)], vec![1.0; 3]);
        let part = partition_kway(&g, 3, &PartitionOptions::default());
        assert_eq!(part.len(), 3);
        assert!(part.iter().all(|&p| p < 3));
    }

    #[test]
    fn deterministic_for_seed() {
        let g = two_cliques(12);
        let o = PartitionOptions {
            seed: 9,
            ..Default::default()
        };
        assert_eq!(partition_kway(&g, 3, &o), partition_kway(&g, 3, &o));
    }

    #[test]
    fn pattern_graph_has_no_self_edges() {
        let p = CooPattern::from_coords(vec![(0, 0), (1, 1), (0, 1), (1, 0)], 2);
        let g = Graph::from_pattern(&p);
        assert_eq!(g.n(), 2);
        let nbrs: Vec<usize> = g.neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![1]);
    }
}
