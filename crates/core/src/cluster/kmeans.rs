//! Lloyd's k-means with k-means++ seeding.
//!
//! Clusters molecule centers in real space to pick block columns worth
//! combining (paper Sec. IV-C2, Fig. 5's "k-means in real-space" series —
//! the paper uses scikit-learn 0.23.1; this is a faithful reimplementation
//! of the same algorithm). As in the paper, periodicity of the cell is
//! deliberately ignored.

use super::XorShift;

/// Result of one k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id of every point.
    pub assignment: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<[f64; 3]>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// k-means++ seeding: first centroid uniform, then points weighted by the
/// squared distance to their nearest already-chosen centroid.
fn seed_centroids(points: &[[f64; 3]], k: usize, rng: &mut XorShift) -> Vec<[f64; 3]> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.next_below(points.len())]);
    let mut d2: Vec<f64> = points.iter().map(|&p| dist2(p, centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.next_below(points.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
                idx = i;
            }
            idx
        };
        let c = points[pick];
        centroids.push(c);
        for (i, &p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, c));
        }
    }
    centroids
}

/// Run k-means. Deterministic for a fixed `seed`. Empty clusters are
/// repaired by stealing the point farthest from its centroid.
pub fn kmeans(points: &[[f64; 3]], k: usize, seed: u64, max_iter: usize) -> KMeansResult {
    assert!(k >= 1 && k <= points.len(), "need 1 <= k <= n points");
    let mut rng = XorShift::new(seed);
    let mut centroids = seed_centroids(points, k, &mut rng);
    let mut assignment = vec![0usize; points.len()];

    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, &p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, &centroid) in centroids.iter().enumerate() {
                let d = dist2(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }

        // Update step.
        let mut sums = vec![[0.0f64; 3]; k];
        let mut counts = vec![0usize; k];
        for (i, &p) in points.iter().enumerate() {
            let c = assignment[i];
            sums[c][0] += p[0];
            sums[c][1] += p[1];
            sums[c][2] += p[2];
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Repair: move the centroid onto the globally farthest point.
                let (far_i, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i, dist2(p, centroids[assignment[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                    .expect("nonempty points");
                centroids[c] = points[far_i];
                assignment[far_i] = c;
                changed = true;
            } else {
                centroids[c] = [
                    sums[c][0] / counts[c] as f64,
                    sums[c][1] / counts[c] as f64,
                    sums[c][2] / counts[c] as f64,
                ];
            }
        }

        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, &p)| dist2(p, centroids[assignment[i]]))
        .sum();

    KMeansResult {
        assignment,
        centroids,
        iterations,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<[f64; 3]> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let t = i as f64 * 0.05;
            pts.push([t, t * 0.5, 0.0]);
            pts.push([10.0 + t, 10.0 - t, 1.0]);
        }
        pts
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 1, 100);
        // All even indices together, all odd together.
        let c0 = r.assignment[0];
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(r.assignment[i], c0);
        }
        let c1 = r.assignment[1];
        assert_ne!(c0, c1);
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(r.assignment[i], c1);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 3, 7, 100);
        let b = kmeans(&pts, 3, 7, 100);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts: Vec<[f64; 3]> = (0..6).map(|i| [i as f64 * 3.0, 0.0, 0.0]).collect();
        let r = kmeans(&pts, 6, 3, 100);
        assert!(r.inertia < 1e-20);
        // All clusters distinct.
        let mut seen = r.assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![[0.0, 0.0, 0.0], [2.0, 4.0, 6.0]];
        let r = kmeans(&pts, 1, 5, 100);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((r.centroids[0][1] - 2.0).abs() < 1e-12);
        assert!((r.centroids[0][2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = two_blobs();
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4, 8] {
            let r = kmeans(&pts, k, 11, 200);
            assert!(
                r.inertia <= prev * 1.2,
                "inertia should trend down with k: k={k} inertia={}",
                r.inertia
            );
            prev = prev.min(r.inertia);
        }
    }

    #[test]
    #[should_panic(expected = "need 1 <= k")]
    fn invalid_k_rejected() {
        kmeans(&[[0.0; 3]], 2, 1, 10);
    }
}
