//! Block-column combination heuristics (paper Sec. IV-C2).
//!
//! Two independent signals tell us which block columns to combine into one
//! submatrix:
//!
//! * **real-space positions** of the molecules behind the columns —
//!   clustered with [`kmeans`] (the paper uses scikit-learn's k-means);
//! * **the sparsity-pattern graph** — block columns as vertices, an edge
//!   wherever the coupling block is nonzero — partitioned with the
//!   multilevel k-way scheme in [`graph`] (the paper uses METIS).
//!
//! Fig. 5 shows both produce similar estimated speedups; the
//! `fig05_clustering_speedup` bench regenerates that comparison.

pub mod graph;
pub mod kmeans;

/// Convert a per-item cluster assignment into explicit groups (clusters in
/// index order, members ascending). Empty clusters are dropped.
pub fn groups_from_assignment(assignment: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); k];
    for (item, &c) in assignment.iter().enumerate() {
        assert!(c < k, "cluster id {c} out of range");
        groups[c].push(item);
    }
    groups.retain(|g| !g.is_empty());
    groups
}

/// Tiny deterministic PRNG (xorshift64*) so clustering stays reproducible
/// without external dependencies.
#[derive(Debug, Clone)]
pub(crate) struct XorShift {
    state: u64,
}

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift {
            state: seed.wrapping_mul(2685821657736338717).max(1),
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform float in [0, 1).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, n).
    pub(crate) fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_from_assignment_splits() {
        let groups = groups_from_assignment(&[0, 1, 0, 2, 1], 3);
        assert_eq!(groups, vec![vec![0, 2], vec![1, 4], vec![3]]);
    }

    #[test]
    fn empty_clusters_dropped() {
        let groups = groups_from_assignment(&[2, 2, 2], 4);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cluster_panics() {
        groups_from_assignment(&[5], 3);
    }

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
        // floats land in [0,1)
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut r = XorShift::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }
}
