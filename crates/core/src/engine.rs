//! The persistent submatrix engine: symbolic/numeric phase split with plan
//! caching.
//!
//! The one-shot drivers in [`crate::method`] redo the entire symbolic
//! pipeline — global pattern, column grouping, load balancing, deduplicated
//! transfer planning, assembly index computation — on every call. In the
//! paper's target workload (SCF iterations inside CP2K, Sec. IV) the
//! sparsity pattern is *fixed* across iterations while matrix values
//! change, so all of that work can be hoisted into a one-time **symbolic
//! phase** whose product, an [`ExecutionPlan`], is cached under a cheap
//! [pattern fingerprint](sm_dbcsr::wire::PatternFingerprint) and replayed
//! by an allocation-light **numeric phase**:
//!
//! * **symbolic** (`plan*`): `SubmatrixPlan` → greedy `n³` load balance →
//!   [`RankTransferPlan`] → flat assembly/extraction index maps. Purely
//!   local given the global pattern; collective only for obtaining the
//!   pattern itself on a cache miss.
//! * **numeric** (`execute*`): gather values along the cached transfer
//!   plan, assemble through the cached index maps, solve with any
//!   [`SignMethod`], bisect µ on the stored decompositions for canonical
//!   ensembles, scatter results. No pattern queries, no re-planning.
//!
//! The engine is an SPMD object like [`DbcsrMatrix`]: every rank calls the
//! same methods collectively. Plans are cached per `(fingerprint, rank,
//! size, grouping)`, so one engine instance may be shared between
//! rank-per-thread executors.
//!
//! **Precision is numeric-phase-only.** [`NumericOptions::precision`]
//! selects the solve kernels' scalar type and the wire encoding of
//! gathered/scattered block values (`f32` payloads move half the bytes),
//! but it deliberately does **not** appear in the pattern fingerprint, the
//! plan-cache key, or any symbolic decision: precision changes *values*,
//! never *patterns*, so one cached plan serves every precision — and the
//! collective hit/miss consensus below stays precision-blind (two groups
//! running the same pattern at different precisions must still agree on
//! hit/miss, or they would deadlock in the pattern gather).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rayon::prelude::*;

use sm_comsim::Comm;
use sm_dbcsr::wire::{PatternFingerprint, ValueFormat};
use sm_dbcsr::{ops, wire, BlockedDims, CooPattern, DbcsrMatrix};
use sm_linalg::{Matrix, Precision};

use crate::assembly::SubmatrixSpec;
use crate::loadbalance::greedy_contiguous;
use crate::mu::{adjust_mu, contributing_rows, StoredDecomposition};
use crate::plan::SubmatrixPlan;
use crate::solver::{
    sign_columns_from_decomposition, sign_from_decomposition, solve_sign, SignMethod, SolveBackend,
    SolveOptions, SolveResult,
};
use crate::transfers::{RankTransferPlan, TransferStats};

/// How block columns are grouped into submatrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// One submatrix per block column (the method's default).
    OnePerColumn,
    /// Combine runs of this many consecutive block columns (the
    /// evaluation's greedy heuristic).
    Consecutive(usize),
    /// Explicit column groups (from the clustering heuristics).
    Explicit(Vec<Vec<usize>>),
}

impl Grouping {
    /// Stable hash of the grouping, mixed into plan-cache keys.
    fn cache_tag(&self) -> u64 {
        use sm_dbcsr::wire::mix64 as mix;
        match self {
            Grouping::OnePerColumn => mix(1),
            Grouping::Consecutive(g) => mix(2 ^ ((*g as u64) << 8)),
            Grouping::Explicit(groups) => {
                let mut h = mix(3);
                for g in groups {
                    h = mix(h ^ (g.len() as u64) << 32);
                    for &c in g {
                        h = mix(h ^ c as u64);
                    }
                }
                h
            }
        }
    }
}

/// Statistical ensemble of the density-matrix computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ensemble {
    /// Fixed chemical potential (paper's evaluation mode, Sec. V).
    GrandCanonical,
    /// Fixed electron count: µ adjusted by Algorithm 1. Requires the
    /// diagonalization solver.
    Canonical {
        /// Target electron count (closed shell: 2 per occupied orbital).
        n_electrons: f64,
        /// Electron-count tolerance.
        tol: f64,
        /// Bisection budget.
        max_iter: usize,
    },
}

/// Symbolic-phase configuration: everything that shapes an
/// [`ExecutionPlan`]. Numeric knobs live in [`NumericOptions`] so one plan
/// serves every solver and ensemble.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Column grouping strategy.
    pub grouping: Grouping,
    /// Solve local submatrices in parallel over the shared pool.
    pub parallel: bool,
    /// Plan-cache capacity in *entries* (plans), evicted least-recently-
    /// used by `(fingerprint, rank, size)` key. `None` (the default) keeps
    /// every plan, the historical behavior. Note that plans are per-rank:
    /// a pattern evaluated by a `size`-rank communicator occupies `size`
    /// entries, so long-running multi-tenant services should budget
    /// `capacity ≥ live_patterns × world_size`. `Some(0)` disables caching
    /// entirely (every call replans; nothing is retained).
    pub plan_cache_capacity: Option<usize>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            grouping: Grouping::OnePerColumn,
            parallel: true,
            plan_cache_capacity: None,
        }
    }
}

/// Element-fill fraction below which [`BackendPolicy::Auto`] routes
/// iterative solves through the sparse CSR backend. Paper Sec. V-C: DZVP
/// submatrices are block-dense but element-wise < 20% full, which is where
/// filtered Gustavson multiplication beats the dense kernels.
pub const SPARSE_FILL_THRESHOLD: f64 = 0.2;

/// Engine-level solve-backend selection, resolved per execution against
/// the plan's element fill. Numeric-phase-only, exactly like
/// [`Precision`]: the policy and the resolved backend never enter pattern
/// fingerprints, plan-cache keys, or any symbolic decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendPolicy {
    /// Choose from the element fill the symbolic phase computed: below
    /// [`SPARSE_FILL_THRESHOLD`] the iterative solves run sparse, else
    /// dense. The fill is a deterministic plan property, identical on all
    /// ranks, so every rank resolves the same backend.
    #[default]
    Auto,
    /// Force the dense kernels.
    Dense,
    /// Force the element-wise sparse CSR backend.
    SparseCsr,
}

impl BackendPolicy {
    /// Resolve the policy to a concrete [`SolveBackend`] for a plan with
    /// the given element fill. This is the single definition both the
    /// engine (routing the solve) and the scheduler (costing the job)
    /// apply, so they can never disagree about which backend a job runs.
    pub fn resolve(self, element_fill: f64) -> SolveBackend {
        match self {
            BackendPolicy::Dense => SolveBackend::Dense,
            BackendPolicy::SparseCsr => SolveBackend::SparseCsr,
            BackendPolicy::Auto => {
                if element_fill < SPARSE_FILL_THRESHOLD {
                    SolveBackend::SparseCsr
                } else {
                    SolveBackend::Dense
                }
            }
        }
    }
}

/// Numeric-phase configuration; may vary call-to-call on one cached plan.
#[derive(Debug, Clone, Copy)]
pub struct NumericOptions {
    /// Per-submatrix solver configuration.
    pub solve: SolveOptions,
    /// Ensemble handling.
    pub ensemble: Ensemble,
    /// Compute only the *contributing* columns of each submatrix's sign
    /// function (the paper's Sec. VII future-work optimization). Requires
    /// the diagonalization solver, a grand-canonical ensemble, and `Fp64`.
    pub use_selected_columns: bool,
    /// Numeric precision of the whole execution (paper Sec. VI): the dense
    /// solve kernels *and* the value encoding of the rank-transfer wire.
    /// With `Fp32`/`Fp32Refined` the gather moves `f32` value payloads
    /// (half the bytes); plain `Fp32` also scatters results as `f32`
    /// (losslessly — the solve rounds its output to `f32` storage), while
    /// `Fp32Refined` scatters its `f64` refinement intact.
    ///
    /// **Invariant:** precision is numeric-phase-only. It never enters the
    /// pattern fingerprint, the plan-cache key, or any symbolic decision —
    /// one cached plan serves every precision, and the collective hit/miss
    /// consensus of [`SubmatrixEngine::plan_for_matrix_traced`] is
    /// untouched by precision changes. This field overrides
    /// `solve.precision` during execution, so it is the engine-level
    /// source of truth.
    pub precision: Precision,
    /// Solve-backend policy (paper Sec. V-C). Resolved against the plan's
    /// [`ExecutionPlan::element_fill`] at execution time and threaded into
    /// `solve.backend` the same way `precision` overrides
    /// `solve.precision` — the engine-level source of truth. Subject to
    /// the same invariant as precision: numeric-phase-only, never in
    /// fingerprints or cache keys.
    pub backend: BackendPolicy,
}

impl Default for NumericOptions {
    fn default() -> Self {
        NumericOptions {
            solve: SolveOptions::default(),
            ensemble: Ensemble::GrandCanonical,
            use_selected_columns: false,
            precision: Precision::Fp64,
            backend: BackendPolicy::Auto,
        }
    }
}

/// One block copy of the numeric assembly phase: source block `(br, bc)`
/// lands at `(row_off, col_off)` of the dense submatrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssemblySlot {
    /// Source block row.
    pub br: usize,
    /// Source block column.
    pub bc: usize,
    /// Destination element row offset.
    pub row_off: usize,
    /// Destination element column offset.
    pub col_off: usize,
}

/// Flat copy program assembling one dense submatrix — the precomputed form
/// of [`crate::assembly::assemble`], with every pattern query and binary
/// search resolved symbolically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssemblyMap {
    /// Dense dimension of the submatrix.
    pub dim: usize,
    /// Block copies, in deterministic (column-major block) order.
    pub slots: Vec<AssemblySlot>,
}

impl AssemblyMap {
    fn build(spec: &SubmatrixSpec, pattern: &CooPattern) -> Self {
        let mut slots = Vec::new();
        for (pj, &bc) in spec.rows.iter().enumerate() {
            let col_off = spec.row_offsets[pj];
            for br in pattern.rows_in_col(bc) {
                let Some(pi) = spec.position_of(br) else {
                    continue;
                };
                slots.push(AssemblySlot {
                    br,
                    bc,
                    row_off: spec.row_offsets[pi],
                    col_off,
                });
            }
        }
        AssemblyMap {
            dim: spec.dim,
            slots,
        }
    }

    /// Numeric assembly: pure block copies, no index computation.
    pub fn assemble<'a>(&self, block_of: impl Fn(usize, usize) -> Option<&'a Matrix>) -> Matrix {
        let mut a = Matrix::zeros(self.dim, self.dim);
        for slot in &self.slots {
            let Some(blk) = block_of(slot.br, slot.bc) else {
                continue; // structurally present but numerically dropped
            };
            for j in 0..blk.ncols() {
                for i in 0..blk.nrows() {
                    a[(slot.row_off + i, slot.col_off + j)] = blk[(i, j)];
                }
            }
        }
        a
    }
}

/// One block copy of the result-extraction phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractionSlot {
    /// Destination block row.
    pub br: usize,
    /// Destination block column.
    pub bc: usize,
    /// Source element row offset in `f(a)`.
    pub row_off: usize,
    /// Source element column offset in the full `f(a)`.
    pub col_off: usize,
    /// Source element column offset in the selected-columns matrix.
    pub sel_off: usize,
    /// Block shape.
    pub nrows: usize,
    /// Block shape.
    pub ncols: usize,
}

/// Flat copy program extracting a spec's result blocks out of `f(a)` — the
/// precomputed form of [`crate::assembly::extract_result`] (and of its
/// selected-columns variant via `sel_off`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionMap {
    /// Block extractions in deterministic order.
    pub slots: Vec<ExtractionSlot>,
    /// Total contributing element columns (width of the selected-columns
    /// matrix).
    pub n_sel_cols: usize,
}

impl ExtractionMap {
    fn build(spec: &SubmatrixSpec, pattern: &CooPattern, dims: &BlockedDims) -> Self {
        let mut slots = Vec::new();
        let mut sel_base = 0usize;
        for &bc in &spec.cols {
            let ncols = dims.size(bc);
            let col_off = spec
                .offset_of(bc)
                .expect("spec columns are always included in rows");
            for br in pattern.rows_in_col(bc) {
                let Some(pi) = spec.position_of(br) else {
                    continue;
                };
                slots.push(ExtractionSlot {
                    br,
                    bc,
                    row_off: spec.row_offsets[pi],
                    col_off,
                    sel_off: sel_base,
                    nrows: dims.size(br),
                    ncols,
                });
            }
            sel_base += ncols;
        }
        ExtractionMap {
            slots,
            n_sel_cols: sel_base,
        }
    }

    /// Extract result blocks from the full `f(a)`.
    pub fn extract(&self, f_a: &Matrix) -> BTreeMap<(usize, usize), Matrix> {
        let mut out = BTreeMap::new();
        for slot in &self.slots {
            let mut blk = Matrix::zeros(slot.nrows, slot.ncols);
            for j in 0..slot.ncols {
                for i in 0..slot.nrows {
                    blk[(i, j)] = f_a[(slot.row_off + i, slot.col_off + j)];
                }
            }
            out.insert((slot.br, slot.bc), blk);
        }
        out
    }

    /// Extract result blocks from a selected-columns matrix (only the
    /// contributing columns of `f(a)`, in spec order).
    pub fn extract_from_columns(&self, cols_mat: &Matrix) -> BTreeMap<(usize, usize), Matrix> {
        let mut out = BTreeMap::new();
        for slot in &self.slots {
            let mut blk = Matrix::zeros(slot.nrows, slot.ncols);
            for j in 0..slot.ncols {
                for i in 0..slot.nrows {
                    blk[(i, j)] = cols_mat[(slot.row_off + i, slot.sel_off + j)];
                }
            }
            out.insert((slot.br, slot.bc), blk);
        }
        out
    }
}

/// Product of the symbolic phase for one rank: everything the numeric
/// phase needs, with no remaining pattern queries.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Fingerprint of the pattern + partition this plan was built for.
    pub fingerprint: PatternFingerprint,
    /// Rank this plan serves.
    pub rank: usize,
    /// Communicator size this plan serves.
    pub size: usize,
    /// Nonzero blocks of the pattern this plan was built from. The pattern
    /// itself is *not* retained: the assembly/extraction maps resolved
    /// every query symbolically, and dropping it keeps cached plans small.
    pub pattern_nnz: usize,
    /// The block partition.
    pub dims: BlockedDims,
    /// Global number of submatrices.
    pub n_submatrices: usize,
    /// Largest submatrix dimension (global).
    pub max_dim: usize,
    /// Mean submatrix dimension (global).
    pub avg_dim: f64,
    /// Total `Σ n³` cost estimate (global).
    pub total_cost: f64,
    /// This rank's submatrix specs (a contiguous chunk of the global plan).
    pub my_specs: Vec<SubmatrixSpec>,
    /// This rank's transfer statistics.
    pub transfers: TransferStats,
    /// Deduplicated remote block coordinates to gather each execution.
    pub remote_wanted: Vec<(usize, usize)>,
    /// Assembly copy programs, parallel to `my_specs`.
    pub assembly: Vec<AssemblyMap>,
    /// Extraction copy programs, parallel to `my_specs`.
    pub extraction: Vec<ExtractionMap>,
    /// Contributing element columns per spec (Algorithm 1 / selected
    /// columns).
    pub contributing: Vec<Vec<usize>>,
    /// Element-level fill fraction of the pattern: `Σ size(br)·size(bc)`
    /// over nonzero blocks, divided by `n²`. A deterministic global plan
    /// property (identical on every rank), it is what
    /// [`BackendPolicy::Auto`] resolves the solve backend against.
    pub element_fill: f64,
    /// Seconds the symbolic phase took to build this plan.
    pub symbolic_seconds: f64,
}

impl ExecutionPlan {
    /// Run the full symbolic phase for one rank. Local: the caller supplies
    /// the (already global) pattern.
    pub fn build(
        pattern: CooPattern,
        dims: BlockedDims,
        opts: &EngineOptions,
        rank: usize,
        size: usize,
    ) -> ExecutionPlan {
        let t0 = Instant::now();
        let fingerprint = pattern.fingerprint(&dims);
        let plan = match &opts.grouping {
            Grouping::OnePerColumn => SubmatrixPlan::one_per_column(&pattern, &dims),
            Grouping::Consecutive(g) => SubmatrixPlan::consecutive(&pattern, &dims, *g),
            Grouping::Explicit(groups) => SubmatrixPlan::from_groups(&pattern, &dims, groups),
        };
        let costs: Vec<f64> = plan.specs.iter().map(|s| s.cost()).collect();
        let assignment = greedy_contiguous(&costs, size);
        let my_range = assignment.ranges[rank].clone();
        let my_specs: Vec<SubmatrixSpec> = plan.specs[my_range].to_vec();

        // Deduplicated block exchange (Sec. IV-B): every remote block the
        // rank's submatrices need, fetched exactly once per execution.
        let spec_refs: Vec<&SubmatrixSpec> = my_specs.iter().collect();
        let transfer_plan = RankTransferPlan::for_specs(&spec_refs, &pattern);
        let mut transfers = TransferStats::default();
        transfers.add_rank(&transfer_plan, &dims);
        // Owner mapping comes from the one shared distribution policy so
        // transfer planning can never drift from how matrices route blocks.
        let grid = sm_dbcsr::process_grid(size);
        let remote_wanted: Vec<(usize, usize)> = transfer_plan
            .unique_blocks
            .iter()
            .copied()
            .filter(|&(br, bc)| grid.owner_of_block(br, bc) != rank)
            .collect();

        let assembly: Vec<AssemblyMap> = my_specs
            .iter()
            .map(|s| AssemblyMap::build(s, &pattern))
            .collect();
        let extraction: Vec<ExtractionMap> = my_specs
            .iter()
            .map(|s| ExtractionMap::build(s, &pattern, &dims))
            .collect();
        let contributing: Vec<Vec<usize>> = my_specs
            .iter()
            .map(|s| contributing_rows(s, &dims))
            .collect();

        // Element fill of the global pattern — the quantity Sec. V-C's
        // backend decision keys off. Global and deterministic: every rank
        // computes the same value from the same replicated pattern.
        let n_elems = (dims.n() * dims.n()) as f64;
        let nnz_elems: f64 = (0..dims.nb())
            .map(|bc| {
                pattern
                    .rows_in_col(bc)
                    .map(|br| (dims.size(br) * dims.size(bc)) as f64)
                    .sum::<f64>()
            })
            .sum();
        let element_fill = if n_elems > 0.0 {
            nnz_elems / n_elems
        } else {
            0.0
        };

        ExecutionPlan {
            fingerprint,
            rank,
            size,
            n_submatrices: plan.len(),
            max_dim: plan.max_dim(),
            avg_dim: plan.avg_dim(),
            total_cost: plan.total_cost(),
            pattern_nnz: pattern.nnz(),
            dims,
            my_specs,
            transfers,
            remote_wanted,
            assembly,
            extraction,
            contributing,
            element_fill,
            symbolic_seconds: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Instrumentation of one numeric execution.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Number of submatrices in the plan.
    pub n_submatrices: usize,
    /// Largest submatrix dimension.
    pub max_dim: usize,
    /// Mean submatrix dimension.
    pub avg_dim: f64,
    /// Total `Σ n³` cost estimate.
    pub total_cost: f64,
    /// This rank's transfer statistics (from the cached plan).
    pub transfers: TransferStats,
    /// Numeric precision this execution ran in.
    pub precision: Precision,
    /// Value-payload bytes this rank received from remote ranks during the
    /// gather (deterministic; halves under the `f32` wire format).
    pub gather_value_bytes: u64,
    /// Value-payload bytes this rank sent to remote ranks during the
    /// result scatter (deterministic).
    pub scatter_value_bytes: u64,
    /// The µ actually used (after canonical adjustment, if any).
    pub mu: f64,
    /// Bisection steps of Algorithm 1 (0 for grand canonical).
    pub bisect_iterations: usize,
    /// Solve backend the iterative solves resolved to (from
    /// [`NumericOptions::backend`] against the plan's element fill).
    pub backend: SolveBackend,
    /// Elements dropped by the sparse backend's per-iteration filtering,
    /// summed over this rank's submatrix solves (0 on the dense path).
    pub sparse_filtered_nnz: u64,
    /// Scalar flops spent in sparse (CSR) multiplications (0 on dense).
    pub sparse_flops: u64,
    /// True if the plan came from the cache (no symbolic work this call).
    pub plan_cached: bool,
    /// Seconds of symbolic work this call (0 on cache hits).
    pub symbolic_seconds: f64,
    /// Seconds gathering remote blocks.
    pub gather_seconds: f64,
    /// Seconds assembling + solving submatrices.
    pub solve_seconds: f64,
    /// Seconds extracting + scattering results.
    pub scatter_seconds: f64,
}

impl EngineReport {
    /// Record the planning outcome the caller observed: whether *this
    /// call* built `plan` (a cache miss it paid for) or found it cached.
    /// The single definition every plan-then-execute path (engine
    /// drivers, `JobQueue`, the scheduler) applies, so their telemetry
    /// stays comparable.
    pub fn record_planning(&mut self, built_now: bool, plan: &ExecutionPlan) {
        self.plan_cached = !built_now;
        self.symbolic_seconds = if built_now {
            plan.symbolic_seconds
        } else {
            0.0
        };
    }

    /// Fold a later iteration's report into this one, turning a
    /// per-execution report into a whole-run aggregate — the accounting an
    /// iterative driver (an SCF loop) needs to describe *all* of its
    /// engine executions as one record.
    ///
    /// Additive instrumentation — transfer statistics, gather/scatter
    /// value bytes, bisection steps, and every phase timing — is summed.
    /// Plan-shape figures (`n_submatrices`, `max_dim`, `avg_dim`,
    /// `total_cost`) are invariants of the cached plan, identical across
    /// iterations of a fixed pattern, and are kept from `self`. `mu` and
    /// `precision` take the *latest* iteration's values (µ may drift under
    /// canonical adjustment; the last value is the converged one).
    /// `plan_cached` becomes the conjunction: the aggregate reports a
    /// fully-amortized run only if *every* folded execution hit the cache.
    pub fn absorb_iteration(&mut self, later: &EngineReport) {
        self.transfers.unique_bytes += later.transfers.unique_bytes;
        self.transfers.naive_bytes += later.transfers.naive_bytes;
        self.transfers.unique_blocks += later.transfers.unique_blocks;
        self.transfers.total_references += later.transfers.total_references;
        self.gather_value_bytes += later.gather_value_bytes;
        self.scatter_value_bytes += later.scatter_value_bytes;
        self.sparse_filtered_nnz += later.sparse_filtered_nnz;
        self.sparse_flops += later.sparse_flops;
        self.bisect_iterations += later.bisect_iterations;
        self.symbolic_seconds += later.symbolic_seconds;
        self.gather_seconds += later.gather_seconds;
        self.solve_seconds += later.solve_seconds;
        self.scatter_seconds += later.scatter_seconds;
        self.mu = later.mu;
        self.precision = later.precision;
        self.backend = later.backend;
        self.plan_cached &= later.plan_cached;
    }
}

/// Cumulative engine counters (monotone; snapshot via
/// [`SubmatrixEngine::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Symbolic plans built (cache misses).
    pub symbolic_builds: usize,
    /// Plan-cache hits.
    pub cache_hits: usize,
    /// Plans evicted by the LRU policy (0 when the cache is unbounded).
    pub evictions: usize,
    /// Numeric executions.
    pub executions: usize,
}

impl EngineStats {
    /// Saturating component-wise difference `self − earlier`: the
    /// counter deltas accumulated between two [`SubmatrixEngine::stats`]
    /// snapshots — the windowed reading an observer takes around a batch
    /// without a scheduler round-trip.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            symbolic_builds: self.symbolic_builds.saturating_sub(earlier.symbolic_builds),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            executions: self.executions.saturating_sub(earlier.executions),
        }
    }
}

#[derive(Default)]
struct Counters {
    builds: AtomicUsize,
    hits: AtomicUsize,
    evictions: AtomicUsize,
    executions: AtomicUsize,
}

type CacheKey = (u64, usize, usize);

/// Plan cache with optional LRU bounding. Recency is a monotone stamp
/// bumped on every hit and insert; eviction scans for the minimum stamp —
/// O(entries), irrelevant next to the cost of the symbolic build that
/// triggers it.
#[derive(Default)]
struct PlanCache {
    map: HashMap<CacheKey, (Arc<ExecutionPlan>, u64)>,
    tick: u64,
}

impl PlanCache {
    fn get(&mut self, key: &CacheKey) -> Option<Arc<ExecutionPlan>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(plan, stamp)| {
            *stamp = tick;
            Arc::clone(plan)
        })
    }

    /// Insert a plan, evicting least-recently-used entries while over
    /// `capacity`. Returns how many plans were evicted.
    fn insert(
        &mut self,
        key: CacheKey,
        plan: Arc<ExecutionPlan>,
        capacity: Option<usize>,
    ) -> usize {
        if capacity == Some(0) {
            return 0; // caching disabled; nothing retained, nothing evicted
        }
        self.tick += 1;
        self.map.insert(key, (plan, self.tick));
        let mut evicted = 0;
        if let Some(cap) = capacity {
            while self.map.len() > cap {
                let oldest = self
                    .map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| *k)
                    .expect("cache over capacity implies nonempty");
                self.map.remove(&oldest);
                evicted += 1;
            }
        }
        evicted
    }
}

/// The persistent engine: symbolic plans cached by pattern fingerprint,
/// numeric executions replayed on top (see the module docs).
pub struct SubmatrixEngine {
    opts: EngineOptions,
    cache: Mutex<PlanCache>,
    counters: Counters,
}

impl Default for SubmatrixEngine {
    fn default() -> Self {
        SubmatrixEngine::new(EngineOptions::default())
    }
}

impl SubmatrixEngine {
    /// Create an engine with the given symbolic options.
    pub fn new(opts: EngineOptions) -> Self {
        SubmatrixEngine {
            opts,
            cache: Mutex::new(PlanCache::default()),
            counters: Counters::default(),
        }
    }

    /// The symbolic options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            symbolic_builds: self.counters.builds.load(Ordering::Relaxed),
            cache_hits: self.counters.hits.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            executions: self.counters.executions.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached plans (e.g. after a basis change invalidates every
    /// pattern this engine has seen). Not counted as evictions.
    pub fn clear_cache(&self) {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .clear();
    }

    /// Number of cached plans.
    pub fn cached_plans(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Plan-cache occupancy: `(plans currently cached, capacity bound)`
    /// — `None` capacity means unbounded. Together with
    /// [`EngineStats::since`] this is the full read-only cache-pressure
    /// view (`smdoctor` reports occupancy against capacity plus the
    /// eviction counter).
    pub fn cache_occupancy(&self) -> (usize, Option<usize>) {
        (self.cached_plans(), self.opts.plan_cache_capacity)
    }

    fn cache_key(&self, fp: PatternFingerprint, rank: usize, size: usize) -> CacheKey {
        (fp.0 ^ self.opts.grouping.cache_tag(), rank, size)
    }

    fn lookup(
        &self,
        fp: PatternFingerprint,
        rank: usize,
        size: usize,
    ) -> Option<Arc<ExecutionPlan>> {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&self.cache_key(fp, rank, size))
    }

    fn insert(&self, plan: Arc<ExecutionPlan>) {
        let key = self.cache_key(plan.fingerprint, plan.rank, plan.size);
        let evicted = self.cache.lock().unwrap_or_else(|e| e.into_inner()).insert(
            key,
            plan,
            self.opts.plan_cache_capacity,
        );
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        if sm_trace::enabled() {
            if evicted > 0 {
                sm_trace::counter_add(
                    &sm_trace::scoped_root("plan_cache.evictions"),
                    evicted as u64,
                );
            }
            sm_trace::gauge_set(
                &sm_trace::scoped_root("plan_cache.occupancy"),
                self.cached_plans() as f64,
            );
        }
    }

    /// Symbolic phase on an explicit pattern: build (or fetch) the plan for
    /// `(pattern, dims)` on the calling rank. Non-collective.
    pub fn plan<C: Comm>(
        &self,
        pattern: &CooPattern,
        dims: &BlockedDims,
        comm: &C,
    ) -> Arc<ExecutionPlan> {
        let fp = pattern.fingerprint(dims);
        if let Some(hit) = self.lookup(fp, comm.rank(), comm.size()) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        let plan = Arc::new(ExecutionPlan::build(
            pattern.clone(),
            dims.clone(),
            &self.opts,
            comm.rank(),
            comm.size(),
        ));
        self.counters.builds.fetch_add(1, Ordering::Relaxed);
        self.insert(Arc::clone(&plan));
        plan
    }

    /// Symbolic phase on a distributed matrix (collective). A cache hit
    /// costs one local hash pass plus a small allreduce; only a miss
    /// gathers the global pattern.
    pub fn plan_for_matrix<C: Comm>(&self, m: &DbcsrMatrix, comm: &C) -> Arc<ExecutionPlan> {
        self.plan_for_matrix_traced(m, comm).0
    }

    /// Like [`plan_for_matrix`](Self::plan_for_matrix), additionally
    /// reporting whether *this call* built the plan (`true`) or found it
    /// cached (`false`). The flag is derived from this call's own
    /// miss/build path, so it stays accurate when the engine is shared
    /// between rank threads.
    ///
    /// Hit/miss is decided by **consensus**: when the engine is shared
    /// between concurrent rank groups (the scheduler's multi-tenant mode),
    /// one group's insert or the LRU's eviction can land between two ranks
    /// of another group probing the same fingerprint — without consensus
    /// the hitting rank would skip the collective pattern gather the
    /// missing rank is entering, and the group would deadlock. The extra
    /// allreduce is one scalar; on a hit everyone still skips the gather.
    ///
    /// The consensus is **per-group per-epoch**: it carries no state
    /// between calls — the allreduce runs on whatever communicator this
    /// call was handed — so a scheduler that tears groups down and
    /// re-splits the world between epochs (changing every `(rank, size)`
    /// cache key) can never leave two ranks of one group disagreeing
    /// about entering the gather. Each traced call increments exactly one
    /// of the hit/build counters, so `hits + builds` equals the number of
    /// planning decisions across all groups and epochs — the accounting
    /// identity the `stealing_equivalence` suite uses to detect divergent
    /// consensus. (Precision stays out of the cache key entirely; see the
    /// module docs.)
    pub fn plan_for_matrix_traced<C: Comm>(
        &self,
        m: &DbcsrMatrix,
        comm: &C,
    ) -> (Arc<ExecutionPlan>, bool) {
        let fp = m.pattern_fingerprint(comm);
        let local_hit = self.lookup(fp, comm.rank(), comm.size());
        let mut any_miss = [if local_hit.is_some() { 0.0 } else { 1.0 }];
        comm.allreduce_f64(sm_comsim::ReduceOp::Max, &mut any_miss);
        if any_miss[0] == 0.0 {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            let hit = local_hit.expect("consensus hit implies local hit");
            self.trace_plan_decision(&hit, false);
            return (hit, false);
        }
        // At least one rank misses: every rank enters the collective
        // gather; ranks that hit locally keep their cached plan.
        let pattern = m.global_pattern(comm);
        if let Some(hit) = local_hit {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            self.trace_plan_decision(&hit, false);
            return (hit, false);
        }
        let plan = Arc::new(ExecutionPlan::build(
            pattern,
            m.dims().clone(),
            &self.opts,
            comm.rank(),
            comm.size(),
        ));
        self.counters.builds.fetch_add(1, Ordering::Relaxed);
        self.insert(Arc::clone(&plan));
        self.trace_plan_decision(&plan, true);
        (plan, true)
    }

    /// Narrate one traced planning decision. Exactly one `plan.decision`
    /// event fires per rank per planning call, so traced span trees stay
    /// deterministic; the hit/build *split* can shift with benign
    /// cross-group cache races (only `hits + builds` is pinned), so it
    /// rides in the event's fields and in counters, both of which are
    /// excluded from the deterministic tree rendering.
    fn trace_plan_decision(&self, plan: &ExecutionPlan, built: bool) {
        if !sm_trace::enabled() {
            return;
        }
        let _phase = sm_trace::span(sm_trace::SpanKind::Phase, "plan");
        sm_trace::emit(
            "plan.decision",
            plan.total_cost,
            0.0,
            &[("built", if built { 1.0 } else { 0.0 })],
        );
        sm_trace::counter_add(
            &sm_trace::scoped_root(if built {
                "plan_cache.builds"
            } else {
                "plan_cache.hits"
            }),
            1,
        );
    }

    /// Numeric phase: compute `sign(values − µI)` along a cached plan
    /// (collective). Performs zero symbolic work — no pattern queries, no
    /// re-planning, no transfer-plan rebuild.
    pub fn execute<C: Comm>(
        &self,
        plan: &ExecutionPlan,
        values: &DbcsrMatrix,
        mu0: f64,
        numeric: &NumericOptions,
        comm: &C,
    ) -> (DbcsrMatrix, EngineReport) {
        assert_eq!(plan.rank, comm.rank(), "plan built for a different rank");
        assert_eq!(
            plan.size,
            comm.size(),
            "plan built for a different communicator size"
        );
        assert_eq!(
            plan.dims,
            *values.dims(),
            "values partitioned differently from the plan"
        );
        debug_assert!(
            values.local_nnz_blocks() <= plan.pattern_nnz,
            "values hold more blocks than the planned pattern has in total"
        );
        self.counters.executions.fetch_add(1, Ordering::Relaxed);

        // Precision and backend are engine-authoritative: thread both into
        // the per-submatrix solve options so the solver, the wire, and the
        // scheduler's cost model agree. The backend resolves against the
        // plan's element fill — a deterministic plan property — so every
        // rank of the collective makes the same choice.
        let precision = numeric.precision;
        let backend = numeric.backend.resolve(plan.element_fill);
        let mut numeric = *numeric;
        numeric.solve.precision = precision;
        numeric.solve.backend = backend;
        let numeric = &numeric;
        let gather_format = if precision.gather_is_f32() {
            ValueFormat::F32
        } else {
            ValueFormat::F64
        };
        let scatter_format = if precision.scatter_is_f32() {
            ValueFormat::F32
        } else {
            ValueFormat::F64
        };

        // Gather: fetch every remote block once, along the cached transfer
        // plan. Under f32 precision the value payloads move half the
        // bytes; the rounding is idempotent with the solve's own f32
        // input rounding, so results are independent of the distribution.
        let t0 = Instant::now();
        let (fetched, gather_value_bytes) =
            ops::fetch_blocks_prec(values, &plan.remote_wanted, gather_format, comm);
        let block_of =
            |br: usize, bc: usize| values.block(br, bc).or_else(|| fetched.get(&(br, bc)));
        let gather_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (mu, bisect_iterations, extracted, (sparse_filtered_nnz, sparse_flops)) =
            if numeric.use_selected_columns {
                assert_eq!(
                    precision,
                    Precision::Fp64,
                    "selected-columns evaluation is Fp64-only"
                );
                assert_eq!(
                    numeric.solve.method,
                    SignMethod::Diagonalization,
                    "selected-columns evaluation requires the diagonalization solver"
                );
                assert!(
                    matches!(numeric.ensemble, Ensemble::GrandCanonical),
                    "selected-columns evaluation supports grand-canonical runs only"
                );
                let solve_one = |i: &usize| {
                    let a = plan.assembly[*i].assemble(block_of);
                    let dec = sm_linalg::eigh::eigh(&a)
                        .unwrap_or_else(|e| panic!("submatrix eigendecomposition failed: {e}"));
                    let cols_mat = sign_columns_from_decomposition(
                        &dec,
                        mu0,
                        numeric.solve.kt,
                        &plan.contributing[*i],
                    );
                    plan.extraction[*i].extract_from_columns(&cols_mat)
                };
                let indices: Vec<usize> = (0..plan.my_specs.len()).collect();
                let extracted: Vec<BTreeMap<(usize, usize), Matrix>> = if self.opts.parallel {
                    indices.par_iter().map(solve_one).collect()
                } else {
                    indices.iter().map(solve_one).collect()
                };
                (mu0, 0, extracted, (0u64, 0u64))
            } else {
                let solve_one = |i: &usize| {
                    let a = plan.assembly[*i].assemble(block_of);
                    solve_sign(&a, mu0, &numeric.solve)
                        .unwrap_or_else(|e| panic!("submatrix solve failed: {e}"))
                };
                let indices: Vec<usize> = (0..plan.my_specs.len()).collect();
                let results: Vec<SolveResult> = if self.opts.parallel {
                    indices.par_iter().map(solve_one).collect()
                } else {
                    indices.iter().map(solve_one).collect()
                };
                // Sparse-backend tallies before the results are consumed.
                let sparse_tally = results.iter().fold((0u64, 0u64), |acc, r| match r.sparse {
                    Some(s) => (acc.0 + s.filtered_nnz, acc.1 + s.flops),
                    None => acc,
                });

                // Canonical ensemble: Algorithm 1 on the stored decompositions,
                // then re-evaluate the sign at the adjusted µ (collective).
                let (mu, bisect_iterations, signs) = match numeric.ensemble {
                    Ensemble::GrandCanonical => {
                        let signs: Vec<Matrix> = results.into_iter().map(|r| r.sign).collect();
                        (mu0, 0, signs)
                    }
                    Ensemble::Canonical {
                        n_electrons,
                        tol,
                        max_iter,
                    } => {
                        assert_eq!(
                            numeric.solve.method,
                            SignMethod::Diagonalization,
                            "canonical ensembles require the diagonalization solver (Sec. IV-G)"
                        );
                        let stored: Vec<StoredDecomposition> = plan
                            .my_specs
                            .iter()
                            .zip(&results)
                            .map(|(spec, r)| {
                                StoredDecomposition::from_eigh(
                                    r.decomposition.as_ref().expect("diagonalization stores Q"),
                                    spec,
                                    &plan.dims,
                                )
                            })
                            .collect();
                        let adj = adjust_mu(
                            &stored,
                            mu0,
                            n_electrons / 2.0,
                            numeric.solve.kt,
                            tol / 2.0,
                            max_iter,
                            comm,
                        );
                        let signs: Vec<Matrix> = results
                            .iter()
                            .map(|r| {
                                let mut s = sign_from_decomposition(
                                    r.decomposition.as_ref().expect("diagonalization stores Q"),
                                    adj.mu,
                                    numeric.solve.kt,
                                );
                                crate::solver::round_sign_output(&mut s, precision);
                                s
                            })
                            .collect();
                        (adj.mu, adj.iterations, signs)
                    }
                };
                let extracted: Vec<BTreeMap<(usize, usize), Matrix>> = signs
                    .iter()
                    .enumerate()
                    .map(|(i, sign)| plan.extraction[i].extract(sign))
                    .collect();
                (mu, bisect_iterations, extracted, sparse_tally)
            };
        let solve_seconds = t1.elapsed().as_secs_f64();

        // Scatter result blocks to their owning ranks. Plain-Fp32 results
        // are f32-representable, so the f32 result wire is lossless;
        // refined results ship in f64 to keep the recovered accuracy.
        let t2 = Instant::now();
        let mut result = DbcsrMatrix::new(plan.dims.clone(), comm.rank(), comm.size());
        let mut outgoing: Vec<BTreeMap<(usize, usize), Matrix>> =
            (0..comm.size()).map(|_| BTreeMap::new()).collect();
        for (coord, blk) in extracted.into_iter().flatten() {
            outgoing[result.owner(coord.0, coord.1)].insert(coord, blk);
        }
        let (received, scatter_value_bytes) =
            wire::exchange_blocks_prec(outgoing, &plan.dims, scatter_format, comm);
        for ((br, bc), blk) in received {
            result.insert_block(br, bc, blk);
        }
        let scatter_seconds = t2.elapsed().as_secs_f64();

        if sm_trace::enabled() {
            // One `engine.phase` event per phase per rank per execution —
            // deterministic counts with deterministic costs (planned cost,
            // planned value bytes); wall seconds ride as annotations.
            {
                let _p = sm_trace::span(sm_trace::SpanKind::Phase, "gather");
                sm_trace::emit(
                    "engine.phase",
                    gather_value_bytes as f64,
                    gather_seconds,
                    &[],
                );
            }
            {
                let _p = sm_trace::span(sm_trace::SpanKind::Phase, "solve");
                sm_trace::emit(
                    "engine.phase",
                    plan.total_cost,
                    solve_seconds,
                    &[("n_submatrices", plan.n_submatrices as f64)],
                );
            }
            {
                let _p = sm_trace::span(sm_trace::SpanKind::Phase, "scatter");
                sm_trace::emit(
                    "engine.phase",
                    scatter_value_bytes as f64,
                    scatter_seconds,
                    &[],
                );
            }
            // Backend decision: one deterministic event per execution
            // recording which representation the iterative solves resolved
            // to and what the filtering saved (cost = backend code so
            // deterministic replay distinguishes the paths).
            {
                let _p = sm_trace::span(sm_trace::SpanKind::Phase, "solve");
                sm_trace::emit(
                    "engine.solve.backend",
                    match backend {
                        SolveBackend::Dense => 0.0,
                        SolveBackend::SparseCsr => 1.0,
                    },
                    0.0,
                    &[
                        ("element_fill", plan.element_fill),
                        ("filtered_nnz", sparse_filtered_nnz as f64),
                        ("sparse_flops", sparse_flops as f64),
                    ],
                );
            }
            if sparse_filtered_nnz > 0 {
                sm_trace::counter_add(
                    &sm_trace::scoped_root("engine.sparse.filtered_nnz"),
                    sparse_filtered_nnz,
                );
            }
            if sparse_flops > 0 {
                sm_trace::counter_add(&sm_trace::scoped_root("engine.sparse.flops"), sparse_flops);
            }
            // Byte budget by precision: exact whole-batch tallies (each
            // rank's value bytes are themselves deterministic).
            let prec = match precision {
                Precision::Fp64 => "fp64",
                Precision::Fp32 => "fp32",
                Precision::Fp32Refined => "fp32_refined",
            };
            sm_trace::counter_add(
                &sm_trace::scoped_root(&format!("engine.value_bytes.{prec}")),
                gather_value_bytes + scatter_value_bytes,
            );
            sm_trace::hist_bytes(
                &sm_trace::scoped_root("engine.gather_bytes"),
                gather_value_bytes,
            );
            sm_trace::hist_bytes(
                &sm_trace::scoped_root("engine.scatter_bytes"),
                scatter_value_bytes,
            );
        }

        let report = EngineReport {
            n_submatrices: plan.n_submatrices,
            max_dim: plan.max_dim,
            avg_dim: plan.avg_dim,
            total_cost: plan.total_cost,
            transfers: plan.transfers,
            precision,
            gather_value_bytes,
            scatter_value_bytes,
            backend,
            sparse_filtered_nnz,
            sparse_flops,
            mu,
            bisect_iterations,
            // A direct execute performs no symbolic work by contract;
            // callers that plan-then-execute (sign(), JobQueue) overwrite
            // these two fields with the planning outcome they observed.
            plan_cached: true,
            symbolic_seconds: 0.0,
            gather_seconds,
            solve_seconds,
            scatter_seconds,
        };
        (result, report)
    }

    /// Plan (cached) + execute: `sign(values − µI)` (collective).
    pub fn sign<C: Comm>(
        &self,
        values: &DbcsrMatrix,
        mu0: f64,
        numeric: &NumericOptions,
        comm: &C,
    ) -> (DbcsrMatrix, EngineReport) {
        let (plan, built_now) = self.plan_for_matrix_traced(values, comm);
        let (result, mut report) = self.execute(&plan, values, mu0, numeric, comm);
        report.record_planning(built_now, &plan);
        (result, report)
    }

    /// Plan (cached) + execute: density matrix `D̃ = (I − sign)/2`
    /// (collective).
    pub fn density<C: Comm>(
        &self,
        values: &DbcsrMatrix,
        mu0: f64,
        numeric: &NumericOptions,
        comm: &C,
    ) -> (DbcsrMatrix, EngineReport) {
        let (mut sign, report) = self.sign(values, mu0, numeric, comm);
        ops::scale(&mut sign, -0.5);
        ops::shift_diag(&mut sign, 0.5);
        (sign, report)
    }
}

// ---------------------------------------------------------------------------
// Plan-cache persistence: spill cached plans to a versioned on-disk
// manifest (`sm_dbcsr::wire::PlanManifest`) so a warm restart replans
// nothing. The symbolic phase is the cost the paper amortizes across SCF
// iterations; persistence amortizes it across *process lifetimes*.
// ---------------------------------------------------------------------------

/// Failure of [`SubmatrixEngine::export_plans`] /
/// [`SubmatrixEngine::import_plans`].
#[derive(Debug)]
pub enum PlanPersistError {
    /// Filesystem error reading or writing the manifest.
    Io(std::io::Error),
    /// The file is not a decodable plan manifest (wrong magic, foreign
    /// schema version, or truncated).
    Wire(wire::ManifestError),
    /// The manifest was produced under a different grouping policy; its
    /// plans would be wrong for this engine, so the import refuses.
    ForeignGrouping {
        /// Producer tag found in the manifest header.
        found: u64,
        /// This engine's grouping cache tag.
        expected: u64,
    },
    /// The container decoded but an entry's plan payload is malformed.
    Corrupt(String),
}

impl std::fmt::Display for PlanPersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanPersistError::Io(e) => write!(f, "plan manifest io: {e}"),
            PlanPersistError::Wire(e) => write!(f, "{e}"),
            PlanPersistError::ForeignGrouping { found, expected } => write!(
                f,
                "plan manifest was exported under grouping tag {found:#x} but this \
                 engine groups under {expected:#x} — refusing to import foreign plans"
            ),
            PlanPersistError::Corrupt(what) => {
                write!(f, "plan manifest entry corrupt: {what}")
            }
        }
    }
}

impl std::error::Error for PlanPersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanPersistError::Io(e) => Some(e),
            PlanPersistError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PlanPersistError {
    fn from(e: std::io::Error) -> Self {
        PlanPersistError::Io(e)
    }
}

impl From<wire::ManifestError> for PlanPersistError {
    fn from(e: wire::ManifestError) -> Self {
        PlanPersistError::Wire(e)
    }
}

/// Word-stream writer for the plan codec (`u64` words; `f64` fields travel
/// bit-exactly via `to_bits`, so an imported plan replays the original's
/// numeric behavior byte-for-byte).
fn push_usize_slice(out: &mut Vec<u64>, xs: &[usize]) {
    out.push(xs.len() as u64);
    out.extend(xs.iter().map(|&x| x as u64));
}

fn encode_plan(plan: &ExecutionPlan) -> Vec<u64> {
    let mut w: Vec<u64> = vec![
        plan.pattern_nnz as u64,
        plan.n_submatrices as u64,
        plan.max_dim as u64,
        plan.avg_dim.to_bits(),
        plan.total_cost.to_bits(),
        plan.element_fill.to_bits(),
        plan.symbolic_seconds.to_bits(),
    ];
    push_usize_slice(&mut w, plan.dims.sizes());
    w.push(plan.transfers.unique_bytes);
    w.push(plan.transfers.naive_bytes);
    w.push(plan.transfers.unique_blocks);
    w.push(plan.transfers.total_references);
    w.push(plan.my_specs.len() as u64);
    for spec in &plan.my_specs {
        push_usize_slice(&mut w, &spec.cols);
        push_usize_slice(&mut w, &spec.rows);
        push_usize_slice(&mut w, &spec.row_offsets);
        w.push(spec.dim as u64);
    }
    w.push(plan.remote_wanted.len() as u64);
    for &(br, bc) in &plan.remote_wanted {
        w.push(br as u64);
        w.push(bc as u64);
    }
    w.push(plan.assembly.len() as u64);
    for map in &plan.assembly {
        w.push(map.dim as u64);
        w.push(map.slots.len() as u64);
        for s in &map.slots {
            w.extend_from_slice(&[s.br as u64, s.bc as u64, s.row_off as u64, s.col_off as u64]);
        }
    }
    w.push(plan.extraction.len() as u64);
    for map in &plan.extraction {
        w.push(map.n_sel_cols as u64);
        w.push(map.slots.len() as u64);
        for s in &map.slots {
            w.extend_from_slice(&[
                s.br as u64,
                s.bc as u64,
                s.row_off as u64,
                s.col_off as u64,
                s.sel_off as u64,
                s.nrows as u64,
                s.ncols as u64,
            ]);
        }
    }
    w.push(plan.contributing.len() as u64);
    for cols in &plan.contributing {
        push_usize_slice(&mut w, cols);
    }
    w
}

/// Bounds-checked reader over a plan payload.
struct PlanReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> PlanReader<'a> {
    fn u(&mut self) -> Result<u64, PlanPersistError> {
        let w = *self
            .words
            .get(self.pos)
            .ok_or_else(|| PlanPersistError::Corrupt("payload ends early".into()))?;
        self.pos += 1;
        Ok(w)
    }

    fn us(&mut self) -> Result<usize, PlanPersistError> {
        Ok(self.u()? as usize)
    }

    fn f(&mut self) -> Result<f64, PlanPersistError> {
        Ok(f64::from_bits(self.u()?))
    }

    fn usize_vec(&mut self) -> Result<Vec<usize>, PlanPersistError> {
        let n = self.us()?;
        if self.words.len() - self.pos < n {
            return Err(PlanPersistError::Corrupt(
                "length prefix overruns payload".into(),
            ));
        }
        (0..n).map(|_| self.us()).collect()
    }
}

fn decode_plan(entry: &wire::PlanManifestEntry) -> Result<ExecutionPlan, PlanPersistError> {
    let mut r = PlanReader {
        words: &entry.words,
        pos: 0,
    };
    let pattern_nnz = r.us()?;
    let n_submatrices = r.us()?;
    let max_dim = r.us()?;
    let avg_dim = r.f()?;
    let total_cost = r.f()?;
    let element_fill = r.f()?;
    let symbolic_seconds = r.f()?;
    let sizes = r.usize_vec()?;
    if sizes.contains(&0) {
        return Err(PlanPersistError::Corrupt("zero-sized block in dims".into()));
    }
    let dims = BlockedDims::new(sizes);
    let transfers = TransferStats {
        unique_bytes: r.u()?,
        naive_bytes: r.u()?,
        unique_blocks: r.u()?,
        total_references: r.u()?,
    };
    let n_specs = r.us()?;
    let mut my_specs = Vec::with_capacity(n_specs);
    for _ in 0..n_specs {
        let cols = r.usize_vec()?;
        let rows = r.usize_vec()?;
        let row_offsets = r.usize_vec()?;
        let dim = r.us()?;
        if row_offsets.len() != rows.len() {
            return Err(PlanPersistError::Corrupt(
                "spec offsets/rows mismatch".into(),
            ));
        }
        my_specs.push(SubmatrixSpec {
            cols,
            rows,
            row_offsets,
            dim,
        });
    }
    let n_remote = r.us()?;
    let mut remote_wanted = Vec::with_capacity(n_remote);
    for _ in 0..n_remote {
        remote_wanted.push((r.us()?, r.us()?));
    }
    let n_assembly = r.us()?;
    let mut assembly = Vec::with_capacity(n_assembly);
    for _ in 0..n_assembly {
        let dim = r.us()?;
        let n_slots = r.us()?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            slots.push(AssemblySlot {
                br: r.us()?,
                bc: r.us()?,
                row_off: r.us()?,
                col_off: r.us()?,
            });
        }
        assembly.push(AssemblyMap { dim, slots });
    }
    let n_extraction = r.us()?;
    let mut extraction = Vec::with_capacity(n_extraction);
    for _ in 0..n_extraction {
        let n_sel_cols = r.us()?;
        let n_slots = r.us()?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            slots.push(ExtractionSlot {
                br: r.us()?,
                bc: r.us()?,
                row_off: r.us()?,
                col_off: r.us()?,
                sel_off: r.us()?,
                nrows: r.us()?,
                ncols: r.us()?,
            });
        }
        extraction.push(ExtractionMap { slots, n_sel_cols });
    }
    let n_contrib = r.us()?;
    let mut contributing = Vec::with_capacity(n_contrib);
    for _ in 0..n_contrib {
        contributing.push(r.usize_vec()?);
    }
    if assembly.len() != my_specs.len() || extraction.len() != my_specs.len() {
        return Err(PlanPersistError::Corrupt(
            "assembly/extraction maps not parallel to specs".into(),
        ));
    }
    if r.pos != entry.words.len() {
        return Err(PlanPersistError::Corrupt(
            "trailing words in payload".into(),
        ));
    }
    Ok(ExecutionPlan {
        fingerprint: PatternFingerprint(entry.fingerprint),
        rank: entry.rank as usize,
        size: entry.size as usize,
        pattern_nnz,
        dims,
        n_submatrices,
        max_dim,
        avg_dim,
        total_cost,
        my_specs,
        transfers,
        remote_wanted,
        assembly,
        extraction,
        contributing,
        element_fill,
        symbolic_seconds,
    })
}

impl SubmatrixEngine {
    /// Spill every cached plan to a versioned manifest at `path`
    /// ([`wire::PLAN_MANIFEST_SCHEMA_VERSION`]), preserving LRU stamps so
    /// a later [`import_plans`](Self::import_plans) restores eviction
    /// order faithfully. Entries are sorted by `(fingerprint, rank,
    /// size)`, so equal caches export byte-identical manifests. Returns
    /// the number of plans exported.
    pub fn export_plans(&self, path: &std::path::Path) -> Result<usize, PlanPersistError> {
        let stats = self.stats();
        let manifest = {
            let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            let mut entries: Vec<wire::PlanManifestEntry> = cache
                .map
                .values()
                .map(|(plan, stamp)| wire::PlanManifestEntry {
                    fingerprint: plan.fingerprint.0,
                    rank: plan.rank as u64,
                    size: plan.size as u64,
                    lru_stamp: *stamp,
                    words: encode_plan(plan),
                })
                .collect();
            entries.sort_by_key(|e| (e.fingerprint, e.rank, e.size));
            wire::PlanManifest {
                tag: self.opts.grouping.cache_tag(),
                capacity: self.opts.plan_cache_capacity.map_or(u64::MAX, |c| c as u64),
                tick: cache.tick,
                evictions: stats.evictions as u64,
                hits: stats.cache_hits as u64,
                builds: stats.symbolic_builds as u64,
                entries,
            }
        };
        let n = manifest.entries.len();
        std::fs::write(path, manifest.encode())?;
        Ok(n)
    }

    /// Restore plans from a manifest written by
    /// [`export_plans`](Self::export_plans). Rejects manifests from a
    /// different schema version or grouping policy. Imported plans keep
    /// their original LRU stamps (the clock resumes at or above the
    /// newest stamp); if the manifest holds more plans than this engine's
    /// capacity, only the most recently used survive and the overflow
    /// counts as evictions. Importing touches neither the hit nor the
    /// build counter — a warm restart that replans nothing reports
    /// `builds == 0` on resubmission. Returns the number of plans
    /// restored.
    pub fn import_plans(&self, path: &std::path::Path) -> Result<usize, PlanPersistError> {
        let bytes = std::fs::read(path)?;
        let manifest = wire::PlanManifest::decode(&bytes)?;
        let expected = self.opts.grouping.cache_tag();
        if manifest.tag != expected {
            return Err(PlanPersistError::ForeignGrouping {
                found: manifest.tag,
                expected,
            });
        }
        if self.opts.plan_cache_capacity == Some(0) {
            return Ok(0); // caching disabled; nothing to restore into
        }
        let mut decoded = Vec::with_capacity(manifest.entries.len());
        for entry in &manifest.entries {
            decoded.push((decode_plan(entry)?, entry.lru_stamp));
        }
        // Keep only the most recently used plans when over capacity; the
        // dropped overflow is an eviction like any other.
        let mut overflow = 0usize;
        if let Some(cap) = self.opts.plan_cache_capacity {
            if decoded.len() > cap {
                decoded.sort_by_key(|(_, stamp)| std::cmp::Reverse(*stamp));
                overflow = decoded.len() - cap;
                decoded.truncate(cap);
            }
        }
        let mut restored = 0usize;
        {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            for (plan, stamp) in decoded {
                let key = self.cache_key(plan.fingerprint, plan.rank, plan.size);
                cache.tick = cache.tick.max(stamp);
                cache.map.insert(key, (Arc::new(plan), stamp));
                restored += 1;
            }
        }
        if overflow > 0 {
            self.counters
                .evictions
                .fetch_add(overflow, Ordering::Relaxed);
        }
        if sm_trace::enabled() {
            sm_trace::counter_add(
                &sm_trace::scoped_root("plan_cache.imported"),
                restored as u64,
            );
            sm_trace::gauge_set(
                &sm_trace::scoped_root("plan_cache.occupancy"),
                self.cached_plans() as f64,
            );
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_comsim::{run_ranks, SerialComm};
    use sm_linalg::sign::sign_eig;

    fn banded_gapped(nb: usize, bs: usize) -> (Matrix, BlockedDims) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.05 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        (dense, dims)
    }

    #[test]
    fn engine_sign_matches_dense_reference() {
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let (sign, report) = engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        let expect = sign_eig(&dense).unwrap();
        assert!(sign.to_dense(&comm).max_abs_diff(&expect) < 0.05);
        assert!(!report.plan_cached);
        assert_eq!(report.n_submatrices, 8);
    }

    #[test]
    fn repeated_executions_do_zero_symbolic_work() {
        let (dense, dims) = banded_gapped(6, 2);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let mut first = None;
        for it in 0..5 {
            // Values change every iteration; the pattern does not.
            let mut scaled = dense.clone();
            scaled.scale(1.0 + 0.1 * it as f64);
            let m = DbcsrMatrix::from_dense(&scaled, dims.clone(), 0, 1, 0.0);
            let (_, report) = engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
            if it == 0 {
                assert!(!report.plan_cached);
                first = Some(report);
            } else {
                assert!(report.plan_cached, "iteration {it} re-planned");
                assert_eq!(report.symbolic_seconds, 0.0);
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.symbolic_builds, 1);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.executions, 5);
        assert!(first.unwrap().symbolic_seconds > 0.0);
        assert_eq!(engine.cached_plans(), 1);
    }

    #[test]
    fn report_aggregation_sums_counters_and_keeps_plan_shape() {
        let (dense, dims) = banded_gapped(6, 2);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let (_, first) = engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        let (_, second) = engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        let mut agg = first.clone();
        agg.absorb_iteration(&second);
        // Additive counters sum; plan-shape figures stay those of the
        // (identical) cached plan.
        assert_eq!(
            agg.transfers.unique_bytes,
            first.transfers.unique_bytes + second.transfers.unique_bytes
        );
        assert_eq!(
            agg.gather_value_bytes,
            first.gather_value_bytes + second.gather_value_bytes
        );
        assert_eq!(
            agg.scatter_value_bytes,
            first.scatter_value_bytes + second.scatter_value_bytes
        );
        assert_eq!(agg.n_submatrices, first.n_submatrices);
        assert_eq!(agg.total_cost, first.total_cost);
        // The first execution built the plan, the second hit: the
        // aggregate must NOT claim a fully-amortized run.
        assert!(!first.plan_cached && second.plan_cached);
        assert!(!agg.plan_cached);
        // Folding two hits keeps plan_cached true.
        let mut hits = second.clone();
        hits.absorb_iteration(&second);
        assert!(hits.plan_cached);
    }

    #[test]
    fn engine_matches_one_shot_driver_bitwise() {
        let (dense, dims) = banded_gapped(9, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let (a, _) = engine.sign(&m, 0.1, &NumericOptions::default(), &comm);
        let (b, _) = crate::method::submatrix_sign(
            &m,
            0.1,
            &crate::method::SubmatrixOptions::default(),
            &comm,
        );
        assert!(a.to_dense(&comm).allclose(&b.to_dense(&comm), 0.0));
    }

    #[test]
    fn different_patterns_get_different_plans() {
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let (d1, dims1) = banded_gapped(5, 2);
        let (d2, dims2) = banded_gapped(7, 2);
        let m1 = DbcsrMatrix::from_dense(&d1, dims1, 0, 1, 0.0);
        let m2 = DbcsrMatrix::from_dense(&d2, dims2, 0, 1, 0.0);
        engine.sign(&m1, 0.0, &NumericOptions::default(), &comm);
        engine.sign(&m2, 0.0, &NumericOptions::default(), &comm);
        engine.sign(&m1, 0.0, &NumericOptions::default(), &comm);
        let stats = engine.stats();
        assert_eq!(stats.symbolic_builds, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(engine.cached_plans(), 2);
        engine.clear_cache();
        assert_eq!(engine.cached_plans(), 0);
    }

    #[test]
    fn one_plan_serves_multiple_numeric_options() {
        let (dense, dims) = banded_gapped(6, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let plan = engine.plan_for_matrix(&m, &comm);
        for method in [SignMethod::Diagonalization, SignMethod::NewtonSchulz] {
            let numeric = NumericOptions {
                solve: SolveOptions {
                    method,
                    ..SolveOptions::default()
                },
                ..NumericOptions::default()
            };
            let (sign, _) = engine.execute(&plan, &m, 0.0, &numeric, &comm);
            let expect = sign_eig(&dense).unwrap();
            assert!(sign.to_dense(&comm).max_abs_diff(&expect) < 0.05);
        }
        assert_eq!(engine.stats().symbolic_builds, 1);
    }

    #[test]
    fn distributed_engine_matches_serial() {
        let (dense, dims) = banded_gapped(9, 2);
        let comm = SerialComm::new();
        let serial = {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            let engine = SubmatrixEngine::default();
            engine
                .sign(&m, 0.0, &NumericOptions::default(), &comm)
                .0
                .to_dense(&comm)
        };
        // One engine shared by all rank threads: plans are per-rank.
        let engine = SubmatrixEngine::default();
        let (results, _) = run_ranks(4, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            let (sign, _) = engine.sign(&m, 0.0, &NumericOptions::default(), c);
            let (sign2, r2) = engine.sign(&m, 0.0, &NumericOptions::default(), c);
            assert!(r2.plan_cached);
            assert!(sign.to_dense(c).allclose(&sign2.to_dense(c), 0.0));
            sign.to_dense(c)
        });
        for r in results {
            assert!(r.allclose(&serial, 1e-13));
        }
        assert_eq!(engine.stats().symbolic_builds, 4); // one per rank
        assert_eq!(engine.stats().cache_hits, 4);
    }

    #[test]
    fn lru_evicts_and_replans_deterministically() {
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::new(EngineOptions {
            plan_cache_capacity: Some(2),
            ..EngineOptions::default()
        });
        let mats: Vec<DbcsrMatrix> = [4, 6, 8]
            .iter()
            .map(|&nb| {
                let (d, dims) = banded_gapped(nb, 2);
                DbcsrMatrix::from_dense(&d, dims, 0, 1, 0.0)
            })
            .collect();
        // Fill: A, B -> both cached.
        engine.plan_for_matrix(&mats[0], &comm);
        engine.plan_for_matrix(&mats[1], &comm);
        assert_eq!(engine.cached_plans(), 2);
        assert_eq!(engine.stats().evictions, 0);
        // Touch A (now most recent), insert C -> B is the LRU victim.
        engine.plan_for_matrix(&mats[0], &comm);
        engine.plan_for_matrix(&mats[2], &comm);
        assert_eq!(engine.cached_plans(), 2);
        assert_eq!(engine.stats().evictions, 1);
        // A and C hit; B must re-plan (deterministically, every round).
        let (_, a_built) = engine.plan_for_matrix_traced(&mats[0], &comm);
        let (_, c_built) = engine.plan_for_matrix_traced(&mats[2], &comm);
        assert!(!a_built && !c_built, "survivors must still be cached");
        let (_, b_built) = engine.plan_for_matrix_traced(&mats[1], &comm);
        assert!(b_built, "evicted plan must be rebuilt");
        let stats = engine.stats();
        assert_eq!(stats.symbolic_builds, 4); // A, B, C, B again
        assert_eq!(stats.evictions, 2); // B once, then A or C for B's return
    }

    #[test]
    fn stats_windows_and_occupancy_read_without_a_scheduler() {
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::new(EngineOptions {
            plan_cache_capacity: Some(2),
            ..EngineOptions::default()
        });
        assert_eq!(engine.cache_occupancy(), (0, Some(2)));
        let (d, dims) = banded_gapped(4, 2);
        let m = DbcsrMatrix::from_dense(&d, dims, 0, 1, 0.0);
        let before = engine.stats();
        engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        let window = engine.stats().since(&before);
        assert_eq!(window.symbolic_builds, 1);
        assert_eq!(window.cache_hits, 1);
        assert_eq!(window.executions, 2);
        assert_eq!(window.evictions, 0);
        assert_eq!(engine.cache_occupancy(), (1, Some(2)));
        // Saturating: a stale "later" snapshot cannot underflow.
        assert_eq!(before.since(&engine.stats()).executions, 0);
    }

    #[test]
    fn capacity_one_cache_never_reuses_wrong_plan() {
        // Two alternating patterns through a capacity-1 cache: every access
        // evicts the other, every execution must still be correct.
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::new(EngineOptions {
            plan_cache_capacity: Some(1),
            ..EngineOptions::default()
        });
        let (d1, dims1) = banded_gapped(5, 2);
        let (d2, dims2) = banded_gapped(8, 2);
        let m1 = DbcsrMatrix::from_dense(&d1, dims1, 0, 1, 0.0);
        let m2 = DbcsrMatrix::from_dense(&d2, dims2, 0, 1, 0.0);
        let e1 = sign_eig(&d1).unwrap();
        let e2 = sign_eig(&d2).unwrap();
        for _ in 0..3 {
            let (s1, _) = engine.sign(&m1, 0.0, &NumericOptions::default(), &comm);
            assert!(s1.to_dense(&comm).max_abs_diff(&e1) < 0.05);
            let (s2, _) = engine.sign(&m2, 0.0, &NumericOptions::default(), &comm);
            assert!(s2.to_dense(&comm).max_abs_diff(&e2) < 0.05);
        }
        let stats = engine.stats();
        assert_eq!(engine.cached_plans(), 1);
        assert_eq!(stats.symbolic_builds, 6, "thrashing replans every access");
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.evictions, 5);
        assert_eq!(stats.executions, 6);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::new(EngineOptions {
            plan_cache_capacity: Some(0),
            ..EngineOptions::default()
        });
        let (d, dims) = banded_gapped(4, 2);
        let m = DbcsrMatrix::from_dense(&d, dims, 0, 1, 0.0);
        engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        engine.sign(&m, 0.0, &NumericOptions::default(), &comm);
        let stats = engine.stats();
        assert_eq!(engine.cached_plans(), 0);
        assert_eq!(stats.symbolic_builds, 2);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn one_plan_serves_every_precision() {
        // Precision is numeric-only: all three modes hit the same cached
        // plan (no fingerprint or cache-key contamination), and their
        // results agree within the documented tolerances.
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let mut results = Vec::new();
        for precision in Precision::all() {
            let numeric = NumericOptions {
                precision,
                ..NumericOptions::default()
            };
            let (sign, report) = engine.sign(&m, 0.0, &numeric, &comm);
            assert_eq!(report.precision, precision);
            results.push(sign.to_dense(&comm));
        }
        let stats = engine.stats();
        assert_eq!(stats.symbolic_builds, 1, "precision must share one plan");
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(engine.cached_plans(), 1);
        assert!(results[1].max_abs_diff(&results[0]) < 1e-4, "fp32 vs fp64");
        assert!(
            results[2].max_abs_diff(&results[0]) < 1e-6,
            "fp32-refined vs fp64: {}",
            results[2].max_abs_diff(&results[0])
        );
    }

    #[test]
    fn one_plan_serves_both_solve_backends() {
        // The solve backend, like precision, is numeric-only: forcing
        // Dense and SparseCsr against the same engine shares one cached
        // plan (no fingerprint or cache-key contamination), and at
        // eps = 0 the sparse solve agrees with dense to 1e-10.
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let mut results = Vec::new();
        for policy in [BackendPolicy::Dense, BackendPolicy::SparseCsr] {
            let numeric = NumericOptions {
                backend: policy,
                solve: SolveOptions {
                    method: SignMethod::NewtonSchulz,
                    ..SolveOptions::default()
                },
                ..NumericOptions::default()
            };
            let (sign, report) = engine.sign(&m, 0.0, &numeric, &comm);
            let expected = match policy {
                BackendPolicy::SparseCsr => SolveBackend::SparseCsr,
                _ => SolveBackend::Dense,
            };
            assert_eq!(report.backend, expected);
            if expected == SolveBackend::SparseCsr {
                assert!(report.sparse_flops > 0, "sparse path must count flops");
            }
            results.push(sign.to_dense(&comm));
        }
        let stats = engine.stats();
        assert_eq!(stats.symbolic_builds, 1, "backends must share one plan");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(engine.cached_plans(), 1);
        assert!(
            results[1].max_abs_diff(&results[0]) < 1e-10,
            "sparse vs dense at eps = 0: {}",
            results[1].max_abs_diff(&results[0])
        );
    }

    #[test]
    fn auto_policy_resolves_backend_from_plan_fill() {
        // `BackendPolicy::Auto` keys off the plan's element fill — a
        // deterministic symbolic property, identical on every rank — so
        // the selected backend is itself deterministic. A banded-gapped
        // pattern is sparse enough for CSR; a full matrix is not.
        let (dense, dims) = banded_gapped(10, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let numeric = NumericOptions {
            solve: SolveOptions {
                method: SignMethod::NewtonSchulz,
                ..SolveOptions::default()
            },
            ..NumericOptions::default()
        };
        assert_eq!(numeric.backend, BackendPolicy::Auto);

        let engine = SubmatrixEngine::default();
        let plan = engine.plan_for_matrix(&m, &comm);
        assert!(plan.element_fill > 0.0 && plan.element_fill <= 1.0);
        let expected = if plan.element_fill < SPARSE_FILL_THRESHOLD {
            SolveBackend::SparseCsr
        } else {
            SolveBackend::Dense
        };
        let (_, report) = engine.sign(&m, 0.0, &numeric, &comm);
        assert_eq!(report.backend, expected);

        let full = Matrix::from_fn(8, 8, |i, j| if i == j { 1.0 } else { 0.1 });
        let mfull = DbcsrMatrix::from_dense(&full, BlockedDims::uniform(4, 2), 0, 1, 0.0);
        let plan_full = engine.plan_for_matrix(&mfull, &comm);
        assert_eq!(plan_full.element_fill, 1.0);
        let (_, report) = engine.sign(&mfull, 0.0, &numeric, &comm);
        assert_eq!(report.backend, SolveBackend::Dense);
    }

    #[test]
    fn fp32_serial_execution_has_zero_wire_value_bytes() {
        let (dense, dims) = banded_gapped(6, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let numeric = NumericOptions {
            precision: Precision::Fp32,
            ..NumericOptions::default()
        };
        let (_, report) = engine.sign(&m, 0.0, &numeric, &comm);
        // Single rank: everything is local, nothing crosses a wire.
        assert_eq!(report.gather_value_bytes, 0);
        assert_eq!(report.scatter_value_bytes, 0);
    }

    #[test]
    fn distributed_fp32_gather_moves_half_the_value_bytes_of_fp64() {
        let (dense, dims) = banded_gapped(9, 2);
        let engine = SubmatrixEngine::default();
        let bytes_for = |precision: Precision| {
            let numeric = NumericOptions {
                precision,
                ..NumericOptions::default()
            };
            let (results, _) = run_ranks(4, |c| {
                let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
                let (_, report) = engine.sign(&m, 0.0, &numeric, c);
                (report.gather_value_bytes, report.scatter_value_bytes)
            });
            let gather: u64 = results.iter().map(|r| r.0).sum();
            let scatter: u64 = results.iter().map(|r| r.1).sum();
            (gather, scatter)
        };
        let (g64, s64) = bytes_for(Precision::Fp64);
        let (g32, s32) = bytes_for(Precision::Fp32);
        let (gref, sref) = bytes_for(Precision::Fp32Refined);
        assert!(g64 > 0 && s64 > 0, "4-rank run must move value bytes");
        assert_eq!(g32 * 2, g64, "f32 gather must move exactly half");
        assert_eq!(s32 * 2, s64, "f32 scatter must move exactly half");
        // Refined gathers in f32 but scatters the f64 refinement.
        assert_eq!(gref, g32);
        assert_eq!(sref, s64);
    }

    #[test]
    fn distributed_fp32_matches_serial_bitwise() {
        // The keystone determinism property: f32 wire rounding is
        // idempotent with the solve's input rounding, and plain-Fp32
        // results are f32-representable, so any distribution produces the
        // identical matrix.
        let (dense, dims) = banded_gapped(8, 2);
        let comm = SerialComm::new();
        let numeric = NumericOptions {
            precision: Precision::Fp32,
            ..NumericOptions::default()
        };
        let serial = {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            SubmatrixEngine::default()
                .sign(&m, 0.1, &numeric, &comm)
                .0
                .to_dense(&comm)
        };
        let engine = SubmatrixEngine::default();
        let (results, _) = run_ranks(4, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            engine.sign(&m, 0.1, &numeric, c).0.to_dense(c)
        });
        for r in results {
            assert!(r.allclose(&serial, 0.0), "fp32 distribution changed bits");
        }
    }

    #[test]
    fn consensus_survives_regrouping_with_bounded_cache() {
        // The scheduler's epoch pattern: the same engine (bounded cache)
        // is planned through by 2-rank groups, then — after a drop and a
        // fresh world-level re-split — by one 4-rank group. Every
        // membership change alters the (rank, size) keys, so the second
        // epoch's probes all miss; the per-call consensus must walk every
        // rank of the new group into the collective gather together (a
        // divergence deadlocks the barriered world). Counters: each traced
        // call bumps exactly one of hits/builds, so their sum equals the
        // 4 + 4 planning decisions regardless of cache races.
        let (dense, dims) = banded_gapped(8, 2);
        let serial = {
            let comm = SerialComm::new();
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            SubmatrixEngine::default()
                .sign(&m, 0.0, &NumericOptions::default(), &comm)
                .0
                .to_dense(&comm)
        };
        let engine = SubmatrixEngine::new(EngineOptions {
            plan_cache_capacity: Some(2),
            ..EngineOptions::default()
        });
        let (results, _) = run_ranks(4, |c| {
            // Epoch 0: two groups of two.
            let a = {
                let sub = c.split((c.rank() / 2) as u64, c.rank() as u64);
                let m = DbcsrMatrix::from_dense(&dense, dims.clone(), sub.rank(), sub.size(), 0.0);
                engine
                    .sign(&m, 0.0, &NumericOptions::default(), &sub)
                    .0
                    .to_dense(&sub)
            };
            // Epoch boundary: regroup into one group of four.
            let b = {
                let sub = c.split(1 << 32, c.rank() as u64);
                let m = DbcsrMatrix::from_dense(&dense, dims.clone(), sub.rank(), sub.size(), 0.0);
                engine
                    .sign(&m, 0.0, &NumericOptions::default(), &sub)
                    .0
                    .to_dense(&sub)
            };
            (a, b)
        });
        for (a, b) in results {
            assert!(a.allclose(&serial, 1e-13));
            assert!(b.allclose(&serial, 1e-13));
        }
        let stats = engine.stats();
        assert_eq!(
            stats.cache_hits + stats.symbolic_builds,
            8,
            "every rank decides hit/miss once per epoch: {stats:?}"
        );
        assert_eq!(stats.executions, 8);
        assert!(engine.cached_plans() <= 2, "bounded cache overflowed");
    }

    fn manifest_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sm_engine_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn plan_codec_roundtrips_word_exactly() {
        let (dense, dims) = banded_gapped(5, 2);
        let comm = SerialComm::new();
        let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
        let plan = ExecutionPlan::build(
            m.global_pattern(&comm),
            dims,
            &EngineOptions::default(),
            0,
            1,
        );
        let words = encode_plan(&plan);
        let entry = wire::PlanManifestEntry {
            fingerprint: plan.fingerprint.0,
            rank: 0,
            size: 1,
            lru_stamp: 3,
            words,
        };
        let back = decode_plan(&entry).expect("decode");
        // Re-encoding the decode reproduces the words exactly, so every
        // field (including f64 bit patterns) survived.
        assert_eq!(encode_plan(&back), entry.words);
        assert_eq!(back.fingerprint, plan.fingerprint);
        assert_eq!(back.my_specs, plan.my_specs);
        assert_eq!(back.assembly, plan.assembly);
        assert_eq!(back.extraction, plan.extraction);

        // A truncated payload is rejected, not misparsed.
        let mut chopped = entry.clone();
        chopped.words.truncate(entry.words.len() - 1);
        assert!(matches!(
            decode_plan(&chopped),
            Err(PlanPersistError::Corrupt(_))
        ));
    }

    #[test]
    fn export_import_roundtrip_replans_nothing() {
        let (dense, dims) = banded_gapped(6, 2);
        let comm = SerialComm::new();
        let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);

        let warm = SubmatrixEngine::default();
        let _ = warm.sign(&m, 0.0, &NumericOptions::default(), &comm);
        assert_eq!(warm.stats().symbolic_builds, 1);
        let path = manifest_path("roundtrip.smplans");
        let exported = warm.export_plans(&path).expect("export");
        assert_eq!(exported, 1);

        // Fresh process: import, resubmit the same pattern — zero builds.
        let cold = SubmatrixEngine::default();
        let imported = cold.import_plans(&path).expect("import");
        assert_eq!(imported, exported);
        assert_eq!(cold.cached_plans(), 1);
        let (expect, _) = warm.sign(&m, 0.0, &NumericOptions::default(), &comm);
        let (got, report) = cold.sign(&m, 0.0, &NumericOptions::default(), &comm);
        assert!(
            report.plan_cached,
            "imported plan must serve the resubmission"
        );
        let stats = cold.stats();
        assert_eq!(stats.symbolic_builds, 0, "warm restart must replan nothing");
        assert_eq!(stats.cache_hits, 1);
        assert!(got.to_dense(&comm).allclose(&expect.to_dense(&comm), 0.0));
    }

    #[test]
    fn import_rejects_foreign_grouping_and_respects_capacity() {
        let comm = SerialComm::new();
        let producer = SubmatrixEngine::default();
        // Three distinct patterns, touched in a known LRU order.
        let mut mats = Vec::new();
        for nb in [4usize, 5, 6] {
            let (dense, dims) = banded_gapped(nb, 2);
            let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
            let _ = producer.sign(&m, 0.0, &NumericOptions::default(), &comm);
            mats.push(m);
        }
        let path = manifest_path("capacity.smplans");
        assert_eq!(producer.export_plans(&path).expect("export"), 3);

        // A grouping mismatch is refused outright.
        let foreign = SubmatrixEngine::new(EngineOptions {
            grouping: Grouping::Consecutive(2),
            ..EngineOptions::default()
        });
        assert!(matches!(
            foreign.import_plans(&path),
            Err(PlanPersistError::ForeignGrouping { .. })
        ));

        // A bounded importer keeps only the most recently used plans and
        // books the overflow as evictions.
        let bounded = SubmatrixEngine::new(EngineOptions {
            plan_cache_capacity: Some(2),
            ..EngineOptions::default()
        });
        assert_eq!(bounded.import_plans(&path).expect("import"), 2);
        assert_eq!(bounded.cached_plans(), 2);
        assert_eq!(bounded.stats().evictions, 1);
        // The two newest patterns hit; the evicted oldest must rebuild.
        // (Touch newest-first so the rebuild's own insert can't thrash the
        // bounded cache mid-check.)
        for (i, m) in mats.iter().enumerate().rev() {
            let _ = bounded.sign(m, 0.0, &NumericOptions::default(), &comm);
            let stats = bounded.stats();
            if i == 0 {
                assert_eq!(
                    stats.symbolic_builds, 1,
                    "oldest plan was dropped at import"
                );
            }
        }
        let stats = bounded.stats();
        assert_eq!(stats.symbolic_builds, 1);
        assert_eq!(stats.cache_hits, 2);

        // Garbage and missing files surface typed errors.
        let junk = manifest_path("junk.smplans");
        std::fs::write(&junk, b"not a manifest at all").expect("write junk");
        assert!(matches!(
            SubmatrixEngine::default().import_plans(&junk),
            Err(PlanPersistError::Wire(_))
        ));
        assert!(matches!(
            SubmatrixEngine::default().import_plans(&manifest_path("absent.smplans")),
            Err(PlanPersistError::Io(_))
        ));
    }

    #[test]
    #[should_panic(expected = "different communicator size")]
    fn plan_for_wrong_comm_rejected() {
        let (dense, dims) = banded_gapped(4, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
        let comm = SerialComm::new();
        let engine = SubmatrixEngine::default();
        let plan = ExecutionPlan::build(
            m.global_pattern(&comm),
            dims,
            &EngineOptions::default(),
            0,
            4,
        );
        let _ = engine.execute(&plan, &m, 0.0, &NumericOptions::default(), &comm);
    }
}
