//! # sm-core — the submatrix method
//!
//! The paper's primary contribution (Lass, Schade, Kühne, Plessl, SC 2020):
//! evaluate a unary matrix function `f` on a large sparse symmetric matrix
//! `A` by building, for each (block-)column `i`, the dense *principal
//! submatrix* `a_i` induced by the nonzero rows of that column, computing
//! `f(a_i)` locally, and scattering the columns originating from `i` back
//! into a result with the sparsity pattern of `A` (paper Fig. 3).
//!
//! Crate layout mirrors the paper's implementation sections:
//!
//! * [`assembly`] — submatrix index sets and dense assembly/extraction at
//!   the DBCSR block level (Secs. III-A, IV);
//! * [`plan`] — grouping block columns into submatrices, the estimated-
//!   speedup model of Eq. 15, and sub-submatrix splitting (Sec. IV-C);
//! * [`cluster`] — k-means in real space and multilevel graph partitioning
//!   of the sparsity pattern for column combination (Sec. IV-C2, Fig. 5);
//! * [`loadbalance`] — greedy O(n³)-cost contiguous rank assignment
//!   (Sec. IV-E);
//! * [`transfers`] — deduplicated block-transfer planning (Sec. IV-B);
//! * [`solver`] — per-submatrix sign evaluation: eigendecomposition
//!   (Eq. 17), Newton–Schulz (Eq. 11), higher-order Padé (Eq. 19), with
//!   grand-canonical, canonical and finite-temperature modes (Sec. IV-F/G);
//! * [`mu`] — Algorithm 1: canonical µ adjustment on stored
//!   eigendecompositions without re-diagonalizing;
//! * [`engine`] — the persistent [`SubmatrixEngine`]: one-time symbolic
//!   phase (plan, load balance, transfer plan, assembly/extraction index
//!   maps) cached by pattern fingerprint, replayed by a numeric-only
//!   execute — the amortization that SCF/MD loops and the `sm-pipeline`
//!   batch executor build on;
//! * [`method`] — one-shot compatibility drivers producing the density
//!   matrix of Eq. 16, now thin wrappers over the engine;
//! * [`baseline`] — the comparator: 2nd-order Newton–Schulz purification on
//!   the distributed sparse matrix, plus sparse Löwdin orthogonalization;
//! * [`model`] — analytic cluster-time accounting for the scaling studies
//!   (Figs. 6, 8–10), built on `sm_comsim::ClusterModel`.

pub mod assembly;
pub mod baseline;
pub mod cluster;
pub mod engine;
pub mod loadbalance;
pub mod method;
pub mod model;
pub mod mu;
pub mod plan;
pub mod solver;
pub mod split;
pub mod transfers;

pub use assembly::SubmatrixSpec;
pub use engine::{
    EngineOptions, EngineReport, EngineStats, ExecutionPlan, NumericOptions, PlanPersistError,
    SubmatrixEngine,
};
pub use method::{submatrix_density, submatrix_sign, SubmatrixOptions, SubmatrixReport};
pub use plan::SubmatrixPlan;
pub use solver::SignMethod;
