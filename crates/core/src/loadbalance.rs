//! Load balancing: mapping submatrices to ranks.
//!
//! Submatrix dimensions vary with the local chemistry, so assigning equal
//! *counts* per rank is unbalanced. The paper (Sec. IV-E) uses a greedy
//! algorithm that assigns one **consecutive chunk** of submatrices to each
//! rank (consecutive ⇒ neighbouring columns share blocks ⇒ buffered-block
//! reuse, Sec. IV-B2) such that each rank's estimated `Σ n³` load stays
//! under `total/#ranks`, and every rank gets at least one submatrix.

/// Assignment of submatrices to ranks: `ranges[r]` is the contiguous index
/// range owned by rank `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Per-rank contiguous ranges over submatrix indices.
    pub ranges: Vec<std::ops::Range<usize>>,
}

impl Assignment {
    /// Owner rank of submatrix `i`.
    pub fn owner_of(&self, i: usize) -> usize {
        self.ranges
            .iter()
            .position(|r| r.contains(&i))
            .expect("submatrix index outside assignment")
    }

    /// Load per rank under the given cost vector.
    pub fn loads(&self, costs: &[f64]) -> Vec<f64> {
        self.ranges
            .iter()
            .map(|r| costs[r.clone()].iter().sum())
            .collect()
    }

    /// Load imbalance: `max_load / avg_load` (1.0 = perfect).
    pub fn imbalance(&self, costs: &[f64]) -> f64 {
        let loads = self.loads(costs);
        let total: f64 = loads.iter().sum();
        let avg = total / loads.len() as f64;
        if avg == 0.0 {
            return 1.0;
        }
        loads.into_iter().fold(0.0, f64::max) / avg
    }
}

/// Greedy contiguous-chunk assignment (paper Sec. IV-E): walk submatrices
/// in order, moving to the next rank once its accumulated load would exceed
/// `total / n_ranks`, while guaranteeing (a) every rank gets at least one
/// submatrix when possible, and (b) no submatrices are left over.
pub fn greedy_contiguous(costs: &[f64], n_ranks: usize) -> Assignment {
    assert!(n_ranks >= 1);
    let n = costs.len();

    let mut ranges = Vec::with_capacity(n_ranks);
    let mut start = 0usize;
    let mut remaining: f64 = costs.iter().sum();
    for rank in 0..n_ranks {
        let ranks_left = n_ranks - rank;
        let items_left = n - start;
        if items_left == 0 {
            ranges.push(start..start);
            continue;
        }
        // Reserve at least one item for each remaining rank; re-derive the
        // target from the *remaining* load so early rounding errors do not
        // accumulate onto the last ranks.
        let target = remaining / ranks_left as f64;
        let max_end = n - (ranks_left - 1).min(items_left - 1);
        let mut end = start + 1; // at least one submatrix
        let mut load = costs[start];
        // Round to nearest: take the next item if doing so lands closer to
        // the target than stopping short.
        while end < max_end && (load + costs[end] - target).abs() <= (target - load).abs() {
            load += costs[end];
            end += 1;
        }
        if rank + 1 == n_ranks {
            end = n; // last rank absorbs the remainder
            load = costs[start..end].iter().sum();
        }
        ranges.push(start..end);
        start = end;
        remaining -= load;
    }
    debug_assert_eq!(start, n, "all submatrices must be assigned");
    Assignment { ranges }
}

/// Round-robin assignment (non-contiguous; the locality-ablation
/// comparator of Sec. IV-B2). Returns, per rank, the list of submatrix
/// indices rather than a range.
pub fn round_robin(n_items: usize, n_ranks: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); n_ranks];
    for i in 0..n_items {
        out[i % n_ranks].push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_split_evenly() {
        let costs = vec![1.0; 12];
        let a = greedy_contiguous(&costs, 4);
        assert_eq!(a.ranges.len(), 4);
        for r in &a.ranges {
            assert_eq!(r.len(), 3);
        }
        assert!((a.imbalance(&costs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_costs_get_fewer_items() {
        // One huge submatrix (a large solute molecule, Sec. IV-E's example)
        // must sit alone on its rank.
        let mut costs = vec![1.0; 9];
        costs[0] = 100.0;
        let a = greedy_contiguous(&costs, 3);
        assert_eq!(a.ranges[0], 0..1, "heavy item should be alone");
        // Remaining 8 split across 2 ranks.
        let covered: usize = a.ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 9);
    }

    #[test]
    fn every_rank_gets_one_when_possible() {
        let costs = vec![100.0, 1.0, 1.0, 1.0];
        let a = greedy_contiguous(&costs, 4);
        for r in &a.ranges {
            assert_eq!(r.len(), 1);
        }
    }

    #[test]
    fn more_ranks_than_items_leaves_trailing_ranks_empty() {
        let costs = vec![1.0, 2.0];
        let a = greedy_contiguous(&costs, 4);
        let nonempty: usize = a.ranges.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(nonempty, 2);
        let covered: usize = a.ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn ranges_are_contiguous_and_ordered() {
        let costs: Vec<f64> = (0..20).map(|i| 1.0 + (i % 5) as f64).collect();
        let a = greedy_contiguous(&costs, 6);
        let mut expect_start = 0;
        for r in &a.ranges {
            assert_eq!(r.start, expect_start);
            expect_start = r.end;
        }
        assert_eq!(expect_start, 20);
    }

    #[test]
    fn owner_of_lookup() {
        let costs = vec![1.0; 6];
        let a = greedy_contiguous(&costs, 2);
        assert_eq!(a.owner_of(0), 0);
        assert_eq!(a.owner_of(5), 1);
    }

    #[test]
    fn imbalance_bounded_for_moderate_costs() {
        // With costs bounded by the per-rank target, greedy stays within
        // 2x of perfect balance.
        let costs: Vec<f64> = (0..64).map(|i| 1.0 + ((i * 7) % 13) as f64).collect();
        let a = greedy_contiguous(&costs, 8);
        assert!(
            a.imbalance(&costs) < 2.0,
            "imbalance {}",
            a.imbalance(&costs)
        );
    }

    #[test]
    fn round_robin_covers_everything() {
        let rr = round_robin(10, 3);
        assert_eq!(rr[0], vec![0, 3, 6, 9]);
        assert_eq!(rr[1], vec![1, 4, 7]);
        assert_eq!(rr[2], vec![2, 5, 8]);
    }

    #[test]
    fn single_rank_takes_all() {
        let costs = vec![3.0, 1.0, 2.0];
        let a = greedy_contiguous(&costs, 1);
        assert_eq!(a.ranges, vec![0..3]);
    }
}
