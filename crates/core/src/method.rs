//! One-shot submatrix-method drivers.
//!
//! These are thin compatibility wrappers over the persistent
//! [`SubmatrixEngine`]: each call builds a
//! fresh engine, runs the symbolic phase (pattern → plan → load balance →
//! deduplicated transfers → index maps) and one numeric phase, and maps
//! the engine report onto the historical [`SubmatrixReport`] shape. Callers
//! that evaluate the same sparsity pattern repeatedly (SCF/MD loops,
//! batched services) should hold a [`SubmatrixEngine`] — or the
//! `sm-pipeline` facade on top of it — so the symbolic phase is paid once
//! and amortized across iterations; see `ablation_plan_reuse` for the
//! measured gap.

use sm_comsim::Comm;
use sm_dbcsr::{ops, DbcsrMatrix};

use crate::engine::{EngineOptions, NumericOptions, SubmatrixEngine};
pub use crate::engine::{Ensemble, Grouping};
pub use crate::solver::{SignMethod, SolveOptions};
use crate::transfers::TransferStats;

/// Driver options.
#[derive(Debug, Clone)]
pub struct SubmatrixOptions {
    /// Column grouping strategy.
    pub grouping: Grouping,
    /// Per-submatrix solver configuration.
    pub solve: SolveOptions,
    /// Ensemble handling.
    pub ensemble: Ensemble,
    /// Solve local submatrices in parallel with the shared pool.
    pub parallel: bool,
    /// Compute only the *contributing* columns of each submatrix's sign
    /// function instead of the full back-transform (the paper's future-work
    /// optimization, Sec. VII). Requires the diagonalization solver and a
    /// grand-canonical ensemble; saves the `O(n³)` back-transform in favor
    /// of `O(n²·k)` per submatrix.
    pub use_selected_columns: bool,
}

impl Default for SubmatrixOptions {
    fn default() -> Self {
        SubmatrixOptions {
            grouping: Grouping::OnePerColumn,
            solve: SolveOptions::default(),
            ensemble: Ensemble::GrandCanonical,
            parallel: true,
            use_selected_columns: false,
        }
    }
}

impl SubmatrixOptions {
    /// Split into the engine's symbolic/numeric halves.
    pub fn phases(&self) -> (EngineOptions, NumericOptions) {
        (
            EngineOptions {
                grouping: self.grouping.clone(),
                parallel: self.parallel,
                // One-shot drivers build a throwaway engine per call; the
                // cache never outlives it, so bounding is meaningless here.
                plan_cache_capacity: None,
            },
            NumericOptions {
                solve: self.solve,
                ensemble: self.ensemble,
                use_selected_columns: self.use_selected_columns,
                // The one-shot drivers expose precision and backend
                // through their solver options; the engine-level knobs
                // mirror them (an explicit solver backend stays forced,
                // never silently re-resolved by fill).
                precision: self.solve.precision,
                backend: match self.solve.backend {
                    crate::solver::SolveBackend::Dense => crate::engine::BackendPolicy::Dense,
                    crate::solver::SolveBackend::SparseCsr => {
                        crate::engine::BackendPolicy::SparseCsr
                    }
                },
            },
        )
    }
}

/// Instrumentation of one submatrix-method run (this rank's view, with
/// collective totals where noted).
#[derive(Debug, Clone)]
pub struct SubmatrixReport {
    /// Number of submatrices in the global plan.
    pub n_submatrices: usize,
    /// Largest submatrix dimension (global).
    pub max_dim: usize,
    /// Mean submatrix dimension (global).
    pub avg_dim: f64,
    /// Total `Σ n³` cost estimate (global).
    pub total_cost: f64,
    /// This rank's transfer plan statistics.
    pub transfers: TransferStats,
    /// The µ actually used (after canonical adjustment, if any).
    pub mu: f64,
    /// Bisection steps of Algorithm 1 (0 for grand canonical).
    pub bisect_iterations: usize,
    /// Seconds in initialization (pattern, plan, transfers).
    pub init_seconds: f64,
    /// Seconds solving submatrices.
    pub solve_seconds: f64,
    /// Seconds scattering results.
    pub writeback_seconds: f64,
}

/// Compute `sign(K̃ − µI)` with the submatrix method (collective).
/// Returns the block-sparse sign matrix (input pattern preserved) and the
/// run report.
pub fn submatrix_sign<C: Comm>(
    k_tilde: &DbcsrMatrix,
    mu0: f64,
    opts: &SubmatrixOptions,
    comm: &C,
) -> (DbcsrMatrix, SubmatrixReport) {
    let (symbolic, numeric) = opts.phases();
    let engine = SubmatrixEngine::new(symbolic);
    let (result, r) = engine.sign(k_tilde, mu0, &numeric, comm);
    let report = SubmatrixReport {
        n_submatrices: r.n_submatrices,
        max_dim: r.max_dim,
        avg_dim: r.avg_dim,
        total_cost: r.total_cost,
        transfers: r.transfers,
        mu: r.mu,
        bisect_iterations: r.bisect_iterations,
        init_seconds: r.symbolic_seconds + r.gather_seconds,
        solve_seconds: r.solve_seconds,
        writeback_seconds: r.scatter_seconds,
    };
    (result, report)
}

/// Compute the density matrix `D̃ = (I − sign(K̃ − µI)) / 2` (Eq. 16's
/// orthogonal-basis core) with the submatrix method (collective).
pub fn submatrix_density<C: Comm>(
    k_tilde: &DbcsrMatrix,
    mu0: f64,
    opts: &SubmatrixOptions,
    comm: &C,
) -> (DbcsrMatrix, SubmatrixReport) {
    let (mut sign, report) = submatrix_sign(k_tilde, mu0, opts, comm);
    ops::scale(&mut sign, -0.5);
    ops::shift_diag(&mut sign, 0.5);
    (sign, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_comsim::{run_ranks, SerialComm};
    use sm_dbcsr::BlockedDims;
    use sm_linalg::sign::sign_eig;
    use sm_linalg::Matrix;

    /// Block-diagonal symmetric matrix: the submatrix method is exact.
    fn block_diagonal(nb: usize, bs: usize) -> (Matrix, BlockedDims) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::zeros(n, n);
        for b in 0..nb {
            for i in 0..bs {
                for j in 0..bs {
                    let (gi, gj) = (b * bs + i, b * bs + j);
                    dense[(gi, gj)] = if i == j {
                        if (b + i) % 2 == 0 {
                            1.0 + b as f64 * 0.1
                        } else {
                            -1.0 - i as f64 * 0.1
                        }
                    } else {
                        0.1
                    };
                }
            }
        }
        dense.symmetrize();
        (dense, dims)
    }

    /// Banded symmetric matrix with decaying off-diagonals and a gap at 0.
    fn banded_gapped(nb: usize, bs: usize) -> (Matrix, BlockedDims) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.05 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        (dense, dims)
    }

    #[test]
    fn exact_on_block_diagonal() {
        let (dense, dims) = block_diagonal(5, 3);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let (sign, report) = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm);
        let expect = sign_eig(&dense).unwrap();
        let got = sign.to_dense(&comm);
        assert!(
            got.allclose(&expect, 1e-10),
            "block-diagonal case must be exact, max diff {}",
            got.max_abs_diff(&expect)
        );
        assert_eq!(report.n_submatrices, 5);
        assert_eq!(report.max_dim, 3);
    }

    #[test]
    fn approximate_on_banded_matrix() {
        let (dense, dims) = banded_gapped(10, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let (sign, _) = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm);
        let expect = sign_eig(&dense).unwrap();
        let got = sign.to_dense(&comm);
        // Weak coupling: the approximation must be decent but needn't be
        // exact.
        assert!(
            got.max_abs_diff(&expect) < 0.05,
            "max diff {}",
            got.max_abs_diff(&expect)
        );
        // The result keeps the input's block pattern.
        assert_eq!(
            sign.global_pattern(&comm).entries(),
            m.global_pattern(&comm).entries()
        );
    }

    #[test]
    fn combining_columns_does_not_hurt() {
        let (dense, dims) = banded_gapped(12, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let expect = sign_eig(&dense).unwrap();
        let single = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm)
            .0
            .to_dense(&comm);
        let combined = submatrix_sign(
            &m,
            0.0,
            &SubmatrixOptions {
                grouping: Grouping::Consecutive(3),
                ..Default::default()
            },
            &comm,
        )
        .0
        .to_dense(&comm);
        let err_single = single.max_abs_diff(&expect);
        let err_combined = combined.max_abs_diff(&expect);
        assert!(
            err_combined <= err_single * 1.5 + 1e-12,
            "combined {err_combined} much worse than single {err_single}"
        );
    }

    #[test]
    fn iterative_solvers_match_diagonalization_driver() {
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let diag = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm)
            .0
            .to_dense(&comm);
        for method in [SignMethod::NewtonSchulz, SignMethod::Pade(3)] {
            let opts = SubmatrixOptions {
                solve: SolveOptions {
                    method,
                    ..SolveOptions::default()
                },
                ..Default::default()
            };
            let it = submatrix_sign(&m, 0.0, &opts, &comm).0.to_dense(&comm);
            assert!(it.allclose(&diag, 1e-6), "{method:?} deviates");
        }
    }

    #[test]
    fn distributed_matches_serial_exactly() {
        let (dense, dims) = banded_gapped(9, 2);
        let comm = SerialComm::new();
        let serial = {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm)
                .0
                .to_dense(&comm)
        };
        let (results, _) = run_ranks(4, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            let (sign, _) = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), c);
            sign.to_dense(c)
        });
        for r in results {
            assert!(
                r.allclose(&serial, 1e-13),
                "distributed result differs from serial"
            );
        }
    }

    #[test]
    fn density_is_half_one_minus_sign() {
        let (dense, dims) = block_diagonal(4, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let (d, _) = submatrix_density(&m, 0.0, &SubmatrixOptions::default(), &comm);
        let (s, _) = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm);
        let dd = d.to_dense(&comm);
        let mut expect = s.to_dense(&comm);
        expect.scale(-0.5);
        expect.shift_diag(0.5);
        assert!(dd.allclose(&expect, 1e-14));
        // Projector-ish: eigenvalues of D in [0,1].
        let eigs = sm_linalg::eigh::eigvalsh(&dd).unwrap();
        for e in eigs {
            assert!((-1e-9..=1.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn canonical_ensemble_hits_target_electron_count() {
        let (dense, dims) = block_diagonal(6, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        // The spectrum has 6 negative eigenvalues (half of 12); ask for a
        // different occupation: 4 orbitals = 8 electrons.
        let opts = SubmatrixOptions {
            ensemble: Ensemble::Canonical {
                n_electrons: 8.0,
                tol: 1e-8,
                max_iter: 200,
            },
            ..Default::default()
        };
        let (d, report) = submatrix_density(&m, 0.0, &opts, &comm);
        let n = sm_chem_free_electron_count(&d, &comm);
        assert!(
            (n - 8.0).abs() < 1e-5,
            "canonical electron count {n} != 8 (µ = {})",
            report.mu
        );
        assert!(report.bisect_iterations > 0);
    }

    /// 2·Tr(D) without depending on sm-chem.
    fn sm_chem_free_electron_count<C: Comm>(d: &DbcsrMatrix, comm: &C) -> f64 {
        2.0 * ops::trace(d, comm)
    }

    #[test]
    fn finite_temperature_driver() {
        let (dense, dims) = block_diagonal(4, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let opts = SubmatrixOptions {
            solve: SolveOptions {
                kt: 0.05,
                ..SolveOptions::default()
            },
            ..Default::default()
        };
        let (d, _) = submatrix_density(&m, 0.0, &opts, &comm);
        let dd = d.to_dense(&comm);
        // Fermi-smeared density of the exact (block-diagonal) problem.
        let dec = sm_linalg::eigh::eigh(&dense).unwrap();
        let expect = dec.apply(|l| sm_linalg::fermi::fermi_occupation(l, 0.0, 0.05));
        assert!(dd.allclose(&expect, 1e-9));
    }

    #[test]
    fn report_timings_are_populated() {
        let (dense, dims) = banded_gapped(6, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let (_, report) = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm);
        assert!(report.init_seconds >= 0.0);
        assert!(report.solve_seconds > 0.0);
        assert!(report.total_cost > 0.0);
        assert!(report.transfers.unique_bytes > 0);
        assert!(report.avg_dim > 0.0);
    }

    #[test]
    fn sequential_flag_gives_same_result() {
        let (dense, dims) = banded_gapped(7, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let par = submatrix_sign(&m, 0.0, &SubmatrixOptions::default(), &comm)
            .0
            .to_dense(&comm);
        let seq = submatrix_sign(
            &m,
            0.0,
            &SubmatrixOptions {
                parallel: false,
                ..Default::default()
            },
            &comm,
        )
        .0
        .to_dense(&comm);
        assert!(
            par.allclose(&seq, 0.0),
            "parallelism must not change results"
        );
    }
}

#[cfg(test)]
mod selected_columns_tests {
    use super::*;
    use sm_comsim::{run_ranks, SerialComm};
    use sm_dbcsr::BlockedDims;
    use sm_linalg::Matrix;

    fn banded_gapped(nb: usize, bs: usize) -> (Matrix, BlockedDims) {
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut dense = Matrix::from_fn(n, n, |i, j| {
            let bi = (i / bs) as isize;
            let bj = (j / bs) as isize;
            if (bi - bj).abs() > 1 {
                0.0
            } else if i == j {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                0.06 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        dense.symmetrize();
        (dense, dims)
    }

    #[test]
    fn selected_columns_driver_matches_full_driver() {
        let (dense, dims) = banded_gapped(10, 3);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let full = submatrix_sign(&m, 0.1, &SubmatrixOptions::default(), &comm)
            .0
            .to_dense(&comm);
        let opts = SubmatrixOptions {
            use_selected_columns: true,
            ..Default::default()
        };
        let sel = submatrix_sign(&m, 0.1, &opts, &comm).0.to_dense(&comm);
        assert!(
            sel.allclose(&full, 1e-12),
            "selected-columns path deviates, max diff {}",
            sel.max_abs_diff(&full)
        );
    }

    #[test]
    fn selected_columns_with_combined_groups() {
        let (dense, dims) = banded_gapped(12, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        for grouping in [Grouping::OnePerColumn, Grouping::Consecutive(3)] {
            let base = SubmatrixOptions {
                grouping: grouping.clone(),
                ..Default::default()
            };
            let fast = SubmatrixOptions {
                grouping,
                use_selected_columns: true,
                ..Default::default()
            };
            let full = submatrix_sign(&m, 0.0, &base, &comm).0.to_dense(&comm);
            let sel = submatrix_sign(&m, 0.0, &fast, &comm).0.to_dense(&comm);
            assert!(sel.allclose(&full, 1e-12));
        }
    }

    #[test]
    fn selected_columns_finite_temperature() {
        let (dense, dims) = banded_gapped(8, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let solve = SolveOptions {
            kt: 0.04,
            ..SolveOptions::default()
        };
        let base = SubmatrixOptions {
            solve,
            ..Default::default()
        };
        let fast = SubmatrixOptions {
            solve,
            use_selected_columns: true,
            ..Default::default()
        };
        let full = submatrix_sign(&m, 0.0, &base, &comm).0.to_dense(&comm);
        let sel = submatrix_sign(&m, 0.0, &fast, &comm).0.to_dense(&comm);
        assert!(sel.allclose(&full, 1e-12));
    }

    #[test]
    fn selected_columns_distributed_matches_serial() {
        let (dense, dims) = banded_gapped(9, 2);
        let comm = SerialComm::new();
        let opts = SubmatrixOptions {
            use_selected_columns: true,
            ..Default::default()
        };
        let serial = {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            submatrix_sign(&m, 0.0, &opts, &comm).0.to_dense(&comm)
        };
        let opts_ref = &opts;
        let (results, _) = run_ranks(4, move |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            submatrix_sign(&m, 0.0, opts_ref, c).0.to_dense(c)
        });
        for r in results {
            assert!(r.allclose(&serial, 1e-13));
        }
    }

    #[test]
    #[should_panic(expected = "grand-canonical")]
    fn selected_columns_rejects_canonical() {
        let (dense, dims) = banded_gapped(4, 2);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let opts = SubmatrixOptions {
            use_selected_columns: true,
            ensemble: Ensemble::Canonical {
                n_electrons: 4.0,
                tol: 1e-8,
                max_iter: 50,
            },
            ..Default::default()
        };
        let _ = submatrix_sign(&m, 0.0, &opts, &comm);
    }
}
