//! Analytic execution models for the scaling experiments.
//!
//! The paper's Figures 6 and 8–10 measure wall-clock times on 1–32 nodes of
//! a Skylake/Omni-Path cluster. This reproduction *counts* the work both
//! methods perform (FLOPs from the submatrix plan or the sparse-multiply
//! pattern, bytes from the transfer plans) and converts it to simulated
//! seconds with [`sm_comsim::ClusterModel`] — see DESIGN.md's substitution
//! table. The counted quantities are exact; only the machine constants are
//! modeled.

use sm_comsim::ClusterModel;
use sm_dbcsr::{BlockedDims, CooPattern};

use crate::loadbalance::greedy_contiguous;
use crate::plan::SubmatrixPlan;
use crate::transfers::RankTransferPlan;

/// Effective FLOPs of a symmetric eigendecomposition + back-transform per
/// `n³`: tridiagonalization (4/3) + QL with eigenvector accumulation (≈6)
/// + the two back-transform GEMMs (≈4) ≈ 10.
pub const EIGH_FLOPS_PER_N3: f64 = 10.0;

/// Simulated time breakdown of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModeledTime {
    /// Initialization: pattern exchange + deduplicated block transfers.
    pub init: f64,
    /// Compute phase (max over ranks).
    pub compute: f64,
    /// Result write-back transfers.
    pub writeback: f64,
}

impl ModeledTime {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.init + self.compute + self.writeback
    }
}

/// Model a submatrix-method run of the given plan on `n_cores` (the paper
/// uses one rank per core for the submatrix method, Sec. V).
pub fn model_submatrix_run(
    plan: &SubmatrixPlan,
    pattern: &CooPattern,
    dims: &BlockedDims,
    n_cores: usize,
    cluster: &ClusterModel,
) -> ModeledTime {
    assert!(n_cores >= 1);
    let costs: Vec<f64> = plan.specs.iter().map(|s| s.cost()).collect();
    let assignment = greedy_contiguous(&costs, n_cores);

    let mut max_compute = 0.0f64;
    let mut max_init = 0.0f64;
    let mut max_writeback = 0.0f64;
    for range in &assignment.ranges {
        if range.is_empty() {
            continue;
        }
        let specs: Vec<&crate::assembly::SubmatrixSpec> =
            plan.specs[range.clone()].iter().collect();
        // Compute: eigendecomposition cost of each assigned submatrix.
        let flops: f64 = specs.iter().map(|s| s.cost() * EIGH_FLOPS_PER_N3).sum();
        max_compute = max_compute.max(cluster.dense_compute_time(flops));

        // Init: the global COO pattern allgather (every rank receives the
        // full nonzero-block list, 16 bytes per entry) plus the
        // deduplicated block transfers; the fraction of blocks living on
        // other ranks is (n_cores − 1)/n_cores under the cyclic
        // distribution.
        let coo_bytes = pattern.nnz() as f64 * 16.0;
        let tp = RankTransferPlan::for_specs(&specs, pattern);
        let remote_fraction = (n_cores - 1) as f64 / n_cores as f64;
        let bytes = coo_bytes * remote_fraction + tp.unique_bytes(dims) as f64 * remote_fraction;
        let msgs = (n_cores - 1).min(tp.unique_blocks.len()) as f64;
        max_init = max_init.max(cluster.transfer_time(bytes, msgs));

        // Write-back: one result column set per spec (the pattern column
        // blocks), again mostly remote.
        let result_bytes: f64 = specs
            .iter()
            .flat_map(|s| s.cols.iter())
            .map(|&c| {
                pattern
                    .rows_in_col(c)
                    .map(|r| (dims.size(r) * dims.size(c) * 8) as f64)
                    .sum::<f64>()
            })
            .sum();
        max_writeback =
            max_writeback.max(cluster.transfer_time(result_bytes * remote_fraction, msgs));
    }

    ModeledTime {
        init: max_init,
        compute: max_compute,
        writeback: max_writeback,
    }
}

/// Flops of one block-sparse multiplication `X·X` for a pattern with
/// uniform block size `b`: `Σ_k 2·b³·c_k²` where `c_k` is the nonzero-block
/// count of column k (symmetric pattern assumed). `fill` models the
/// iterate's densification relative to the input pattern.
pub fn sparse_multiply_flops(pattern: &CooPattern, block_size: usize, fill: f64) -> f64 {
    let b3 = (block_size as f64).powi(3);
    let mut triples = 0.0;
    for c in 0..pattern.nb() {
        let ck = pattern.col_nnz(c) as f64 * fill;
        let ck = ck.min(pattern.nb() as f64);
        triples += ck * ck;
    }
    2.0 * b3 * triples
}

/// Estimate of Newton–Schulz iteration count to reach `eps` for a spectrum
/// with relative gap `gap_rel = gap / spectral_width`: the pre-asymptotic
/// phase needs ~log₂(1/gap_rel) doublings before quadratic convergence
/// takes over with ~log₂ log(1/eps) extra steps.
pub fn ns_iteration_estimate(gap_rel: f64, eps: f64) -> usize {
    assert!(gap_rel > 0.0 && gap_rel < 1.0);
    assert!(eps > 0.0 && eps < 1.0);
    let pre = (1.0 / gap_rel).log2().ceil();
    let post = (1.0f64.max((1.0 / eps).ln())).log2().ceil();
    (pre + post).max(1.0) as usize
}

/// Per-block, per-Cannon-step index-processing cost of the block-sparse
/// multiply (seconds): libDBCSR rebuilds its local multiplication index —
/// matching A-tile columns against B-tile rows — at every shift step.
pub const DBCSR_INDEX_COST_PER_BLOCK: f64 = 400e-9;

/// Model a Newton–Schulz run: `iterations` sparse iterations, each costing
/// two multiplications plus Cannon communication on a √ranks × √ranks grid.
/// The paper runs NS with 8 ranks × 5 threads per node (Sec. V): `n_cores`
/// is total cores; `ranks = n_cores / threads_per_rank`. Ranks on one node
/// share the NIC, so shift bandwidth divides by ranks-per-node; every shift
/// step also pays the per-block index-processing cost, which is what erodes
/// Cannon's weak scaling as the grid grows (paper Fig. 10).
pub fn model_newton_schulz_run(
    pattern: &CooPattern,
    dims: &BlockedDims,
    n_cores: usize,
    threads_per_rank: usize,
    iterations: usize,
    fill: f64,
    cluster: &ClusterModel,
) -> ModeledTime {
    assert!(n_cores >= 1 && threads_per_rank >= 1);
    let ranks = (n_cores / threads_per_rank).max(1);
    let q = (ranks as f64).sqrt().floor().max(1.0);

    let block_size = dims.size(0);
    let mult_flops = sparse_multiply_flops(pattern, block_size, fill);
    // Two multiplies per iteration; work split over all cores (ranks ×
    // threads), at the sparse (memory-bound) rate.
    let per_iter_compute = cluster.sparse_compute_time(2.0 * mult_flops / n_cores as f64);

    // Cannon shifts: per multiply, (q−1) shift steps each moving this
    // rank's tile of A and B through the node-shared NIC.
    let nnz_blocks = pattern.nnz() as f64 * fill.min(pattern.nb() as f64);
    let matrix_bytes: f64 = pattern
        .entries()
        .iter()
        .map(|&(r, c)| (dims.size(r) * dims.size(c) * 8) as f64)
        .sum::<f64>()
        * fill.min(pattern.nb() as f64);
    let tile_bytes = matrix_bytes / ranks as f64;
    let ranks_per_node = (cluster.cores_per_node / threads_per_rank).max(1) as f64;
    let shift_bandwidth_penalty = ranks_per_node.min(ranks as f64);
    let per_iter_comm = 2.0
        * (q - 1.0)
        * (cluster.latency * 2.0 + shift_bandwidth_penalty * 2.0 * tile_bytes / cluster.bandwidth);

    // Index processing: q steps per multiply, each touching every block of
    // the local A and B tiles.
    let blocks_per_tile = nnz_blocks / ranks as f64;
    let per_iter_index = 2.0 * q * 2.0 * blocks_per_tile * DBCSR_INDEX_COST_PER_BLOCK;

    ModeledTime {
        init: 0.0,
        compute: iterations as f64 * per_iter_compute,
        writeback: iterations as f64 * (per_iter_comm + per_iter_index),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded(nb: usize, half: usize) -> (CooPattern, BlockedDims) {
        let mut coords = Vec::new();
        for i in 0..nb {
            for j in i.saturating_sub(half)..(i + half + 1).min(nb) {
                coords.push((i, j));
            }
        }
        (
            CooPattern::from_coords(coords, nb),
            BlockedDims::uniform(nb, 6),
        )
    }

    #[test]
    fn submatrix_time_decreases_with_cores() {
        let (p, d) = banded(512, 4);
        let plan = SubmatrixPlan::one_per_column(&p, &d);
        let cluster = ClusterModel::paper_testbed();
        let t1 = model_submatrix_run(&plan, &p, &d, 1, &cluster);
        let t8 = model_submatrix_run(&plan, &p, &d, 8, &cluster);
        let t64 = model_submatrix_run(&plan, &p, &d, 64, &cluster);
        assert!(t8.compute < t1.compute);
        assert!(t64.compute <= t8.compute);
        // Strong-scaling efficiency between 1 and 8 cores stays high for
        // 64 equal submatrices.
        let eff = t1.compute / (8.0 * t8.compute);
        assert!(eff > 0.8, "efficiency {eff}");
    }

    #[test]
    fn submatrix_time_scales_linearly_with_system() {
        // Same per-column structure, doubled system, same cores ⇒ ~2x time.
        let cluster = ClusterModel::paper_testbed();
        let (p1, d1) = banded(64, 4);
        let (p2, d2) = banded(128, 4);
        let t1 = model_submatrix_run(
            &SubmatrixPlan::one_per_column(&p1, &d1),
            &p1,
            &d1,
            4,
            &cluster,
        );
        let t2 = model_submatrix_run(
            &SubmatrixPlan::one_per_column(&p2, &d2),
            &p2,
            &d2,
            4,
            &cluster,
        );
        let ratio = t2.compute / t1.compute;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "expected ~2x compute growth, got {ratio}"
        );
    }

    #[test]
    fn sparse_multiply_flops_counts_triples() {
        // Diagonal pattern: c_k = 1 ⇒ flops = 2·b³·nb.
        let (p, _) = banded(10, 0);
        let f = sparse_multiply_flops(&p, 2, 1.0);
        assert_eq!(f, 2.0 * 8.0 * 10.0);
        // Fill multiplies quadratically (until saturation).
        let f2 = sparse_multiply_flops(&p, 2, 2.0);
        assert_eq!(f2, 4.0 * f);
    }

    #[test]
    fn fill_saturates_at_dense() {
        let (p, _) = banded(4, 0);
        let f_huge = sparse_multiply_flops(&p, 2, 100.0);
        let f_dense = sparse_multiply_flops(&p, 2, 4.0); // c_k = 4 = nb
        assert_eq!(f_huge, f_dense);
    }

    #[test]
    fn ns_iteration_estimate_reasonable() {
        // Typical gapped chemistry: relative gap ~1e-2, eps 1e-10 ⇒ 10-15.
        let k = ns_iteration_estimate(1e-2, 1e-10);
        assert!((8..=20).contains(&k), "estimate {k}");
        // Tighter eps needs more steps.
        assert!(ns_iteration_estimate(1e-2, 1e-14) >= k);
        // Smaller gap needs more steps.
        assert!(ns_iteration_estimate(1e-4, 1e-10) > k);
    }

    #[test]
    fn ns_model_scales_with_iterations_and_cores() {
        let (p, d) = banded(64, 4);
        let cluster = ClusterModel::paper_testbed();
        let t10 = model_newton_schulz_run(&p, &d, 40, 5, 10, 2.0, &cluster);
        let t20 = model_newton_schulz_run(&p, &d, 40, 5, 20, 2.0, &cluster);
        assert!((t20.total() / t10.total() - 2.0).abs() < 1e-9);
        let t_more_cores = model_newton_schulz_run(&p, &d, 160, 5, 10, 2.0, &cluster);
        assert!(t_more_cores.compute < t10.compute);
    }

    #[test]
    fn submatrix_beats_ns_on_very_sparse_systems() {
        // The headline claim (Fig. 6, right side): for sparse matrices the
        // submatrix method outruns Newton–Schulz at equal cores.
        let (p, d) = banded(256, 2); // very sparse: 5 blocks/column
        let cluster = ClusterModel::paper_testbed();
        let plan = SubmatrixPlan::one_per_column(&p, &d);
        let sm = model_submatrix_run(&plan, &p, &d, 80, &cluster);
        let ns = model_newton_schulz_run(&p, &d, 80, 5, 15, 2.0, &cluster);
        assert!(
            sm.total() < ns.total(),
            "submatrix {} should beat NS {}",
            sm.total(),
            ns.total()
        );
    }

    #[test]
    fn ns_beats_submatrix_on_dense_patterns() {
        // The crossover's other side (Fig. 6, left): for nearly dense
        // patterns the n³-per-column submatrix work explodes.
        let (p, d) = banded(64, 60); // essentially dense
        let cluster = ClusterModel::paper_testbed();
        let plan = SubmatrixPlan::one_per_column(&p, &d);
        let sm = model_submatrix_run(&plan, &p, &d, 80, &cluster);
        let ns = model_newton_schulz_run(&p, &d, 80, 5, 15, 1.0, &cluster);
        assert!(
            ns.total() < sm.total(),
            "NS {} should beat submatrix {} on dense patterns",
            ns.total(),
            sm.total()
        );
    }
}
