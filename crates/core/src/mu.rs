//! Canonical-ensemble µ adjustment — paper Algorithm 1.
//!
//! The submatrix method is intrinsically grand canonical (fixed µ). For
//! canonical ensembles (fixed electron count) µ must be adjusted until the
//! density matrix traces to the right number of electrons. Recomputing the
//! sign function per bisection step would multiply the runtime; instead,
//! with the diagonalization solver, the electron count is evaluated from
//! the **stored eigendecompositions** — and only the rows of `Q` belonging
//! to contributing columns are needed, which is the paper's low-memory
//! compromise (Sec. IV-G).

use sm_comsim::{Comm, ReduceOp};
use sm_dbcsr::BlockedDims;
use sm_linalg::eigh::Eigh;
use sm_linalg::fermi::fermi_occupation;
use sm_linalg::Matrix;

use crate::assembly::SubmatrixSpec;

/// The part of a submatrix eigendecomposition Algorithm 1 needs: all
/// eigenvalues plus the rows of `Q` for the contributing element columns.
#[derive(Debug, Clone)]
pub struct StoredDecomposition {
    /// Eigenvalues of the submatrix.
    pub eigenvalues: Vec<f64>,
    /// `Q` rows of contributing columns: shape
    /// `(n_contributing, dim)`.
    pub q_rows: Matrix,
}

impl StoredDecomposition {
    /// Extract the needed rows from a full decomposition. The contributing
    /// element columns are those belonging to the spec's own block columns
    /// (the columns whose results are scattered back).
    pub fn from_eigh(dec: &Eigh, spec: &SubmatrixSpec, dims: &BlockedDims) -> Self {
        let contributing = contributing_rows(spec, dims);
        let dim = dec.eigenvalues.len();
        let mut q_rows = Matrix::zeros(contributing.len(), dim);
        for (out_i, &k) in contributing.iter().enumerate() {
            for l in 0..dim {
                q_rows[(out_i, l)] = dec.eigenvectors[(k, l)];
            }
        }
        StoredDecomposition {
            eigenvalues: dec.eigenvalues.clone(),
            q_rows,
        }
    }

    /// Occupancy contribution `Σ_k D̃_kk = Σ_k Σ_l Q_{k,l}² f(λ_l − µ)`
    /// of this submatrix's contributing columns. At `kt = 0` the Fermi
    /// factor is the Heaviside step with `f(µ) = ½`, exactly Algorithm 1's
    /// `½ − ½·Σ Q² λ'` expression.
    pub fn occupancy(&self, mu: f64, kt: f64) -> f64 {
        let occ: Vec<f64> = self
            .eigenvalues
            .iter()
            .map(|&l| fermi_occupation(l, mu, kt))
            .collect();
        let mut total = 0.0;
        for k in 0..self.q_rows.nrows() {
            for (l, &f) in occ.iter().enumerate() {
                let q = self.q_rows[(k, l)];
                total += q * q * f;
            }
        }
        total
    }

    /// Approximate memory footprint in bytes (eigenvalues + stored rows) —
    /// versus `dim²` for a full decomposition.
    pub fn memory_bytes(&self) -> usize {
        (self.eigenvalues.len() + self.q_rows.nrows() * self.q_rows.ncols()) * 8
    }
}

/// Element indices (submatrix-local) of the columns that contribute to the
/// sparse result: all element columns of the spec's own block columns.
pub fn contributing_rows(spec: &SubmatrixSpec, dims: &BlockedDims) -> Vec<usize> {
    let mut out = Vec::new();
    for &bc in &spec.cols {
        let off = spec
            .offset_of(bc)
            .expect("spec columns always included in its rows");
        for j in 0..dims.size(bc) {
            out.push(off + j);
        }
    }
    out
}

/// Result of the µ bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuAdjustment {
    /// The adjusted chemical potential.
    pub mu: f64,
    /// Bisection steps used.
    pub iterations: usize,
    /// Final occupancy error (orbitals, not electrons).
    pub occupancy_error: f64,
}

/// Algorithm 1: adjust µ until the summed occupancy of all submatrices
/// matches `target_occupancy` (in orbitals; electrons / 2 for closed-shell
/// systems). Collective: every rank passes its local decompositions and
/// all ranks converge to the identical µ.
pub fn adjust_mu<C: Comm>(
    stored: &[StoredDecomposition],
    mu0: f64,
    target_occupancy: f64,
    kt: f64,
    tol: f64,
    max_iter: usize,
    comm: &C,
) -> MuAdjustment {
    let global_occ = |mu: f64| -> f64 {
        let local: f64 = stored.iter().map(|s| s.occupancy(mu, kt)).sum();
        let mut buf = [local];
        comm.allreduce_f64(ReduceOp::Sum, &mut buf);
        buf[0]
    };

    // Bracket the root: occupancy is nondecreasing in µ.
    let mut lo = mu0 - 1.0;
    let mut hi = mu0 + 1.0;
    let mut expand = 0;
    while global_occ(lo) > target_occupancy && expand < 60 {
        lo -= hi - lo;
        expand += 1;
    }
    while global_occ(hi) < target_occupancy && expand < 120 {
        hi += hi - lo;
        expand += 1;
    }

    let mut iterations = 0;
    let mut mu = 0.5 * (lo + hi);
    let mut err = global_occ(mu) - target_occupancy;
    while err.abs() > tol && iterations < max_iter {
        if err > 0.0 {
            hi = mu;
        } else {
            lo = mu;
        }
        mu = 0.5 * (lo + hi);
        err = global_occ(mu) - target_occupancy;
        iterations += 1;
        // At zero temperature the occupancy is a step function; if the
        // target falls inside a jump the bracket collapses onto the jump
        // location without the error reaching `tol`. Stop there — the
        // returned µ is the best zero-T answer (a small `kt` smooths the
        // step if an exact count is required, Sec. IV-F).
        if hi - lo < 1e-13 * mu.abs().max(1.0) {
            break;
        }
    }

    MuAdjustment {
        mu,
        iterations,
        occupancy_error: err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_comsim::SerialComm;
    use sm_dbcsr::CooPattern;
    use sm_linalg::eigh::eigh;

    /// A dense (fully-connected) pattern so a single submatrix covers the
    /// whole matrix: occupancy must then match the dense count exactly.
    fn dense_setup(nb: usize, bs: usize) -> (CooPattern, BlockedDims, Matrix) {
        let mut coords = Vec::new();
        for i in 0..nb {
            for j in 0..nb {
                coords.push((i, j));
            }
        }
        let dims = BlockedDims::uniform(nb, bs);
        let n = dims.n();
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                i as f64 - (n as f64) / 2.0
            } else {
                0.1 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        (CooPattern::from_coords(coords, nb), dims, a)
    }

    #[test]
    fn contributing_rows_are_spec_columns() {
        let (p, dims, _) = dense_setup(3, 2);
        let spec = SubmatrixSpec::build(&p, &dims, &[1]);
        // Block column 1 occupies element rows 2..4 of the submatrix
        // (entire matrix here).
        assert_eq!(contributing_rows(&spec, &dims), vec![2, 3]);
    }

    #[test]
    fn occupancy_matches_dense_eigenvalue_count() {
        let (p, dims, a) = dense_setup(4, 2);
        let spec = SubmatrixSpec::build(&p, &dims, &[0, 1, 2, 3]);
        let dec = eigh(&a).unwrap();
        let stored = StoredDecomposition::from_eigh(&dec, &spec, &dims);
        let mu = 0.0;
        let expect: f64 = dec
            .eigenvalues
            .iter()
            .map(|&l| fermi_occupation(l, mu, 0.0))
            .sum();
        assert!((stored.occupancy(mu, 0.0) - expect).abs() < 1e-10);
    }

    #[test]
    fn occupancy_monotone_in_mu() {
        let (p, dims, a) = dense_setup(4, 2);
        let spec = SubmatrixSpec::build(&p, &dims, &[0, 1, 2, 3]);
        let dec = eigh(&a).unwrap();
        let stored = StoredDecomposition::from_eigh(&dec, &spec, &dims);
        let mut prev = -1.0;
        for step in -10..=10 {
            let occ = stored.occupancy(step as f64 * 0.5, 0.01);
            assert!(occ >= prev - 1e-12);
            prev = occ;
        }
    }

    #[test]
    fn bisection_finds_exact_occupation() {
        let (p, dims, a) = dense_setup(4, 2);
        let spec = SubmatrixSpec::build(&p, &dims, &[0, 1, 2, 3]);
        let dec = eigh(&a).unwrap();
        let stored = vec![StoredDecomposition::from_eigh(&dec, &spec, &dims)];
        let comm = SerialComm::new();
        // Demand exactly 3 occupied orbitals.
        let adj = adjust_mu(&stored, 0.0, 3.0, 0.0, 1e-10, 200, &comm);
        assert!(
            adj.occupancy_error.abs() < 1e-6,
            "err {}",
            adj.occupancy_error
        );
        // µ must lie between the 3rd and 4th eigenvalues.
        assert!(adj.mu > dec.eigenvalues[2] && adj.mu < dec.eigenvalues[3]);
    }

    #[test]
    fn bisection_with_finite_temperature() {
        let (p, dims, a) = dense_setup(4, 2);
        let spec = SubmatrixSpec::build(&p, &dims, &[0, 1, 2, 3]);
        let dec = eigh(&a).unwrap();
        let stored = vec![StoredDecomposition::from_eigh(&dec, &spec, &dims)];
        let comm = SerialComm::new();
        let adj = adjust_mu(&stored, 0.0, 3.5, 0.05, 1e-10, 200, &comm);
        // At finite T fractional occupation is reachable exactly.
        assert!(adj.occupancy_error.abs() < 1e-8);
    }

    #[test]
    fn memory_compromise_is_smaller_than_full_q() {
        let (p, dims, a) = dense_setup(6, 2);
        let spec = SubmatrixSpec::build(&p, &dims, &[2]);
        let dec = eigh(&a).unwrap();
        let stored = StoredDecomposition::from_eigh(&dec, &spec, &dims);
        let full_bytes = dec.eigenvectors.nrows() * dec.eigenvectors.ncols() * 8;
        assert!(stored.memory_bytes() < full_bytes / 2);
    }

    #[test]
    fn partitioned_submatrices_sum_to_dense_occupancy() {
        // Splitting the matrix into per-column submatrices: occupancies
        // are approximate individually but their µ-dependence still brackets
        // the dense count for a gapped spectrum.
        let (p, dims, a) = dense_setup(4, 2);
        let dec_full = eigh(&a).unwrap();
        let comm = SerialComm::new();
        let mut stored = Vec::new();
        for c in 0..4 {
            let spec = SubmatrixSpec::build(&p, &dims, &[c]);
            // Dense pattern ⇒ every submatrix is the full matrix.
            let dec = eigh(&a).unwrap();
            stored.push(StoredDecomposition::from_eigh(&dec, &spec, &dims));
        }
        let target = 4.0;
        let adj = adjust_mu(&stored, 0.0, target, 0.0, 1e-10, 200, &comm);
        let total: f64 = stored.iter().map(|s| s.occupancy(adj.mu, 0.0)).sum();
        assert!((total - target).abs() < 1e-6);
        // Since each submatrix here is exact, µ agrees with the dense one.
        assert!(adj.mu > dec_full.eigenvalues[3] && adj.mu < dec_full.eigenvalues[4]);
    }
}
