//! Submatrix plans: how block columns are grouped into submatrices.
//!
//! The baseline plan generates one submatrix per block column (paper
//! Sec. III-A applied at the DBCSR block level, Sec. IV-C). Combining
//! several block columns into one submatrix trades fewer, larger solves for
//! possibly redundant work; Eq. 15 estimates the net speedup `S` under the
//! `n³` cost model. The evaluation's "simple greedy heuristic" combines
//! consecutive block columns, while the cluster-based heuristics live in
//! [`crate::cluster`]. Sub-submatrix splitting (Sec. IV-C1) applies the
//! method a second time *inside* an assembled submatrix at element level.

use sm_dbcsr::{BlockedDims, CooPattern};
use sm_linalg::Matrix;

use crate::assembly::SubmatrixSpec;

/// A full plan: every block column appears in exactly one spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmatrixPlan {
    /// The submatrix specs, in deterministic order.
    pub specs: Vec<SubmatrixSpec>,
}

impl SubmatrixPlan {
    /// One submatrix per block column (the method's default).
    pub fn one_per_column(pattern: &CooPattern, dims: &BlockedDims) -> Self {
        let specs = (0..pattern.nb())
            .map(|c| SubmatrixSpec::build(pattern, dims, &[c]))
            .collect();
        SubmatrixPlan { specs }
    }

    /// Combine consecutive runs of `group_size` block columns — the greedy
    /// heuristic used in the paper's evaluation (Sec. V: "combining
    /// multiples of these basic regions").
    pub fn consecutive(pattern: &CooPattern, dims: &BlockedDims, group_size: usize) -> Self {
        assert!(group_size >= 1);
        let nb = pattern.nb();
        let mut specs = Vec::new();
        let mut start = 0usize;
        while start < nb {
            let end = (start + group_size).min(nb);
            let cols: Vec<usize> = (start..end).collect();
            specs.push(SubmatrixSpec::build(pattern, dims, &cols));
            start = end;
        }
        SubmatrixPlan { specs }
    }

    /// Build from explicit column groups (the clustering heuristics).
    ///
    /// # Panics
    /// Panics if the groups do not partition `0..nb`.
    pub fn from_groups(pattern: &CooPattern, dims: &BlockedDims, groups: &[Vec<usize>]) -> Self {
        let mut seen = vec![false; pattern.nb()];
        for g in groups {
            for &c in g {
                assert!(!seen[c], "block column {c} appears in two groups");
                seen[c] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "groups must cover every block column"
        );
        let specs = groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|g| SubmatrixSpec::build(pattern, dims, g))
            .collect();
        SubmatrixPlan { specs }
    }

    /// Number of submatrices `N_S`.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if the plan is empty (zero-dimensional matrix).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total estimated cost `Σ nᵢ³` (paper Eq. 14).
    pub fn total_cost(&self) -> f64 {
        self.specs.iter().map(SubmatrixSpec::cost).sum()
    }

    /// Submatrix dimensions.
    pub fn dims(&self) -> Vec<usize> {
        self.specs.iter().map(|s| s.dim).collect()
    }

    /// Largest submatrix dimension (the `dim(SM)` series of paper Fig. 4).
    pub fn max_dim(&self) -> usize {
        self.specs.iter().map(|s| s.dim).max().unwrap_or(0)
    }

    /// Mean submatrix dimension.
    pub fn avg_dim(&self) -> f64 {
        if self.specs.is_empty() {
            return 0.0;
        }
        self.specs.iter().map(|s| s.dim as f64).sum::<f64>() / self.specs.len() as f64
    }
}

/// Estimated additional speedup `S` of a combined plan over the
/// one-per-column plan (paper Eq. 15): `S = Σ ñᵢ³ / Σ nᵢ³`.
pub fn estimated_speedup(single_columns: &SubmatrixPlan, combined: &SubmatrixPlan) -> f64 {
    let denom = combined.total_cost();
    if denom == 0.0 {
        return 1.0;
    }
    single_columns.total_cost() / denom
}

/// One sub-submatrix produced by element-level splitting.
#[derive(Debug, Clone)]
pub struct SubSubmatrix {
    /// Element indices (within the parent submatrix) that induce this
    /// sub-submatrix.
    pub indices: Vec<usize>,
    /// The dense sub-submatrix.
    pub matrix: Matrix,
    /// The element column (within the parent) this sub-submatrix solves.
    pub target_col: usize,
}

/// Apply the submatrix method a second time at single-element-column level
/// inside an assembled dense submatrix (paper Sec. IV-C1). Only the
/// `target_cols` (parent-local element columns that originate from the
/// spec's block columns) need sub-submatrices. `eps` decides which elements
/// count as zero.
pub fn split_submatrix(a: &Matrix, target_cols: &[usize], eps: f64) -> Vec<SubSubmatrix> {
    assert!(a.is_square());
    let n = a.nrows();
    target_cols
        .iter()
        .map(|&c| {
            assert!(c < n);
            let mut indices: Vec<usize> = (0..n).filter(|&r| a[(r, c)].abs() > eps).collect();
            if indices.binary_search(&c).is_err() {
                // The diagonal must be part of the principal set.
                indices.push(c);
                indices.sort_unstable();
            }
            let matrix = a.principal_submatrix(&indices);
            SubSubmatrix {
                indices,
                matrix,
                target_col: c,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded_pattern(nb: usize, half: usize) -> CooPattern {
        let mut coords = Vec::new();
        for i in 0..nb {
            for j in i.saturating_sub(half)..(i + half + 1).min(nb) {
                coords.push((i, j));
            }
        }
        CooPattern::from_coords(coords, nb)
    }

    #[test]
    fn one_per_column_covers_all() {
        let p = banded_pattern(6, 1);
        let d = BlockedDims::uniform(6, 3);
        let plan = SubmatrixPlan::one_per_column(&p, &d);
        assert_eq!(plan.len(), 6);
        let cols: Vec<usize> = plan.specs.iter().flat_map(|s| s.cols.clone()).collect();
        assert_eq!(cols, (0..6).collect::<Vec<_>>());
        // Interior columns: 3 block rows of size 3 → dim 9.
        assert_eq!(plan.specs[2].dim, 9);
        assert_eq!(plan.max_dim(), 9);
    }

    #[test]
    fn consecutive_grouping() {
        let p = banded_pattern(7, 1);
        let d = BlockedDims::uniform(7, 2);
        let plan = SubmatrixPlan::consecutive(&p, &d, 3);
        assert_eq!(plan.len(), 3); // groups {0,1,2},{3,4,5},{6}
        assert_eq!(plan.specs[0].cols, vec![0, 1, 2]);
        assert_eq!(plan.specs[2].cols, vec![6]);
    }

    #[test]
    fn from_groups_partition_validation() {
        let p = banded_pattern(4, 1);
        let d = BlockedDims::uniform(4, 2);
        let plan = SubmatrixPlan::from_groups(&p, &d, &[vec![0, 1], vec![2, 3]]);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn overlapping_groups_rejected() {
        let p = banded_pattern(3, 1);
        let d = BlockedDims::uniform(3, 2);
        SubmatrixPlan::from_groups(&p, &d, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "cover every block column")]
    fn incomplete_groups_rejected() {
        let p = banded_pattern(3, 1);
        let d = BlockedDims::uniform(3, 2);
        SubmatrixPlan::from_groups(&p, &d, &[vec![0, 1]]);
    }

    #[test]
    fn combining_shared_neighborhoods_gives_speedup() {
        // Banded pattern: adjacent columns share most of their rows, so
        // combining them is a win under the n³ model (the Fig. 5 regime).
        let p = banded_pattern(40, 3);
        let d = BlockedDims::uniform(40, 2);
        let singles = SubmatrixPlan::one_per_column(&p, &d);
        let combined = SubmatrixPlan::consecutive(&p, &d, 4);
        let s = estimated_speedup(&singles, &combined);
        assert!(s > 1.0, "expected combining speedup, got {s}");
        // Over-combining into one giant submatrix destroys the advantage.
        let giant = SubmatrixPlan::consecutive(&p, &d, 40);
        let s_giant = estimated_speedup(&singles, &giant);
        assert!(s_giant < s, "giant group should be worse than moderate");
    }

    #[test]
    fn total_cost_is_cubic_sum() {
        let p = banded_pattern(3, 0); // diagonal only
        let d = BlockedDims::uniform(3, 2);
        let plan = SubmatrixPlan::one_per_column(&p, &d);
        assert_eq!(plan.total_cost(), 3.0 * 8.0);
        assert_eq!(plan.avg_dim(), 2.0);
    }

    #[test]
    fn split_submatrix_exact_for_block_diagonal() {
        // A 4x4 with two decoupled 2x2 blocks: splitting column 0 must
        // select exactly indices {0,1}.
        let a = Matrix::from_row_major(
            4,
            4,
            &[
                2.0, 1.0, 0.0, 0.0, //
                1.0, 2.0, 0.0, 0.0, //
                0.0, 0.0, 3.0, 1.0, //
                0.0, 0.0, 1.0, 3.0,
            ],
        );
        let subs = split_submatrix(&a, &[0, 2], 0.0);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].indices, vec![0, 1]);
        assert_eq!(subs[0].matrix.shape(), (2, 2));
        assert_eq!(subs[1].indices, vec![2, 3]);
        assert_eq!(subs[1].target_col, 2);
    }

    #[test]
    fn split_always_includes_diagonal() {
        // Column 1 has a zero diagonal element but splitting still keeps
        // index 1 in the principal set.
        let a = Matrix::from_row_major(
            3,
            3,
            &[
                1.0, 0.5, 0.0, //
                0.5, 0.0, 0.0, //
                0.0, 0.0, 1.0,
            ],
        );
        let subs = split_submatrix(&a, &[1], 1e-12);
        assert_eq!(subs[0].indices, vec![0, 1]);
    }
}
