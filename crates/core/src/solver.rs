//! Per-submatrix sign evaluation.
//!
//! The paper solves the assembled dense submatrices either with the same
//! iterative schemes CP2K applies to the full sparse matrix, or — the
//! method of choice (Sec. IV-F) — by eigendecomposition (`dsyevd`), which
//! additionally enables canonical-ensemble µ adjustment (Algorithm 1) and
//! finite-temperature purification for free.

use sm_linalg::eigh::{eigh, Eigh};
use sm_linalg::fermi::smeared_sign;
use sm_linalg::sign::{extended_signum, sign_iteration, SignIterationOptions};
use sm_linalg::{LinalgError, Matrix};

/// How to evaluate `sign(a − µI)` on a dense submatrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignMethod {
    /// Eigendecomposition + elementwise signum (paper Eq. 17). Supports
    /// finite temperature and canonical µ adjustment.
    Diagonalization,
    /// 2nd-order Newton–Schulz iteration (paper Eq. 11).
    NewtonSchulz,
    /// Padé-family iteration of the given order ≥ 2 (order 3 = Eq. 19).
    Pade(usize),
    /// Element-wise sparse (CSR) iteration of the given order with the
    /// given element filter — the paper's Sec. V-C proposal for submatrices
    /// whose element fill is far below their block fill (DZVP).
    ElementSparse {
        /// Padé order (2 = Newton–Schulz).
        order: usize,
        /// Per-iteration element filter.
        eps: f64,
    },
}

/// Options for a submatrix solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Evaluation method.
    pub method: SignMethod,
    /// Electronic temperature `k_B·T` (0 = sign function; > 0 replaces the
    /// signum with the Fermi-derived smeared sign, Sec. IV-F).
    pub kt: f64,
    /// Convergence tolerance of the iterative methods.
    pub tol: f64,
    /// Iteration budget of the iterative methods.
    pub max_iter: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            method: SignMethod::Diagonalization,
            kt: 0.0,
            tol: 1e-10,
            max_iter: 100,
        }
    }
}

/// Result of one submatrix solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// `sign(a − µI)` (or its Fermi-smeared generalization).
    pub sign: Matrix,
    /// The eigendecomposition, kept when the method produces one — this is
    /// what Algorithm 1 reuses for canonical µ bisection.
    pub decomposition: Option<Eigh>,
    /// Iterations used (0 for diagonalization).
    pub iterations: usize,
}

/// Evaluate `sign(a − µI)` on one dense symmetric submatrix.
pub fn solve_sign(a: &Matrix, mu: f64, opts: &SolveOptions) -> Result<SolveResult, LinalgError> {
    match opts.method {
        SignMethod::Diagonalization => {
            let dec = eigh(a)?;
            let sign = sign_from_decomposition(&dec, mu, opts.kt);
            Ok(SolveResult {
                sign,
                decomposition: Some(dec),
                iterations: 0,
            })
        }
        SignMethod::ElementSparse { order, eps } => {
            assert!(
                opts.kt == 0.0,
                "the element-sparse iteration only supports zero temperature"
            );
            let r = sm_linalg::sparse::sparse_sign_iteration(
                a,
                mu,
                order,
                eps,
                opts.tol.max(eps),
                opts.max_iter,
            )?;
            if !r.converged {
                return Err(LinalgError::NoConvergence {
                    op: "element-sparse submatrix sign iteration",
                    iterations: r.iterations,
                });
            }
            Ok(SolveResult {
                iterations: r.iterations,
                sign: r.sign,
                decomposition: None,
            })
        }
        SignMethod::NewtonSchulz | SignMethod::Pade(_) => {
            assert!(
                opts.kt == 0.0,
                "iterative sign methods only support zero temperature; \
                 use Diagonalization for finite-temperature purification"
            );
            let order = match opts.method {
                SignMethod::NewtonSchulz => 2,
                SignMethod::Pade(p) => p,
                _ => unreachable!(),
            };
            let mut shifted = a.clone();
            shifted.shift_diag(-mu);
            let r = sign_iteration(
                &shifted,
                order,
                SignIterationOptions {
                    tol: opts.tol,
                    max_iter: opts.max_iter,
                    prescale: true,
                },
            )?;
            if !r.converged {
                return Err(LinalgError::NoConvergence {
                    op: "submatrix sign iteration",
                    iterations: r.trace.len(),
                });
            }
            Ok(SolveResult {
                iterations: r.trace.len(),
                sign: r.sign,
                decomposition: None,
            })
        }
    }
}

/// `sign(a − µI)` from a stored decomposition of `a` — the reuse that makes
/// Algorithm 1's µ bisection cheap: no re-diagonalization, only a
/// back-transform.
pub fn sign_from_decomposition(dec: &Eigh, mu: f64, kt: f64) -> Matrix {
    if kt > 0.0 {
        dec.apply(|l| smeared_sign(l, mu, kt))
    } else {
        dec.apply(|l| extended_signum(l - mu))
    }
}

/// **Selected columns** of `sign(a − µI)` from a decomposition — the
/// paper's future-work optimization ("efforts are currently on the way
/// that try to selectively calculate selected elements of the sign
/// function", Sec. VII): the submatrix method only scatters the columns
/// originating from its own block columns, so computing
/// `Q · diag(f(λ)) · (Q^T)[:, cols]` costs `O(n²·k)` instead of the
/// `O(n³)` full back-transform.
///
/// Returns an `n × cols.len()` matrix whose `j`-th column is column
/// `cols[j]` of the sign matrix.
pub fn sign_columns_from_decomposition(dec: &Eigh, mu: f64, kt: f64, cols: &[usize]) -> Matrix {
    let n = dec.eigenvalues.len();
    let k = cols.len();
    let f: Vec<f64> = dec
        .eigenvalues
        .iter()
        .map(|&l| {
            if kt > 0.0 {
                smeared_sign(l, mu, kt)
            } else {
                extended_signum(l - mu)
            }
        })
        .collect();
    // W = diag(f) · Q^T[:, cols]  (l-th row of Q^T is the l-th eigenvector;
    // its `c`-th entry is Q[c, l]).
    let mut w = Matrix::zeros(n, k);
    for (j, &c) in cols.iter().enumerate() {
        assert!(c < n, "selected column {c} out of range");
        for l in 0..n {
            w[(l, j)] = f[l] * dec.eigenvectors[(c, l)];
        }
    }
    // Result = Q · W.
    let mut out = Matrix::zeros(n, k);
    sm_linalg::gemm::gemm(
        1.0,
        &dec.eigenvectors,
        sm_linalg::gemm::Op::NoTrans,
        &w,
        sm_linalg::gemm::Op::NoTrans,
        0.0,
        &mut out,
    )
    .expect("shapes consistent by construction");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_linalg::gemm::matmul;

    fn gapped(n: usize, gap_at: f64) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    gap_at + 1.0
                } else {
                    gap_at - 1.0
                }
            } else {
                0.2 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn diagonalization_solver_basic() {
        let a = gapped(12, 0.3);
        let r = solve_sign(&a, 0.3, &SolveOptions::default()).unwrap();
        let s2 = matmul(&r.sign, &r.sign).unwrap();
        assert!(s2.allclose(&Matrix::identity(12), 1e-9));
        assert!(r.decomposition.is_some());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iterative_methods_match_diagonalization() {
        let a = gapped(10, -0.2);
        let mu = -0.2;
        let reference = solve_sign(&a, mu, &SolveOptions::default()).unwrap();
        for method in [
            SignMethod::NewtonSchulz,
            SignMethod::Pade(3),
            SignMethod::Pade(5),
        ] {
            let opts = SolveOptions {
                method,
                ..SolveOptions::default()
            };
            let r = solve_sign(&a, mu, &opts).unwrap();
            assert!(
                r.sign.allclose(&reference.sign, 1e-7),
                "{method:?} disagrees with diagonalization"
            );
            assert!(r.iterations > 0);
            assert!(r.decomposition.is_none());
        }
    }

    #[test]
    fn mu_shift_flips_occupation() {
        let a = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        // µ below the spectrum: everything positive.
        let r = solve_sign(&a, 0.0, &SolveOptions::default()).unwrap();
        assert!(r.sign.allclose(&Matrix::identity(3), 1e-12));
        // µ above: everything negative.
        let r = solve_sign(&a, 10.0, &SolveOptions::default()).unwrap();
        assert!(r.sign.allclose(&Matrix::identity(3).scaled(-1.0), 1e-12));
        // µ between 2 and 3.
        let r = solve_sign(&a, 2.5, &SolveOptions::default()).unwrap();
        let expect = Matrix::from_diag(&[-1.0, -1.0, 1.0]);
        assert!(r.sign.allclose(&expect, 1e-12));
    }

    #[test]
    fn finite_temperature_smears_the_step() {
        let a = Matrix::from_diag(&[-0.1, 0.1]);
        let opts = SolveOptions {
            kt: 0.1,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.0, &opts).unwrap();
        let expect = (0.1f64 / 0.2).tanh();
        assert!((r.sign[(1, 1)] - expect).abs() < 1e-12);
        assert!((r.sign[(0, 0)] + expect).abs() < 1e-12);
    }

    #[test]
    fn eigenvalue_at_mu_maps_to_zero() {
        // Extended definition (paper Eq. 12).
        let a = Matrix::from_diag(&[1.0, 2.0]);
        let r = solve_sign(&a, 2.0, &SolveOptions::default()).unwrap();
        assert!((r.sign[(1, 1)]).abs() < 1e-12);
        assert!((r.sign[(0, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero temperature")]
    fn iterative_finite_t_rejected() {
        let a = gapped(4, 0.0);
        let opts = SolveOptions {
            method: SignMethod::NewtonSchulz,
            kt: 0.1,
            ..SolveOptions::default()
        };
        let _ = solve_sign(&a, 0.0, &opts);
    }

    #[test]
    fn sign_from_decomposition_reuse_matches_fresh_solve() {
        let a = gapped(8, 0.5);
        let r = solve_sign(&a, 0.5, &SolveOptions::default()).unwrap();
        let dec = r.decomposition.unwrap();
        // Re-evaluate at a *different* µ from the stored decomposition.
        let shifted = sign_from_decomposition(&dec, 0.7, 0.0);
        let fresh = solve_sign(&a, 0.7, &SolveOptions::default()).unwrap();
        assert!(shifted.allclose(&fresh.sign, 1e-10));
    }
}

#[cfg(test)]
mod selected_column_tests {
    use super::*;
    use sm_linalg::eigh::eigh;

    fn gapped(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.4
                } else {
                    -1.4
                }
            } else {
                0.15 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn selected_columns_match_full_sign() {
        let a = gapped(12);
        let dec = eigh(&a).unwrap();
        let full = sign_from_decomposition(&dec, 0.1, 0.0);
        let cols = [0usize, 3, 11];
        let sel = sign_columns_from_decomposition(&dec, 0.1, 0.0, &cols);
        assert_eq!(sel.shape(), (12, 3));
        for (j, &c) in cols.iter().enumerate() {
            for i in 0..12 {
                assert!(
                    (sel[(i, j)] - full[(i, c)]).abs() < 1e-12,
                    "column {c} element {i} mismatch"
                );
            }
        }
    }

    #[test]
    fn selected_columns_finite_temperature() {
        let a = gapped(8);
        let dec = eigh(&a).unwrap();
        let full = sign_from_decomposition(&dec, 0.0, 0.07);
        let sel = sign_columns_from_decomposition(&dec, 0.0, 0.07, &[2, 5]);
        for i in 0..8 {
            assert!((sel[(i, 0)] - full[(i, 2)]).abs() < 1e-12);
            assert!((sel[(i, 1)] - full[(i, 5)]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_selection_is_empty() {
        let a = gapped(4);
        let dec = eigh(&a).unwrap();
        let sel = sign_columns_from_decomposition(&dec, 0.0, 0.0, &[]);
        assert_eq!(sel.shape(), (4, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let a = gapped(4);
        let dec = eigh(&a).unwrap();
        sign_columns_from_decomposition(&dec, 0.0, 0.0, &[9]);
    }
}

#[cfg(test)]
mod element_sparse_tests {
    use super::*;

    fn banded(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.2
                } else {
                    -1.2
                }
            } else if (i as isize - j as isize).unsigned_abs() <= 2 {
                0.07 / (1.0 + (i as f64 - j as f64).abs())
            } else {
                0.0
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn element_sparse_matches_diagonalization() {
        let a = banded(14);
        let reference = solve_sign(&a, 0.0, &SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 2,
                eps: 1e-12,
            },
            tol: 1e-9,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.0, &opts).unwrap();
        assert!(
            r.sign.allclose(&reference.sign, 1e-6),
            "element-sparse deviates by {}",
            r.sign.max_abs_diff(&reference.sign)
        );
        assert!(r.iterations > 0);
        assert!(r.decomposition.is_none());
    }

    #[test]
    fn element_sparse_pade3() {
        let a = banded(10);
        let reference = solve_sign(&a, 0.1, &SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 3,
                eps: 1e-12,
            },
            tol: 1e-9,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.1, &opts).unwrap();
        assert!(r.sign.allclose(&reference.sign, 1e-6));
    }

    #[test]
    #[should_panic(expected = "zero temperature")]
    fn element_sparse_rejects_finite_t() {
        let a = banded(6);
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 2,
                eps: 1e-10,
            },
            kt: 0.1,
            ..SolveOptions::default()
        };
        let _ = solve_sign(&a, 0.0, &opts);
    }
}
