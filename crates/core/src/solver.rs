//! Per-submatrix sign evaluation.
//!
//! The paper solves the assembled dense submatrices either with the same
//! iterative schemes CP2K applies to the full sparse matrix, or — the
//! method of choice (Sec. IV-F) — by eigendecomposition (`dsyevd`), which
//! additionally enables canonical-ensemble µ adjustment (Algorithm 1) and
//! finite-temperature purification for free.

use sm_linalg::eigh::{eigh, Eigh};
use sm_linalg::elem::F32_SIGN_TOL;
use sm_linalg::fermi::smeared_sign;
use sm_linalg::sign::{
    extended_signum, refine_sign_newton_schulz, sign_iteration, sign_iteration_in,
    SignIterationOptions,
};
use sm_linalg::{LinalgError, Matrix, Precision};

/// Which linear-algebra representation executes an iterative sign solve.
///
/// Strictly a numeric knob, exactly like [`Precision`]: the backend never
/// shapes sparsity patterns, transfer plans, or plan-cache keys — the same
/// cached plan serves every backend. It changes *how* the assembled dense
/// submatrix is iterated, not *what* is gathered or scattered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveBackend {
    /// Dense BLAS-style kernels — the reference path, unchanged.
    #[default]
    Dense,
    /// Element-wise CSR iteration ([`sm_linalg::sparse`]) with
    /// per-iteration element filtering ([`SolveOptions::sparse_eps`]).
    /// Applies to the iterative methods ([`SignMethod::NewtonSchulz`],
    /// [`SignMethod::Pade`]); [`SignMethod::Diagonalization`] has no sparse
    /// analogue and ignores the backend, and
    /// [`SignMethod::ElementSparse`] is already the legacy explicit sparse
    /// method with its own filter.
    SparseCsr,
}

/// How to evaluate `sign(a − µI)` on a dense submatrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignMethod {
    /// Eigendecomposition + elementwise signum (paper Eq. 17). Supports
    /// finite temperature and canonical µ adjustment.
    Diagonalization,
    /// 2nd-order Newton–Schulz iteration (paper Eq. 11).
    NewtonSchulz,
    /// Padé-family iteration of the given order ≥ 2 (order 3 = Eq. 19).
    Pade(usize),
    /// Element-wise sparse (CSR) iteration of the given order with the
    /// given element filter — the paper's Sec. V-C proposal for submatrices
    /// whose element fill is far below their block fill (DZVP).
    ElementSparse {
        /// Padé order (2 = Newton–Schulz).
        order: usize,
        /// Per-iteration element filter.
        eps: f64,
    },
}

/// Options for a submatrix solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Evaluation method.
    pub method: SignMethod,
    /// Electronic temperature `k_B·T` (0 = sign function; > 0 replaces the
    /// signum with the Fermi-derived smeared sign, Sec. IV-F).
    pub kt: f64,
    /// Convergence tolerance of the iterative methods.
    pub tol: f64,
    /// Iteration budget of the iterative methods.
    pub max_iter: usize,
    /// Numeric precision of the dense kernels (paper Sec. VI's
    /// approximate-computing mode). Strictly a numeric knob — it never
    /// shapes patterns or plans:
    ///
    /// * `Fp64` — the reference path, unchanged.
    /// * `Fp32` / `Fp32Refined` — the assembled submatrix is first rounded
    ///   elementwise through `f32` storage (idempotent with the `f32` wire
    ///   gather, so single-rank and distributed execution solve the exact
    ///   same matrix). Iterative methods then run the *generic* `f32` sign
    ///   kernels (`f64`-accumulating GEMM, tolerance clamped to
    ///   [`F32_SIGN_TOL`]); diagonalization runs the `f64` eigensolver on
    ///   the rounded input (no native `f32` eigensolver — this models
    ///   device storage, not compute). Plain `Fp32` rounds the result back
    ///   to `f32` storage (so it ships losslessly over the `f32` wire);
    ///   `Fp32Refined` instead applies one `f64` Newton–Schulz refinement
    ///   pass (iterative methods) or keeps the full `f64` back-transform
    ///   (diagonalization), recovering ≤1e-6 elementwise agreement with
    ///   `Fp64`. [`SignMethod::ElementSparse`] is `f64`-only.
    pub precision: Precision,
    /// Representation of the iterative solve. Like `precision`, strictly
    /// numeric-phase-only — never enters patterns or plan-cache keys.
    pub backend: SolveBackend,
    /// Per-iteration element filter of the [`SolveBackend::SparseCsr`]
    /// backend. `0.0` keeps the iteration exact (agreement with the dense
    /// path within ~1e-10 for well-gapped submatrices); larger values trade
    /// accuracy for flops, the Sec. V-C proposal.
    pub sparse_eps: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            method: SignMethod::Diagonalization,
            kt: 0.0,
            tol: 1e-10,
            max_iter: 100,
            precision: Precision::Fp64,
            backend: SolveBackend::Dense,
            sparse_eps: 0.0,
        }
    }
}

/// Counters of one sparse (CSR) submatrix solve, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SparseSolveStats {
    /// Scalar flops actually spent in filtered sparse multiplications.
    pub flops: u64,
    /// Element fill of the final iterate.
    pub final_fill: f64,
    /// Elements absent from the final iterate relative to dense `n²` —
    /// the work the filtering avoided carrying.
    pub filtered_nnz: u64,
}

/// Result of one submatrix solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// `sign(a − µI)` (or its Fermi-smeared generalization).
    pub sign: Matrix,
    /// The eigendecomposition, kept when the method produces one — this is
    /// what Algorithm 1 reuses for canonical µ bisection.
    pub decomposition: Option<Eigh>,
    /// Iterations used (0 for diagonalization).
    pub iterations: usize,
    /// Sparse-backend counters (`None` on dense paths).
    pub sparse: Option<SparseSolveStats>,
}

/// Round a solved sign matrix to the precision's storage format. A no-op
/// for `Fp64` and `Fp32Refined` (the refinement's whole point is keeping
/// the `f64` bits); plain `Fp32` results are rounded through `f32` so they
/// ship losslessly over the `f32` result wire.
pub fn round_sign_output(sign: &mut Matrix, precision: Precision) {
    if precision == Precision::Fp32 {
        *sign = sign.round_f32_storage();
    }
}

/// Evaluate `sign(a − µI)` on one dense symmetric submatrix.
pub fn solve_sign(a: &Matrix, mu: f64, opts: &SolveOptions) -> Result<SolveResult, LinalgError> {
    match opts.method {
        SignMethod::Diagonalization => {
            // Reduced precision: diagonalize the f32-rounded input (the
            // values an f32 wire/device memory would hold). Idempotent with
            // the f32 gather, so every execution path solves the same
            // matrix. There is no native f32 eigensolver — this models
            // storage precision; the iterative methods model compute too.
            let dec = if opts.precision.storage_is_f32() {
                eigh(&a.round_f32_storage())?
            } else {
                eigh(a)?
            };
            let mut sign = sign_from_decomposition(&dec, mu, opts.kt);
            round_sign_output(&mut sign, opts.precision);
            Ok(SolveResult {
                sign,
                decomposition: Some(dec),
                iterations: 0,
                sparse: None,
            })
        }
        SignMethod::ElementSparse { order, eps } => {
            assert!(
                opts.kt == 0.0,
                "the element-sparse iteration only supports zero temperature"
            );
            assert!(
                opts.precision == Precision::Fp64,
                "the element-sparse iteration has no reduced-precision kernel"
            );
            let r = sm_linalg::sparse::sparse_sign_iteration(
                a,
                mu,
                order,
                eps,
                opts.tol.max(eps),
                opts.max_iter,
            )?;
            if !r.converged {
                return Err(LinalgError::NoConvergence {
                    op: "element-sparse submatrix sign iteration",
                    iterations: r.iterations,
                });
            }
            Ok(SolveResult {
                iterations: r.iterations,
                sparse: Some(sparse_stats_of(&r, a.nrows())),
                sign: r.sign,
                decomposition: None,
            })
        }
        SignMethod::NewtonSchulz | SignMethod::Pade(_) => {
            assert!(
                opts.kt == 0.0,
                "iterative sign methods only support zero temperature; \
                 use Diagonalization for finite-temperature purification"
            );
            let order = match opts.method {
                SignMethod::NewtonSchulz => 2,
                SignMethod::Pade(p) => p,
                _ => unreachable!(),
            };
            if opts.backend == SolveBackend::SparseCsr {
                return solve_sign_sparse_csr(a, mu, order, opts);
            }
            if opts.precision.storage_is_f32() {
                return solve_sign_iterative_f32(a, mu, order, opts);
            }
            let mut shifted = a.clone();
            shifted.shift_diag(-mu);
            let r = sign_iteration(
                &shifted,
                order,
                SignIterationOptions {
                    tol: opts.tol,
                    max_iter: opts.max_iter,
                    prescale: true,
                },
            )?;
            if !r.converged {
                return Err(LinalgError::NoConvergence {
                    op: "submatrix sign iteration",
                    iterations: r.trace.len(),
                });
            }
            Ok(SolveResult {
                iterations: r.trace.len(),
                sign: r.sign,
                decomposition: None,
                sparse: None,
            })
        }
    }
}

/// Telemetry counters from a finished sparse iteration on an `n × n`
/// submatrix.
fn sparse_stats_of(r: &sm_linalg::sparse::SparseSignResult, n: usize) -> SparseSolveStats {
    let dense_nnz = (n * n) as u64;
    let kept = (r.final_fill * (n * n) as f64).round() as u64;
    SparseSolveStats {
        flops: r.flops,
        final_fill: r.final_fill,
        filtered_nnz: dense_nnz.saturating_sub(kept),
    }
}

/// The sparse-CSR iterative path (paper Sec. V-C wired end to end): run the
/// element-wise sparse Newton–Schulz/Padé iteration with per-iteration
/// filtering instead of the dense kernels.
///
/// Reduced precision composes the same way the dense path does: the input
/// is rounded through `f32` storage first (idempotent with the `f32` wire
/// gather, so every execution path solves the same matrix), the `f64` CSR
/// iteration runs with its tolerance clamped to [`F32_SIGN_TOL`], plain
/// `Fp32` rounds the result back to `f32` storage, and `Fp32Refined`
/// applies one dense `f64` Newton–Schulz refinement pass.
fn solve_sign_sparse_csr(
    a: &Matrix,
    mu: f64,
    order: usize,
    opts: &SolveOptions,
) -> Result<SolveResult, LinalgError> {
    let storage_rounded;
    let input = if opts.precision.storage_is_f32() {
        storage_rounded = a.round_f32_storage();
        &storage_rounded
    } else {
        a
    };
    let tol = if opts.precision.storage_is_f32() {
        opts.tol.max(F32_SIGN_TOL)
    } else {
        opts.tol
    };
    let r = sm_linalg::sparse::sparse_sign_iteration(
        input,
        mu,
        order,
        opts.sparse_eps,
        tol.max(opts.sparse_eps),
        opts.max_iter,
    )?;
    if !r.converged {
        return Err(LinalgError::NoConvergence {
            op: "sparse-csr submatrix sign iteration",
            iterations: r.iterations,
        });
    }
    let stats = sparse_stats_of(&r, a.nrows());
    let mut sign = r.sign;
    let mut iterations = r.iterations;
    if opts.precision == Precision::Fp32Refined {
        sign = refine_sign_newton_schulz(&sign)?;
        iterations += 1;
    }
    round_sign_output(&mut sign, opts.precision);
    Ok(SolveResult {
        sign,
        decomposition: None,
        iterations,
        sparse: Some(stats),
    })
}

/// The reduced-precision iterative path: run the *generic* `f32` sign
/// kernel (single-precision storage, `f64`-accumulating GEMM — the CPU
/// analogue of tensor-core mixed accumulation), then optionally one `f64`
/// Newton–Schulz refinement pass (`Fp32Refined`).
///
/// The input is rounded to `f32` first and the µ shift applied in `f32`,
/// so the solve is bitwise-identical whether the values arrived over an
/// `f32` wire (distributed gather) or straight from local `f64` storage.
fn solve_sign_iterative_f32(
    a: &Matrix,
    mu: f64,
    order: usize,
    opts: &SolveOptions,
) -> Result<SolveResult, LinalgError> {
    let mut shifted = a.to_f32();
    shifted.shift_diag(-(mu as f32));
    let r = sign_iteration_in(
        &shifted,
        order,
        SignIterationOptions {
            // f32 iterates bottom out near n·ε_f32; don't spin the budget
            // chasing an f64 tolerance the arithmetic cannot reach.
            tol: opts.tol.max(F32_SIGN_TOL),
            max_iter: opts.max_iter,
            prescale: true,
        },
        true,
    )?;
    if !r.converged {
        return Err(LinalgError::NoConvergence {
            op: "f32 submatrix sign iteration",
            iterations: r.trace.len(),
        });
    }
    let mut sign = r.sign.to_f64();
    let mut iterations = r.trace.len();
    if opts.precision == Precision::Fp32Refined {
        sign = refine_sign_newton_schulz(&sign)?;
        iterations += 1;
    }
    Ok(SolveResult {
        sign,
        decomposition: None,
        iterations,
        sparse: None,
    })
}

/// `sign(a − µI)` from a stored decomposition of `a` — the reuse that makes
/// Algorithm 1's µ bisection cheap: no re-diagonalization, only a
/// back-transform.
pub fn sign_from_decomposition(dec: &Eigh, mu: f64, kt: f64) -> Matrix {
    if kt > 0.0 {
        dec.apply(|l| smeared_sign(l, mu, kt))
    } else {
        dec.apply(|l| extended_signum(l - mu))
    }
}

/// **Selected columns** of `sign(a − µI)` from a decomposition — the
/// paper's future-work optimization ("efforts are currently on the way
/// that try to selectively calculate selected elements of the sign
/// function", Sec. VII): the submatrix method only scatters the columns
/// originating from its own block columns, so computing
/// `Q · diag(f(λ)) · (Q^T)[:, cols]` costs `O(n²·k)` instead of the
/// `O(n³)` full back-transform.
///
/// Returns an `n × cols.len()` matrix whose `j`-th column is column
/// `cols[j]` of the sign matrix.
pub fn sign_columns_from_decomposition(dec: &Eigh, mu: f64, kt: f64, cols: &[usize]) -> Matrix {
    let n = dec.eigenvalues.len();
    let k = cols.len();
    let f: Vec<f64> = dec
        .eigenvalues
        .iter()
        .map(|&l| {
            if kt > 0.0 {
                smeared_sign(l, mu, kt)
            } else {
                extended_signum(l - mu)
            }
        })
        .collect();
    // W = diag(f) · Q^T[:, cols]  (l-th row of Q^T is the l-th eigenvector;
    // its `c`-th entry is Q[c, l]).
    let mut w = Matrix::zeros(n, k);
    for (j, &c) in cols.iter().enumerate() {
        assert!(c < n, "selected column {c} out of range");
        for l in 0..n {
            w[(l, j)] = f[l] * dec.eigenvectors[(c, l)];
        }
    }
    // Result = Q · W.
    let mut out = Matrix::zeros(n, k);
    sm_linalg::gemm::gemm(
        1.0,
        &dec.eigenvectors,
        sm_linalg::gemm::Op::NoTrans,
        &w,
        sm_linalg::gemm::Op::NoTrans,
        0.0,
        &mut out,
    )
    .expect("shapes consistent by construction");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_linalg::gemm::matmul;

    fn gapped(n: usize, gap_at: f64) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    gap_at + 1.0
                } else {
                    gap_at - 1.0
                }
            } else {
                0.2 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn diagonalization_solver_basic() {
        let a = gapped(12, 0.3);
        let r = solve_sign(&a, 0.3, &SolveOptions::default()).unwrap();
        let s2 = matmul(&r.sign, &r.sign).unwrap();
        assert!(s2.allclose(&Matrix::identity(12), 1e-9));
        assert!(r.decomposition.is_some());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iterative_methods_match_diagonalization() {
        let a = gapped(10, -0.2);
        let mu = -0.2;
        let reference = solve_sign(&a, mu, &SolveOptions::default()).unwrap();
        for method in [
            SignMethod::NewtonSchulz,
            SignMethod::Pade(3),
            SignMethod::Pade(5),
        ] {
            let opts = SolveOptions {
                method,
                ..SolveOptions::default()
            };
            let r = solve_sign(&a, mu, &opts).unwrap();
            assert!(
                r.sign.allclose(&reference.sign, 1e-7),
                "{method:?} disagrees with diagonalization"
            );
            assert!(r.iterations > 0);
            assert!(r.decomposition.is_none());
        }
    }

    #[test]
    fn mu_shift_flips_occupation() {
        let a = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        // µ below the spectrum: everything positive.
        let r = solve_sign(&a, 0.0, &SolveOptions::default()).unwrap();
        assert!(r.sign.allclose(&Matrix::identity(3), 1e-12));
        // µ above: everything negative.
        let r = solve_sign(&a, 10.0, &SolveOptions::default()).unwrap();
        assert!(r.sign.allclose(&Matrix::identity(3).scaled(-1.0), 1e-12));
        // µ between 2 and 3.
        let r = solve_sign(&a, 2.5, &SolveOptions::default()).unwrap();
        let expect = Matrix::from_diag(&[-1.0, -1.0, 1.0]);
        assert!(r.sign.allclose(&expect, 1e-12));
    }

    #[test]
    fn finite_temperature_smears_the_step() {
        let a = Matrix::from_diag(&[-0.1, 0.1]);
        let opts = SolveOptions {
            kt: 0.1,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.0, &opts).unwrap();
        let expect = (0.1f64 / 0.2).tanh();
        assert!((r.sign[(1, 1)] - expect).abs() < 1e-12);
        assert!((r.sign[(0, 0)] + expect).abs() < 1e-12);
    }

    #[test]
    fn eigenvalue_at_mu_maps_to_zero() {
        // Extended definition (paper Eq. 12).
        let a = Matrix::from_diag(&[1.0, 2.0]);
        let r = solve_sign(&a, 2.0, &SolveOptions::default()).unwrap();
        assert!((r.sign[(1, 1)]).abs() < 1e-12);
        assert!((r.sign[(0, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero temperature")]
    fn iterative_finite_t_rejected() {
        let a = gapped(4, 0.0);
        let opts = SolveOptions {
            method: SignMethod::NewtonSchulz,
            kt: 0.1,
            ..SolveOptions::default()
        };
        let _ = solve_sign(&a, 0.0, &opts);
    }

    #[test]
    fn sign_from_decomposition_reuse_matches_fresh_solve() {
        let a = gapped(8, 0.5);
        let r = solve_sign(&a, 0.5, &SolveOptions::default()).unwrap();
        let dec = r.decomposition.unwrap();
        // Re-evaluate at a *different* µ from the stored decomposition.
        let shifted = sign_from_decomposition(&dec, 0.7, 0.0);
        let fresh = solve_sign(&a, 0.7, &SolveOptions::default()).unwrap();
        assert!(shifted.allclose(&fresh.sign, 1e-10));
    }
}

#[cfg(test)]
mod selected_column_tests {
    use super::*;
    use sm_linalg::eigh::eigh;

    fn gapped(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.4
                } else {
                    -1.4
                }
            } else {
                0.15 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn selected_columns_match_full_sign() {
        let a = gapped(12);
        let dec = eigh(&a).unwrap();
        let full = sign_from_decomposition(&dec, 0.1, 0.0);
        let cols = [0usize, 3, 11];
        let sel = sign_columns_from_decomposition(&dec, 0.1, 0.0, &cols);
        assert_eq!(sel.shape(), (12, 3));
        for (j, &c) in cols.iter().enumerate() {
            for i in 0..12 {
                assert!(
                    (sel[(i, j)] - full[(i, c)]).abs() < 1e-12,
                    "column {c} element {i} mismatch"
                );
            }
        }
    }

    #[test]
    fn selected_columns_finite_temperature() {
        let a = gapped(8);
        let dec = eigh(&a).unwrap();
        let full = sign_from_decomposition(&dec, 0.0, 0.07);
        let sel = sign_columns_from_decomposition(&dec, 0.0, 0.07, &[2, 5]);
        for i in 0..8 {
            assert!((sel[(i, 0)] - full[(i, 2)]).abs() < 1e-12);
            assert!((sel[(i, 1)] - full[(i, 5)]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_selection_is_empty() {
        let a = gapped(4);
        let dec = eigh(&a).unwrap();
        let sel = sign_columns_from_decomposition(&dec, 0.0, 0.0, &[]);
        assert_eq!(sel.shape(), (4, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let a = gapped(4);
        let dec = eigh(&a).unwrap();
        sign_columns_from_decomposition(&dec, 0.0, 0.0, &[9]);
    }
}

#[cfg(test)]
mod element_sparse_tests {
    use super::*;

    fn banded(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.2
                } else {
                    -1.2
                }
            } else if (i as isize - j as isize).unsigned_abs() <= 2 {
                0.07 / (1.0 + (i as f64 - j as f64).abs())
            } else {
                0.0
            }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn element_sparse_matches_diagonalization() {
        let a = banded(14);
        let reference = solve_sign(&a, 0.0, &SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 2,
                eps: 1e-12,
            },
            tol: 1e-9,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.0, &opts).unwrap();
        assert!(
            r.sign.allclose(&reference.sign, 1e-6),
            "element-sparse deviates by {}",
            r.sign.max_abs_diff(&reference.sign)
        );
        assert!(r.iterations > 0);
        assert!(r.decomposition.is_none());
    }

    #[test]
    fn element_sparse_pade3() {
        let a = banded(10);
        let reference = solve_sign(&a, 0.1, &SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 3,
                eps: 1e-12,
            },
            tol: 1e-9,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.1, &opts).unwrap();
        assert!(r.sign.allclose(&reference.sign, 1e-6));
    }

    #[test]
    #[should_panic(expected = "zero temperature")]
    fn element_sparse_rejects_finite_t() {
        let a = banded(6);
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 2,
                eps: 1e-10,
            },
            kt: 0.1,
            ..SolveOptions::default()
        };
        let _ = solve_sign(&a, 0.0, &opts);
    }
}

#[cfg(test)]
mod precision_tests {
    use super::*;

    /// Banded gapped test matrix (the satellite-pattern analogue).
    fn banded(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.3
                } else {
                    -1.3
                }
            } else if (i as isize - j as isize).unsigned_abs() <= 3 {
                0.06 / (1.0 + (i as f64 - j as f64).abs())
            } else {
                0.0
            }
        });
        a.symmetrize();
        a
    }

    fn with_precision(method: SignMethod, precision: Precision) -> SolveOptions {
        SolveOptions {
            method,
            precision,
            ..SolveOptions::default()
        }
    }

    /// Documented tolerance contract: f32 solves match f64 within 1e-4,
    /// f32-refined within 1e-6, elementwise — across solver methods and a
    /// sweep of sizes/chemical potentials (the property the engine-level
    /// wire tests build on).
    #[test]
    fn f32_and_refined_match_f64_within_documented_tolerances() {
        for n in [8usize, 14, 23] {
            let a = banded(n);
            for mu in [0.0, 0.15, -0.2] {
                for method in [
                    SignMethod::Diagonalization,
                    SignMethod::NewtonSchulz,
                    SignMethod::Pade(3),
                ] {
                    let reference = solve_sign(&a, mu, &with_precision(method, Precision::Fp64))
                        .unwrap()
                        .sign;
                    let r32 = solve_sign(&a, mu, &with_precision(method, Precision::Fp32))
                        .unwrap()
                        .sign;
                    let d32 = r32.max_abs_diff(&reference);
                    assert!(d32 < 1e-4, "{method:?} n={n} mu={mu}: fp32 off by {d32}");
                    let rref = solve_sign(&a, mu, &with_precision(method, Precision::Fp32Refined))
                        .unwrap()
                        .sign;
                    let dref = rref.max_abs_diff(&reference);
                    assert!(
                        dref < 1e-6,
                        "{method:?} n={n} mu={mu}: fp32-refined off by {dref}"
                    );
                }
            }
        }
    }

    #[test]
    fn plain_fp32_outputs_are_f32_representable() {
        let a = banded(12);
        for method in [SignMethod::Diagonalization, SignMethod::NewtonSchulz] {
            let r = solve_sign(&a, 0.1, &with_precision(method, Precision::Fp32)).unwrap();
            // Round-tripping through f32 storage changes nothing: the f32
            // result wire is lossless for plain-Fp32 results.
            assert!(r.sign.allclose(&r.sign.round_f32_storage(), 0.0));
        }
    }

    #[test]
    fn f32_solve_is_invariant_to_prior_wire_rounding() {
        // The bitwise-equivalence keystone: solving the f64 values and
        // solving their f32-wire-rounded copy produce identical results,
        // because the solve rounds its input first (idempotent).
        let a = banded(16);
        let rounded = a.round_f32_storage();
        for prec in [Precision::Fp32, Precision::Fp32Refined] {
            for method in [SignMethod::Diagonalization, SignMethod::NewtonSchulz] {
                let direct = solve_sign(&a, 0.05, &with_precision(method, prec)).unwrap();
                let wired = solve_sign(&rounded, 0.05, &with_precision(method, prec)).unwrap();
                assert!(
                    direct.sign.allclose(&wired.sign, 0.0),
                    "{method:?}/{prec:?} diverged after wire rounding"
                );
            }
        }
    }

    #[test]
    fn refined_iterative_counts_the_refinement_pass() {
        let a = banded(10);
        let plain = solve_sign(
            &a,
            0.0,
            &with_precision(SignMethod::NewtonSchulz, Precision::Fp32),
        )
        .unwrap();
        let refined = solve_sign(
            &a,
            0.0,
            &with_precision(SignMethod::NewtonSchulz, Precision::Fp32Refined),
        )
        .unwrap();
        assert_eq!(refined.iterations, plain.iterations + 1);
    }

    #[test]
    #[should_panic(expected = "no reduced-precision kernel")]
    fn element_sparse_rejects_f32() {
        let a = banded(6);
        let opts = SolveOptions {
            method: SignMethod::ElementSparse {
                order: 2,
                eps: 1e-10,
            },
            precision: Precision::Fp32,
            ..SolveOptions::default()
        };
        let _ = solve_sign(&a, 0.0, &opts);
    }

    #[test]
    fn sparse_csr_backend_matches_dense_at_eps_zero() {
        // The tentpole contract: at eps = 0 the CSR backend agrees with the
        // dense iterative path within 1e-10 — same iteration map, exact
        // (unfiltered) sparse products.
        let a = banded(18);
        for mu in [0.0, 0.1] {
            for method in [SignMethod::NewtonSchulz, SignMethod::Pade(3)] {
                let dense = solve_sign(&a, mu, &with_precision(method, Precision::Fp64)).unwrap();
                let sparse = solve_sign(
                    &a,
                    mu,
                    &SolveOptions {
                        method,
                        backend: SolveBackend::SparseCsr,
                        sparse_eps: 0.0,
                        ..SolveOptions::default()
                    },
                )
                .unwrap();
                let d = sparse.sign.max_abs_diff(&dense.sign);
                assert!(d < 1e-10, "{method:?} mu={mu}: sparse off dense by {d}");
                assert!(
                    dense.sparse.is_none(),
                    "dense path must not report sparse stats"
                );
                let stats = sparse.sparse.expect("sparse path reports stats");
                assert!(stats.flops > 0);
                assert!(stats.final_fill > 0.0 && stats.final_fill <= 1.0);
            }
        }
    }

    #[test]
    fn sparse_csr_filtering_saves_flops_within_documented_tolerance() {
        let a = banded(24);
        let exact = solve_sign(
            &a,
            0.0,
            &SolveOptions {
                method: SignMethod::NewtonSchulz,
                backend: SolveBackend::SparseCsr,
                sparse_eps: 0.0,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        let filtered = solve_sign(
            &a,
            0.0,
            &SolveOptions {
                method: SignMethod::NewtonSchulz,
                backend: SolveBackend::SparseCsr,
                sparse_eps: 1e-5,
                tol: 1e-4,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        let (se, sf) = (exact.sparse.unwrap(), filtered.sparse.unwrap());
        assert!(sf.flops < se.flops, "filtering must save flops");
        assert!(sf.filtered_nnz >= se.filtered_nnz);
        // Documented tolerance of filtered runs: ~10× the filter.
        let d = filtered.sign.max_abs_diff(&exact.sign);
        assert!(d < 1e-3, "filtered run off by {d}");
    }

    #[test]
    fn sparse_csr_composes_with_reduced_precision() {
        // Same contract the dense path documents: Fp32 within 1e-4 of the
        // f64 sparse solve, Fp32Refined within 1e-6; both invariant to
        // prior f32 wire rounding (input rounding is idempotent).
        let a = banded(16);
        let rounded = a.round_f32_storage();
        let base = SolveOptions {
            method: SignMethod::NewtonSchulz,
            backend: SolveBackend::SparseCsr,
            sparse_eps: 0.0,
            ..SolveOptions::default()
        };
        let reference = solve_sign(&a, 0.05, &base).unwrap().sign;
        for (prec, tol) in [(Precision::Fp32, 1e-4), (Precision::Fp32Refined, 1e-6)] {
            let opts = SolveOptions {
                precision: prec,
                ..base
            };
            let direct = solve_sign(&a, 0.05, &opts).unwrap();
            let d = direct.sign.max_abs_diff(&reference);
            assert!(d < tol, "{prec:?}: sparse off f64 sparse by {d}");
            let wired = solve_sign(&rounded, 0.05, &opts).unwrap();
            assert!(
                direct.sign.allclose(&wired.sign, 0.0),
                "{prec:?} diverged after wire rounding"
            );
        }
        // Plain Fp32 results ship losslessly over the f32 result wire.
        let r32 = solve_sign(
            &a,
            0.05,
            &SolveOptions {
                precision: Precision::Fp32,
                ..base
            },
        )
        .unwrap();
        assert!(r32.sign.allclose(&r32.sign.round_f32_storage(), 0.0));
        // Refined counts its refinement pass, like the dense f32 path.
        let refined = solve_sign(
            &a,
            0.05,
            &SolveOptions {
                precision: Precision::Fp32Refined,
                ..base
            },
        )
        .unwrap();
        let plain = solve_sign(
            &a,
            0.05,
            &SolveOptions {
                precision: Precision::Fp32,
                ..base
            },
        )
        .unwrap();
        assert_eq!(refined.iterations, plain.iterations + 1);
    }

    #[test]
    fn diagonalization_ignores_the_backend() {
        let a = banded(12);
        let dense = solve_sign(&a, 0.1, &SolveOptions::default()).unwrap();
        let routed = solve_sign(
            &a,
            0.1,
            &SolveOptions {
                backend: SolveBackend::SparseCsr,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(dense.sign.allclose(&routed.sign, 0.0));
        assert!(routed.sparse.is_none());
    }

    #[test]
    fn finite_temperature_diag_supports_f32_storage() {
        let a = banded(8);
        let opts = SolveOptions {
            kt: 0.05,
            precision: Precision::Fp32Refined,
            ..SolveOptions::default()
        };
        let r = solve_sign(&a, 0.0, &opts).unwrap();
        let reference = solve_sign(
            &a,
            0.0,
            &SolveOptions {
                kt: 0.05,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(r.sign.max_abs_diff(&reference.sign) < 1e-5);
    }
}
