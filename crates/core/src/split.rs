//! Second-level submatrix solving (paper Sec. IV-C1).
//!
//! A block-level submatrix assembled from a DBCSR column may itself still
//! be sparse at element level. The paper notes the submatrix method "can be
//! applied a second time at the level of single columns to split the
//! submatrix into even smaller, more dense sub-submatrices" — and that only
//! the columns originating from the spec's own block columns need
//! sub-submatrices. This module implements that second application: each
//! target element column gets its own principal sub-submatrix, solved
//! independently, and only its own column is kept.

use sm_linalg::{LinalgError, Matrix};

use crate::plan::split_submatrix;
use crate::solver::{solve_sign, SolveOptions};

/// Result of a split-solve.
#[derive(Debug, Clone)]
pub struct SplitSolveResult {
    /// `dim × target_cols.len()` matrix: column `j` holds column
    /// `target_cols[j]` of the (approximate) `sign(a − µI)`, with zeros at
    /// rows outside the sub-submatrix's index set (the retained sparsity).
    pub columns: Matrix,
    /// Dimensions of the sub-submatrices actually solved.
    pub sub_dims: Vec<usize>,
    /// Total `Σ n³` cost of the sub-solves (compare against `dim³` of the
    /// parent for the expected saving).
    pub total_cost: f64,
}

/// Solve the target element columns of `sign(a − µI)` by applying the
/// submatrix method a second time inside the dense submatrix `a`.
/// Elements with `|a_ij| <= eps` count as zero when forming the
/// sub-submatrix index sets.
pub fn solve_sign_via_split(
    a: &Matrix,
    mu: f64,
    target_cols: &[usize],
    eps: f64,
    opts: &SolveOptions,
) -> Result<SplitSolveResult, LinalgError> {
    assert!(a.is_square(), "split solve needs a square submatrix");
    let n = a.nrows();
    let subs = split_submatrix(a, target_cols, eps);
    let mut columns = Matrix::zeros(n, target_cols.len());
    let mut sub_dims = Vec::with_capacity(subs.len());
    let mut total_cost = 0.0;
    for (j, sub) in subs.iter().enumerate() {
        sub_dims.push(sub.matrix.nrows());
        total_cost += (sub.matrix.nrows() as f64).powi(3);
        let r = solve_sign(&sub.matrix, mu, opts)?;
        // Position of the target column inside the sub-submatrix.
        let local = sub
            .indices
            .binary_search(&sub.target_col)
            .expect("target column always included in its own index set");
        for (li, &gi) in sub.indices.iter().enumerate() {
            columns[(gi, j)] = r.sign[(li, local)];
        }
    }
    Ok(SplitSolveResult {
        columns,
        sub_dims,
        total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_linalg::sign::sign_eig;

    fn block_diag_two(n1: usize, n2: usize) -> Matrix {
        let n = n1 + n2;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = if i % 2 == 0 { 1.5 } else { -1.5 };
        }
        for i in 0..n1 {
            for j in 0..n1 {
                if i != j {
                    a[(i, j)] = 0.1;
                }
            }
        }
        for i in n1..n {
            for j in n1..n {
                if i != j {
                    a[(i, j)] = 0.2;
                }
            }
        }
        a.symmetrize();
        a
    }

    #[test]
    fn split_solve_exact_on_decoupled_blocks() {
        let a = block_diag_two(4, 5);
        let targets = [0usize, 5, 8];
        let r = solve_sign_via_split(&a, 0.0, &targets, 1e-14, &SolveOptions::default()).unwrap();
        let full = sign_eig(&a).unwrap();
        for (j, &c) in targets.iter().enumerate() {
            for i in 0..9 {
                assert!(
                    (r.columns[(i, j)] - full[(i, c)]).abs() < 1e-10,
                    "column {c} row {i}: {} vs {}",
                    r.columns[(i, j)],
                    full[(i, c)]
                );
            }
        }
        // Sub-submatrices must be the decoupled blocks, not the full matrix.
        assert!(r.sub_dims.iter().all(|&d| d == 4 || d == 5));
        assert!(r.total_cost < 9.0f64.powi(3));
    }

    #[test]
    fn split_solve_approximates_banded_systems() {
        // Weakly banded matrix: splitting loses the weak tails but stays
        // close to the full solution.
        let n = 16;
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            } else if (i as isize - j as isize).unsigned_abs() <= 3 {
                0.04 / (1.0 + (i as f64 - j as f64).abs())
            } else {
                0.0
            }
        });
        a.symmetrize();
        let targets: Vec<usize> = (0..n).collect();
        let r = solve_sign_via_split(&a, 0.0, &targets, 1e-12, &SolveOptions::default()).unwrap();
        let full = sign_eig(&a).unwrap();
        let mut worst = 0.0f64;
        for (j, &c) in targets.iter().enumerate() {
            for i in 0..n {
                worst = worst.max((r.columns[(i, j)] - full[(i, c)]).abs());
            }
        }
        assert!(worst < 0.02, "split approximation too coarse: {worst}");
        // Every sub-submatrix is smaller than the parent.
        assert!(r.sub_dims.iter().all(|&d| d < n));
    }

    #[test]
    fn split_solve_cost_below_parent_cube() {
        let n = 20;
        let mut a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0 + (i % 2) as f64 * -2.0
            } else if (i as isize - j as isize).unsigned_abs() <= 2 {
                0.05
            } else {
                0.0
            }
        });
        a.symmetrize();
        let targets: Vec<usize> = (0..n).collect();
        let r = solve_sign_via_split(&a, 0.0, &targets, 1e-12, &SolveOptions::default()).unwrap();
        assert!(
            r.total_cost < (n as f64).powi(3),
            "splitting should beat one n³ solve for banded input: {} vs {}",
            r.total_cost,
            (n as f64).powi(3)
        );
    }

    #[test]
    fn subset_of_targets_only() {
        let a = block_diag_two(3, 3);
        let r = solve_sign_via_split(&a, 0.0, &[1], 1e-14, &SolveOptions::default()).unwrap();
        assert_eq!(r.columns.shape(), (6, 1));
        assert_eq!(r.sub_dims.len(), 1);
        // Rows outside the first block are exactly zero (retained sparsity).
        for i in 3..6 {
            assert_eq!(r.columns[(i, 0)], 0.0);
        }
    }
}
