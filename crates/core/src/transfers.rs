//! Block-transfer planning with deduplication.
//!
//! During initialization every rank determines which nonzero blocks its
//! submatrices need and fetches each block **once** per (owner → consumer)
//! pair, buffering it locally so submatrix assembly becomes a purely local
//! operation (paper Sec. IV-B1). This module computes the transfer plan and
//! quantifies the savings versus the naive per-submatrix transfer scheme —
//! the numbers behind the `ablation_dedup_transfers` bench.

use std::collections::BTreeSet;

use sm_dbcsr::{BlockedDims, CooPattern};

use crate::assembly::SubmatrixSpec;

/// Transfer requirements of one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankTransferPlan {
    /// Deduplicated block coordinates this rank must obtain (its own
    /// blocks included — the caller filters locally-owned ones).
    pub unique_blocks: Vec<(usize, usize)>,
    /// Total block references across the rank's submatrices (what a naive
    /// per-submatrix exchange would transfer).
    pub total_references: usize,
}

impl RankTransferPlan {
    /// Build the plan for a set of submatrix specs.
    pub fn for_specs(specs: &[&SubmatrixSpec], pattern: &CooPattern) -> Self {
        let mut unique = BTreeSet::new();
        let mut total = 0usize;
        for spec in specs {
            for coord in spec.required_blocks(pattern) {
                total += 1;
                unique.insert(coord);
            }
        }
        RankTransferPlan {
            unique_blocks: unique.into_iter().collect(),
            total_references: total,
        }
    }

    /// Bytes of the deduplicated transfers (8-byte elements).
    pub fn unique_bytes(&self, dims: &BlockedDims) -> u64 {
        self.unique_blocks
            .iter()
            .map(|&(br, bc)| (dims.size(br) * dims.size(bc) * 8) as u64)
            .sum()
    }

    /// Deduplication factor: references / unique blocks (≥ 1).
    pub fn dedup_factor(&self) -> f64 {
        if self.unique_blocks.is_empty() {
            return 1.0;
        }
        self.total_references as f64 / self.unique_blocks.len() as f64
    }
}

/// Whole-run transfer statistics across all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Bytes moved with deduplication.
    pub unique_bytes: u64,
    /// Bytes a naive per-submatrix scheme would move.
    pub naive_bytes: u64,
    /// Deduplicated block count over all ranks.
    pub unique_blocks: u64,
    /// Total block references over all ranks.
    pub total_references: u64,
}

impl TransferStats {
    /// Accumulate one rank's plan. Naive bytes are estimated from the
    /// rank's average block size times its total references (exact for
    /// uniform block partitions, which all water systems use).
    pub fn add_rank(&mut self, plan: &RankTransferPlan, dims: &BlockedDims) {
        self.unique_bytes += plan.unique_bytes(dims);
        self.unique_blocks += plan.unique_blocks.len() as u64;
        self.total_references += plan.total_references as u64;
        if !plan.unique_blocks.is_empty() {
            let avg_block_bytes = plan.unique_bytes(dims) as f64 / plan.unique_blocks.len() as f64;
            self.naive_bytes += (avg_block_bytes * plan.total_references as f64) as u64;
        }
    }

    /// Overall deduplication factor.
    pub fn dedup_factor(&self) -> f64 {
        if self.unique_blocks == 0 {
            1.0
        } else {
            self.total_references as f64 / self.unique_blocks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded(nb: usize, half: usize) -> (CooPattern, BlockedDims) {
        let mut coords = Vec::new();
        for i in 0..nb {
            for j in i.saturating_sub(half)..(i + half + 1).min(nb) {
                coords.push((i, j));
            }
        }
        (
            CooPattern::from_coords(coords, nb),
            BlockedDims::uniform(nb, 2),
        )
    }

    #[test]
    fn dedup_reduces_references_for_neighbouring_columns() {
        let (p, d) = banded(10, 2);
        let s3 = SubmatrixSpec::build(&p, &d, &[3]);
        let s4 = SubmatrixSpec::build(&p, &d, &[4]);
        let plan = RankTransferPlan::for_specs(&[&s3, &s4], &p);
        // Adjacent banded columns share most blocks.
        assert!(plan.dedup_factor() > 1.5, "factor {}", plan.dedup_factor());
        assert!(plan.total_references > plan.unique_blocks.len());
    }

    #[test]
    fn disjoint_columns_have_no_duplicates() {
        let (p, d) = banded(20, 1);
        let s0 = SubmatrixSpec::build(&p, &d, &[0]);
        let s10 = SubmatrixSpec::build(&p, &d, &[10]);
        let plan = RankTransferPlan::for_specs(&[&s0, &s10], &p);
        assert!((plan.dedup_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unique_bytes_counts_block_areas() {
        let (p, d) = banded(3, 0); // diagonal-only pattern
        let s1 = SubmatrixSpec::build(&p, &d, &[1]);
        let plan = RankTransferPlan::for_specs(&[&s1], &p);
        // One 2x2 block = 32 bytes.
        assert_eq!(plan.unique_bytes(&d), 32);
    }

    #[test]
    fn stats_accumulate_across_ranks() {
        let (p, d) = banded(8, 1);
        let mut stats = TransferStats::default();
        for c in 0..8 {
            let s = SubmatrixSpec::build(&p, &d, &[c]);
            let plan = RankTransferPlan::for_specs(&[&s], &p);
            stats.add_rank(&plan, &d);
        }
        assert!(stats.unique_bytes > 0);
        assert_eq!(stats.unique_blocks, stats.total_references);
        assert!((stats.dedup_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_plan() {
        let plan = RankTransferPlan {
            unique_blocks: Vec::new(),
            total_references: 0,
        };
        assert_eq!(plan.dedup_factor(), 1.0);
        let (_, d) = banded(2, 1);
        assert_eq!(plan.unique_bytes(&d), 0);
    }
}
