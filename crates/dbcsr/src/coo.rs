//! Deterministic global COO view of a block sparsity pattern.
//!
//! Submatrix-method initialization requires *every* rank to know the full
//! block sparsity pattern of the distributed matrix (paper Sec. IV-A1):
//! entries are gathered, sorted by (column, row), and the resulting position
//! of each nonzero block serves as its globally unique ID throughout the
//! implementation.

/// Sorted COO representation of the nonzero-block pattern.
///
/// Entries are sorted by `(block_col, block_row)`; the index of an entry in
/// [`CooPattern::entries`] is its block ID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooPattern {
    /// `(block_row, block_col)` pairs sorted by column then row.
    entries: Vec<(usize, usize)>,
    /// Start of each block column's run inside `entries`:
    /// `col_starts[c]..col_starts[c+1]`.
    col_starts: Vec<usize>,
    /// Number of block columns of the underlying matrix.
    nb: usize,
}

impl CooPattern {
    /// Build from an unsorted list of nonzero block coordinates.
    /// Duplicates are merged. `nb` is the number of block rows/columns.
    pub fn from_coords(mut coords: Vec<(usize, usize)>, nb: usize) -> Self {
        for &(r, c) in &coords {
            assert!(
                r < nb && c < nb,
                "block coordinate ({r},{c}) outside {nb}x{nb} grid"
            );
        }
        coords.sort_by_key(|&(r, c)| (c, r));
        coords.dedup();
        let mut col_starts = vec![0usize; nb + 1];
        for &(_, c) in &coords {
            col_starts[c + 1] += 1;
        }
        for c in 0..nb {
            col_starts[c + 1] += col_starts[c];
        }
        CooPattern {
            entries: coords,
            col_starts,
            nb,
        }
    }

    /// Number of nonzero blocks.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Number of block rows/columns of the matrix.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// All entries, sorted by `(col, row)`. The index of an entry is its ID.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }

    /// Entry for a block ID.
    pub fn coord_of(&self, id: usize) -> (usize, usize) {
        self.entries[id]
    }

    /// Deterministic unique ID of block `(r, c)`, if present.
    pub fn id_of(&self, r: usize, c: usize) -> Option<usize> {
        let lo = self.col_starts[c];
        let hi = self.col_starts[c + 1];
        self.entries[lo..hi]
            .binary_search_by_key(&r, |&(rr, _)| rr)
            .ok()
            .map(|p| lo + p)
    }

    /// Block rows with a nonzero block in column `c` (ascending). This is
    /// the index set that induces column `c`'s principal submatrix.
    pub fn rows_in_col(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.entries[self.col_starts[c]..self.col_starts[c + 1]]
            .iter()
            .map(|&(r, _)| r)
    }

    /// Number of nonzero blocks in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_starts[c + 1] - self.col_starts[c]
    }

    /// Union of the nonzero row sets of several columns, ascending — the
    /// index set of a *combined* submatrix built from multiple block
    /// columns (paper Sec. IV-C2).
    pub fn rows_in_cols(&self, cols: &[usize]) -> Vec<usize> {
        let mut rows: Vec<usize> = cols.iter().flat_map(|&c| self.rows_in_col(c)).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Fraction of nonzero blocks, `nnz / nb²`.
    pub fn fill_fraction(&self) -> f64 {
        if self.nb == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nb * self.nb) as f64
    }

    /// True if the pattern is structurally symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.entries
            .iter()
            .all(|&(r, c)| self.id_of(c, r).is_some())
    }

    /// Fingerprint of this pattern under the given partition. Agrees with
    /// [`crate::matrix::DbcsrMatrix::pattern_fingerprint`] of any
    /// distribution of the same pattern.
    pub fn fingerprint(&self, dims: &crate::dims::BlockedDims) -> crate::wire::PatternFingerprint {
        let mut acc = crate::wire::FingerprintAccumulator::default();
        for &(r, c) in &self.entries {
            acc.add_block(r, c);
        }
        acc.finish(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooPattern {
        // 3x3 grid, pattern:
        //  X . X
        //  X X .
        //  . . X
        CooPattern::from_coords(vec![(0, 0), (1, 0), (1, 1), (0, 2), (2, 2)], 3)
    }

    #[test]
    fn sorted_by_col_then_row() {
        let p = sample();
        assert_eq!(p.entries(), &[(0, 0), (1, 0), (1, 1), (0, 2), (2, 2)]);
    }

    #[test]
    fn ids_are_positions() {
        let p = sample();
        assert_eq!(p.id_of(0, 0), Some(0));
        assert_eq!(p.id_of(1, 0), Some(1));
        assert_eq!(p.id_of(1, 1), Some(2));
        assert_eq!(p.id_of(0, 2), Some(3));
        assert_eq!(p.id_of(2, 2), Some(4));
        assert_eq!(p.id_of(2, 0), None);
        for id in 0..p.nnz() {
            let (r, c) = p.coord_of(id);
            assert_eq!(p.id_of(r, c), Some(id));
        }
    }

    #[test]
    fn column_queries() {
        let p = sample();
        assert_eq!(p.rows_in_col(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(p.rows_in_col(1).collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.rows_in_col(2).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(p.col_nnz(0), 2);
        assert_eq!(p.col_nnz(1), 1);
    }

    #[test]
    fn combined_columns_union() {
        let p = sample();
        assert_eq!(p.rows_in_cols(&[0, 2]), vec![0, 1, 2]);
        assert_eq!(p.rows_in_cols(&[1]), vec![1]);
        assert_eq!(p.rows_in_cols(&[]), Vec::<usize>::new());
    }

    #[test]
    fn duplicates_merged_and_order_independent() {
        let a = CooPattern::from_coords(vec![(1, 0), (0, 0), (1, 0)], 2);
        let b = CooPattern::from_coords(vec![(0, 0), (1, 0)], 2);
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn fill_fraction_and_symmetry() {
        let p = sample();
        assert!((p.fill_fraction() - 5.0 / 9.0).abs() < 1e-15);
        assert!(!p.is_symmetric()); // (0,2) present, (2,0) missing
        let sym = CooPattern::from_coords(vec![(0, 0), (1, 0), (0, 1), (1, 1)], 2);
        assert!(sym.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_coordinate_panics() {
        CooPattern::from_coords(vec![(3, 0)], 3);
    }

    #[test]
    fn empty_pattern() {
        let p = CooPattern::from_coords(vec![], 4);
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.fill_fraction(), 0.0);
        assert!(p.is_symmetric());
        assert_eq!(p.rows_in_col(2).count(), 0);
    }
}
