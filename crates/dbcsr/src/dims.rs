//! Block partition of a matrix dimension.
//!
//! DBCSR matrices in CP2K use atom- or molecule-sized blocks; all matrices
//! in this reproduction are structurally symmetric, so one partition serves
//! both rows and columns.

/// A partition of `0..n()` into consecutive blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedDims {
    sizes: Vec<usize>,
    offsets: Vec<usize>, // offsets[i] = start of block i; offsets[nb] = n
}

impl BlockedDims {
    /// Build from per-block sizes. Zero-sized blocks are rejected.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(
            sizes.iter().all(|&s| s > 0),
            "blocks must have positive size"
        );
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &s in &sizes {
            acc += s;
            offsets.push(acc);
        }
        BlockedDims { sizes, offsets }
    }

    /// `nb` blocks of uniform size `bs`.
    pub fn uniform(nb: usize, bs: usize) -> Self {
        BlockedDims::new(vec![bs; nb])
    }

    /// Number of blocks.
    #[inline]
    pub fn nb(&self) -> usize {
        self.sizes.len()
    }

    /// Total (element) dimension.
    #[inline]
    pub fn n(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Size of block `b`.
    #[inline]
    pub fn size(&self, b: usize) -> usize {
        self.sizes[b]
    }

    /// First element index of block `b`.
    #[inline]
    pub fn offset(&self, b: usize) -> usize {
        self.offsets[b]
    }

    /// Element index range of block `b`.
    #[inline]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.offsets[b]..self.offsets[b + 1]
    }

    /// All block sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Block containing element index `i` (binary search).
    pub fn block_of(&self, i: usize) -> usize {
        assert!(i < self.n(), "element index {i} out of range");
        match self.offsets.binary_search(&i) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partition() {
        let d = BlockedDims::uniform(4, 6);
        assert_eq!(d.nb(), 4);
        assert_eq!(d.n(), 24);
        assert_eq!(d.size(2), 6);
        assert_eq!(d.offset(2), 12);
        assert_eq!(d.range(3), 18..24);
    }

    #[test]
    fn ragged_partition() {
        let d = BlockedDims::new(vec![2, 5, 1]);
        assert_eq!(d.n(), 8);
        assert_eq!(d.offset(0), 0);
        assert_eq!(d.offset(1), 2);
        assert_eq!(d.offset(2), 7);
        assert_eq!(d.sizes(), &[2, 5, 1]);
    }

    #[test]
    fn block_of_element() {
        let d = BlockedDims::new(vec![2, 5, 1]);
        assert_eq!(d.block_of(0), 0);
        assert_eq!(d.block_of(1), 0);
        assert_eq!(d.block_of(2), 1);
        assert_eq!(d.block_of(6), 1);
        assert_eq!(d.block_of(7), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_of_out_of_range() {
        BlockedDims::uniform(2, 3).block_of(6);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_block_rejected() {
        BlockedDims::new(vec![2, 0]);
    }
}
