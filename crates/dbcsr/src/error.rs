//! Typed errors for distributed block-sparse operations.

use std::fmt;

/// Errors produced by distributed block-sparse operations.
///
/// A malformed multiply — mismatched partitions or process grids — used to
/// `assert!` deep inside the collective, killing the whole rank thread and
/// stranding its group peers. These typed results let a caller fail the
/// *job* instead (the same treatment `SchedError::BadEstimate` gives bad
/// cost estimates at scheduler admission).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbcsrError {
    /// Operand block partitions differ.
    PartitionMismatch {
        /// Operation name.
        op: &'static str,
        /// Block count of the left operand's partition.
        lhs_nb: usize,
        /// Block count of the right operand's partition.
        rhs_nb: usize,
    },
    /// Operand process grids differ.
    GridMismatch {
        /// Operation name.
        op: &'static str,
        /// Grid shape of the left operand.
        lhs: (usize, usize),
        /// Grid shape of the right operand.
        rhs: (usize, usize),
    },
}

impl fmt::Display for DbcsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbcsrError::PartitionMismatch { op, lhs_nb, rhs_nb } => {
                write!(f, "{op}: partition mismatch ({lhs_nb} vs {rhs_nb} blocks)")
            }
            DbcsrError::GridMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: process grid mismatch ({}x{} vs {}x{})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
        }
    }
}

impl std::error::Error for DbcsrError {}
