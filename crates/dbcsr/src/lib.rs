//! # sm-dbcsr — distributed block-compressed sparse row matrices
//!
//! A from-scratch reproduction of the parts of libDBCSR (Borštnik et al.,
//! Parallel Computing 2014; paper Sec. II-C) that the submatrix method and
//! its Newton–Schulz baseline rely on:
//!
//! * matrices are divided into a 2-D grid of small dense blocks (one block
//!   per molecule in the chemistry substrate, 5–30 rows/cols in CP2K);
//! * only nonzero blocks are stored; block-level sparsity is the unit of
//!   truncation (`eps_filter`);
//! * blocks are distributed over a 2-D process grid (any `rows × cols`
//!   shape the rank count factors into) with the cyclic block→rank
//!   mapping, and matrix-matrix multiplication runs Cannon-style tile
//!   shifts along grid rows and columns;
//! * every rank can build a deterministic global view of the sparsity
//!   pattern in COO format, in which the position of a block doubles as its
//!   unique ID (paper Sec. IV-A1) — the starting point of submatrix-method
//!   initialization.
//!
//! Matrices are SPMD objects: each rank holds a [`DbcsrMatrix`] with its
//! local blocks, and collective operations take the communicator explicitly.
//! With a single-rank communicator the same type doubles as a replicated
//! sparse matrix, which is what the laptop-scale experiment drivers use.

pub mod coo;
pub mod dims;
pub mod error;
pub mod local;
pub mod matrix;
pub mod multiply;
pub mod ops;
pub mod pattern;
pub mod wire;

pub use coo::CooPattern;
pub use dims::BlockedDims;
pub use error::DbcsrError;
pub use local::BlockStore;
pub use matrix::{process_grid, DbcsrMatrix};
pub use wire::PatternFingerprint;
