//! Local storage of nonzero dense blocks.
//!
//! A `BTreeMap` keyed by `(block_row, block_col)` keeps iteration order
//! deterministic across ranks and runs — determinism is what lets every
//! rank derive identical block IDs from the COO view (paper Sec. IV-A1).

use std::collections::BTreeMap;

use sm_linalg::Matrix;

/// Coordinates of a block in the block grid.
pub type BlockCoord = (usize, usize);

/// Set of dense nonzero blocks owned by one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockStore {
    blocks: BTreeMap<BlockCoord, Matrix>,
}

impl BlockStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Insert (replace) a block.
    pub fn insert(&mut self, coord: BlockCoord, block: Matrix) {
        self.blocks.insert(coord, block);
    }

    /// Accumulate into a block, creating it zero-initialized on first touch.
    ///
    /// # Panics
    /// Panics if an existing block has a different shape.
    pub fn accumulate(&mut self, coord: BlockCoord, block: &Matrix) {
        match self.blocks.get_mut(&coord) {
            Some(existing) => existing
                .axpy(1.0, block)
                .expect("accumulate: block shape mismatch"),
            None => {
                self.blocks.insert(coord, block.clone());
            }
        }
    }

    /// Borrow a block if present.
    pub fn get(&self, coord: &BlockCoord) -> Option<&Matrix> {
        self.blocks.get(coord)
    }

    /// Mutably borrow a block if present.
    pub fn get_mut(&mut self, coord: &BlockCoord) -> Option<&mut Matrix> {
        self.blocks.get_mut(coord)
    }

    /// Remove a block, returning it.
    pub fn remove(&mut self, coord: &BlockCoord) -> Option<Matrix> {
        self.blocks.remove(coord)
    }

    /// True if the coordinate holds a block.
    pub fn contains(&self, coord: &BlockCoord) -> bool {
        self.blocks.contains_key(coord)
    }

    /// Deterministic (sorted) iteration over blocks.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockCoord, &Matrix)> {
        self.blocks.iter()
    }

    /// Deterministic mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&BlockCoord, &mut Matrix)> {
        self.blocks.iter_mut()
    }

    /// Sorted list of block coordinates.
    pub fn coords(&self) -> Vec<BlockCoord> {
        self.blocks.keys().copied().collect()
    }

    /// Drop blocks whose Frobenius norm is at most `eps` (DBCSR
    /// `filter_eps` semantics). Returns the number of dropped blocks.
    pub fn filter(&mut self, eps: f64) -> usize {
        let before = self.blocks.len();
        self.blocks
            .retain(|_, b| sm_linalg::norms::fro_norm(b) > eps);
        before - self.blocks.len()
    }

    /// Total stored elements (Σ rows·cols over blocks).
    pub fn stored_elements(&self) -> usize {
        self.blocks.values().map(|b| b.nrows() * b.ncols()).sum()
    }

    /// Drain all blocks out of the store.
    pub fn drain(&mut self) -> Vec<(BlockCoord, Matrix)> {
        std::mem::take(&mut self.blocks).into_iter().collect()
    }
}

impl FromIterator<(BlockCoord, Matrix)> for BlockStore {
    fn from_iter<I: IntoIterator<Item = (BlockCoord, Matrix)>>(iter: I) -> Self {
        BlockStore {
            blocks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(v: f64) -> Matrix {
        Matrix::from_row_major(2, 2, &[v, 0.0, 0.0, v])
    }

    #[test]
    fn insert_get_remove() {
        let mut s = BlockStore::new();
        assert!(s.is_empty());
        s.insert((0, 1), blk(2.0));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&(0, 1)));
        assert_eq!(s.get(&(0, 1)).unwrap()[(0, 0)], 2.0);
        assert!(s.remove(&(0, 1)).is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn accumulate_creates_then_adds() {
        let mut s = BlockStore::new();
        s.accumulate((1, 1), &blk(1.0));
        s.accumulate((1, 1), &blk(2.0));
        assert_eq!(s.get(&(1, 1)).unwrap()[(0, 0)], 3.0);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = BlockStore::new();
        s.insert((2, 0), blk(1.0));
        s.insert((0, 1), blk(1.0));
        s.insert((0, 0), blk(1.0));
        let coords = s.coords();
        assert_eq!(coords, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn filter_by_block_norm() {
        let mut s = BlockStore::new();
        s.insert((0, 0), blk(1.0));
        s.insert((0, 1), blk(1e-9));
        let dropped = s.filter(1e-6);
        assert_eq!(dropped, 1);
        assert!(s.contains(&(0, 0)));
        assert!(!s.contains(&(0, 1)));
    }

    #[test]
    fn stored_elements_counts() {
        let mut s = BlockStore::new();
        s.insert((0, 0), Matrix::zeros(2, 3));
        s.insert((1, 0), Matrix::zeros(4, 1));
        assert_eq!(s.stored_elements(), 10);
    }

    #[test]
    fn from_iterator_and_drain() {
        let s: BlockStore = vec![((0, 0), blk(1.0)), ((1, 1), blk(2.0))]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        let mut s = s;
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }
}
