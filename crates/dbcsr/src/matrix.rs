//! The distributed block-sparse matrix type.
//!
//! Each rank holds the blocks the cyclic distribution assigns to it; the
//! communicator is passed explicitly to every collective operation, mirroring
//! how libDBCSR threads its MPI communicator through all calls.

use sm_comsim::{Cart2d, Comm};
use sm_linalg::Matrix;

use crate::coo::CooPattern;
use crate::dims::BlockedDims;
use crate::local::BlockStore;

/// The process grid for a communicator of `comm_size` ranks — the single
/// source of the block→rank distribution policy. Everything that maps
/// blocks to owners (matrices, the submatrix engine's transfer planning)
/// must derive its grid from here so the mapping cannot drift.
///
/// Any rank count is accepted: the grid is the most-square factorization
/// ([`Cart2d::squarest`]), so per-job scheduler subgroups of arbitrary
/// width can host matrices. Cannon multiplication supports every grid
/// shape this produces, square or not.
pub fn process_grid(comm_size: usize) -> Cart2d {
    Cart2d::squarest(comm_size)
}

/// SPMD handle to a distributed block-sparse matrix.
///
/// All matrices in this reproduction are square with identical row and
/// column block partitions (Kohn–Sham, overlap and density matrices all
/// share the basis-function partition).
#[derive(Debug, Clone, PartialEq)]
pub struct DbcsrMatrix {
    dims: BlockedDims,
    grid: Cart2d,
    rank: usize,
    store: BlockStore,
}

impl DbcsrMatrix {
    /// Create an empty (all-zero) matrix for `rank` in a communicator of
    /// `comm_size` ranks.
    pub fn new(dims: BlockedDims, rank: usize, comm_size: usize) -> Self {
        let grid = process_grid(comm_size);
        assert!(rank < comm_size, "rank {rank} outside communicator");
        DbcsrMatrix {
            dims,
            grid,
            rank,
            store: BlockStore::new(),
        }
    }

    /// The block partition.
    pub fn dims(&self) -> &BlockedDims {
        &self.dims
    }

    /// The process grid.
    pub fn grid(&self) -> Cart2d {
        self.grid
    }

    /// This handle's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total element dimension `n`.
    pub fn n(&self) -> usize {
        self.dims.n()
    }

    /// Number of block rows/columns.
    pub fn nb(&self) -> usize {
        self.dims.nb()
    }

    /// Owning rank of block `(br, bc)` under the cyclic distribution.
    pub fn owner(&self, br: usize, bc: usize) -> usize {
        self.grid.owner_of_block(br, bc)
    }

    /// True if this rank owns block `(br, bc)`.
    pub fn is_mine(&self, br: usize, bc: usize) -> bool {
        self.owner(br, bc) == self.rank
    }

    /// Local block storage (read).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Local block storage (write). Callers must respect the distribution;
    /// [`DbcsrMatrix::insert_block`] is the checked path.
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Insert a block after validating ownership and shape.
    ///
    /// # Panics
    /// Panics if this rank does not own `(br, bc)` or the block shape does
    /// not match the partition.
    pub fn insert_block(&mut self, br: usize, bc: usize, block: Matrix) {
        assert!(
            self.is_mine(br, bc),
            "rank {} inserting non-owned block ({br},{bc})",
            self.rank
        );
        assert_eq!(
            block.shape(),
            (self.dims.size(br), self.dims.size(bc)),
            "block ({br},{bc}) has wrong shape"
        );
        self.store.insert((br, bc), block);
    }

    /// Borrow a local block.
    pub fn block(&self, br: usize, bc: usize) -> Option<&Matrix> {
        self.store.get(&(br, bc))
    }

    /// Build this rank's part from a full dense matrix (replicated input).
    /// Blocks whose Frobenius norm is at most `eps` are not stored.
    pub fn from_dense(
        dense: &Matrix,
        dims: BlockedDims,
        rank: usize,
        comm_size: usize,
        eps: f64,
    ) -> Self {
        assert_eq!(dense.shape(), (dims.n(), dims.n()), "dense shape mismatch");
        let mut m = DbcsrMatrix::new(dims, rank, comm_size);
        for br in 0..m.nb() {
            for bc in 0..m.nb() {
                if !m.is_mine(br, bc) {
                    continue;
                }
                let rows: Vec<usize> = m.dims.range(br).collect();
                let cols: Vec<usize> = m.dims.range(bc).collect();
                let blk = dense.submatrix(&rows, &cols);
                if sm_linalg::norms::fro_norm(&blk) > eps {
                    m.store.insert((br, bc), blk);
                }
            }
        }
        m
    }

    /// Identity matrix in block form (diagonal blocks only).
    pub fn identity(dims: BlockedDims, rank: usize, comm_size: usize) -> Self {
        let mut m = DbcsrMatrix::new(dims, rank, comm_size);
        for b in 0..m.nb() {
            if m.is_mine(b, b) {
                let s = m.dims.size(b);
                m.store.insert((b, b), Matrix::identity(s));
            }
        }
        m
    }

    /// Gather the full dense matrix on every rank (collective). Intended
    /// for tests and small reference computations.
    pub fn to_dense<C: Comm>(&self, comm: &C) -> Matrix {
        let (meta, data) = pack_blocks(self.store.iter());
        let metas = comm.allgather_u64(&meta);
        let datas = comm.allgather_f64(&data);
        let mut dense = Matrix::zeros(self.n(), self.n());
        for (meta, data) in metas.iter().zip(datas.iter()) {
            for (coord, blk) in unpack_blocks(&self.dims, meta, data) {
                let (br, bc) = coord;
                let r0 = self.dims.offset(br);
                let c0 = self.dims.offset(bc);
                for j in 0..blk.ncols() {
                    for i in 0..blk.nrows() {
                        dense[(r0 + i, c0 + j)] = blk[(i, j)];
                    }
                }
            }
        }
        dense
    }

    /// Build the deterministic global COO sparsity view (collective;
    /// paper Sec. IV-A1). Identical on every rank.
    pub fn global_pattern<C: Comm>(&self, comm: &C) -> CooPattern {
        let local: Vec<u64> = self
            .store
            .iter()
            .flat_map(|(&(r, c), _)| [r as u64, c as u64])
            .collect();
        let all = comm.allgather_u64(&local);
        let coords: Vec<(usize, usize)> = all
            .iter()
            .flat_map(|v| v.chunks_exact(2).map(|p| (p[0] as usize, p[1] as usize)))
            .collect();
        CooPattern::from_coords(coords, self.nb())
    }

    /// Local number of stored blocks.
    pub fn local_nnz_blocks(&self) -> usize {
        self.store.len()
    }

    /// Order- and distribution-independent fingerprint of the global block
    /// sparsity pattern plus partition (collective). Costs one hash pass
    /// over the *local* blocks and a 5-word allreduce — no allgather of the
    /// pattern — so it is cheap enough to run on every numeric-phase call.
    /// Matches [`crate::coo::CooPattern::fingerprint`] of the global
    /// pattern with the same partition.
    pub fn pattern_fingerprint<C: Comm>(&self, comm: &C) -> crate::wire::PatternFingerprint {
        let mut acc = crate::wire::FingerprintAccumulator::default();
        for (&(br, bc), _) in self.store.iter() {
            acc.add_block(br, bc);
        }
        let mut buf = acc.to_reduction();
        comm.allreduce_f64(sm_comsim::ReduceOp::Sum, &mut buf);
        crate::wire::FingerprintAccumulator::from_reduction(&buf).finish(&self.dims)
    }
}

// The block wire format lives in [`crate::wire`]; these re-exports keep
// the original import paths working.
pub use crate::wire::{pack_blocks, unpack_blocks};

#[cfg(test)]
mod tests {
    use super::*;
    use sm_comsim::{run_ranks, SerialComm};

    fn test_dims() -> BlockedDims {
        BlockedDims::new(vec![2, 3, 1])
    }

    fn dense_banded(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if (i as isize - j as isize).abs() <= 2 {
                (i + j) as f64 + 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn serial_from_dense_roundtrip() {
        let dims = test_dims();
        let dense = dense_banded(dims.n());
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let back = m.to_dense(&comm);
        assert!(back.allclose(&dense, 0.0));
    }

    #[test]
    fn from_dense_skips_zero_blocks() {
        let dims = BlockedDims::uniform(4, 2);
        let dense = Matrix::identity(8);
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        // Only the 4 diagonal blocks are nonzero.
        assert_eq!(m.local_nnz_blocks(), 4);
    }

    #[test]
    fn cyclic_ownership_4_ranks() {
        let dims = BlockedDims::uniform(4, 2);
        let m = DbcsrMatrix::new(dims, 0, 4);
        assert_eq!(m.owner(0, 0), 0);
        assert_eq!(m.owner(0, 1), 1);
        assert_eq!(m.owner(1, 0), 2);
        assert_eq!(m.owner(1, 1), 3);
        assert_eq!(m.owner(2, 2), 0);
        assert!(m.is_mine(0, 0));
        assert!(!m.is_mine(0, 1));
    }

    #[test]
    fn non_square_comm_uses_squarest_grid() {
        // Scheduler subgroups come in arbitrary widths; ownership follows
        // the most-square factorization (here 1×3) and stays a partition.
        let m = DbcsrMatrix::new(test_dims(), 0, 3);
        assert_eq!(m.grid(), Cart2d::new(1, 3));
        for br in 0..m.nb() {
            for bc in 0..m.nb() {
                assert!(m.owner(br, bc) < 3);
            }
        }
        // 6 ranks factor 2×3.
        let m6 = DbcsrMatrix::new(test_dims(), 5, 6);
        assert_eq!(m6.grid(), Cart2d::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "non-owned block")]
    fn inserting_foreign_block_panics() {
        let mut m = DbcsrMatrix::new(BlockedDims::uniform(2, 2), 0, 4);
        m.insert_block(0, 1, Matrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn inserting_misshapen_block_panics() {
        let mut m = DbcsrMatrix::new(BlockedDims::new(vec![2, 3]), 0, 1);
        m.insert_block(0, 1, Matrix::zeros(2, 2));
    }

    #[test]
    fn identity_blocks() {
        let dims = test_dims();
        let m = DbcsrMatrix::identity(dims, 0, 1);
        let comm = SerialComm::new();
        let dense = m.to_dense(&comm);
        assert!(dense.allclose(&Matrix::identity(6), 0.0));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let dims = test_dims();
        let dense = dense_banded(dims.n());
        let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
        let (meta, data) = pack_blocks(m.store().iter());
        let blocks = unpack_blocks(&dims, &meta, &data);
        assert_eq!(blocks.len(), m.local_nnz_blocks());
        for (coord, blk) in blocks {
            assert_eq!(m.block(coord.0, coord.1).unwrap(), &blk);
        }
    }

    #[test]
    fn pack_empty() {
        let store = BlockStore::new();
        let (meta, data) = pack_blocks(store.iter());
        assert_eq!(meta, vec![0]);
        assert!(data.is_empty());
        assert!(unpack_blocks(&test_dims(), &meta, &data).is_empty());
    }

    #[test]
    fn distributed_to_dense_matches_serial() {
        let dims = BlockedDims::uniform(6, 2);
        let dense = dense_banded(dims.n());
        let serial = {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
            m.to_dense(&SerialComm::new())
        };
        let (results, _) = run_ranks(4, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            m.to_dense(c)
        });
        for r in results {
            assert!(r.allclose(&serial, 0.0));
        }
    }

    #[test]
    fn distributed_pattern_is_identical_on_all_ranks() {
        let dims = BlockedDims::uniform(6, 2);
        let dense = dense_banded(dims.n());
        let (results, _) = run_ranks(4, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            m.global_pattern(c)
        });
        let first = &results[0];
        assert!(first.nnz() > 0);
        for p in &results {
            assert_eq!(p, first);
        }
        // Pattern must match the serial one.
        let serial = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0)
            .global_pattern(&SerialComm::new());
        assert_eq!(first, &serial);
    }

    #[test]
    fn distribution_partitions_blocks() {
        // Every block owned by exactly one rank.
        let dims = BlockedDims::uniform(5, 2);
        let dense = dense_banded(dims.n());
        let (results, _) = run_ranks(9, |c| {
            let m = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            m.store().coords()
        });
        let mut all: Vec<(usize, usize)> = results.into_iter().flatten().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "a block was stored on two ranks");
        let serial = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
        assert_eq!(total, serial.local_nnz_blocks());
    }
}
