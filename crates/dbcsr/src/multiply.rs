//! Distributed block-sparse matrix multiplication — generalized Cannon
//! ring shifts on any `rows × cols` process grid.
//!
//! libDBCSR implements multiplication with a modified Cannon's algorithm
//! (paper Sec. II-C): tiles of `A` shift westward and tiles of `B` shift
//! northward around the process grid. This implementation generalizes the
//! classic square-grid lockstep to **any** Cartesian grid the
//! [`crate::matrix::process_grid`] factorization produces (1×3, 2×3, 2×4,
//! 3×4, …): tiles of `A` circulate westward around each grid *row*
//! (`cols − 1` unit shifts) and tiles of `B` northward around each grid
//! *column* (`rows − 1` unit shifts). Under the cyclic block→rank
//! distribution a rank at `(r, c)` owns `A` blocks with `br ≡ r (mod
//! rows)` and `B` blocks with `bc ≡ c (mod cols)`, so after the ring
//! passes it holds exactly the `A` row panel and `B` column panel that
//! produce its `C` blocks — every `A(br,bk)·B(bk,bc)` product is formed
//! exactly once, on the rank the cyclic distribution assigns `C(br,bc)`
//! to.
//!
//! Unlike the lockstep variant (which applies block products in tile-
//! arrival order, an order that depends on the grid shape), the products
//! are applied once per output block in **canonical ascending inner-index
//! order**. That makes the result bitwise-identical to the serial multiply
//! on every grid shape — the determinism contract the scheduler's
//! equivalence suites pin — at the cost of holding one row panel of `A`
//! and one column panel of `B` per rank instead of a single streamed tile.
//!
//! The local multiply counts floating-point operations and the shifts count
//! bytes, so the same code path feeds both the correctness tests and the
//! analytic cluster-time model of the scaling experiments.

use std::collections::HashMap;

use sm_comsim::Comm;
use sm_linalg::gemm::{gemm, Op};
use sm_linalg::Matrix;

use crate::error::DbcsrError;
use crate::local::BlockStore;
use crate::matrix::DbcsrMatrix;
use crate::wire;

/// Tags for the two payloads of a tile shift (meta + data), separated for
/// the A (westward) and B (northward) streams.
const TAG_A_META: u64 = 0x10;
const TAG_A_DATA: u64 = 0x11;
const TAG_B_META: u64 = 0x20;
const TAG_B_DATA: u64 = 0x21;

/// Instrumentation of one distributed multiplication.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MultiplyStats {
    /// Local floating-point operations (2·m·n·k per block GEMM), this rank.
    pub local_flops: u64,
    /// Bytes this rank shifted to neighbors.
    pub bytes_shifted: u64,
    /// Block-level GEMM calls on this rank.
    pub block_gemms: u64,
}

impl MultiplyStats {
    /// Merge counters (e.g. across ranks).
    pub fn merge(&mut self, other: &MultiplyStats) {
        self.local_flops += other.local_flops;
        self.bytes_shifted += other.bytes_shifted;
        self.block_gemms += other.block_gemms;
    }
}

/// `C = A · B` on the distributed matrices, with optional block filtering
/// of the result (DBCSR's `eps_filter`). Both operands must share the
/// partition and the process grid; a mismatch returns a typed
/// [`DbcsrError`] so the caller can fail the job instead of the rank.
/// Collective over `comm`. Works on any `rows × cols` grid.
pub fn multiply<C: Comm>(
    a: &DbcsrMatrix,
    b: &DbcsrMatrix,
    comm: &C,
    eps_filter: Option<f64>,
) -> Result<(DbcsrMatrix, MultiplyStats), DbcsrError> {
    if a.dims() != b.dims() {
        return Err(DbcsrError::PartitionMismatch {
            op: "multiply",
            lhs_nb: a.nb(),
            rhs_nb: b.nb(),
        });
    }
    if a.grid() != b.grid() {
        return Err(DbcsrError::GridMismatch {
            op: "multiply",
            lhs: (a.grid().rows(), a.grid().cols()),
            rhs: (b.grid().rows(), b.grid().cols()),
        });
    }
    let grid = a.grid();
    let rank = a.rank();

    let mut c_mat = DbcsrMatrix::new(a.dims().clone(), rank, grid.size());
    let mut stats = MultiplyStats::default();

    // Gather the A row panel: circulate tiles westward around this grid
    // row. Rank tiles partition the blocks, so the union over the row is
    // exactly the blocks with br ≡ my_r (mod rows) — no deduplication
    // needed, and the BTreeMap panel keeps blocks in ascending (br, bk)
    // order regardless of arrival order.
    let mut a_panel = a.store().clone();
    let mut tile = a.store().clone();
    for _ in 1..grid.cols() {
        tile = shift_tile(
            a,
            tile,
            comm,
            grid.left(rank, 1),
            grid.right(rank, 1),
            TAG_A_META,
            TAG_A_DATA,
            &mut stats,
        );
        for (&coord, blk) in tile.iter() {
            a_panel.insert(coord, blk.clone());
        }
    }

    // Gather the B column panel: circulate tiles northward around this
    // grid column (blocks with bc ≡ my_c (mod cols)).
    let mut b_panel = b.store().clone();
    let mut tile = b.store().clone();
    for _ in 1..grid.rows() {
        tile = shift_tile(
            b,
            tile,
            comm,
            grid.up(rank, 1),
            grid.down(rank, 1),
            TAG_B_META,
            TAG_B_DATA,
            &mut stats,
        );
        for (&coord, blk) in tile.iter() {
            b_panel.insert(coord, blk.clone());
        }
    }

    // One multiply over the complete panels: every C(br, bc) block this
    // rank owns accumulates its products in ascending bk order, the same
    // order the serial path uses — bitwise-identical on every grid shape.
    local_multiply_accumulate(&a_panel, &b_panel, c_mat.store_mut(), &mut stats);

    if let Some(eps) = eps_filter {
        c_mat.store_mut().filter(eps);
    }

    // Sanity: every produced block must be owned by this rank.
    debug_assert!(c_mat
        .store()
        .coords()
        .iter()
        .all(|&(br, bc)| c_mat.is_mine(br, bc)));

    Ok((c_mat, stats))
}

/// Send the current tile to `dst` and receive the incoming tile from `src`.
#[allow(clippy::too_many_arguments)]
fn shift_tile<C: Comm>(
    reference: &DbcsrMatrix,
    tile: BlockStore,
    comm: &C,
    dst: usize,
    src: usize,
    tag_meta: u64,
    tag_data: u64,
    stats: &mut MultiplyStats,
) -> BlockStore {
    let rank = reference.rank();
    if dst == rank && src == rank {
        return tile; // shift by a multiple of q: no movement
    }
    let (incoming, bytes) =
        wire::shift_store(&tile, reference.dims(), dst, src, tag_meta, tag_data, comm);
    stats.bytes_shifted += bytes;
    incoming
}

/// Block-sparse multiply-accumulate of two local tiles into `c`.
///
/// Indexes the B tile by block row so each A block `(br, bk)` meets exactly
/// the B blocks `(bk, bc)` sharing its inner index — the block-level
/// equivalent of CSR row lookup that libsmm-driven DBCSR performs. Work is
/// Rayon-parallel over output block rows (distinct rows touch disjoint `C`
/// blocks), mirroring DBCSR's OpenMP parallelism.
fn local_multiply_accumulate(
    a_tile: &BlockStore,
    b_tile: &BlockStore,
    c: &mut BlockStore,
    stats: &mut MultiplyStats,
) {
    use rayon::prelude::*;

    // bk -> list of (bc, block)
    let mut b_by_row: HashMap<usize, Vec<(usize, &Matrix)>> = HashMap::new();
    for (&(bk, bc), blk) in b_tile.iter() {
        b_by_row.entry(bk).or_default().push((bc, blk));
    }
    // br -> list of (bk, block), grouped so each group owns its C row.
    let mut a_by_row: HashMap<usize, Vec<(usize, &Matrix)>> = HashMap::new();
    for (&(br, bk), blk) in a_tile.iter() {
        a_by_row.entry(br).or_default().push((bk, blk));
    }
    let mut rows: Vec<(usize, Vec<(usize, &Matrix)>)> = a_by_row.into_iter().collect();
    rows.sort_by_key(|(br, _)| *br);

    type RowResult = (u64, u64, Vec<((usize, usize), Matrix)>);
    let row_results: Vec<RowResult> = rows
        .par_iter()
        .map(|(br, a_row)| {
            let mut flops = 0u64;
            let mut gemms = 0u64;
            let mut c_row: HashMap<usize, Matrix> = HashMap::new();
            for &(bk, a_blk) in a_row {
                let Some(b_row) = b_by_row.get(&bk) else {
                    continue;
                };
                for &(bc, b_blk) in b_row {
                    let (m, k) = a_blk.shape();
                    let n = b_blk.ncols();
                    debug_assert_eq!(b_blk.nrows(), k);
                    let c_blk = c_row.entry(bc).or_insert_with(|| Matrix::zeros(m, n));
                    gemm(1.0, a_blk, Op::NoTrans, b_blk, Op::NoTrans, 1.0, c_blk)
                        .expect("block shapes validated by partition");
                    flops += (2 * m * n * k) as u64;
                    gemms += 1;
                }
            }
            let mut out: Vec<((usize, usize), Matrix)> = c_row
                .into_iter()
                .map(|(bc, blk)| ((*br, bc), blk))
                .collect();
            out.sort_by_key(|(coord, _)| *coord);
            (flops, gemms, out)
        })
        .collect();

    for (flops, gemms, blocks) in row_results {
        stats.local_flops += flops;
        stats.block_gemms += gemms;
        for (coord, blk) in blocks {
            c.accumulate(coord, &blk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::BlockedDims;
    use sm_comsim::{run_ranks, SerialComm};
    use sm_linalg::gemm::matmul;

    fn dense_banded(n: usize, halfwidth: isize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if (i as isize - j as isize).abs() <= halfwidth {
                ((i * 7 + j * 3) % 11) as f64 * 0.3 - 0.5
            } else {
                0.0
            }
        })
    }

    #[test]
    fn serial_multiply_matches_dense() {
        let dims = BlockedDims::new(vec![2, 3, 2, 1]);
        let n = dims.n();
        let da = dense_banded(n, 3);
        let db = dense_banded(n, 2);
        let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(&db, dims.clone(), 0, 1, 0.0);
        let comm = SerialComm::new();
        let (c, stats) = multiply(&a, &b, &comm, None).unwrap();
        let expect = matmul(&da, &db).unwrap();
        assert!(c.to_dense(&comm).allclose(&expect, 1e-12));
        assert!(stats.local_flops > 0);
        assert_eq!(stats.bytes_shifted, 0, "serial multiply moves no bytes");
    }

    #[test]
    fn distributed_multiply_matches_dense_4_ranks() {
        let dims = BlockedDims::uniform(6, 2);
        let n = dims.n();
        let da = dense_banded(n, 4);
        let db = dense_banded(n, 3);
        let expect = matmul(&da, &db).unwrap();
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            let b = DbcsrMatrix::from_dense(&db, dims.clone(), c.rank(), c.size(), 0.0);
            let (prod, stats) = multiply(&a, &b, c, None).unwrap();
            (prod.to_dense(c), stats)
        });
        for (dense, _) in &results {
            assert!(dense.allclose(&expect, 1e-12));
        }
        // With q = 2 there are shifts, so bytes must flow.
        let total_bytes: u64 = results.iter().map(|(_, s)| s.bytes_shifted).sum();
        assert!(total_bytes > 0);
    }

    #[test]
    fn distributed_multiply_matches_dense_9_ranks() {
        let dims = BlockedDims::new(vec![1, 2, 3, 2, 1, 2]);
        let n = dims.n();
        let da = dense_banded(n, 5);
        let db = dense_banded(n, 2);
        let expect = matmul(&da, &db).unwrap();
        let (results, _) = run_ranks(9, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            let b = DbcsrMatrix::from_dense(&db, dims.clone(), c.rank(), c.size(), 0.0);
            multiply(&a, &b, c, None).unwrap().0.to_dense(c)
        });
        for dense in results {
            assert!(dense.allclose(&expect, 1e-11));
        }
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let dims = BlockedDims::uniform(4, 3);
        let n = dims.n();
        let da = dense_banded(n, 4);
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            let i = DbcsrMatrix::identity(dims.clone(), c.rank(), c.size());
            multiply(&a, &i, c, None).unwrap().0.to_dense(c)
        });
        for dense in results {
            assert!(dense.allclose(&da, 1e-13));
        }
    }

    #[test]
    fn filtering_drops_small_result_blocks() {
        let dims = BlockedDims::uniform(4, 2);
        let n = dims.n();
        // Nearly diagonal matrices: off-diagonal products are tiny.
        let da = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 1e-9 });
        let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let comm = SerialComm::new();
        let (unfiltered, _) = multiply(&a, &a, &comm, None).unwrap();
        let (filtered, _) = multiply(&a, &a, &comm, Some(1e-6)).unwrap();
        assert!(filtered.local_nnz_blocks() < unfiltered.local_nnz_blocks());
        // Diagonal survives.
        assert_eq!(filtered.local_nnz_blocks(), 4);
    }

    #[test]
    fn sparse_times_sparse_preserves_structure_bound() {
        // Block-diagonal times block-diagonal stays block-diagonal.
        let dims = BlockedDims::uniform(5, 2);
        let n = dims.n();
        let da = Matrix::from_fn(n, n, |i, j| {
            if i / 2 == j / 2 {
                (i + j) as f64 + 1.0
            } else {
                0.0
            }
        });
        let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let comm = SerialComm::new();
        let (c, stats) = multiply(&a, &a, &comm, None).unwrap();
        assert_eq!(c.local_nnz_blocks(), 5);
        // 5 diagonal block pairs => 5 block gemms.
        assert_eq!(stats.block_gemms, 5);
        assert_eq!(stats.local_flops, 5 * 2 * 2 * 2 * 2);
    }

    /// Serial reference product with the same block partition.
    fn serial_product(da: &Matrix, db: &Matrix, dims: &BlockedDims) -> Matrix {
        let comm = SerialComm::new();
        let a = DbcsrMatrix::from_dense(da, dims.clone(), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(db, dims.clone(), 0, 1, 0.0);
        multiply(&a, &b, &comm, None).unwrap().0.to_dense(&comm)
    }

    #[test]
    fn non_square_grids_match_serial_bitwise() {
        // Worlds whose squarest factorization is non-square: 1×2, 1×3,
        // 1×5, 2×3, 1×7, 2×4, 3×4. The old implementation panicked on all
        // of them ("requires a square process grid") — this doubles as the
        // regression test that the panic is gone, and pins the stronger
        // contract that results are bitwise-identical to the serial path.
        let dims = BlockedDims::new(vec![2, 3, 1, 2, 3, 2, 1]);
        let n = dims.n();
        let da = dense_banded(n, 5);
        let db = dense_banded(n, 3);
        let expect = serial_product(&da, &db, &dims);
        for world in [2usize, 3, 5, 6, 7, 8, 12] {
            let (results, _) = run_ranks(world, |c| {
                let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
                let b = DbcsrMatrix::from_dense(&db, dims.clone(), c.rank(), c.size(), 0.0);
                multiply(&a, &b, c, None).unwrap().0.to_dense(c)
            });
            for dense in results {
                assert!(
                    dense.allclose(&expect, 0.0),
                    "world {world}: distributed product is not bitwise-identical to serial"
                );
            }
        }
    }

    #[test]
    fn square_grids_match_serial_bitwise() {
        // The square grids were never bitwise-pinned before (old lockstep
        // Cannon accumulated in step order); the panel formulation is.
        let dims = BlockedDims::new(vec![1, 2, 3, 2, 1, 2]);
        let n = dims.n();
        let da = dense_banded(n, 5);
        let db = dense_banded(n, 2);
        let expect = serial_product(&da, &db, &dims);
        for world in [4usize, 9] {
            let (results, _) = run_ranks(world, |c| {
                let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
                let b = DbcsrMatrix::from_dense(&db, dims.clone(), c.rank(), c.size(), 0.0);
                multiply(&a, &b, c, None).unwrap().0.to_dense(c)
            });
            for dense in results {
                assert!(dense.allclose(&expect, 0.0), "world {world}: not bitwise");
            }
        }
    }

    #[test]
    fn partition_mismatch_is_a_typed_error() {
        let da = dense_banded(8, 2);
        let a = DbcsrMatrix::from_dense(&da, BlockedDims::uniform(4, 2), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(&da, BlockedDims::uniform(2, 4), 0, 1, 0.0);
        let err = multiply(&a, &b, &SerialComm::new(), None).unwrap_err();
        assert_eq!(
            err,
            DbcsrError::PartitionMismatch {
                op: "multiply",
                lhs_nb: 4,
                rhs_nb: 2
            }
        );
    }

    #[test]
    fn grid_mismatch_is_a_typed_error() {
        let dims = BlockedDims::uniform(4, 2);
        let da = dense_banded(8, 2);
        let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(&da, dims, 0, 4, 0.0);
        let err = multiply(&a, &b, &SerialComm::new(), None).unwrap_err();
        assert_eq!(
            err,
            DbcsrError::GridMismatch {
                op: "multiply",
                lhs: (1, 1),
                rhs: (2, 2)
            }
        );
    }

    #[test]
    fn flop_count_is_grid_invariant() {
        let dims = BlockedDims::uniform(6, 2);
        let n = dims.n();
        let da = dense_banded(n, 4);
        let serial_flops = {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
            multiply(&a, &a, &SerialComm::new(), None)
                .unwrap()
                .1
                .local_flops
        };
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            multiply(&a, &a, c, None).unwrap().1.local_flops
        });
        let dist_flops: u64 = results.iter().sum();
        assert_eq!(serial_flops, dist_flops);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn multiply_is_bitwise_identical_on_any_grid(
                world in 2usize..13,
                seed in 0usize..64,
                nb in 3usize..7,
            ) {
                let sizes: Vec<usize> = (0..nb).map(|i| 1 + (seed + i * 7) % 3).collect();
                let dims = BlockedDims::new(sizes);
                let n = dims.n();
                let da = Matrix::from_fn(n, n, |i, j| {
                    if (i * 31 + j * 17 + seed) % 4 == 0 {
                        ((i * 13 + j * 7 + seed) % 19) as f64 * 0.17 - 0.9
                    } else {
                        0.0
                    }
                });
                let db = Matrix::from_fn(n, n, |i, j| {
                    if (i * 11 + j * 23 + seed) % 3 == 0 {
                        ((i * 5 + j * 29 + seed) % 17) as f64 * 0.23 - 0.7
                    } else {
                        0.0
                    }
                });
                let expect = serial_product(&da, &db, &dims);
                let (results, _) = run_ranks(world, |c| {
                    let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
                    let b = DbcsrMatrix::from_dense(&db, dims.clone(), c.rank(), c.size(), 0.0);
                    multiply(&a, &b, c, None).unwrap().0.to_dense(c)
                });
                for dense in results {
                    prop_assert!(
                        dense.allclose(&expect, 0.0),
                        "world {} not bitwise-identical to serial",
                        world
                    );
                }
            }
        }
    }
}
