//! Elementwise and reduction operations on distributed matrices.
//!
//! Matrices with the same partition and grid are *aligned*: their blocks
//! live on the same ranks, so addition, scaling and filtering are purely
//! local. Reductions (trace, norms, counts) combine a local partial with an
//! allreduce.

use sm_comsim::{Comm, ReduceOp};
use sm_linalg::Matrix;

use crate::matrix::DbcsrMatrix;

/// `a += alpha * b` (local; operands must be aligned).
pub fn axpy(a: &mut DbcsrMatrix, alpha: f64, b: &DbcsrMatrix) {
    assert_eq!(a.dims(), b.dims(), "axpy: partition mismatch");
    assert_eq!(a.grid(), b.grid(), "axpy: grid mismatch");
    for (&coord, blk) in b.store().iter() {
        let scaled = blk.scaled(alpha);
        a.store_mut().accumulate(coord, &scaled);
    }
}

/// Scale all local blocks: `a *= alpha`.
pub fn scale(a: &mut DbcsrMatrix, alpha: f64) {
    for (_, blk) in a.store_mut().iter_mut() {
        blk.scale(alpha);
    }
}

/// `a += alpha * I`: adds to the diagonal of every owned diagonal block,
/// materializing missing diagonal blocks (they become nonzero).
pub fn shift_diag(a: &mut DbcsrMatrix, alpha: f64) {
    if alpha == 0.0 {
        return;
    }
    for b in 0..a.nb() {
        if !a.is_mine(b, b) {
            continue;
        }
        let s = a.dims().size(b);
        if a.store().get(&(b, b)).is_none() {
            a.store_mut().insert((b, b), Matrix::zeros(s, s));
        }
        let blk = a
            .store_mut()
            .get_mut(&(b, b))
            .expect("just materialized above");
        blk.shift_diag(alpha);
    }
}

/// Global trace (collective).
pub fn trace<C: Comm>(a: &DbcsrMatrix, comm: &C) -> f64 {
    let mut local = 0.0f64;
    for (&(br, bc), blk) in a.store().iter() {
        if br == bc {
            local += blk.trace();
        }
    }
    let mut buf = [local];
    comm.allreduce_f64(ReduceOp::Sum, &mut buf);
    buf[0]
}

/// Global Frobenius norm (collective).
pub fn fro_norm<C: Comm>(a: &DbcsrMatrix, comm: &C) -> f64 {
    let mut ssq = 0.0f64;
    for (_, blk) in a.store().iter() {
        for &v in blk.as_slice() {
            ssq += v * v;
        }
    }
    let mut buf = [ssq];
    comm.allreduce_f64(ReduceOp::Sum, &mut buf);
    buf[0].sqrt()
}

/// Global count of nonzero blocks (collective).
pub fn nnz_blocks<C: Comm>(a: &DbcsrMatrix, comm: &C) -> usize {
    let mut buf = [a.local_nnz_blocks() as f64];
    comm.allreduce_f64(ReduceOp::Sum, &mut buf);
    buf[0] as usize
}

/// Global count of stored elements (collective).
pub fn stored_elements<C: Comm>(a: &DbcsrMatrix, comm: &C) -> usize {
    let mut buf = [a.store().stored_elements() as f64];
    comm.allreduce_f64(ReduceOp::Sum, &mut buf);
    buf[0] as usize
}

/// Trace of `A · B` without forming the product (collective):
/// `Tr(AB) = Σ_{br,bk} <A[br,bk], B[bk,br]^T>`. Both operands must be
/// aligned. This evaluates the band-structure energy `Tr(D K)` of Eq. 10
/// at block-sparse cost.
pub fn trace_of_product<C: Comm>(a: &DbcsrMatrix, b: &DbcsrMatrix, comm: &C) -> f64 {
    assert_eq!(a.dims(), b.dims(), "trace_of_product: partition mismatch");
    assert_eq!(a.grid(), b.grid(), "trace_of_product: grid mismatch");
    // A[br,bk] lives on rank (br%q, bk%q); B[bk,br] on (bk%q, br%q). They
    // generally live on different ranks, so gather B's transposed-partner
    // contributions via all-to-all of the needed blocks. Simpler and still
    // exact: compute partial traces where both blocks are local, and route
    // non-local partners. For the reproduction's workloads the single-rank
    // path dominates; the multi-rank path gathers B fully only for the
    // blocks A actually holds.
    let mut local = 0.0f64;
    let mut missing: Vec<(usize, usize)> = Vec::new();
    for (&(br, bk), _) in a.store().iter() {
        if b.store().get(&(bk, br)).is_some() || b.owner(bk, br) == b.rank() {
            // partner local (or absent => zero contribution)
        } else {
            missing.push((bk, br));
        }
    }
    // Fetch missing partner blocks with an all-to-all.
    let fetched = fetch_blocks(b, &missing, comm);
    for (&(br, bk), a_blk) in a.store().iter() {
        let partner = if b.owner(bk, br) == b.rank() {
            b.store().get(&(bk, br)).cloned()
        } else {
            fetched.get(&(bk, br)).cloned()
        };
        if let Some(b_blk) = partner {
            // <A, B^T> = Σ_ij A_ij * B_ji
            for j in 0..a_blk.ncols() {
                for i in 0..a_blk.nrows() {
                    local += a_blk[(i, j)] * b_blk[(j, i)];
                }
            }
        }
    }
    let mut buf = [local];
    comm.allreduce_f64(ReduceOp::Sum, &mut buf);
    buf[0]
}

/// Fetch a set of remote blocks of `m` by coordinate (collective). Blocks
/// that are zero (absent) on their owner are simply not returned.
pub fn fetch_blocks<C: Comm>(
    m: &DbcsrMatrix,
    wanted: &[(usize, usize)],
    comm: &C,
) -> std::collections::BTreeMap<(usize, usize), Matrix> {
    fetch_blocks_prec(m, wanted, crate::wire::ValueFormat::F64, comm).0
}

/// [`fetch_blocks`] with a chosen value encoding — the engine's gather hot
/// path. With [`ValueFormat::F32`](crate::wire::ValueFormat) the owners'
/// replies move half the value bytes (values rounded through `f32`
/// storage, which the reduced-precision solve does anyway). Additionally
/// returns the value-payload bytes received from **remote** ranks — the
/// deterministic gather byte counter of the precision telemetry.
pub fn fetch_blocks_prec<C: Comm>(
    m: &DbcsrMatrix,
    wanted: &[(usize, usize)],
    format: crate::wire::ValueFormat,
    comm: &C,
) -> (std::collections::BTreeMap<(usize, usize), Matrix>, u64) {
    use sm_comsim::Payload;
    let size = comm.size();
    // Round 1: send requests (block coords) to owners.
    let mut requests: Vec<Vec<u64>> = vec![Vec::new(); size];
    for &(br, bc) in wanted {
        let owner = m.owner(br, bc);
        requests[owner].push(br as u64);
        requests[owner].push(bc as u64);
    }
    let incoming = comm.alltoallv(requests.into_iter().map(Payload::U64).collect());
    // Round 2: answer with the requested blocks we actually store, packed
    // in the shared wire format straight from the store (no block copies
    // besides the wire buffer itself).
    let mut replies_meta: Vec<Payload> = Vec::with_capacity(size);
    let mut replies_data: Vec<Payload> = Vec::with_capacity(size);
    for req in incoming {
        let req = req.into_u64();
        let found: Vec<((usize, usize), &Matrix)> = req
            .chunks_exact(2)
            .filter_map(|pair| {
                let coord = (pair[0] as usize, pair[1] as usize);
                m.store().get(&coord).map(|blk| (coord, blk))
            })
            .collect();
        let (meta, data) =
            crate::wire::pack_blocks_prec(found.iter().map(|(c, b)| (c, *b)), format);
        replies_meta.push(Payload::U64(meta));
        replies_data.push(data);
    }
    let metas = comm.alltoallv(replies_meta);
    let datas = comm.alltoallv(replies_data);
    let mut out = std::collections::BTreeMap::new();
    let mut value_bytes = 0u64;
    for (src, (meta, data)) in metas.into_iter().zip(datas).enumerate() {
        if src != comm.rank() {
            value_bytes += data.byte_len() as u64;
        }
        for (coord, blk) in crate::wire::unpack_blocks_prec(m.dims(), &meta.into_u64(), data) {
            out.insert(coord, blk);
        }
    }
    (out, value_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::BlockedDims;
    use sm_comsim::{run_ranks, SerialComm};
    use sm_linalg::gemm::matmul;

    fn dense_banded(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if (i as isize - j as isize).abs() <= 3 {
                ((i * 5 + j) % 7) as f64 * 0.25 - 0.4
            } else {
                0.0
            }
        })
    }

    #[test]
    fn axpy_matches_dense() {
        let dims = BlockedDims::uniform(4, 2);
        let n = dims.n();
        let da = dense_banded(n);
        let db = Matrix::identity(n);
        let comm = SerialComm::new();
        let mut a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(&db, dims, 0, 1, 0.0);
        axpy(&mut a, 2.5, &b);
        let mut expect = da.clone();
        expect.shift_diag(2.5);
        assert!(a.to_dense(&comm).allclose(&expect, 1e-14));
    }

    #[test]
    fn scale_and_shift_diag() {
        let dims = BlockedDims::new(vec![2, 3]);
        let comm = SerialComm::new();
        let mut a = DbcsrMatrix::identity(dims, 0, 1);
        scale(&mut a, 3.0);
        shift_diag(&mut a, -3.0);
        let dense = a.to_dense(&comm);
        assert!(dense.allclose(&Matrix::zeros(5, 5), 0.0));
    }

    #[test]
    fn shift_diag_materializes_missing_blocks() {
        let dims = BlockedDims::uniform(3, 2);
        let mut a = DbcsrMatrix::new(dims, 0, 1); // completely empty
        shift_diag(&mut a, 1.0);
        assert_eq!(a.local_nnz_blocks(), 3);
        let comm = SerialComm::new();
        assert!(a.to_dense(&comm).allclose(&Matrix::identity(6), 0.0));
    }

    #[test]
    fn trace_and_fro_norm_match_dense() {
        let dims = BlockedDims::uniform(4, 3);
        let n = dims.n();
        let da = dense_banded(n);
        let comm = SerialComm::new();
        let a = DbcsrMatrix::from_dense(&da, dims, 0, 1, 0.0);
        assert!((trace(&a, &comm) - da.trace()).abs() < 1e-12);
        assert!((fro_norm(&a, &comm) - sm_linalg::norms::fro_norm(&da)).abs() < 1e-12);
    }

    #[test]
    fn distributed_reductions_agree_with_serial() {
        let dims = BlockedDims::uniform(6, 2);
        let n = dims.n();
        let da = dense_banded(n);
        let serial_trace = da.trace();
        let serial_fro = sm_linalg::norms::fro_norm(&da);
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            (trace(&a, c), fro_norm(&a, c), nnz_blocks(&a, c))
        });
        for (t, f, nnz) in results {
            assert!((t - serial_trace).abs() < 1e-12);
            assert!((f - serial_fro).abs() < 1e-12);
            assert!(nnz > 0);
        }
    }

    #[test]
    fn trace_of_product_matches_dense_serial() {
        let dims = BlockedDims::uniform(4, 2);
        let n = dims.n();
        let da = dense_banded(n);
        let db = dense_banded(n).transpose();
        let comm = SerialComm::new();
        let a = DbcsrMatrix::from_dense(&da, dims.clone(), 0, 1, 0.0);
        let b = DbcsrMatrix::from_dense(&db, dims, 0, 1, 0.0);
        let expect = matmul(&da, &db).unwrap().trace();
        assert!((trace_of_product(&a, &b, &comm) - expect).abs() < 1e-10);
    }

    #[test]
    fn trace_of_product_matches_dense_distributed() {
        let dims = BlockedDims::uniform(6, 2);
        let n = dims.n();
        let da = dense_banded(n);
        let db = dense_banded(n).transpose();
        let expect = matmul(&da, &db).unwrap().trace();
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            let b = DbcsrMatrix::from_dense(&db, dims.clone(), c.rank(), c.size(), 0.0);
            trace_of_product(&a, &b, c)
        });
        for t in results {
            assert!((t - expect).abs() < 1e-10, "{t} != {expect}");
        }
    }

    #[test]
    fn fetch_blocks_returns_remote_blocks() {
        let dims = BlockedDims::uniform(4, 2);
        let n = dims.n();
        let da = dense_banded(n);
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&da, dims.clone(), c.rank(), c.size(), 0.0);
            // Everyone asks for block (0,0) (owned by rank 0) and (1,1)
            // (owned by rank 3).
            let fetched = fetch_blocks(&a, &[(0, 0), (1, 1)], c);
            (fetched.get(&(0, 0)).cloned(), fetched.get(&(1, 1)).cloned())
        });
        let rows: Vec<usize> = (0..2).collect();
        let expect00 = da.submatrix(&rows, &rows);
        for (b00, b11) in results {
            assert!(b00.unwrap().allclose(&expect00, 0.0));
            assert!(b11.is_some());
        }
    }
}

/// Distributed transpose (collective): every block `(br, bc)` is
/// transposed and routed to the owner of `(bc, br)`.
pub fn transpose<C: Comm>(a: &DbcsrMatrix, comm: &C) -> DbcsrMatrix {
    let mut out = DbcsrMatrix::new(a.dims().clone(), a.rank(), comm.size());
    let mut outgoing: Vec<std::collections::BTreeMap<(usize, usize), Matrix>> = (0..comm.size())
        .map(|_| std::collections::BTreeMap::new())
        .collect();
    for (&(br, bc), blk) in a.store().iter() {
        outgoing[out.owner(bc, br)].insert((bc, br), blk.transpose());
    }
    for ((br, bc), blk) in crate::wire::exchange_blocks(outgoing, a.dims(), comm) {
        out.insert_block(br, bc, blk);
    }
    out
}

/// Largest absolute deviation from symmetry, `max |A − Aᵀ|` (collective).
pub fn asymmetry<C: Comm>(a: &DbcsrMatrix, comm: &C) -> f64 {
    let at = transpose(a, comm);
    let mut worst = 0.0f64;
    for (&coord, blk) in a.store().iter() {
        match at.store().get(&coord) {
            Some(tb) => worst = worst.max(blk.max_abs_diff(tb)),
            None => worst = worst.max(sm_linalg::norms::max_norm(blk)),
        }
    }
    // Blocks present only in Aᵀ (i.e. the partner was zero in A).
    for (&coord, tb) in at.store().iter() {
        if a.store().get(&coord).is_none() {
            worst = worst.max(sm_linalg::norms::max_norm(tb));
        }
    }
    let mut buf = [worst];
    comm.allreduce_f64(ReduceOp::Max, &mut buf);
    buf[0]
}

#[cfg(test)]
mod transpose_tests {
    use super::*;
    use crate::dims::BlockedDims;
    use sm_comsim::{run_ranks, SerialComm};

    fn test_dense(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if (i as isize - j as isize).abs() <= 3 {
                (i * 11 + j * 3) as f64 * 0.1 - 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn transpose_matches_dense_serial() {
        let dims = BlockedDims::new(vec![2, 3, 1, 2]);
        let dense = test_dense(dims.n());
        let comm = SerialComm::new();
        let a = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let t = transpose(&a, &comm);
        assert!(t.to_dense(&comm).allclose(&dense.transpose(), 0.0));
    }

    #[test]
    fn transpose_matches_dense_distributed() {
        let dims = BlockedDims::uniform(6, 2);
        let dense = test_dense(dims.n());
        let expect = dense.transpose();
        let (results, _) = run_ranks(4, |c| {
            let a = DbcsrMatrix::from_dense(&dense, dims.clone(), c.rank(), c.size(), 0.0);
            transpose(&a, c).to_dense(c)
        });
        for r in results {
            assert!(r.allclose(&expect, 0.0));
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let dims = BlockedDims::uniform(4, 3);
        let dense = test_dense(dims.n());
        let comm = SerialComm::new();
        let a = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let tt = transpose(&transpose(&a, &comm), &comm);
        assert_eq!(&tt, &a);
    }

    #[test]
    fn asymmetry_detects_and_clears() {
        let dims = BlockedDims::uniform(3, 2);
        let mut dense = test_dense(dims.n());
        let comm = SerialComm::new();
        dense.symmetrize();
        let sym = DbcsrMatrix::from_dense(&dense, dims.clone(), 0, 1, 0.0);
        assert!(asymmetry(&sym, &comm) < 1e-15);
        dense[(0, 3)] += 0.5;
        let asym = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        assert!((asymmetry(&asym, &comm) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_catches_one_sided_blocks() {
        // A block present at (0,1) with no partner at (1,0).
        let dims = BlockedDims::uniform(2, 2);
        let comm = SerialComm::new();
        let mut a = DbcsrMatrix::new(dims, 0, 1);
        a.insert_block(0, 1, Matrix::from_row_major(2, 2, &[0.3, 0.0, 0.0, 0.0]));
        assert!((asymmetry(&a, &comm) - 0.3).abs() < 1e-15);
    }
}
