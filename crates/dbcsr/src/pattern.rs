//! Sparsity-pattern inspection and export.
//!
//! Paper Fig. 2 visualizes the block sparsity of the orthogonalized
//! Kohn–Sham matrix for 864 water molecules; this module renders such
//! patterns (PBM image + terminal art) and computes the block-/element-wise
//! occupancy statistics behind Figs. 4 and 11.

use crate::coo::CooPattern;
use crate::matrix::DbcsrMatrix;
use sm_comsim::Comm;

/// Summary statistics of a block sparsity pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternStats {
    /// Number of block rows/columns.
    pub nb: usize,
    /// Nonzero blocks.
    pub nnz_blocks: usize,
    /// Fraction of nonzero blocks.
    pub block_fill: f64,
    /// Average nonzero blocks per block column.
    pub avg_col_nnz: f64,
    /// Maximum nonzero blocks in any block column.
    pub max_col_nnz: usize,
}

/// Compute summary statistics of a COO pattern.
pub fn stats(p: &CooPattern) -> PatternStats {
    let nb = p.nb();
    let max_col = (0..nb).map(|c| p.col_nnz(c)).max().unwrap_or(0);
    PatternStats {
        nb,
        nnz_blocks: p.nnz(),
        block_fill: p.fill_fraction(),
        avg_col_nnz: if nb == 0 {
            0.0
        } else {
            p.nnz() as f64 / nb as f64
        },
        max_col_nnz: max_col,
    }
}

/// Render the pattern as a portable bitmap (PBM P1) string: black pixel =
/// nonzero block. Suitable for direct comparison with paper Fig. 2.
pub fn to_pbm(p: &CooPattern) -> String {
    let nb = p.nb();
    let mut grid = vec![false; nb * nb];
    for &(r, c) in p.entries() {
        grid[r * nb + c] = true;
    }
    let mut out = String::with_capacity(nb * (2 * nb + 1) + 32);
    out.push_str(&format!("P1\n{nb} {nb}\n"));
    for r in 0..nb {
        for c in 0..nb {
            out.push(if grid[r * nb + c] { '1' } else { '0' });
            out.push(if c + 1 == nb { '\n' } else { ' ' });
        }
    }
    out
}

/// Coarse terminal rendering (`#` = any nonzero block in the cell), at most
/// `max_side` characters wide.
pub fn to_ascii(p: &CooPattern, max_side: usize) -> String {
    let nb = p.nb();
    if nb == 0 {
        return String::new();
    }
    let side = nb.min(max_side.max(1));
    let scale = nb.div_ceil(side);
    let cells = nb.div_ceil(scale);
    let mut grid = vec![false; cells * cells];
    for &(r, c) in p.entries() {
        grid[(r / scale) * cells + (c / scale)] = true;
    }
    let mut out = String::new();
    for r in 0..cells {
        for c in 0..cells {
            out.push(if grid[r * cells + c] { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Element-wise occupancy of a distributed matrix (collective): fraction of
/// stored elements with |value| > `eps` relative to stored block area, and
/// relative to the full dense size. Backs the element-wise series of
/// paper Fig. 11.
pub fn element_occupancy<C: Comm>(m: &DbcsrMatrix, eps: f64, comm: &C) -> ElementOccupancy {
    let mut nonzero = 0usize;
    let mut stored = 0usize;
    for (_, blk) in m.store().iter() {
        stored += blk.nrows() * blk.ncols();
        nonzero += blk.count_above(eps);
    }
    let mut buf = [nonzero as f64, stored as f64];
    comm.allreduce_f64(sm_comsim::ReduceOp::Sum, &mut buf);
    let n = m.n();
    ElementOccupancy {
        nonzero_elements: buf[0] as usize,
        stored_elements: buf[1] as usize,
        dense_elements: n * n,
    }
}

/// Element-level occupancy counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementOccupancy {
    /// Elements with magnitude above the threshold.
    pub nonzero_elements: usize,
    /// Elements inside stored blocks (block-dense storage footprint).
    pub stored_elements: usize,
    /// `n²` of the full matrix.
    pub dense_elements: usize,
}

impl ElementOccupancy {
    /// Nonzero fraction within stored blocks (the "element-wise sparsity of
    /// submatrices" axis of Fig. 11).
    pub fn within_stored(&self) -> f64 {
        if self.stored_elements == 0 {
            0.0
        } else {
            self.nonzero_elements as f64 / self.stored_elements as f64
        }
    }

    /// Nonzero fraction relative to the dense matrix.
    pub fn of_dense(&self) -> f64 {
        if self.dense_elements == 0 {
            0.0
        } else {
            self.nonzero_elements as f64 / self.dense_elements as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::BlockedDims;
    use sm_comsim::SerialComm;
    use sm_linalg::Matrix;

    fn tridiagonal_pattern(nb: usize) -> CooPattern {
        let mut coords = Vec::new();
        for i in 0..nb {
            coords.push((i, i));
            if i + 1 < nb {
                coords.push((i, i + 1));
                coords.push((i + 1, i));
            }
        }
        CooPattern::from_coords(coords, nb)
    }

    #[test]
    fn stats_of_tridiagonal() {
        let p = tridiagonal_pattern(5);
        let s = stats(&p);
        assert_eq!(s.nb, 5);
        assert_eq!(s.nnz_blocks, 13);
        assert_eq!(s.max_col_nnz, 3);
        assert!((s.block_fill - 13.0 / 25.0).abs() < 1e-15);
        assert!((s.avg_col_nnz - 2.6).abs() < 1e-15);
    }

    #[test]
    fn pbm_header_and_pixels() {
        let p = tridiagonal_pattern(3);
        let pbm = to_pbm(&p);
        let mut lines = pbm.lines();
        assert_eq!(lines.next(), Some("P1"));
        assert_eq!(lines.next(), Some("3 3"));
        assert_eq!(lines.next(), Some("1 1 0"));
        assert_eq!(lines.next(), Some("1 1 1"));
        assert_eq!(lines.next(), Some("0 1 1"));
    }

    #[test]
    fn ascii_downsamples() {
        let p = tridiagonal_pattern(100);
        let art = to_ascii(&p, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[0].starts_with('#'));
        assert!(lines[0].ends_with('.'));
    }

    #[test]
    fn element_occupancy_counts() {
        let dims = BlockedDims::uniform(2, 2);
        let dense = Matrix::from_row_major(
            4,
            4,
            &[
                1.0, 1e-12, 0.0, 0.0, //
                1e-12, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.5, //
                0.0, 0.0, 0.5, 1.0,
            ],
        );
        let m = DbcsrMatrix::from_dense(&dense, dims, 0, 1, 0.0);
        let comm = SerialComm::new();
        let occ = element_occupancy(&m, 1e-6, &comm);
        // Two diagonal blocks stored, 8 elements, of which 2+4 exceed eps.
        assert_eq!(occ.stored_elements, 8);
        assert_eq!(occ.nonzero_elements, 6);
        assert_eq!(occ.dense_elements, 16);
        assert!((occ.within_stored() - 0.75).abs() < 1e-15);
        assert!((occ.of_dense() - 6.0 / 16.0).abs() < 1e-15);
    }
}
