//! The block wire format — one shared serialization path for every
//! collective and point-to-point exchange of matrix blocks.
//!
//! Historically each call site (result scatter, transpose, Cannon tile
//! shifts, block fetches) hand-rolled its own `(meta, data)` packing; this
//! module is now the single public API. The format is unchanged: meta is
//! `[count, br_0, bc_0, br_1, bc_1, ...]` and data concatenates the
//! column-major block contents in the same order (block shapes are implied
//! by the partition, so they are never transmitted).
//!
//! Tag discipline: `sm-comsim` reserves the top tag bit
//! ([`sm_comsim::COLLECTIVE_BIT`]) for its internal collective traffic.
//! Every tagged send issued from this crate goes through [`user_tag`],
//! which rejects tags trespassing on the reserved namespace at the call
//! site instead of deep inside a communicator assert.

use std::collections::BTreeMap;

use sm_comsim::{Comm, Payload, COLLECTIVE_BIT, SUBGROUP_BIT};
use sm_linalg::Matrix;

use crate::dims::BlockedDims;
use crate::local::{BlockCoord, BlockStore};

/// Validate a user-chosen message tag against the communicator's reserved
/// namespaces.
///
/// # Panics
/// Panics if `tag` sets [`COLLECTIVE_BIT`] (it could cross-match internal
/// collective traffic and corrupt an unrelated allgather) or
/// [`SUBGROUP_BIT`] (reserved for subcommunicator traffic; see
/// `sm_comsim::subcomm`). The guard applies unchanged *inside* a subgroup:
/// a `SubComm` rewrites these low-bit user tags into its own namespace and
/// enforces the same two reservations one level down.
#[inline]
pub fn user_tag(tag: u64) -> u64 {
    assert!(
        tag & COLLECTIVE_BIT == 0,
        "tag {tag:#x} trespasses on the reserved collective namespace"
    );
    assert!(
        tag & SUBGROUP_BIT == 0,
        "tag {tag:#x} trespasses on the reserved subgroup namespace"
    );
    tag
}

/// Serialize blocks into `(meta, data)` payload vectors.
pub fn pack_blocks<'a>(
    blocks: impl Iterator<Item = (&'a BlockCoord, &'a Matrix)>,
) -> (Vec<u64>, Vec<f64>) {
    let mut meta = vec![0u64];
    let mut data = Vec::new();
    let mut count = 0u64;
    for (&(br, bc), blk) in blocks {
        meta.push(br as u64);
        meta.push(bc as u64);
        data.extend_from_slice(blk.as_slice());
        count += 1;
    }
    meta[0] = count;
    (meta, data)
}

/// Inverse of [`pack_blocks`]: reconstruct `(coord, block)` pairs using the
/// partition to recover block shapes.
pub fn unpack_blocks(dims: &BlockedDims, meta: &[u64], data: &[f64]) -> Vec<(BlockCoord, Matrix)> {
    if meta.is_empty() {
        return Vec::new();
    }
    let count = meta[0] as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 0usize;
    for k in 0..count {
        let br = meta[1 + 2 * k] as usize;
        let bc = meta[2 + 2 * k] as usize;
        let (rows, cols) = (dims.size(br), dims.size(bc));
        let len = rows * cols;
        let blk = Matrix::from_col_major(rows, cols, data[off..off + len].to_vec());
        off += len;
        out.push(((br, bc), blk));
    }
    assert_eq!(off, data.len(), "unpack_blocks: trailing data");
    out
}

/// Route per-destination block maps to their ranks with one all-to-all
/// exchange (collective) and return every block received, already
/// deserialized. `outgoing[d]` is delivered to rank `d`; the entry for the
/// calling rank is returned locally without serialization.
pub fn exchange_blocks<C: Comm>(
    outgoing: Vec<BTreeMap<BlockCoord, Matrix>>,
    dims: &BlockedDims,
    comm: &C,
) -> Vec<(BlockCoord, Matrix)> {
    assert_eq!(
        outgoing.len(),
        comm.size(),
        "exchange_blocks needs one outgoing map per rank"
    );
    let mut local: Vec<(BlockCoord, Matrix)> = Vec::new();
    let mut metas: Vec<Payload> = Vec::with_capacity(outgoing.len());
    let mut datas: Vec<Payload> = Vec::with_capacity(outgoing.len());
    for (dst, m) in outgoing.into_iter().enumerate() {
        if dst == comm.rank() {
            local.extend(m);
            metas.push(Payload::U64(vec![0]));
            datas.push(Payload::F64(Vec::new()));
        } else {
            let (meta, data) = pack_blocks(m.iter());
            metas.push(Payload::U64(meta));
            datas.push(Payload::F64(data));
        }
    }
    let metas_in = comm.alltoallv(metas);
    let datas_in = comm.alltoallv(datas);
    let mut out = local;
    for (meta, data) in metas_in.into_iter().zip(datas_in) {
        out.extend(unpack_blocks(dims, &meta.into_u64(), &data.into_f64()));
    }
    out
}

/// Send a block store to `dst` and receive one from `src` over a pair of
/// tagged point-to-point messages (the Cannon tile-shift primitive).
/// Returns the received store plus the number of payload bytes sent.
pub fn shift_store<C: Comm>(
    store: &BlockStore,
    dims: &BlockedDims,
    dst: usize,
    src: usize,
    tag_meta: u64,
    tag_data: u64,
    comm: &C,
) -> (BlockStore, u64) {
    let (tag_meta, tag_data) = (user_tag(tag_meta), user_tag(tag_data));
    assert_ne!(
        tag_meta, tag_data,
        "meta and data streams need distinct tags"
    );
    let (meta, data) = pack_blocks(store.iter());
    let bytes = (meta.len() * 8 + data.len() * 8) as u64;
    comm.send(dst, tag_meta, Payload::U64(meta));
    comm.send(dst, tag_data, Payload::F64(data));
    let meta_in = comm.recv(src, tag_meta).into_u64();
    let data_in = comm.recv(src, tag_data).into_f64();
    (
        unpack_blocks(dims, &meta_in, &data_in)
            .into_iter()
            .collect(),
        bytes,
    )
}

/// Order-independent 64-bit fingerprint of a block sparsity pattern plus
/// its partition.
///
/// Each `(br, bc)` coordinate is hashed independently and the per-block
/// hashes are combined commutatively (lane-wise sums), so ranks holding
/// disjoint parts of a distributed pattern can fingerprint their local
/// blocks and merge — no allgather of the full pattern is needed.
/// The partition itself (block sizes) is mixed in, so two patterns that
/// agree block-wise but partition elements differently fingerprint apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternFingerprint(pub u64);

/// Accumulator for building a [`PatternFingerprint`] incrementally.
///
/// Internally keeps the sum of per-block hashes split into four 16-bit
/// lanes, so the state survives a floating-point sum-allreduce exactly:
/// each lane term is < 2¹⁶, so the lane sum stays below 2⁵³ (f64-exact)
/// up to ~2³⁷ nonzero blocks — far beyond any pattern this system will
/// hold in memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FingerprintAccumulator {
    lanes: [u64; 4],
    count: u64,
}

/// SplitMix64 finalizer — the shared 64-bit mixing primitive behind the
/// pattern fingerprint and the engine's plan-cache tags.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

use mix64 as mix;

impl FingerprintAccumulator {
    /// Absorb one block coordinate.
    pub fn add_block(&mut self, br: usize, bc: usize) {
        let h = mix(((br as u64) << 32) ^ (bc as u64) ^ 0x9e37_79b9_7f4a_7c15);
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            *lane += (h >> (16 * k)) & 0xffff;
        }
        self.count += 1;
    }

    /// State as exactly-representable f64 summands, ready for a
    /// `ReduceOp::Sum` allreduce across ranks.
    pub fn to_reduction(&self) -> [f64; 5] {
        [
            self.lanes[0] as f64,
            self.lanes[1] as f64,
            self.lanes[2] as f64,
            self.lanes[3] as f64,
            self.count as f64,
        ]
    }

    /// Rebuild an accumulator from (possibly reduced) summands.
    pub fn from_reduction(buf: &[f64; 5]) -> Self {
        FingerprintAccumulator {
            lanes: [buf[0] as u64, buf[1] as u64, buf[2] as u64, buf[3] as u64],
            count: buf[4] as u64,
        }
    }

    /// Finish, mixing in the partition.
    pub fn finish(&self, dims: &BlockedDims) -> PatternFingerprint {
        let mut h = self.count.wrapping_mul(0x2545_f491_4f6c_dd1d);
        for (k, lane) in self.lanes.iter().enumerate() {
            h = mix(h ^ lane.rotate_left(16 * k as u32));
        }
        h = mix(h ^ (dims.nb() as u64));
        for b in 0..dims.nb() {
            h = mix(h ^ (((b as u64) << 32) | dims.size(b) as u64));
        }
        PatternFingerprint(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooPattern;
    use sm_comsim::SerialComm;

    fn dims3() -> BlockedDims {
        BlockedDims::new(vec![2, 3, 1])
    }

    #[test]
    fn user_tag_passes_clean_tags() {
        assert_eq!(user_tag(0), 0);
        assert_eq!(user_tag(0x3fff_ffff_ffff_ffff), 0x3fff_ffff_ffff_ffff);
    }

    #[test]
    #[should_panic(expected = "reserved collective namespace")]
    fn user_tag_rejects_collective_bit() {
        user_tag(COLLECTIVE_BIT | 3);
    }

    #[test]
    #[should_panic(expected = "reserved subgroup namespace")]
    fn user_tag_rejects_subgroup_bit() {
        user_tag(SUBGROUP_BIT | 3);
    }

    #[test]
    fn exchange_blocks_serial_is_local_passthrough() {
        let dims = dims3();
        let mut m = BTreeMap::new();
        m.insert((0usize, 0usize), Matrix::identity(2));
        let comm = SerialComm::new();
        let got = exchange_blocks(vec![m], &dims, &comm);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, (0, 0));
        assert!(got[0].1.allclose(&Matrix::identity(2), 0.0));
    }

    #[test]
    fn fingerprint_is_order_and_distribution_independent() {
        let dims = dims3();
        let coords = [(0usize, 0usize), (1, 0), (1, 1), (2, 2)];
        let mut fwd = FingerprintAccumulator::default();
        for &(r, c) in &coords {
            fwd.add_block(r, c);
        }
        let mut rev = FingerprintAccumulator::default();
        for &(r, c) in coords.iter().rev() {
            rev.add_block(r, c);
        }
        assert_eq!(fwd.finish(&dims), rev.finish(&dims));
    }

    #[test]
    fn fingerprint_distinguishes_patterns_and_partitions() {
        let dims = dims3();
        let mut a = FingerprintAccumulator::default();
        a.add_block(0, 0);
        a.add_block(1, 1);
        let mut b = a;
        b.add_block(2, 2);
        assert_ne!(a.finish(&dims), b.finish(&dims));
        let other_dims = BlockedDims::new(vec![3, 2, 1]);
        assert_ne!(a.finish(&dims), a.finish(&other_dims));
    }

    #[test]
    fn pattern_fingerprint_matches_accumulated_blocks() {
        let dims = dims3();
        let p = CooPattern::from_coords(vec![(0, 0), (1, 0), (2, 1)], 3);
        let via_pattern = p.fingerprint(&dims);
        let mut acc = FingerprintAccumulator::default();
        for &(r, c) in p.entries() {
            acc.add_block(r, c);
        }
        assert_eq!(via_pattern, acc.finish(&dims));
    }
}
