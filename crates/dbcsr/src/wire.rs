//! The block wire format — one shared serialization path for every
//! collective and point-to-point exchange of matrix blocks.
//!
//! Historically each call site (result scatter, transpose, Cannon tile
//! shifts, block fetches) hand-rolled its own `(meta, data)` packing; this
//! module is now the single public API. The format is unchanged: meta is
//! `[count, br_0, bc_0, br_1, bc_1, ...]` and data concatenates the
//! column-major block contents in the same order (block shapes are implied
//! by the partition, so they are never transmitted).
//!
//! Tag discipline: `sm-comsim` reserves the top tag bit
//! ([`sm_comsim::COLLECTIVE_BIT`]) for its internal collective traffic.
//! Every tagged send issued from this crate goes through [`user_tag`],
//! which rejects tags trespassing on the reserved namespace at the call
//! site instead of deep inside a communicator assert.

use std::collections::BTreeMap;

use sm_comsim::{Comm, Payload, COLLECTIVE_BIT, SUBGROUP_BIT};
use sm_linalg::Matrix;

use crate::dims::BlockedDims;
use crate::local::{BlockCoord, BlockStore};

/// Validate a user-chosen message tag against the communicator's reserved
/// namespaces.
///
/// # Panics
/// Panics if `tag` sets [`COLLECTIVE_BIT`] (it could cross-match internal
/// collective traffic and corrupt an unrelated allgather) or
/// [`SUBGROUP_BIT`] (reserved for subcommunicator traffic; see
/// `sm_comsim::subcomm`). The guard applies unchanged *inside* a subgroup:
/// a `SubComm` rewrites these low-bit user tags into its own namespace and
/// enforces the same two reservations one level down.
#[inline]
pub fn user_tag(tag: u64) -> u64 {
    assert!(
        tag & COLLECTIVE_BIT == 0,
        "tag {tag:#x} trespasses on the reserved collective namespace"
    );
    assert!(
        tag & SUBGROUP_BIT == 0,
        "tag {tag:#x} trespasses on the reserved subgroup namespace"
    );
    tag
}

/// Element encoding of a block-value payload. `F64` is the historical
/// format; `F32` halves the value bytes for evaluations whose numeric phase
/// runs in single precision (`Precision::Fp32*` — see `sm_linalg::elem`).
///
/// The format is **self-describing**: the packer sets [`F32_FORMAT_BIT`]
/// in the meta header's count word, and [`unpack_blocks_prec`] rejects a
/// meta/payload combination whose flags disagree — a mixed-precision
/// protocol error surfaces at the unpack site, not as silent garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueFormat {
    /// 8-byte elements (exact).
    F64,
    /// 4-byte elements (values rounded through `f32` storage).
    F32,
}

impl ValueFormat {
    /// Bytes per element on the wire.
    pub fn elem_bytes(&self) -> usize {
        match self {
            ValueFormat::F64 => 8,
            ValueFormat::F32 => 4,
        }
    }
}

/// Bit set in the meta count word (`meta[0]`) when the companion data
/// payload is `f32`-encoded. Block counts are far below 2⁶², so the flag
/// can never collide with a real count.
pub const F32_FORMAT_BIT: u64 = 1 << 62;

/// Serialize blocks into `(meta, data)` payload vectors (f64 values — the
/// historical wire format).
pub fn pack_blocks<'a>(
    blocks: impl Iterator<Item = (&'a BlockCoord, &'a Matrix)>,
) -> (Vec<u64>, Vec<f64>) {
    let (meta, payload) = pack_blocks_prec(blocks, ValueFormat::F64);
    (meta, payload.into_f64())
}

/// Serialize blocks into a meta vector plus a value payload in the given
/// [`ValueFormat`]. `F32` rounds every element through single precision
/// and moves half the bytes.
pub fn pack_blocks_prec<'a>(
    blocks: impl Iterator<Item = (&'a BlockCoord, &'a Matrix)>,
    format: ValueFormat,
) -> (Vec<u64>, Payload) {
    let mut meta = vec![0u64];
    let mut count = 0u64;
    match format {
        ValueFormat::F64 => {
            let mut data: Vec<f64> = Vec::new();
            for (&(br, bc), blk) in blocks {
                meta.push(br as u64);
                meta.push(bc as u64);
                data.extend_from_slice(blk.as_slice());
                count += 1;
            }
            meta[0] = count;
            (meta, Payload::F64(data))
        }
        ValueFormat::F32 => {
            let mut data: Vec<f32> = Vec::new();
            for (&(br, bc), blk) in blocks {
                meta.push(br as u64);
                meta.push(bc as u64);
                data.extend(blk.as_slice().iter().map(|&v| v as f32));
                count += 1;
            }
            meta[0] = count | F32_FORMAT_BIT;
            (meta, Payload::F32(data))
        }
    }
}

/// Inverse of [`pack_blocks`]: reconstruct `(coord, block)` pairs using the
/// partition to recover block shapes (f64 wire format only).
pub fn unpack_blocks(dims: &BlockedDims, meta: &[u64], data: &[f64]) -> Vec<(BlockCoord, Matrix)> {
    if meta.is_empty() {
        return Vec::new();
    }
    assert_eq!(
        meta[0] & F32_FORMAT_BIT,
        0,
        "unpack_blocks: f32-tagged meta routed to the f64 unpacker"
    );
    unpack_into(
        dims,
        meta,
        |off, len| data[off..off + len].to_vec(),
        data.len(),
    )
}

/// Inverse of [`pack_blocks_prec`] for either value format. The meta
/// header's format flag must agree with the payload variant.
pub fn unpack_blocks_prec(
    dims: &BlockedDims,
    meta: &[u64],
    payload: Payload,
) -> Vec<(BlockCoord, Matrix)> {
    if meta.is_empty() {
        return Vec::new();
    }
    let tagged_f32 = meta[0] & F32_FORMAT_BIT != 0;
    match payload {
        Payload::F64(data) => {
            assert!(
                !tagged_f32,
                "unpack_blocks_prec: f32-tagged meta with an f64 payload"
            );
            unpack_into(
                dims,
                meta,
                |off, len| data[off..off + len].to_vec(),
                data.len(),
            )
        }
        Payload::F32(data) => {
            assert!(
                tagged_f32,
                "unpack_blocks_prec: f64-tagged meta with an f32 payload"
            );
            unpack_into(
                dims,
                meta,
                |off, len| data[off..off + len].iter().map(|&v| v as f64).collect(),
                data.len(),
            )
        }
        other => panic!("unpack_blocks_prec: unexpected payload variant {other:?}"),
    }
}

/// Shared meta walk of the unpackers: `read(offset, len)` materializes the
/// column-major values of one block.
fn unpack_into(
    dims: &BlockedDims,
    meta: &[u64],
    read: impl Fn(usize, usize) -> Vec<f64>,
    data_len: usize,
) -> Vec<(BlockCoord, Matrix)> {
    let count = (meta[0] & !F32_FORMAT_BIT) as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 0usize;
    for k in 0..count {
        let br = meta[1 + 2 * k] as usize;
        let bc = meta[2 + 2 * k] as usize;
        let (rows, cols) = (dims.size(br), dims.size(bc));
        let len = rows * cols;
        let blk = Matrix::from_col_major(rows, cols, read(off, len));
        off += len;
        out.push(((br, bc), blk));
    }
    assert_eq!(off, data_len, "unpack_blocks: trailing data");
    out
}

/// Route per-destination block maps to their ranks with one all-to-all
/// exchange (collective) and return every block received, already
/// deserialized. `outgoing[d]` is delivered to rank `d`; the entry for the
/// calling rank is returned locally without serialization.
pub fn exchange_blocks<C: Comm>(
    outgoing: Vec<BTreeMap<BlockCoord, Matrix>>,
    dims: &BlockedDims,
    comm: &C,
) -> Vec<(BlockCoord, Matrix)> {
    exchange_blocks_prec(outgoing, dims, ValueFormat::F64, comm).0
}

/// [`exchange_blocks`] with a chosen value encoding. Additionally returns
/// the **value-payload bytes this rank sent to remote ranks** — the
/// deterministic per-rank byte counter the engine's precision telemetry
/// reports (meta traffic and local passthrough excluded).
pub fn exchange_blocks_prec<C: Comm>(
    outgoing: Vec<BTreeMap<BlockCoord, Matrix>>,
    dims: &BlockedDims,
    format: ValueFormat,
    comm: &C,
) -> (Vec<(BlockCoord, Matrix)>, u64) {
    assert_eq!(
        outgoing.len(),
        comm.size(),
        "exchange_blocks needs one outgoing map per rank"
    );
    let mut local: Vec<(BlockCoord, Matrix)> = Vec::new();
    let mut metas: Vec<Payload> = Vec::with_capacity(outgoing.len());
    let mut datas: Vec<Payload> = Vec::with_capacity(outgoing.len());
    let mut value_bytes = 0u64;
    let (empty_meta, empty_data) = match format {
        ValueFormat::F64 => (0u64, Payload::F64(Vec::new())),
        ValueFormat::F32 => (F32_FORMAT_BIT, Payload::F32(Vec::new())),
    };
    for (dst, m) in outgoing.into_iter().enumerate() {
        if dst == comm.rank() {
            local.extend(m);
            metas.push(Payload::U64(vec![empty_meta]));
            datas.push(empty_data.clone());
        } else {
            let (meta, data) = pack_blocks_prec(m.iter(), format);
            value_bytes += data.byte_len() as u64;
            metas.push(Payload::U64(meta));
            datas.push(data);
        }
    }
    let metas_in = comm.alltoallv(metas);
    let datas_in = comm.alltoallv(datas);
    let mut out = local;
    for (meta, data) in metas_in.into_iter().zip(datas_in) {
        out.extend(unpack_blocks_prec(dims, &meta.into_u64(), data));
    }
    (out, value_bytes)
}

/// Send a block store to `dst` and receive one from `src` over a pair of
/// tagged point-to-point messages (the Cannon tile-shift primitive).
/// Returns the received store plus the number of payload bytes sent.
pub fn shift_store<C: Comm>(
    store: &BlockStore,
    dims: &BlockedDims,
    dst: usize,
    src: usize,
    tag_meta: u64,
    tag_data: u64,
    comm: &C,
) -> (BlockStore, u64) {
    let (tag_meta, tag_data) = (user_tag(tag_meta), user_tag(tag_data));
    assert_ne!(
        tag_meta, tag_data,
        "meta and data streams need distinct tags"
    );
    let (meta, data) = pack_blocks(store.iter());
    let bytes = (meta.len() * 8 + data.len() * 8) as u64;
    comm.send(dst, tag_meta, Payload::U64(meta));
    comm.send(dst, tag_data, Payload::F64(data));
    let meta_in = comm.recv(src, tag_meta).into_u64();
    let data_in = comm.recv(src, tag_data).into_f64();
    (
        unpack_blocks(dims, &meta_in, &data_in)
            .into_iter()
            .collect(),
        bytes,
    )
}

/// Order-independent 64-bit fingerprint of a block sparsity pattern plus
/// its partition.
///
/// Each `(br, bc)` coordinate is hashed independently and the per-block
/// hashes are combined commutatively (lane-wise sums), so ranks holding
/// disjoint parts of a distributed pattern can fingerprint their local
/// blocks and merge — no allgather of the full pattern is needed.
/// The partition itself (block sizes) is mixed in, so two patterns that
/// agree block-wise but partition elements differently fingerprint apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternFingerprint(pub u64);

/// Accumulator for building a [`PatternFingerprint`] incrementally.
///
/// Internally keeps the sum of per-block hashes split into four 16-bit
/// lanes, so the state survives a floating-point sum-allreduce exactly:
/// each lane term is < 2¹⁶, so the lane sum stays below 2⁵³ (f64-exact)
/// up to ~2³⁷ nonzero blocks — far beyond any pattern this system will
/// hold in memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FingerprintAccumulator {
    lanes: [u64; 4],
    count: u64,
}

/// SplitMix64 finalizer — the shared 64-bit mixing primitive behind the
/// pattern fingerprint and the engine's plan-cache tags.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

use mix64 as mix;

impl FingerprintAccumulator {
    /// Absorb one block coordinate.
    pub fn add_block(&mut self, br: usize, bc: usize) {
        let h = mix(((br as u64) << 32) ^ (bc as u64) ^ 0x9e37_79b9_7f4a_7c15);
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            *lane += (h >> (16 * k)) & 0xffff;
        }
        self.count += 1;
    }

    /// State as exactly-representable f64 summands, ready for a
    /// `ReduceOp::Sum` allreduce across ranks.
    pub fn to_reduction(&self) -> [f64; 5] {
        [
            self.lanes[0] as f64,
            self.lanes[1] as f64,
            self.lanes[2] as f64,
            self.lanes[3] as f64,
            self.count as f64,
        ]
    }

    /// Rebuild an accumulator from (possibly reduced) summands.
    pub fn from_reduction(buf: &[f64; 5]) -> Self {
        FingerprintAccumulator {
            lanes: [buf[0] as u64, buf[1] as u64, buf[2] as u64, buf[3] as u64],
            count: buf[4] as u64,
        }
    }

    /// Finish, mixing in the partition.
    pub fn finish(&self, dims: &BlockedDims) -> PatternFingerprint {
        let mut h = self.count.wrapping_mul(0x2545_f491_4f6c_dd1d);
        for (k, lane) in self.lanes.iter().enumerate() {
            h = mix(h ^ lane.rotate_left(16 * k as u32));
        }
        h = mix(h ^ (dims.nb() as u64));
        for b in 0..dims.nb() {
            h = mix(h ^ (((b as u64) << 32) | dims.size(b) as u64));
        }
        PatternFingerprint(h)
    }
}

/// Version of the self-describing telemetry wire record
/// ([`TelemetryRecord`]). Decoders reject any other version with
/// [`TelemetryError::VersionMismatch`] instead of misparsing — bump this
/// whenever a field's *meaning* changes (adding new field ids is
/// backward-compatible and needs no bump).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 2;

/// Field-id registry for [`TelemetryRecord`]. Ids are stable wire
/// artifacts: never renumber, only append. Repeatable ids
/// ([`tele::SCF_ITER_GATHER_BYTES`], [`tele::SCF_ITER_SCATTER_BYTES`])
/// occur once per SCF iteration, in iteration order.
pub mod tele {
    /// Number of submatrices in the plan.
    pub const N_SUBMATRICES: u32 = 0;
    /// Largest submatrix dimension.
    pub const MAX_DIM: u32 = 1;
    /// Mean submatrix dimension.
    pub const AVG_DIM: u32 = 2;
    /// Perfmodel total cost of the plan.
    pub const TOTAL_COST: u32 = 3;
    /// Deduplicated transfer bytes.
    pub const UNIQUE_BYTES: u32 = 4;
    /// Naive (un-deduplicated) transfer bytes.
    pub const NAIVE_BYTES: u32 = 5;
    /// Distinct blocks fetched.
    pub const UNIQUE_BLOCKS: u32 = 6;
    /// Total block references across submatrices.
    pub const TOTAL_REFERENCES: u32 = 7;
    /// Chemical potential after adjustment.
    pub const MU: u32 = 8;
    /// µ-bisection iterations taken.
    pub const BISECT_ITERATIONS: u32 = 9;
    /// 1.0 when the execution plan came from cache, 0.0 when built.
    pub const PLAN_CACHED: u32 = 10;
    /// Symbolic-phase wall seconds.
    pub const SYMBOLIC_SECONDS: u32 = 11;
    /// Gather-phase wall seconds.
    pub const GATHER_SECONDS: u32 = 12;
    /// Solve-phase wall seconds.
    pub const SOLVE_SECONDS: u32 = 13;
    /// Scatter-phase wall seconds.
    pub const SCATTER_SECONDS: u32 = 14;
    /// Whole-job wall seconds.
    pub const SECONDS: u32 = 15;
    /// Ranks in the executing group.
    pub const GROUP_SIZE: u32 = 16;
    /// Simulated communication bytes for the job.
    pub const COMM_BYTES: u32 = 17;
    /// Simulated communication messages for the job.
    pub const COMM_MSGS: u32 = 18;
    /// Numeric precision code (see `precision_code` in the scheduler).
    pub const PRECISION_CODE: u32 = 19;
    /// Gather-phase value-payload bytes.
    pub const GATHER_VALUE_BYTES: u32 = 20;
    /// Scatter-phase value-payload bytes.
    pub const SCATTER_VALUE_BYTES: u32 = 21;
    /// Epoch index the job ran in.
    pub const EPOCH: u32 = 22;
    /// Ranks this job absorbed via stealing.
    pub const STOLEN_RANKS: u32 = 23;
    /// SCF iterations executed (SCF jobs only).
    pub const SCF_ITERATIONS: u32 = 24;
    /// 1.0 when the SCF loop converged within budget.
    pub const SCF_CONVERGED: u32 = 25;
    /// Final SCF band-structure energy.
    pub const SCF_FINAL_ENERGY: u32 = 26;
    /// Final SCF electron count.
    pub const SCF_FINAL_ELECTRONS: u32 = 27;
    /// Per-iteration gather value bytes (repeatable, iteration order).
    pub const SCF_ITER_GATHER_BYTES: u32 = 28;
    /// Per-iteration scatter value bytes (repeatable, iteration order).
    pub const SCF_ITER_SCATTER_BYTES: u32 = 29;
    /// Execution attempts the job consumed (1 = first attempt succeeded).
    pub const ATTEMPTS: u32 = 30;
    /// 1.0 when the job was quarantined after exhausting its retry budget.
    pub const QUARANTINED: u32 = 31;
    /// Solve backend the iterative solves resolved to (0 = dense,
    /// 1 = sparse CSR). Forward-compatible: decoders that predate this id
    /// preserve it untouched.
    pub const SOLVE_BACKEND_CODE: u32 = 32;
    /// Elements dropped by the sparse backend's per-iteration filtering,
    /// summed over the job's submatrix solves (0 on the dense path).
    pub const SPARSE_FILTERED_NNZ: u32 = 33;
    /// Scalar flops spent in sparse (CSR) multiplications (0 on dense).
    pub const SPARSE_FLOPS: u32 = 34;
}

/// Decode failure for a [`TelemetryRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// The record was produced under a different schema version.
    VersionMismatch {
        /// Version found on the wire.
        found: u32,
        /// Version this decoder speaks ([`TELEMETRY_SCHEMA_VERSION`]).
        expected: u32,
    },
    /// The buffer is shorter than its own header/entry count claims.
    Truncated {
        /// Buffer length in f64 words.
        len: usize,
        /// Length the header implies.
        needed: usize,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::VersionMismatch { found, expected } => write!(
                f,
                "telemetry schema version mismatch: record is v{found}, decoder speaks \
                 v{expected} (TELEMETRY_SCHEMA_VERSION) — refusing to misparse"
            ),
            TelemetryError::Truncated { len, needed } => write!(
                f,
                "telemetry record truncated: {len} f64 words on the wire, header implies {needed}"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Versioned, self-describing telemetry record: a flat list of
/// `(field_id, value)` entries shipped as f64s (so it rides the same
/// float wire as block payloads). Layout:
///
/// ```text
/// [ version, n_entries, id₀, value₀, id₁, value₁, ... ]
/// ```
///
/// Unknown field ids are preserved by decode (forward compatibility);
/// a wrong *version* is rejected ([`TelemetryError::VersionMismatch`])
/// because it signals a semantic change, not an extension. Field ids
/// live in [`tele`]; repeatable ids keep their relative order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryRecord {
    entries: Vec<(u32, f64)>,
}

impl TelemetryRecord {
    /// Empty record.
    pub fn new() -> Self {
        TelemetryRecord::default()
    }

    /// Append one `(field, value)` entry (fields may repeat).
    pub fn push(&mut self, field: u32, value: f64) {
        self.entries.push((field, value));
    }

    /// First value recorded under `field`, if any.
    pub fn get(&self, field: u32) -> Option<f64> {
        self.entries
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, v)| *v)
    }

    /// Every value recorded under `field`, in record order.
    pub fn get_all(&self, field: u32) -> Vec<f64> {
        self.entries
            .iter()
            .filter(|(f, _)| *f == field)
            .map(|(_, v)| *v)
            .collect()
    }

    /// All entries, in record order.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Encode as f64 words: header (version, entry count) then entries.
    pub fn encode(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 + 2 * self.entries.len());
        out.push(TELEMETRY_SCHEMA_VERSION as f64);
        out.push(self.entries.len() as f64);
        for &(field, value) in &self.entries {
            out.push(field as f64);
            out.push(value);
        }
        out
    }

    /// Decode, rejecting version mismatches and truncation with a clear
    /// error instead of panicking or silently misparsing.
    pub fn decode(buf: &[f64]) -> Result<Self, TelemetryError> {
        if buf.len() < 2 {
            return Err(TelemetryError::Truncated {
                len: buf.len(),
                needed: 2,
            });
        }
        let version = buf[0] as u32;
        if version != TELEMETRY_SCHEMA_VERSION {
            return Err(TelemetryError::VersionMismatch {
                found: version,
                expected: TELEMETRY_SCHEMA_VERSION,
            });
        }
        let n = buf[1] as usize;
        let needed = 2 + 2 * n;
        if buf.len() < needed {
            return Err(TelemetryError::Truncated {
                len: buf.len(),
                needed,
            });
        }
        let entries = (0..n)
            .map(|i| (buf[2 + 2 * i] as u32, buf[3 + 2 * i]))
            .collect();
        Ok(TelemetryRecord { entries })
    }
}

// ---------------------------------------------------------------------------
// Plan manifest — the on-disk spill format for cached execution plans.
// ---------------------------------------------------------------------------

/// Schema version of the on-disk plan manifest. Bumped on any layout
/// change; [`PlanManifest::decode`] refuses to misparse an unknown
/// version. v2: plan payloads carry the pattern's element-fill fraction
/// (the sparse-backend decision input).
pub const PLAN_MANIFEST_SCHEMA_VERSION: u32 = 2;

/// Leading magic of every plan manifest (eight bytes, also the first
/// little-endian word of the container). Guards against feeding an
/// arbitrary file — a trace, a bench JSON — to the manifest decoder.
pub const PLAN_MANIFEST_MAGIC: [u8; 8] = *b"SMPLANS\0";

/// One spilled plan-cache entry. The payload is an opaque word stream
/// owned by the producer (the engine's plan codec); this container only
/// guarantees framing, versioning, and the LRU metadata needed to
/// restore eviction order faithfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanManifestEntry {
    /// Raw pattern fingerprint ([`PatternFingerprint`] value, *not* the
    /// producer-tag-mixed cache key — the tag travels in the header).
    pub fingerprint: u64,
    /// Rank that built the plan (plans are rank-specific).
    pub rank: u64,
    /// Communicator size the plan was built for.
    pub size: u64,
    /// LRU stamp at export time; import restores it so eviction order
    /// survives the restart.
    pub lru_stamp: u64,
    /// Producer-defined plan encoding (the engine's `ExecutionPlan`
    /// codec), opaque at this layer.
    pub words: Vec<u64>,
}

/// A versioned, self-describing spill of a plan cache: header counters
/// plus fingerprint-keyed entries. Layout (all words little-endian
/// `u64`): magic, version, producer tag, capacity (`u64::MAX` =
/// unbounded), LRU tick, lifetime evictions/hits/builds, entry count;
/// then per entry fingerprint, rank, size, LRU stamp, payload length,
/// payload words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanManifest {
    /// Producer namespace tag mixed into cache keys (the engine uses the
    /// grouping's cache tag); import rejects a manifest whose tag
    /// disagrees with the importing engine instead of serving plans
    /// built under a different grouping policy.
    pub tag: u64,
    /// Cache capacity at export (`u64::MAX` encodes unbounded).
    pub capacity: u64,
    /// LRU clock at export; import resumes the clock at or above the
    /// newest restored stamp.
    pub tick: u64,
    /// Lifetime eviction count at export (ops visibility only).
    pub evictions: u64,
    /// Lifetime cache-hit count at export (ops visibility only).
    pub hits: u64,
    /// Lifetime symbolic-build count at export (ops visibility only).
    pub builds: u64,
    /// The spilled entries, in producer order (the engine sorts them by
    /// `(fingerprint, rank, size)` so equal caches export equal bytes).
    pub entries: Vec<PlanManifestEntry>,
}

/// Typed decode failure for [`PlanManifest::decode`]. Mirrors
/// [`TelemetryError`]: a manifest from a different schema or a truncated
/// file is rejected with a description, never misparsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    /// The file does not start with [`PLAN_MANIFEST_MAGIC`].
    BadMagic,
    /// Schema version differs from [`PLAN_MANIFEST_SCHEMA_VERSION`].
    VersionMismatch {
        /// Version word found in the header.
        found: u32,
        /// Version this decoder speaks.
        expected: u32,
    },
    /// The byte stream ends before the advertised content.
    Truncated {
        /// Words available.
        len: usize,
        /// Words the header/entry framing promised.
        needed: usize,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::BadMagic => {
                write!(
                    f,
                    "plan manifest: missing SMPLANS magic (not a manifest file)"
                )
            }
            ManifestError::VersionMismatch { found, expected } => write!(
                f,
                "plan manifest schema v{found} but this build speaks \
                 v{expected} (PLAN_MANIFEST_SCHEMA_VERSION) — refusing to misparse"
            ),
            ManifestError::Truncated { len, needed } => write!(
                f,
                "plan manifest truncated: {len} words present, {needed} needed"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

impl PlanManifest {
    /// Encode to bytes (little-endian `u64` words behind the magic).
    pub fn encode(&self) -> Vec<u8> {
        let mut words: Vec<u64> = vec![
            u64::from_le_bytes(PLAN_MANIFEST_MAGIC),
            PLAN_MANIFEST_SCHEMA_VERSION as u64,
            self.tag,
            self.capacity,
            self.tick,
            self.evictions,
            self.hits,
            self.builds,
            self.entries.len() as u64,
        ];
        for e in &self.entries {
            words.extend_from_slice(&[
                e.fingerprint,
                e.rank,
                e.size,
                e.lru_stamp,
                e.words.len() as u64,
            ]);
            words.extend_from_slice(&e.words);
        }
        let mut out = Vec::with_capacity(words.len() * 8);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decode from bytes, rejecting wrong magic, unknown versions, and
    /// truncation with a typed error instead of panicking.
    pub fn decode(bytes: &[u8]) -> Result<Self, ManifestError> {
        let n_words = bytes.len() / 8;
        let word = |i: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        if n_words < 1 || word(0) != u64::from_le_bytes(PLAN_MANIFEST_MAGIC) {
            return Err(ManifestError::BadMagic);
        }
        if n_words < 9 {
            return Err(ManifestError::Truncated {
                len: n_words,
                needed: 9,
            });
        }
        let version = word(1) as u32;
        if version != PLAN_MANIFEST_SCHEMA_VERSION {
            return Err(ManifestError::VersionMismatch {
                found: version,
                expected: PLAN_MANIFEST_SCHEMA_VERSION,
            });
        }
        let n_entries = word(8) as usize;
        let mut entries = Vec::with_capacity(n_entries.min(1024));
        let mut pos = 9usize;
        for _ in 0..n_entries {
            if n_words < pos + 5 {
                return Err(ManifestError::Truncated {
                    len: n_words,
                    needed: pos + 5,
                });
            }
            let payload_len = word(pos + 4) as usize;
            if n_words < pos + 5 + payload_len {
                return Err(ManifestError::Truncated {
                    len: n_words,
                    needed: pos + 5 + payload_len,
                });
            }
            entries.push(PlanManifestEntry {
                fingerprint: word(pos),
                rank: word(pos + 1),
                size: word(pos + 2),
                lru_stamp: word(pos + 3),
                words: (0..payload_len).map(|i| word(pos + 5 + i)).collect(),
            });
            pos += 5 + payload_len;
        }
        Ok(PlanManifest {
            tag: word(2),
            capacity: word(3),
            tick: word(4),
            evictions: word(5),
            hits: word(6),
            builds: word(7),
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooPattern;
    use sm_comsim::SerialComm;

    fn dims3() -> BlockedDims {
        BlockedDims::new(vec![2, 3, 1])
    }

    #[test]
    fn user_tag_passes_clean_tags() {
        assert_eq!(user_tag(0), 0);
        assert_eq!(user_tag(0x3fff_ffff_ffff_ffff), 0x3fff_ffff_ffff_ffff);
    }

    #[test]
    #[should_panic(expected = "reserved collective namespace")]
    fn user_tag_rejects_collective_bit() {
        user_tag(COLLECTIVE_BIT | 3);
    }

    #[test]
    #[should_panic(expected = "reserved subgroup namespace")]
    fn user_tag_rejects_subgroup_bit() {
        user_tag(SUBGROUP_BIT | 3);
    }

    #[test]
    fn exchange_blocks_serial_is_local_passthrough() {
        let dims = dims3();
        let mut m = BTreeMap::new();
        m.insert((0usize, 0usize), Matrix::identity(2));
        let comm = SerialComm::new();
        let got = exchange_blocks(vec![m], &dims, &comm);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, (0, 0));
        assert!(got[0].1.allclose(&Matrix::identity(2), 0.0));
    }

    #[test]
    fn f32_payload_roundtrip_rounds_through_single_precision() {
        let dims = dims3();
        let mut blocks: BTreeMap<(usize, usize), Matrix> = BTreeMap::new();
        blocks.insert(
            (0, 0),
            Matrix::from_fn(2, 2, |i, j| 0.1 * (i * 2 + j) as f64 + 0.01),
        );
        blocks.insert((1, 2), Matrix::from_fn(3, 1, |i, _| -(i as f64) * 0.3));
        let (meta, payload) = pack_blocks_prec(blocks.iter(), ValueFormat::F32);
        assert!(meta[0] & F32_FORMAT_BIT != 0, "f32 meta must be tagged");
        assert_eq!(meta[0] & !F32_FORMAT_BIT, 2, "count survives the tag");
        // Half the bytes of the f64 encoding of the same blocks.
        let (_, f64_payload) = pack_blocks_prec(blocks.iter(), ValueFormat::F64);
        assert_eq!(payload.byte_len() * 2, f64_payload.byte_len());
        let got = unpack_blocks_prec(&dims, &meta, payload);
        assert_eq!(got.len(), 2);
        for (coord, blk) in got {
            let expect = blocks[&coord].round_f32_storage();
            assert!(
                blk.allclose(&expect, 0.0),
                "block {coord:?} not f32-rounded"
            );
        }
    }

    #[test]
    fn f32_values_already_in_storage_roundtrip_losslessly() {
        // Values that are f32-representable (a plain-Fp32 solve's output)
        // survive the f32 wire bit-for-bit.
        let dims = dims3();
        let mut blocks: BTreeMap<(usize, usize), Matrix> = BTreeMap::new();
        blocks.insert(
            (1, 1),
            Matrix::from_fn(3, 3, |i, j| (0.7 * (i + 2 * j) as f64) as f32 as f64),
        );
        let (meta, payload) = pack_blocks_prec(blocks.iter(), ValueFormat::F32);
        let got = unpack_blocks_prec(&dims, &meta, payload);
        assert!(got[0].1.allclose(&blocks[&(1, 1)], 0.0));
    }

    #[test]
    #[should_panic(expected = "f32-tagged meta with an f64 payload")]
    fn format_mismatch_is_a_protocol_error() {
        let dims = dims3();
        let mut blocks: BTreeMap<(usize, usize), Matrix> = BTreeMap::new();
        blocks.insert((0, 0), Matrix::identity(2));
        let (meta, _) = pack_blocks_prec(blocks.iter(), ValueFormat::F32);
        // Deliver an f64 payload against the f32-tagged meta.
        unpack_blocks_prec(&dims, &meta, Payload::F64(vec![0.0; 4]));
    }

    #[test]
    #[should_panic(expected = "f32-tagged meta routed to the f64 unpacker")]
    fn legacy_unpacker_rejects_f32_meta() {
        let dims = dims3();
        let mut blocks: BTreeMap<(usize, usize), Matrix> = BTreeMap::new();
        blocks.insert((0, 0), Matrix::identity(2));
        let (meta, _) = pack_blocks_prec(blocks.iter(), ValueFormat::F32);
        unpack_blocks(&dims, &meta, &[0.0; 4]);
    }

    #[test]
    fn exchange_blocks_prec_serial_f32_counts_no_self_bytes() {
        let dims = dims3();
        let mut m = BTreeMap::new();
        m.insert((0usize, 0usize), Matrix::identity(2));
        let comm = SerialComm::new();
        let (got, value_bytes) = exchange_blocks_prec(vec![m], &dims, ValueFormat::F32, &comm);
        assert_eq!(got.len(), 1);
        assert_eq!(value_bytes, 0, "local passthrough moves no wire bytes");
        assert!(got[0].1.allclose(&Matrix::identity(2), 0.0));
    }

    #[test]
    #[should_panic(expected = "reserved subgroup namespace")]
    fn f32_wire_traffic_still_obeys_the_subgroup_tag_guard() {
        // The reserved-tag discipline is format-independent: a caller
        // shipping f32 payloads must still pass its tags through
        // `user_tag`, which rejects SUBGROUP_BIT trespass identically.
        let _ = user_tag(SUBGROUP_BIT | 42);
    }

    #[test]
    fn fingerprint_is_order_and_distribution_independent() {
        let dims = dims3();
        let coords = [(0usize, 0usize), (1, 0), (1, 1), (2, 2)];
        let mut fwd = FingerprintAccumulator::default();
        for &(r, c) in &coords {
            fwd.add_block(r, c);
        }
        let mut rev = FingerprintAccumulator::default();
        for &(r, c) in coords.iter().rev() {
            rev.add_block(r, c);
        }
        assert_eq!(fwd.finish(&dims), rev.finish(&dims));
    }

    #[test]
    fn fingerprint_distinguishes_patterns_and_partitions() {
        let dims = dims3();
        let mut a = FingerprintAccumulator::default();
        a.add_block(0, 0);
        a.add_block(1, 1);
        let mut b = a;
        b.add_block(2, 2);
        assert_ne!(a.finish(&dims), b.finish(&dims));
        let other_dims = BlockedDims::new(vec![3, 2, 1]);
        assert_ne!(a.finish(&dims), a.finish(&other_dims));
    }

    #[test]
    fn pattern_fingerprint_matches_accumulated_blocks() {
        let dims = dims3();
        let p = CooPattern::from_coords(vec![(0, 0), (1, 0), (2, 1)], 3);
        let via_pattern = p.fingerprint(&dims);
        let mut acc = FingerprintAccumulator::default();
        for &(r, c) in p.entries() {
            acc.add_block(r, c);
        }
        assert_eq!(via_pattern, acc.finish(&dims));
    }

    #[test]
    fn telemetry_record_roundtrips_with_repeated_fields() {
        let mut rec = TelemetryRecord::new();
        rec.push(tele::N_SUBMATRICES, 6.0);
        rec.push(tele::TOTAL_COST, 123.5);
        rec.push(tele::SCF_ITER_GATHER_BYTES, 100.0);
        rec.push(tele::SCF_ITER_GATHER_BYTES, 200.0);
        let enc = rec.encode();
        assert_eq!(enc[0], TELEMETRY_SCHEMA_VERSION as f64);
        assert_eq!(enc[1], 4.0);
        let dec = TelemetryRecord::decode(&enc).unwrap();
        assert_eq!(dec, rec);
        assert_eq!(dec.get(tele::TOTAL_COST), Some(123.5));
        assert_eq!(dec.get_all(tele::SCF_ITER_GATHER_BYTES), vec![100.0, 200.0]);
        assert_eq!(dec.get(tele::MU), None);
    }

    #[test]
    fn telemetry_decode_rejects_version_mismatch_and_truncation() {
        let mut rec = TelemetryRecord::new();
        rec.push(tele::MU, -0.25);
        let mut enc = rec.encode();
        enc[0] = (TELEMETRY_SCHEMA_VERSION + 1) as f64;
        match TelemetryRecord::decode(&enc) {
            Err(TelemetryError::VersionMismatch { found, expected }) => {
                assert_eq!(found, TELEMETRY_SCHEMA_VERSION + 1);
                assert_eq!(expected, TELEMETRY_SCHEMA_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let enc = rec.encode();
        assert!(matches!(
            TelemetryRecord::decode(&enc[..enc.len() - 1]),
            Err(TelemetryError::Truncated { .. })
        ));
        assert!(TelemetryRecord::decode(&[]).is_err());
        // The error message names the versions explicitly.
        let msg = TelemetryError::VersionMismatch {
            found: 9,
            expected: TELEMETRY_SCHEMA_VERSION,
        }
        .to_string();
        assert!(msg.contains("v9") && msg.contains("schema version mismatch"));
    }

    fn sample_manifest() -> PlanManifest {
        PlanManifest {
            tag: 0xdead_beef,
            capacity: u64::MAX,
            tick: 7,
            evictions: 1,
            hits: 12,
            builds: 3,
            entries: vec![
                PlanManifestEntry {
                    fingerprint: 0x1234_5678_9abc_def0,
                    rank: 0,
                    size: 2,
                    lru_stamp: 5,
                    words: vec![1, 2, 3, f64::to_bits(0.25)],
                },
                PlanManifestEntry {
                    fingerprint: 0x1234_5678_9abc_def0,
                    rank: 1,
                    size: 2,
                    lru_stamp: 7,
                    words: vec![],
                },
            ],
        }
    }

    #[test]
    fn plan_manifest_roundtrips_bytes_exactly() {
        let m = sample_manifest();
        let bytes = m.encode();
        assert_eq!(&bytes[..8], &PLAN_MANIFEST_MAGIC);
        let back = PlanManifest::decode(&bytes).expect("decode");
        assert_eq!(back, m);
        // Re-encoding the decode is byte-identical (the format has no
        // nondeterministic padding).
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn plan_manifest_rejects_bad_magic_version_and_truncation() {
        let m = sample_manifest();
        let bytes = m.encode();

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(PlanManifest::decode(&bad), Err(ManifestError::BadMagic));
        assert_eq!(PlanManifest::decode(b"short"), Err(ManifestError::BadMagic));

        let mut wrong = bytes.clone();
        wrong[8] = (PLAN_MANIFEST_SCHEMA_VERSION + 1) as u8;
        match PlanManifest::decode(&wrong) {
            Err(ManifestError::VersionMismatch { found, expected }) => {
                assert_eq!(found, PLAN_MANIFEST_SCHEMA_VERSION + 1);
                assert_eq!(expected, PLAN_MANIFEST_SCHEMA_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }

        // Chop mid-entry: the advertised payload no longer fits.
        assert!(matches!(
            PlanManifest::decode(&bytes[..bytes.len() - 8]),
            Err(ManifestError::Truncated { .. })
        ));
        // Chop mid-header.
        assert!(matches!(
            PlanManifest::decode(&bytes[..32]),
            Err(ManifestError::Truncated { .. })
        ));
    }
}
