//! Property tests for the versioned telemetry wire record (ISSUE 7
//! satellite): encode→decode round-trips exactly over random `(id, value)`
//! entry sets — including field ids the current `tele` registry does not
//! know, which decode must preserve verbatim (forward compatibility) —
//! while a foreign version word is rejected with `VersionMismatch` and a
//! short buffer with `Truncated`, never misparsed.

use proptest::prelude::*;
use sm_dbcsr::wire::{tele, TelemetryError, TelemetryRecord, TELEMETRY_SCHEMA_VERSION};

/// Build a record from raw entries, preserving order and repeats.
fn record_from(entries: &[(u32, f64)]) -> TelemetryRecord {
    let mut rec = TelemetryRecord::new();
    for &(id, v) in entries {
        rec.push(id, v);
    }
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random entry sets — known ids, unknown ids (≥ 30, beyond the
    /// `tele` registry), repeats, arbitrary magnitudes — survive an
    /// encode→decode round trip bit-for-bit, in order.
    #[test]
    fn roundtrip_preserves_entries_including_unknown_ids(
        n in 0usize..24,
        ids in proptest::collection::vec(0u32..4096, 24),
        mags in proptest::collection::vec(-1e12f64..1e12, 24),
    ) {
        let entries: Vec<(u32, f64)> =
            ids.iter().zip(&mags).take(n).map(|(&id, &v)| (id, v)).collect();
        let rec = record_from(&entries);
        let wire = rec.encode();
        prop_assert_eq!(wire.len(), 2 + 2 * n);
        prop_assert_eq!(wire[0], TELEMETRY_SCHEMA_VERSION as f64);
        prop_assert_eq!(wire[1], n as f64);

        let back = TelemetryRecord::decode(&wire).expect("round trip decodes");
        prop_assert_eq!(back.entries(), &entries[..]);
        // Unknown ids (outside the registered 0..=29 range) came back too,
        // not silently dropped.
        for &(id, v) in entries.iter().filter(|(id, _)| *id > tele::SCF_ITER_SCATTER_BYTES) {
            prop_assert!(back.get_all(id).contains(&v), "unknown id {} lost", id);
        }
    }

    /// Repeated ids keep their relative order through the wire — the
    /// contract the per-iteration SCF byte counters rely on.
    #[test]
    fn repeated_ids_keep_iteration_order(
        vals in proptest::collection::vec(0.0f64..1e9, 8),
    ) {
        let mut rec = TelemetryRecord::new();
        for &v in &vals {
            rec.push(tele::SCF_ITER_GATHER_BYTES, v);
        }
        let back = TelemetryRecord::decode(&rec.encode()).expect("decodes");
        prop_assert_eq!(back.get_all(tele::SCF_ITER_GATHER_BYTES), vals);
    }

    /// Any version word other than `TELEMETRY_SCHEMA_VERSION` is refused
    /// with `VersionMismatch` carrying both versions — regardless of how
    /// plausible the rest of the buffer looks.
    #[test]
    fn foreign_version_is_rejected_not_misparsed(
        version in 0u32..64,
        n in 0usize..8,
        vals in proptest::collection::vec(-1e6f64..1e6, 8),
    ) {
        let mut rec = TelemetryRecord::new();
        for (i, &v) in vals.iter().take(n).enumerate() {
            rec.push(i as u32, v);
        }
        let mut wire = rec.encode();
        wire[0] = version as f64;
        let out = TelemetryRecord::decode(&wire);
        if version == TELEMETRY_SCHEMA_VERSION {
            prop_assert!(out.is_ok());
        } else {
            prop_assert_eq!(
                out,
                Err(TelemetryError::VersionMismatch {
                    found: version,
                    expected: TELEMETRY_SCHEMA_VERSION,
                })
            );
        }
    }

    /// Chopping any suffix off a non-trivial record yields `Truncated`
    /// with the honest lengths — decode never reads past the buffer or
    /// fabricates entries.
    #[test]
    fn truncation_is_reported_with_lengths(
        n in 1usize..12,
        vals in proptest::collection::vec(-1e6f64..1e6, 12),
        cut in 1usize..24,
    ) {
        let entries: Vec<(u32, f64)> =
            vals.iter().take(n).enumerate().map(|(i, &v)| (i as u32 * 7, v)).collect();
        let wire = record_from(&entries).encode();
        let cut = cut.min(wire.len());
        let short = &wire[..wire.len() - cut];
        match TelemetryRecord::decode(short) {
            Err(TelemetryError::Truncated { len, needed }) => {
                prop_assert_eq!(len, short.len());
                prop_assert!(needed > len, "needed {} must exceed len {}", needed, len);
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }
}
