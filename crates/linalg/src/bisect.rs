//! Sturm-sequence bisection on symmetric tridiagonal matrices.
//!
//! The sign-function methods only need *spectral position* information:
//! how many states lie below µ, and how wide the gap around µ is (the gap
//! controls Newton–Schulz iteration counts and FP16 robustness, paper
//! Secs. V-A and VI-A). Counting eigenvalues below a shift via the inertia
//! of `T − xI` (Sturm sequence / LDLᵀ pivot signs) answers both questions
//! after one O(n²) tridiagonalization — far cheaper than a full `eigh`.

use crate::matrix::Matrix;
use crate::tridiag::tred2;
use crate::LinalgError;

/// Number of eigenvalues of the tridiagonal matrix `(d, e)` that are
/// strictly below `x`. `e[0]` is unused (LAPACK convention: `e[i]` couples
/// rows `i−1` and `i`).
pub fn count_below(d: &[f64], e: &[f64], x: f64) -> usize {
    let n = d.len();
    assert_eq!(e.len(), n, "sub-diagonal must have length n (e[0] unused)");
    // Sturm sequence: q_i = (d_i − x) − e_i² / q_{i−1}; the number of
    // negative q_i equals the number of eigenvalues below x.
    let mut count = 0usize;
    let mut q = 1.0f64;
    #[allow(clippy::needless_range_loop)] // the recurrence couples d[i] and e[i]
    for i in 0..n {
        let e2 = if i == 0 { 0.0 } else { e[i] * e[i] };
        q = (d[i] - x)
            - if q != 0.0 {
                e2 / q
            } else {
                e2 / f64::MIN_POSITIVE
            };
        if q < 0.0 {
            count += 1;
        }
    }
    count
}

/// The `k`-th smallest eigenvalue (0-based) of the tridiagonal `(d, e)`,
/// located by bisection to absolute tolerance `tol`.
pub fn kth_eigenvalue(d: &[f64], e: &[f64], k: usize, tol: f64) -> f64 {
    let n = d.len();
    assert!(k < n, "eigenvalue index {k} out of range");
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    #[allow(clippy::needless_range_loop)] // couples d[i] with e[i], e[i+1]
    for i in 0..n {
        let r = e.get(i).copied().unwrap_or(0.0).abs() + e.get(i + 1).copied().unwrap_or(0.0).abs();
        lo = lo.min(d[i] - r);
        hi = hi.max(d[i] + r);
    }
    // Widen so strict-below counting brackets correctly.
    let width = (hi - lo).max(1.0);
    lo -= 1e-12 * width;
    hi += 1e-12 * width + tol;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if count_below(d, e, mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Spectral information around a shift µ for a symmetric matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralWindow {
    /// Eigenvalues strictly below µ.
    pub n_below: usize,
    /// Largest eigenvalue below µ (HOMO), if any.
    pub below: Option<f64>,
    /// Smallest eigenvalue at/above µ (LUMO), if any.
    pub above: Option<f64>,
}

impl SpectralWindow {
    /// Width of the gap straddling µ (`above − below`), if both exist.
    pub fn gap(&self) -> Option<f64> {
        match (self.below, self.above) {
            (Some(b), Some(a)) => Some(a - b),
            _ => None,
        }
    }
}

/// Locate the spectrum around µ for a symmetric matrix: occupation count
/// and the two gap-edge eigenvalues, via tridiagonalization + bisection.
pub fn spectral_window(a: &Matrix, mu: f64, tol: f64) -> Result<SpectralWindow, LinalgError> {
    let tri = tred2(a)?;
    let n = tri.d.len();
    let n_below = count_below(&tri.d, &tri.e, mu);
    let below = if n_below > 0 {
        Some(kth_eigenvalue(&tri.d, &tri.e, n_below - 1, tol))
    } else {
        None
    };
    let above = if n_below < n {
        Some(kth_eigenvalue(&tri.d, &tri.e, n_below, tol))
    } else {
        None
    };
    Ok(SpectralWindow {
        n_below,
        below,
        above,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigh::eigvalsh;

    fn test_tridiag(n: usize) -> (Vec<f64>, Vec<f64>) {
        let d: Vec<f64> = (0..n).map(|i| (i as f64) - n as f64 / 2.0).collect();
        let mut e = vec![0.5; n];
        e[0] = 0.0;
        (d, e)
    }

    fn dense_of(d: &[f64], e: &[f64]) -> Matrix {
        let n = d.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = d[i];
            if i > 0 {
                a[(i, i - 1)] = e[i];
                a[(i - 1, i)] = e[i];
            }
        }
        a
    }

    #[test]
    fn count_matches_full_solver() {
        let (d, e) = test_tridiag(9);
        let eigs = eigvalsh(&dense_of(&d, &e)).unwrap();
        for x in [-10.0, -2.3, -0.1, 0.0, 0.7, 3.9, 10.0] {
            let expect = eigs.iter().filter(|&&l| l < x).count();
            assert_eq!(count_below(&d, &e, x), expect, "count at {x}");
        }
    }

    #[test]
    fn kth_eigenvalue_matches_full_solver() {
        let (d, e) = test_tridiag(8);
        let eigs = eigvalsh(&dense_of(&d, &e)).unwrap();
        for (k, &expect) in eigs.iter().enumerate() {
            let got = kth_eigenvalue(&d, &e, k, 1e-12);
            assert!((got - expect).abs() < 1e-9, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn diagonal_matrix_counting() {
        let d = vec![1.0, 2.0, 3.0];
        let e = vec![0.0; 3];
        assert_eq!(count_below(&d, &e, 0.5), 0);
        assert_eq!(count_below(&d, &e, 1.5), 1);
        assert_eq!(count_below(&d, &e, 2.0), 1); // strict
        assert_eq!(count_below(&d, &e, 100.0), 3);
    }

    #[test]
    fn spectral_window_finds_gap_edges() {
        // Dense symmetric matrix with a known gap around 0.
        let mut a = Matrix::from_fn(10, 10, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    2.0
                } else {
                    -2.0
                }
            } else {
                0.1 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        a.symmetrize();
        let eigs = eigvalsh(&a).unwrap();
        let w = spectral_window(&a, 0.0, 1e-11).unwrap();
        assert_eq!(w.n_below, 5);
        assert!((w.below.unwrap() - eigs[4]).abs() < 1e-8);
        assert!((w.above.unwrap() - eigs[5]).abs() < 1e-8);
        let gap = w.gap().unwrap();
        assert!((gap - (eigs[5] - eigs[4])).abs() < 1e-8);
        assert!(gap > 3.0, "test spectrum should be strongly gapped");
    }

    #[test]
    fn window_edges_when_mu_outside_spectrum() {
        let a = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        let w_lo = spectral_window(&a, -5.0, 1e-12).unwrap();
        assert_eq!(w_lo.n_below, 0);
        assert!(w_lo.below.is_none());
        assert!((w_lo.above.unwrap() - 1.0).abs() < 1e-9);
        assert!(w_lo.gap().is_none());
        let w_hi = spectral_window(&a, 5.0, 1e-12).unwrap();
        assert_eq!(w_hi.n_below, 3);
        assert!(w_hi.above.is_none());
        assert!((w_hi.below.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_eigenvalues_counted_with_multiplicity() {
        let a = Matrix::from_diag(&[1.0, 1.0, 1.0, 4.0]);
        let w = spectral_window(&a, 2.0, 1e-12).unwrap();
        assert_eq!(w.n_below, 3);
        assert!((w.below.unwrap() - 1.0).abs() < 1e-9);
        assert!((w.above.unwrap() - 4.0).abs() < 1e-9);
    }
}
