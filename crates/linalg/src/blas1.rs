//! BLAS level-1 style vector kernels.
//!
//! These are the scalar building blocks used by the factorizations and the
//! eigensolver. They are deliberately simple; the hot O(n³) work happens in
//! [`crate::gemm`]. The kernels GEMM builds on ([`dot`], [`axpy`],
//! [`scal`]) are generic over the [`Elem`] scalar so
//! the same code path serves the `f32` and `f64` instances; the
//! factorization-only helpers stay `f64`.

use crate::elem::Elem;

/// Dot product `x · y`, accumulated in the element type.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot<E: Elem>(x: &[E], y: &[E]) -> E {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Unrolled by 4 to expose instruction-level parallelism; falls back to a
    // scalar loop for the tail.
    let mut acc = [E::ZERO; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy<E: Elem>(alpha: E, x: &[E], y: &mut [E]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if alpha == E::ZERO {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow (like `dnrm2`).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Scale a vector in place: `x *= alpha`.
#[inline]
pub fn scal<E: Elem>(alpha: E, x: &mut [E]) {
    for v in x {
        *v *= alpha;
    }
}

/// Index of the element with the largest absolute value (first on ties).
/// Returns `None` for an empty slice.
pub fn iamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_abs = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v.abs() > best_abs {
            best = i;
            best_abs = v.abs();
        }
    }
    Some(best)
}

/// Sum of absolute values (`dasum`).
pub fn asum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Swap the contents of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    for (a, b) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&x, &y), 35.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn dot_matches_naive_for_long_vectors() {
        let x: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64).cos()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let x = [f64::NAN, f64::NAN];
        let mut y = [1.0, 2.0];
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn nrm2_avoids_overflow() {
        let big = 1e200;
        let n = nrm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-15);
    }

    #[test]
    fn nrm2_zero_vector() {
        assert_eq!(nrm2(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn iamax_finds_largest_abs() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[]), None);
        // first index wins ties
        assert_eq!(iamax(&[2.0, -2.0]), Some(0));
    }

    #[test]
    fn asum_sums_abs() {
        assert_eq!(asum(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn generic_kernels_work_in_f32() {
        let x = [1.0f32, 2.0, 3.0];
        let y = [4.0f32, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0f32);
        let mut z = [0.0f32; 3];
        axpy(2.0f32, &x, &mut z);
        assert_eq!(z, [2.0, 4.0, 6.0]);
        scal(0.5f32, &mut z);
        assert_eq!(z, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn swap_exchanges() {
        let mut x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        swap(&mut x, &mut y);
        assert_eq!(x, [3.0, 4.0]);
        assert_eq!(y, [1.0, 2.0]);
    }
}
