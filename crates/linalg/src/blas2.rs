//! BLAS level-2 style matrix-vector kernels.

use crate::matrix::Matrix;
use crate::LinalgError;

/// `y = alpha * A * x + beta * y`.
///
/// Walks the matrix column by column so memory access is contiguous in the
/// column-major layout.
pub fn gemv(
    alpha: f64,
    a: &Matrix,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) -> Result<(), LinalgError> {
    if a.ncols() != x.len() || a.nrows() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    if beta != 1.0 {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    for (j, &xj) in x.iter().enumerate() {
        let s = alpha * xj;
        if s != 0.0 {
            crate::blas1::axpy(s, a.col(j), y);
        }
    }
    Ok(())
}

/// `y = alpha * A^T * x + beta * y`.
pub fn gemv_t(
    alpha: f64,
    a: &Matrix,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) -> Result<(), LinalgError> {
    if a.nrows() != x.len() || a.ncols() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "gemv_t",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    for (j, yj) in y.iter_mut().enumerate() {
        let d = crate::blas1::dot(a.col(j), x);
        *yj = alpha * d + beta * *yj;
    }
    Ok(())
}

/// Rank-1 update `A += alpha * x * y^T`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) -> Result<(), LinalgError> {
    if a.nrows() != x.len() || a.ncols() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "ger",
            lhs: a.shape(),
            rhs: (x.len(), y.len()),
        });
    }
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        if s != 0.0 {
            crate::blas1::axpy(s, x, a.col_mut(j));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_identity() {
        let a = Matrix::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        gemv(1.0, &a, &x, 0.0, &mut y).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn gemv_general() {
        let a = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 1.0, 1.0];
        let mut y = [10.0, 10.0];
        // y = 2*A*x + 1*y = 2*[6,15] + [10,10]
        gemv(2.0, &a, &x, 1.0, &mut y).unwrap();
        assert_eq!(y, [22.0, 40.0]);
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let a = Matrix::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, -1.0];
        let mut y1 = [0.0; 3];
        gemv_t(1.0, &a, &x, 0.0, &mut y1).unwrap();
        let at = a.transpose();
        let mut y2 = [0.0; 3];
        gemv(1.0, &at, &x, 0.0, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], &mut a).unwrap();
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 0)], 12.0);
        assert_eq!(a[(0, 1)], 8.0);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn gemv_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let x = [0.0; 2];
        let mut y = [0.0; 2];
        assert!(gemv(1.0, &a, &x, 0.0, &mut y).is_err());
    }

    #[test]
    fn ger_dimension_mismatch() {
        let mut a = Matrix::zeros(2, 2);
        assert!(ger(1.0, &[1.0], &[1.0, 2.0], &mut a).is_err());
    }
}
