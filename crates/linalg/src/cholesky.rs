//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Overlap matrices `S` built from well-conditioned basis sets are SPD;
//! Cholesky provides a cheap definiteness check and a solver used by the
//! chemistry substrate and by tests that validate `S^{-1/2}`.

use crate::matrix::Matrix;
use crate::LinalgError;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Factor a symmetric positive-definite matrix. Only the lower triangle of
/// `a` is referenced. Fails with [`LinalgError::Singular`] if a
/// non-positive pivot is met (matrix not positive definite).
pub fn cholesky(a: &Matrix) -> Result<Cholesky, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "cholesky",
            shape: a.shape(),
        });
    }
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal element.
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::Singular {
                op: "cholesky",
                index: j,
            });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(Cholesky { l })
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward and back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // L^T x = y
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        Ok(x)
    }

    /// log(det A) = 2 Σ log L_ii, computed stably in log space.
    pub fn log_det(&self) -> f64 {
        (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// True if `a` is symmetric positive definite (within Cholesky's tolerance).
pub fn is_spd(a: &Matrix) -> bool {
    a.is_square() && a.asymmetry() < 1e-10 && cholesky(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_nt;

    fn spd_matrix(n: usize) -> Matrix {
        // B B^T + n*I is SPD.
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 5) as f64 * 0.2);
        let mut a = matmul_nt(&b, &b).unwrap();
        a.shift_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_matrix(8);
        let ch = cholesky(&a).unwrap();
        let back = matmul_nt(ch.l(), ch.l()).unwrap();
        assert!(back.allclose(&a, 1e-11));
    }

    #[test]
    fn l_is_lower_triangular() {
        let a = spd_matrix(6);
        let ch = cholesky(&a).unwrap();
        for j in 0..6 {
            for i in 0..j {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd_matrix(10);
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let mut b = vec![0.0; 10];
        crate::blas2::gemv(1.0, &a, &x_true, 0.0, &mut b).unwrap();
        let x = cholesky(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_diag(&[1.0, -1.0]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::Singular {
                op: "cholesky",
                index: 1
            })
        ));
    }

    #[test]
    fn is_spd_checks() {
        assert!(is_spd(&spd_matrix(5)));
        assert!(!is_spd(&Matrix::from_diag(&[1.0, 0.0])));
        assert!(!is_spd(&Matrix::zeros(2, 3)));
        // asymmetric
        let m = Matrix::from_row_major(2, 2, &[1.0, 0.5, 0.0, 1.0]);
        assert!(!is_spd(&m));
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = cholesky(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_wrong_length_errors() {
        let a = spd_matrix(4);
        let ch = cholesky(&a).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }
}
