//! Symmetric eigensolver (`dsyevd` equivalent).
//!
//! Stage 1 ([`crate::tridiag::tred2`]) reduces the matrix to tridiagonal
//! form; stage 2 ([`tql2`]) diagonalizes the tridiagonal matrix with the
//! implicit-shift QL algorithm while rotating the accumulated basis.
//! The paper computes `sign`/Fermi purifications from exactly such a
//! decomposition (Sec. IV-F, Eq. 17) because dense diagonalization beats
//! iterative schemes on the small, nearly dense submatrices.

use crate::matrix::Matrix;
use crate::tridiag::tred2;
use crate::LinalgError;

/// Maximum QL sweeps per eigenvalue before giving up.
const MAX_QL_ITERS: usize = 50;

/// Eigendecomposition `A = Q Λ Q^T` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors; column `k` corresponds to
    /// `eigenvalues[k]`.
    pub eigenvectors: Matrix,
}

/// `sqrt(a² + b²)` without destructive underflow or overflow.
fn pythag(a: f64, b: f64) -> f64 {
    let absa = a.abs();
    let absb = b.abs();
    if absa > absb {
        absa * (1.0 + (absb / absa).powi(2)).sqrt()
    } else if absb == 0.0 {
        0.0
    } else {
        absb * (1.0 + (absa / absb).powi(2)).sqrt()
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
///
/// `d` holds the diagonal, `e` the sub-diagonal in entries `1..n` (entry 0
/// ignored), and `z` the basis to rotate (identity for eigenvectors of `T`
/// itself, or the Householder `Q` for eigenvectors of the original matrix).
/// On success `d` contains the (unsorted) eigenvalues and the columns of `z`
/// the corresponding eigenvectors.
pub fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), LinalgError> {
    let n = d.len();
    assert_eq!(e.len(), n, "tql2: e must have the same length as d");
    assert_eq!(z.shape(), (n, n), "tql2: z must be n-by-n");
    if n <= 1 {
        return Ok(());
    }

    // Shift the sub-diagonal down for more convenient indexing: e[i] couples
    // d[i] and d[i+1].
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            if iter == MAX_QL_ITERS {
                return Err(LinalgError::NoConvergence {
                    op: "tql2",
                    iterations: iter,
                });
            }
            iter += 1;

            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0f64;
            let mut c = 1.0f64;
            let mut p = 0.0f64;

            let mut i = m;
            let mut underflow = false;
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: deflate and restart.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate the eigenvector basis (columns i and i+1 of z).
                for k in 0..n {
                    let f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Full symmetric eigendecomposition with eigenvalues sorted ascending.
///
/// Only the lower triangle of `a` is referenced (the matrix is symmetrized
/// internally).
pub fn eigh(a: &Matrix) -> Result<Eigh, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "eigh",
            shape: a.shape(),
        });
    }
    let tri = tred2(a)?;
    let mut d = tri.d;
    let mut e = tri.e;
    let mut z = tri.q;
    tql2(&mut d, &mut e, &mut z)?;

    // Sort ascending, permuting eigenvector columns alongside.
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("NaN eigenvalue"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        eigenvectors
            .col_mut(new_col)
            .copy_from_slice(z.col(old_col));
    }

    Ok(Eigh {
        eigenvalues,
        eigenvectors,
    })
}

/// Eigenvalues only (same cost today; provided for API clarity).
pub fn eigvalsh(a: &Matrix) -> Result<Vec<f64>, LinalgError> {
    Ok(eigh(a)?.eigenvalues)
}

impl Eigh {
    /// Reconstruct `f(A) = Q f(Λ) Q^T` by applying `f` to each eigenvalue.
    ///
    /// This single entry point implements the paper's whole family of
    /// purifications: `f = signum` gives the sign function (Eq. 17),
    /// `f = fermi` the finite-temperature generalization, and shifted
    /// variants implement the µ adjustment of Algorithm 1 without
    /// recomputing the decomposition.
    pub fn apply(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let fd: Vec<f64> = self.eigenvalues.iter().map(|&l| f(l)).collect();
        crate::gemm::q_diag_qt(&self.eigenvectors, &fd)
            .expect("eigendecomposition dimensions are consistent by construction")
    }

    /// Smallest eigenvalue.
    pub fn min(&self) -> f64 {
        *self
            .eigenvalues
            .first()
            .expect("empty eigendecomposition has no extremes")
    }

    /// Largest eigenvalue.
    pub fn max(&self) -> f64 {
        *self
            .eigenvalues
            .last()
            .expect("empty eigendecomposition has no extremes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};

    fn sym_test_matrix(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            (((i * 37 + j * 23) % 17) as f64) * 0.05 + if i == j { 1.5 } else { 0.0 }
        });
        a.symmetrize();
        a
    }

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let r = eigh(&a).unwrap();
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-14);
        assert!((r.eigenvalues[1] - 2.0).abs() < 1e-14);
        assert!((r.eigenvalues[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_row_major(2, 2, &[2.0, 1.0, 1.0, 2.0]);
        let r = eigh(&a).unwrap();
        assert!((r.eigenvalues[0] - 1.0).abs() < 1e-14);
        assert!((r.eigenvalues[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn reconstruction() {
        let a = sym_test_matrix(20);
        let r = eigh(&a).unwrap();
        let back = r.apply(|l| l);
        assert!(back.allclose(&a, 1e-11));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = sym_test_matrix(15);
        let r = eigh(&a).unwrap();
        let qtq = matmul_tn(&r.eigenvectors, &r.eigenvectors).unwrap();
        assert!(qtq.allclose(&Matrix::identity(15), 1e-12));
    }

    #[test]
    fn av_equals_lambda_v() {
        let a = sym_test_matrix(10);
        let r = eigh(&a).unwrap();
        for k in 0..10 {
            let v = Matrix::from_col_major(10, 1, r.eigenvectors.col(k).to_vec());
            let av = matmul(&a, &v).unwrap();
            let lv = v.scaled(r.eigenvalues[k]);
            assert!(av.allclose(&lv, 1e-10), "eigenpair {k} violates A v = λ v");
        }
    }

    #[test]
    fn trace_is_eigenvalue_sum() {
        let a = sym_test_matrix(12);
        let r = eigh(&a).unwrap();
        let sum: f64 = r.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = sym_test_matrix(25);
        let r = eigh(&a).unwrap();
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn apply_sign_function_is_involutory() {
        let mut a = sym_test_matrix(14);
        a.shift_diag(-1.6); // ensure both signs occur
        let r = eigh(&a).unwrap();
        assert!(r.min() < 0.0 && r.max() > 0.0, "test needs mixed spectrum");
        let s = r.apply(f64::signum);
        let s2 = matmul(&s, &s).unwrap();
        assert!(s2.allclose(&Matrix::identity(14), 1e-10));
    }

    #[test]
    fn degenerate_eigenvalues() {
        // 3x3 with a double eigenvalue: diag(1,1,2) rotated.
        let a = Matrix::from_diag(&[1.0, 1.0, 2.0]);
        let r = eigh(&a).unwrap();
        assert!((r.eigenvalues[0] - 1.0).abs() < 1e-14);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-14);
        assert!((r.eigenvalues[2] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_diag(&[-4.2]);
        let r = eigh(&a).unwrap();
        assert_eq!(r.eigenvalues, vec![-4.2]);
        assert_eq!(r.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 0);
        let r = eigh(&a).unwrap();
        assert!(r.eigenvalues.is_empty());
    }

    #[test]
    fn non_square_rejected() {
        assert!(eigh(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn eigvalsh_matches_eigh() {
        let a = sym_test_matrix(8);
        assert_eq!(eigvalsh(&a).unwrap(), eigh(&a).unwrap().eigenvalues);
    }

    #[test]
    fn moderately_large_matrix() {
        let a = sym_test_matrix(80);
        let r = eigh(&a).unwrap();
        let back = r.apply(|l| l);
        assert!(back.allclose(&a, 1e-9));
    }
}
