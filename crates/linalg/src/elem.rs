//! Scalar element abstraction for the dense kernels.
//!
//! The paper's central performance claim is that the submatrix method
//! *tolerates approximate computing*: the dense submatrix solves can run in
//! reduced precision with negligible error in the assembled density matrix
//! (Sec. IV, Sec. VI). To make that executable rather than merely emulated,
//! the hot dense kernels (GEMM, the sign/Padé iterations) are generic over
//! the [`Elem`] scalar trait with `f32` and `f64` instances, and the
//! numeric phase selects between them through [`Precision`].
//!
//! [`Precision`] is strictly a **numeric-phase** knob: it never influences
//! sparsity patterns, plans, or any plan-cache key (see
//! `sm_core::engine`), so one cached symbolic plan serves every precision.

use std::fmt::{Debug, Display, LowerExp};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Scalar type the dense kernels are generic over (`f32` or `f64`).
pub trait Elem:
    Copy
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Debug
    + Display
    + LowerExp
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Storage bytes per element (what the wire formats move).
    const BYTES: usize;

    /// Round an `f64` into this storage format.
    fn from_f64(x: f64) -> Self;
    /// Widen to `f64` (exact for both instances).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
}

impl Elem for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
}

impl Elem for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
}

/// Numeric-phase precision of a submatrix evaluation.
///
/// This selects the scalar type of the dense solve kernels *and* the value
/// encoding of the rank-transfer wire format; it deliberately carries no
/// symbolic-phase meaning (it must never enter a plan fingerprint or
/// plan-cache key — precision changes values, never patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Double precision everywhere (the reference).
    #[default]
    Fp64,
    /// Single-precision storage and solve kernels; gathered *and*
    /// scattered block values travel as `f32` (half the bytes).
    Fp32,
    /// Single-precision solve followed by one cheap `f64` Newton–Schulz
    /// refinement pass. Gathers travel as `f32`; the refined result is
    /// scattered in `f64` so the recovered accuracy is not rounded away.
    Fp32Refined,
}

/// Tolerance floor of the `f32` sign iterations: the involutority residual
/// of a converged single-precision iterate bottoms out near `n·ε_f32`, so
/// tighter requests are clamped here instead of spinning to the budget.
pub const F32_SIGN_TOL: f64 = 1e-5;

impl Precision {
    /// All modes in ablation order.
    pub fn all() -> [Precision; 3] {
        [Precision::Fp64, Precision::Fp32, Precision::Fp32Refined]
    }

    /// Stable display label (bench output schema).
    pub fn label(&self) -> &'static str {
        match self {
            Precision::Fp64 => "fp64",
            Precision::Fp32 => "fp32",
            Precision::Fp32Refined => "fp32_refined",
        }
    }

    /// True when submatrix values are stored/solved in `f32`.
    pub fn storage_is_f32(&self) -> bool {
        !matches!(self, Precision::Fp64)
    }

    /// True when *gathered* input block values travel as `f32`. Lossless
    /// relative to the solve, which rounds its assembled input to `f32`
    /// storage first in both `Fp32` and `Fp32Refined`.
    pub fn gather_is_f32(&self) -> bool {
        self.storage_is_f32()
    }

    /// True when *scattered* result block values travel as `f32`. Only
    /// plain `Fp32` results are `f32`-representable (and thus travel
    /// losslessly); `Fp32Refined` ships its `f64` refinement intact.
    pub fn scatter_is_f32(&self) -> bool {
        matches!(self, Precision::Fp32)
    }

    /// Bytes per element of the *solve/storage* format (the perfmodel's
    /// `elem_bytes` input).
    pub fn storage_bytes(&self) -> usize {
        if self.storage_is_f32() {
            4
        } else {
            8
        }
    }

    /// Round a value to the storage format.
    pub fn round_storage(&self, x: f64) -> f64 {
        if self.storage_is_f32() {
            x as f32 as f64
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_constants_and_conversions() {
        assert_eq!(<f64 as Elem>::BYTES, 8);
        assert_eq!(<f32 as Elem>::BYTES, 4);
        assert_eq!(f32::from_f64(1.0 + 1e-9), 1.0f32);
        assert_eq!(f64::from_f64(1.0 + 1e-9), 1.0 + 1e-9);
        assert_eq!((-2.0f32).abs(), 2.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
    }

    #[test]
    fn precision_wire_and_storage_split() {
        assert!(!Precision::Fp64.storage_is_f32());
        assert!(Precision::Fp32.storage_is_f32());
        assert!(Precision::Fp32Refined.storage_is_f32());
        // Refined gathers in f32 but scatters its f64 refinement intact.
        assert!(Precision::Fp32Refined.gather_is_f32());
        assert!(!Precision::Fp32Refined.scatter_is_f32());
        assert!(Precision::Fp32.scatter_is_f32());
        assert_eq!(Precision::Fp32.storage_bytes(), 4);
        assert_eq!(Precision::Fp64.storage_bytes(), 8);
    }

    #[test]
    fn round_storage_matches_f32_cast() {
        let x = 0.1f64;
        assert_eq!(Precision::Fp32.round_storage(x), 0.1f32 as f64);
        assert_eq!(Precision::Fp32Refined.round_storage(x), 0.1f32 as f64);
        assert_eq!(Precision::Fp64.round_storage(x), x);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<_> = Precision::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["fp64", "fp32", "fp32_refined"]);
    }
}
