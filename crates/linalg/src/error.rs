//! Error type shared by all fallible routines in this crate.

use std::fmt;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the first operand.
        lhs: (usize, usize),
        /// Shape of the second operand.
        rhs: (usize, usize),
    },
    /// The matrix is not square but the operation requires it.
    NotSquare {
        /// Operation name.
        op: &'static str,
        /// Offending shape.
        shape: (usize, usize),
    },
    /// A factorization failed because the matrix is singular (or not
    /// positive definite for Cholesky) at the given pivot index.
    Singular {
        /// Operation name.
        op: &'static str,
        /// Pivot/diagonal index at which the failure was detected.
        index: usize,
    },
    /// An iterative method did not converge within its iteration budget.
    NoConvergence {
        /// Operation name.
        op: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(
                    f,
                    "{op}: matrix must be square, got {}x{}",
                    shape.0, shape.1
                )
            }
            LinalgError::Singular { op, index } => {
                write!(f, "{op}: matrix is singular at pivot {index}")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "gemm: dimension mismatch between 2x3 and 4x5"
        );
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare {
            op: "eigh",
            shape: (2, 3),
        };
        assert_eq!(e.to_string(), "eigh: matrix must be square, got 2x3");
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular {
            op: "cholesky",
            index: 7,
        };
        assert_eq!(e.to_string(), "cholesky: matrix is singular at pivot 7");
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence {
            op: "tql2",
            iterations: 30,
        };
        assert_eq!(e.to_string(), "tql2: no convergence after 30 iterations");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
