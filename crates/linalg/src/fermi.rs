//! Fermi–Dirac occupation and finite-temperature purification.
//!
//! At zero temperature the density matrix uses the Heaviside/sign function;
//! at finite temperature the signum of Eq. 17 is replaced by the Fermi
//! function (paper Secs. III-B and IV-F). The `sign(0) = 0` extension of
//! Eq. 12 is exactly the `T → 0⁺` limit of the Fermi function at `ε = µ`
//! (Eq. 13), which these helpers reproduce.

/// Fermi–Dirac occupation `f(ε) = 1 / (exp((ε − µ)/kT) + 1)`.
///
/// `kt` is the thermal energy `k_B·T` in the same units as `eps` and `mu`.
/// `kt == 0` gives the zero-temperature step with `f(µ) = 1/2` (Eq. 13).
pub fn fermi_occupation(eps: f64, mu: f64, kt: f64) -> f64 {
    if kt <= 0.0 {
        return if eps < mu {
            1.0
        } else if eps > mu {
            0.0
        } else {
            0.5
        };
    }
    let x = (eps - mu) / kt;
    // Numerically stable in both tails.
    if x >= 0.0 {
        let e = (-x).exp();
        e / (1.0 + e)
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Finite-temperature analogue of the sign function:
/// `sign_T(ε − µ) = 1 − 2 f(ε) = tanh((ε − µ) / (2kT))`.
///
/// Plugging this into Eq. 16 in place of `signum` yields the
/// finite-temperature density matrix; `kt → 0` recovers the extended sign
/// of Eqs. 9 and 12.
pub fn smeared_sign(eps: f64, mu: f64, kt: f64) -> f64 {
    1.0 - 2.0 * fermi_occupation(eps, mu, kt)
}

/// Occupation-weighted electron count `Σ_i f(ε_i)` for a set of eigenvalues
/// (doubly occupied orbitals should be handled by the caller's spin factor).
pub fn electron_count(eigenvalues: &[f64], mu: f64, kt: f64) -> f64 {
    eigenvalues
        .iter()
        .map(|&e| fermi_occupation(e, mu, kt))
        .sum()
}

/// Electronic entropy `−k_B Σ_i [f ln f + (1−f) ln(1−f)]` in units of `k_B`
/// (useful for free-energy consistency checks at finite temperature).
pub fn electronic_entropy(eigenvalues: &[f64], mu: f64, kt: f64) -> f64 {
    eigenvalues
        .iter()
        .map(|&e| {
            let f = fermi_occupation(e, mu, kt);
            let mut s = 0.0;
            if f > 0.0 {
                s -= f * f.ln();
            }
            if f < 1.0 {
                s -= (1.0 - f) * (1.0 - f).ln();
            }
            s
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_temperature_is_step() {
        assert_eq!(fermi_occupation(-1.0, 0.0, 0.0), 1.0);
        assert_eq!(fermi_occupation(1.0, 0.0, 0.0), 0.0);
        assert_eq!(fermi_occupation(0.0, 0.0, 0.0), 0.5);
    }

    #[test]
    fn half_occupation_at_mu() {
        // Eq. 13: f(µ) = 1/2 at any temperature.
        for kt in [1e-6, 0.01, 1.0] {
            assert!((fermi_occupation(0.3, 0.3, kt) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn monotone_decreasing_in_energy() {
        let kt = 0.1;
        let f: Vec<f64> = (-10..=10)
            .map(|i| fermi_occupation(i as f64 * 0.2, 0.0, kt))
            .collect();
        for w in f.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn tails_are_saturated_without_overflow() {
        assert_eq!(fermi_occupation(1e6, 0.0, 0.01), 0.0);
        assert_eq!(fermi_occupation(-1e6, 0.0, 0.01), 1.0);
    }

    #[test]
    fn smeared_sign_is_tanh() {
        let (eps, mu, kt): (f64, f64, f64) = (0.7, 0.2, 0.3);
        let expect = ((eps - mu) / (2.0 * kt)).tanh();
        assert!((smeared_sign(eps, mu, kt) - expect).abs() < 1e-14);
    }

    #[test]
    fn smeared_sign_limits_to_extended_sign() {
        assert!((smeared_sign(1.0, 0.0, 1e-9) - 1.0).abs() < 1e-12);
        assert!((smeared_sign(-1.0, 0.0, 1e-9) + 1.0).abs() < 1e-12);
        assert_eq!(smeared_sign(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn electron_count_counts() {
        let eigs = [-2.0, -1.0, 1.0, 2.0];
        assert_eq!(electron_count(&eigs, 0.0, 0.0), 2.0);
        // Symmetric spectrum at finite T still gives half filling.
        assert!((electron_count(&eigs, 0.0, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_vanishes_at_zero_t_and_peaks_at_mu() {
        let eigs = [-1.0, 1.0];
        assert_eq!(electronic_entropy(&eigs, 0.0, 0.0), 0.0);
        let s_mid = electronic_entropy(&[0.0], 0.0, 0.1);
        assert!((s_mid - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
