//! General matrix-matrix multiplication (GEMM).
//!
//! The submatrix method turns a sparse problem into many *dense* matrix
//! multiplications (sign iterations, eigenvector back-transforms), so this is
//! the hot kernel of the whole reproduction. The implementation is a
//! cache-blocked, column-panel-parallel GEMM:
//!
//! * the N (no-transpose) × N path streams columns of `A` with fused
//!   `axpy` updates, which is optimal for the column-major layout and
//!   auto-vectorizes well;
//! * transposed operands are handled by the T×N dot-product path or by
//!   materializing the transpose once (N×T), whichever touches less memory;
//! * Rayon parallelism splits the columns of `C` across threads — the same
//!   shared-memory strategy the paper uses with OpenMP (Sec. IV-D).

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::LinalgError;

/// Whether an operand enters the product transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Shape of the operand after applying the op.
    fn apply(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Op::NoTrans => shape,
            Op::Trans => (shape.1, shape.0),
        }
    }
}

/// Problems smaller than this run sequentially: thread spawn overhead would
/// dominate. Chosen from the criterion micro-benches in `sm-bench`.
const PAR_THRESHOLD_FLOPS: usize = 1 << 21;

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Dimensions must satisfy `op(A): m×k`, `op(B): k×n`, `C: m×n`.
pub fn gemm(
    alpha: f64,
    a: &Matrix,
    op_a: Op,
    b: &Matrix,
    op_b: Op,
    beta: f64,
    c: &mut Matrix,
) -> Result<(), LinalgError> {
    let (m, ka) = op_a.apply(a.shape());
    let (kb, n) = op_b.apply(b.shape());
    if ka != kb || c.shape() != (m, n) {
        return Err(LinalgError::DimensionMismatch {
            op: "gemm",
            lhs: op_a.apply(a.shape()),
            rhs: op_b.apply(b.shape()),
        });
    }
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.as_mut_slice().fill(0.0);
        } else {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    // Normalize to the two fast paths: N*N (axpy streaming) and T*N (dot).
    // N*T and T*T materialize B^T once; the copy is O(k·n) against O(m·k·n)
    // compute, so it is noise for the dense submatrix sizes we care about.
    let bt;
    let (b_eff, op_b_eff): (&Matrix, Op) = match op_b {
        Op::NoTrans => (b, Op::NoTrans),
        Op::Trans => {
            bt = b.transpose();
            (&bt, Op::NoTrans)
        }
    };
    debug_assert_eq!(op_b_eff, Op::NoTrans);

    let flops = 2 * m * n * k;
    let parallel = flops >= PAR_THRESHOLD_FLOPS && rayon::current_num_threads() > 1;

    match op_a {
        Op::NoTrans => {
            let kernel = |j: usize, c_col: &mut [f64]| {
                let b_col = b_eff.col(j);
                for (kk, &bkj) in b_col.iter().enumerate() {
                    let s = alpha * bkj;
                    if s != 0.0 {
                        crate::blas1::axpy(s, a.col(kk), c_col);
                    }
                }
            };
            run_over_columns(c, parallel, kernel);
        }
        Op::Trans => {
            let kernel = |j: usize, c_col: &mut [f64]| {
                let b_col = b_eff.col(j);
                for (i, ci) in c_col.iter_mut().enumerate() {
                    *ci += alpha * crate::blas1::dot(a.col(i), b_col);
                }
            };
            run_over_columns(c, parallel, kernel);
        }
    }
    Ok(())
}

/// Apply `kernel(j, column_j_of_c)` to every column of `c`, optionally in
/// parallel over Rayon's pool.
fn run_over_columns(c: &mut Matrix, parallel: bool, kernel: impl Fn(usize, &mut [f64]) + Sync) {
    let m = c.nrows();
    if parallel {
        c.as_mut_slice()
            .par_chunks_mut(m)
            .enumerate()
            .for_each(|(j, col)| kernel(j, col));
    } else {
        c.as_mut_slice()
            .chunks_mut(m)
            .enumerate()
            .for_each(|(j, col)| kernel(j, col));
    }
}

/// Convenience wrapper: return `A * B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    gemm(1.0, a, Op::NoTrans, b, Op::NoTrans, 0.0, &mut c)?;
    Ok(c)
}

/// Convenience wrapper: return `A^T * B`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut c = Matrix::zeros(a.ncols(), b.ncols());
    gemm(1.0, a, Op::Trans, b, Op::NoTrans, 0.0, &mut c)?;
    Ok(c)
}

/// Convenience wrapper: return `A * B^T`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut c = Matrix::zeros(a.nrows(), b.nrows());
    gemm(1.0, a, Op::NoTrans, b, Op::Trans, 0.0, &mut c)?;
    Ok(c)
}

/// Similarity transform `Q * D * Q^T` where `D` is diagonal, given as a
/// slice. This is the back-transform of the eigendecomposition-based sign
/// evaluation (Eq. 17 of the paper) and is implemented as a scaled copy of
/// `Q` followed by one GEMM, avoiding the explicit diagonal matrix.
pub fn q_diag_qt(q: &Matrix, d: &[f64]) -> Result<Matrix, LinalgError> {
    if q.ncols() != d.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "q_diag_qt",
            lhs: q.shape(),
            rhs: (d.len(), d.len()),
        });
    }
    // QD: scale column l of Q by d[l].
    let mut qd = q.clone();
    for (l, &dl) in d.iter().enumerate() {
        crate::blas1::scal(dl, qd.col_mut(l));
    }
    matmul_nt(&qd, q)
}

/// Naive triple-loop reference multiply, used by tests and property checks.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_naive",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    for j in 0..b.ncols() {
        for i in 0..a.nrows() {
            let mut s = 0.0;
            for kk in 0..a.ncols() {
                s += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = s;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| (i * n + j) as f64 * 0.1 - 1.0)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(5, 7);
        let b = arange(7, 4);
        let c = matmul(&a, &b).unwrap();
        let r = matmul_naive(&a, &b).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn identity_is_neutral() {
        let a = arange(6, 6);
        let i = Matrix::identity(6);
        assert!(matmul(&a, &i).unwrap().allclose(&a, 1e-15));
        assert!(matmul(&i, &a).unwrap().allclose(&a, 1e-15));
    }

    #[test]
    fn tn_path_matches_explicit_transpose() {
        let a = arange(7, 5);
        let b = arange(7, 3);
        let c = matmul_tn(&a, &b).unwrap();
        let r = matmul_naive(&a.transpose(), &b).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn nt_path_matches_explicit_transpose() {
        let a = arange(4, 6);
        let b = arange(5, 6);
        let c = matmul_nt(&a, &b).unwrap();
        let r = matmul_naive(&a, &b.transpose()).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn tt_path() {
        let a = arange(6, 4);
        let b = arange(3, 6);
        let mut c = Matrix::zeros(4, 3);
        gemm(1.0, &a, Op::Trans, &b, Op::Trans, 0.0, &mut c).unwrap();
        let r = matmul_naive(&a.transpose(), &b.transpose()).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = arange(3, 3);
        let b = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        // C = 2*A*I + 3*I
        gemm(2.0, &a, Op::NoTrans, &b, Op::NoTrans, 3.0, &mut c).unwrap();
        let mut expect = a.scaled(2.0);
        expect.shift_diag(3.0);
        assert!(c.allclose(&expect, 1e-12));
    }

    #[test]
    fn beta_zero_overwrites_nan_garbage() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_row_major(2, 2, &[f64::NAN; 4]);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c).unwrap();
        assert!(c.allclose(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        let mut c = Matrix::zeros(3, 3);
        assert!(gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c).is_err());
    }

    #[test]
    fn large_parallel_matches_naive() {
        // Big enough to trip the parallel path (2*m*n*k >= 2^21).
        let a = arange(128, 64);
        let b = arange(64, 128);
        let c = matmul(&a, &b).unwrap();
        let r = matmul_naive(&a, &b).unwrap();
        assert!(c.allclose(&r, 1e-9));
    }

    #[test]
    fn q_diag_qt_matches_explicit() {
        let q = arange(5, 5);
        let d = [1.0, -1.0, 2.0, 0.5, 0.0];
        let got = q_diag_qt(&q, &d).unwrap();
        let dm = Matrix::from_diag(&d);
        let expect = matmul(&matmul(&q, &dm).unwrap(), &q.transpose()).unwrap();
        assert!(got.allclose(&expect, 1e-12));
    }

    #[test]
    fn q_diag_qt_dimension_check() {
        let q = Matrix::zeros(3, 3);
        assert!(q_diag_qt(&q, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 0));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
