//! General matrix-matrix multiplication (GEMM).
//!
//! The submatrix method turns a sparse problem into many *dense* matrix
//! multiplications (sign iterations, eigenvector back-transforms), so this is
//! the hot kernel of the whole reproduction. The implementation is a
//! cache-blocked, column-panel-parallel GEMM, generic over the
//! [`Elem`] scalar (`f32` + `f64`) so the reduced-precision execution path
//! runs the *same* kernel in single precision:
//!
//! * the N (no-transpose) × N path streams columns of `A` with fused
//!   `axpy` updates, which is optimal for the column-major layout and
//!   auto-vectorizes well;
//! * transposed operands are handled by the T×N dot-product path; N×T
//!   streams the rows of `B` directly (strided reads amortized over an
//!   entire `axpy` each) once `k·n` outgrows the transpose tile, and only
//!   materializes `Bᵀ` below that — keeping the O(k·n) copy and its
//!   allocation out of the sign-iteration inner loop;
//! * Rayon parallelism splits the columns of `C` across threads — the same
//!   shared-memory strategy the paper uses with OpenMP (Sec. IV-D).
//!
//! For `f32` operands, [`matmul_wide`] additionally offers an `f64`
//! accumulator in the inner kernel (single-precision storage and wire
//! traffic, double-precision accumulation — the CPU analogue of the
//! tensor-core FP16' mixed mode of paper Sec. VI).

use rayon::prelude::*;

use crate::elem::Elem;
use crate::matrix::{Matrix, MatrixBase, MatrixF32};
use crate::LinalgError;

/// Whether an operand enters the product transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Shape of the operand after applying the op.
    fn apply(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Op::NoTrans => shape,
            Op::Trans => (shape.1, shape.0),
        }
    }
}

/// Problems smaller than this run sequentially: thread spawn overhead would
/// dominate. Chosen from the criterion micro-benches in `sm-bench`.
const PAR_THRESHOLD_FLOPS: usize = 1 << 21;

/// N×T products whose `Bᵀ` copy would exceed this many elements stream the
/// rows of `B` in place instead of materializing the transpose. Below the
/// threshold the copy fits comfortably in cache and keeps the inner loop
/// contiguous; above it the copy is an O(k·n) allocation per GEMM — pure
/// overhead in the sign-iteration inner loop.
const TRANSPOSE_TILE_ELEMS: usize = 1 << 13;

/// `C = alpha * op(A) * op(B) + beta * C`, generic over the element type.
///
/// Dimensions must satisfy `op(A): m×k`, `op(B): k×n`, `C: m×n`.
pub fn gemm<E: Elem>(
    alpha: E,
    a: &MatrixBase<E>,
    op_a: Op,
    b: &MatrixBase<E>,
    op_b: Op,
    beta: E,
    c: &mut MatrixBase<E>,
) -> Result<(), LinalgError> {
    let (m, ka) = op_a.apply(a.shape());
    let (kb, n) = op_b.apply(b.shape());
    if ka != kb || c.shape() != (m, n) {
        return Err(LinalgError::DimensionMismatch {
            op: "gemm",
            lhs: op_a.apply(a.shape()),
            rhs: op_b.apply(b.shape()),
        });
    }
    let k = ka;

    if beta != E::ONE {
        if beta == E::ZERO {
            c.as_mut_slice().fill(E::ZERO);
        } else {
            c.scale(beta);
        }
    }
    if alpha == E::ZERO || m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let flops = 2 * m * n * k;
    let parallel = flops >= PAR_THRESHOLD_FLOPS && rayon::current_num_threads() > 1;

    match (op_a, op_b) {
        (Op::NoTrans, Op::Trans) if k * n > TRANSPOSE_TILE_ELEMS => {
            // Stream B's rows in place: element (k, j) of op(B) is B[j, k],
            // one strided load per whole-column axpy — no Bᵀ copy.
            let kernel = |j: usize, c_col: &mut [E]| {
                for kk in 0..k {
                    let s = alpha * b[(j, kk)];
                    if s != E::ZERO {
                        crate::blas1::axpy(s, a.col(kk), c_col);
                    }
                }
            };
            run_over_columns(c, parallel, kernel);
        }
        (op_a, op_b_orig) => {
            // Remaining cases: N×N (axpy streaming, b_eff = b — no copy),
            // T×N (dot path), small N×T and T×T (materialize Bᵀ once —
            // the copy fits in the transpose tile for N×T and feeds the
            // dot path for T×T).
            let bt;
            let b_eff: &MatrixBase<E> = match op_b_orig {
                Op::NoTrans => b,
                Op::Trans => {
                    bt = b.transpose();
                    &bt
                }
            };
            match op_a {
                Op::NoTrans => {
                    let kernel = |j: usize, c_col: &mut [E]| {
                        let b_col = b_eff.col(j);
                        for (kk, &bkj) in b_col.iter().enumerate() {
                            let s = alpha * bkj;
                            if s != E::ZERO {
                                crate::blas1::axpy(s, a.col(kk), c_col);
                            }
                        }
                    };
                    run_over_columns(c, parallel, kernel);
                }
                Op::Trans => {
                    let kernel = |j: usize, c_col: &mut [E]| {
                        let b_col = b_eff.col(j);
                        for (i, ci) in c_col.iter_mut().enumerate() {
                            *ci += alpha * crate::blas1::dot(a.col(i), b_col);
                        }
                    };
                    run_over_columns(c, parallel, kernel);
                }
            }
        }
    }
    Ok(())
}

/// Apply `kernel(j, column_j_of_c)` to every column of `c`, optionally in
/// parallel over Rayon's pool.
fn run_over_columns<E: Elem>(
    c: &mut MatrixBase<E>,
    parallel: bool,
    kernel: impl Fn(usize, &mut [E]) + Sync,
) {
    let m = c.nrows();
    if parallel {
        c.as_mut_slice()
            .par_chunks_mut(m)
            .enumerate()
            .for_each(|(j, col)| kernel(j, col));
    } else {
        c.as_mut_slice()
            .chunks_mut(m)
            .enumerate()
            .for_each(|(j, col)| kernel(j, col));
    }
}

/// Convenience wrapper: return `A * B` (any element type).
pub fn matmul_in<E: Elem>(
    a: &MatrixBase<E>,
    b: &MatrixBase<E>,
) -> Result<MatrixBase<E>, LinalgError> {
    let mut c = MatrixBase::zeros(a.nrows(), b.ncols());
    gemm(E::ONE, a, Op::NoTrans, b, Op::NoTrans, E::ZERO, &mut c)?;
    Ok(c)
}

/// Convenience wrapper: return `A * B` (double precision).
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    matmul_in(a, b)
}

/// `A * B` for `f32` operands with **`f64` accumulation** in the inner
/// kernel: every output column accumulates in a double-precision scratch
/// panel and rounds to `f32` exactly once. Storage, inputs and output stay
/// single precision; only the running sums are wide — the mixed mode the
/// reduced-precision sign iteration uses.
pub fn matmul_wide(a: &MatrixF32, b: &MatrixF32) -> Result<MatrixF32, LinalgError> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_wide",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.ncols();
    let mut c = MatrixF32::zeros(m, n);
    let flops = 2 * m * n * k;
    let parallel = flops >= PAR_THRESHOLD_FLOPS && rayon::current_num_threads() > 1;
    let column = |j: usize, c_col: &mut [f32], acc: &mut [f64]| {
        acc.fill(0.0);
        let b_col = b.col(j);
        for (kk, &bkj) in b_col.iter().enumerate() {
            let s = bkj as f64;
            if s != 0.0 {
                for (ai, acc_i) in a.col(kk).iter().zip(acc.iter_mut()) {
                    *acc_i += s * (*ai as f64);
                }
            }
        }
        for (ci, &wide) in c_col.iter_mut().zip(acc.iter()) {
            *ci = wide as f32;
        }
    };
    if parallel {
        // Threads own disjoint columns; each pays for its own scratch.
        run_over_columns(&mut c, true, |j, c_col| {
            column(j, c_col, &mut vec![0.0f64; m])
        });
    } else {
        // Sequential hot path (the per-submatrix solves run with
        // engine-level parallelism disabled): one scratch for all columns,
        // no per-column allocation in the sign-iteration inner loop.
        let mut acc = vec![0.0f64; m];
        for (j, c_col) in c.as_mut_slice().chunks_mut(m).enumerate() {
            column(j, c_col, &mut acc);
        }
    }
    Ok(c)
}

/// Convenience wrapper: return `A^T * B`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut c = Matrix::zeros(a.ncols(), b.ncols());
    gemm(1.0, a, Op::Trans, b, Op::NoTrans, 0.0, &mut c)?;
    Ok(c)
}

/// Convenience wrapper: return `A * B^T`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut c = Matrix::zeros(a.nrows(), b.nrows());
    gemm(1.0, a, Op::NoTrans, b, Op::Trans, 0.0, &mut c)?;
    Ok(c)
}

/// Similarity transform `Q * D * Q^T` where `D` is diagonal, given as a
/// slice. This is the back-transform of the eigendecomposition-based sign
/// evaluation (Eq. 17 of the paper) and is implemented as a scaled copy of
/// `Q` followed by one GEMM, avoiding the explicit diagonal matrix.
pub fn q_diag_qt(q: &Matrix, d: &[f64]) -> Result<Matrix, LinalgError> {
    if q.ncols() != d.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "q_diag_qt",
            lhs: q.shape(),
            rhs: (d.len(), d.len()),
        });
    }
    // QD: scale column l of Q by d[l].
    let mut qd = q.clone();
    for (l, &dl) in d.iter().enumerate() {
        crate::blas1::scal(dl, qd.col_mut(l));
    }
    matmul_nt(&qd, q)
}

/// Naive triple-loop reference multiply, used by tests and property checks.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_naive",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    for j in 0..b.ncols() {
        for i in 0..a.nrows() {
            let mut s = 0.0;
            for kk in 0..a.ncols() {
                s += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = s;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| (i * n + j) as f64 * 0.1 - 1.0)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(5, 7);
        let b = arange(7, 4);
        let c = matmul(&a, &b).unwrap();
        let r = matmul_naive(&a, &b).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn identity_is_neutral() {
        let a = arange(6, 6);
        let i = Matrix::identity(6);
        assert!(matmul(&a, &i).unwrap().allclose(&a, 1e-15));
        assert!(matmul(&i, &a).unwrap().allclose(&a, 1e-15));
    }

    #[test]
    fn tn_path_matches_explicit_transpose() {
        let a = arange(7, 5);
        let b = arange(7, 3);
        let c = matmul_tn(&a, &b).unwrap();
        let r = matmul_naive(&a.transpose(), &b).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn nt_path_matches_explicit_transpose() {
        let a = arange(4, 6);
        let b = arange(5, 6);
        let c = matmul_nt(&a, &b).unwrap();
        let r = matmul_naive(&a, &b.transpose()).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn nt_streaming_path_matches_materialized() {
        // k·n > TRANSPOSE_TILE_ELEMS trips the streaming (no-copy) path;
        // it performs the identical per-column axpy sequence, so the result
        // matches the naive reference to roundoff.
        let a = arange(10, 96);
        let b = arange(112, 96); // k·n = 96·112 > 8192
        assert!(a.ncols() * b.nrows() > super::TRANSPOSE_TILE_ELEMS);
        let c = matmul_nt(&a, &b).unwrap();
        let r = matmul_naive(&a, &b.transpose()).unwrap();
        assert!(c.allclose(&r, 1e-11));
    }

    #[test]
    fn tt_path() {
        let a = arange(6, 4);
        let b = arange(3, 6);
        let mut c = Matrix::zeros(4, 3);
        gemm(1.0, &a, Op::Trans, &b, Op::Trans, 0.0, &mut c).unwrap();
        let r = matmul_naive(&a.transpose(), &b.transpose()).unwrap();
        assert!(c.allclose(&r, 1e-12));
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = arange(3, 3);
        let b = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        // C = 2*A*I + 3*I
        gemm(2.0, &a, Op::NoTrans, &b, Op::NoTrans, 3.0, &mut c).unwrap();
        let mut expect = a.scaled(2.0);
        expect.shift_diag(3.0);
        assert!(c.allclose(&expect, 1e-12));
    }

    #[test]
    fn beta_zero_overwrites_nan_garbage() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_row_major(2, 2, &[f64::NAN; 4]);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c).unwrap();
        assert!(c.allclose(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        let mut c = Matrix::zeros(3, 3);
        assert!(gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c).is_err());
    }

    #[test]
    fn large_parallel_matches_naive() {
        // Big enough to trip the parallel path (2*m*n*k >= 2^21).
        let a = arange(128, 64);
        let b = arange(64, 128);
        let c = matmul(&a, &b).unwrap();
        let r = matmul_naive(&a, &b).unwrap();
        assert!(c.allclose(&r, 1e-9));
    }

    #[test]
    fn q_diag_qt_matches_explicit() {
        let q = arange(5, 5);
        let d = [1.0, -1.0, 2.0, 0.5, 0.0];
        let got = q_diag_qt(&q, &d).unwrap();
        let dm = Matrix::from_diag(&d);
        let expect = matmul(&matmul(&q, &dm).unwrap(), &q.transpose()).unwrap();
        assert!(got.allclose(&expect, 1e-12));
    }

    #[test]
    fn q_diag_qt_dimension_check() {
        let q = Matrix::zeros(3, 3);
        assert!(q_diag_qt(&q, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 0);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 0));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn f32_gemm_matches_f64_to_single_roundoff() {
        let a = Matrix::from_fn(24, 17, |i, j| ((i * 7 + j * 3) % 9) as f64 * 0.11 - 0.4);
        let b = Matrix::from_fn(17, 21, |i, j| ((i * 5 + j * 11) % 7) as f64 * 0.13 - 0.35);
        let r = matmul(&a, &b).unwrap();
        let c32 = matmul_in(&a.to_f32(), &b.to_f32()).unwrap();
        let diff = c32.to_f64().max_abs_diff(&r);
        assert!(diff < 1e-3, "f32 gemm too far off: {diff}");
        assert!(diff > 0.0, "f32 gemm should differ from f64 in roundoff");
    }

    #[test]
    fn f32_transposed_paths_match_naive() {
        let a = arange(9, 6).to_f32();
        let b = arange(9, 5).to_f32();
        let mut c = MatrixF32::zeros(6, 5);
        gemm(1.0f32, &a, Op::Trans, &b, Op::NoTrans, 0.0, &mut c).unwrap();
        let r = matmul_naive(&a.to_f64().transpose(), &b.to_f64()).unwrap();
        assert!(c.to_f64().allclose(&r, 1e-4));
    }

    #[test]
    fn wide_accumulation_is_at_least_as_accurate() {
        // Long inner dimension: plain f32 accumulation drifts, the f64
        // accumulator stays at input-rounding level.
        let n = 160;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 11) as f64 * 0.09 - 0.45);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 13) as f64 * 0.07 - 0.4);
        let exact = matmul(&a, &b).unwrap();
        let narrow = matmul_in(&a.to_f32(), &b.to_f32()).unwrap();
        let wide = matmul_wide(&a.to_f32(), &b.to_f32()).unwrap();
        let e_narrow = narrow.to_f64().max_abs_diff(&exact);
        let e_wide = wide.to_f64().max_abs_diff(&exact);
        assert!(
            e_wide <= e_narrow + 1e-12,
            "wide accumulation ({e_wide}) must not be worse than narrow ({e_narrow})"
        );
        assert!(e_wide < 1e-3);
    }

    #[test]
    fn matmul_wide_dimension_check() {
        let a = MatrixF32::zeros(2, 3);
        let b = MatrixF32::zeros(2, 3);
        assert!(matmul_wide(&a, &b).is_err());
    }
}
