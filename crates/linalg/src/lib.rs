//! # sm-linalg — dense linear algebra substrate
//!
//! Pure-Rust dense linear algebra used by the submatrix-method reproduction
//! of Lass et al., *"A Submatrix-Based Method for Approximate Matrix Function
//! Evaluation in the Quantum Chemistry Code CP2K"* (SC 2020).
//!
//! The paper evaluates the matrix sign function of dense principal
//! submatrices with LAPACK's `dsyevd`; this crate provides the equivalent
//! building blocks from scratch:
//!
//! * a column-major [`Matrix`] type,
//! * BLAS-1/2/3 kernels ([`blas1`], [`blas2`], [`gemm`]) with a cache-blocked,
//!   Rayon-parallel GEMM,
//! * a symmetric eigensolver [`eigh::eigh`] (Householder tridiagonalization +
//!   implicit-shift QL, the classic `tred2`/`tql2` pair),
//! * Cholesky and LU factorizations,
//! * the matrix sign function via eigendecomposition, Newton–Schulz and
//!   higher-order Padé iterations ([`sign`]),
//! * inverse p-th roots, in particular `S^{-1/2}` for Löwdin
//!   orthogonalization ([`roots`]),
//! * Fermi-function smearing for finite-temperature purification
//!   ([`fermi`]),
//! * element-wise sparse (CSR) kernels and sign iterations implementing the
//!   paper's Sec. V-C proposal ([`sparse`]).
//!
//! The hot dense kernels (GEMM, the sign/Padé iterations) are generic over
//! the [`Elem`] scalar trait with `f32` and `f64` instances ([`Matrix`] is
//! the `f64` matrix, [`MatrixF32`] the single-precision one) — the real
//! mixed-precision execution path of the paper's approximate-computing
//! mode, selected by [`Precision`]. The factorizations (eigensolver,
//! Cholesky, LU) remain `f64`; device-*emulating* kernels (FP16 tensor-core
//! rounding schedules, FPGA summation orders) live in the `sm-accel` crate.

pub mod bisect;
pub mod blas1;
pub mod blas2;
pub mod cholesky;
pub mod eigh;
pub mod elem;
pub mod error;
pub mod fermi;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod roots;
pub mod sign;
pub mod sparse;
pub mod tridiag;

pub use elem::{Elem, Precision};
pub use error::LinalgError;
pub use matrix::{Matrix, MatrixBase, MatrixF32};

/// Convenience result alias for fallible linear-algebra routines.
pub type Result<T> = std::result::Result<T, LinalgError>;
